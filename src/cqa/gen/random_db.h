#ifndef CQA_GEN_RANDOM_DB_H_
#define CQA_GEN_RANDOM_DB_H_

#include <vector>

#include "cqa/base/rng.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Knobs for random inconsistent database generation.
struct RandomDbOptions {
  /// Key tuples drawn per relation (several draws may merge into one block).
  int blocks_per_relation = 4;
  int min_block_size = 1;
  int max_block_size = 3;
  /// Values are drawn from a shared pool v0..v{domain_size-1}, so joins
  /// across relations actually hit.
  int domain_size = 5;
};

/// A random (typically inconsistent) database over `schema`. `extra_pool`
/// values (e.g. the constants of a query under test) are added to the value
/// pool so that constant atoms can match.
Database GenerateRandomDatabase(const Schema& schema,
                                const RandomDbOptions& options, Rng* rng,
                                const std::vector<Value>& extra_pool = {});

/// Convenience: derives the schema from `q`'s literals and seeds the pool
/// with `q`'s constants.
Database GenerateRandomDatabaseFor(const Query& q,
                                   const RandomDbOptions& options, Rng* rng);

}  // namespace cqa

#endif  // CQA_GEN_RANDOM_DB_H_
