#ifndef CQA_GEN_RANDOM_FORMULA_H_
#define CQA_GEN_RANDOM_FORMULA_H_

#include "cqa/base/rng.h"
#include "cqa/fo/formula.h"
#include "cqa/query/schema.h"

namespace cqa {

struct RandomFormulaOptions {
  int max_depth = 4;
  int num_vars = 3;
  double constant_prob = 0.2;
  /// If true, the formula is closed by quantifying leftover free variables.
  bool closed = true;
};

/// A random first-order sentence over `schema`, exercising every connective
/// and quantifier kind. Used to differentially test the tuple-at-a-time
/// evaluator (FoEvaluator) against the relational-algebra engine
/// (EvalFoAlgebra), whose semantics provably coincide.
FoPtr GenerateRandomFormula(const Schema& schema,
                            const RandomFormulaOptions& options, Rng* rng);

}  // namespace cqa

#endif  // CQA_GEN_RANDOM_FORMULA_H_
