#include "cqa/gen/families.h"

#include <cassert>

namespace cqa {

namespace {
Term X(int i) { return Term::Var("x" + std::to_string(i)); }
Term Y(int i) { return Term::Var("y" + std::to_string(i)); }
}  // namespace

Query ChainQuery(int k, bool negated_tail) {
  assert(k >= 1);
  std::vector<Literal> literals;
  for (int i = 0; i < k; ++i) {
    literals.push_back(
        Pos(Atom("C" + std::to_string(i), 1, {X(i), X(i + 1)})));
  }
  if (negated_tail) {
    literals.push_back(Neg(Atom("CN", 1, {X(k - 1), X(k)})));
  }
  return Query::MakeOrDie(std::move(literals));
}

Query CycleQuery(int k) {
  assert(k >= 2);
  std::vector<Literal> literals;
  for (int i = 0; i < k; ++i) {
    literals.push_back(
        Pos(Atom("C" + std::to_string(i), 1, {X(i), X((i + 1) % k)})));
  }
  return Query::MakeOrDie(std::move(literals));
}

Query PigeonholeQuery() {
  return Query::MakeOrDie(
      {Pos(Atom("R", 1, {Term::Var("x"), Term::Var("y")})),
       Neg(Atom("S", 1, {Term::Var("y"), Term::Var("x")}))});
}

Query PigeonholeCyclicQuery() {
  return Query::MakeOrDie(
      {Pos(Atom("R", 1, {Term::Var("x"), Term::Var("y")})),
       Neg(Atom("S", 1, {Term::Var("y"), Term::Var("x")})),
       Neg(Atom("T", 1, {Term::Var("x"), Term::Var("y")}))});
}

Database PigeonholeDatabase(int k) {
  assert(k >= 2);
  Schema schema;
  schema.AddRelationOrDie("R", 2, 1);
  schema.AddRelationOrDie("S", 2, 1);
  schema.AddRelationOrDie("T", 2, 1);
  Database db(std::move(schema));
  for (int i = 1; i <= k; ++i) {
    Value a = Value::Of("a" + std::to_string(i));
    for (int j = 1; j < k; ++j) {
      Value b = Value::Of("b" + std::to_string(j));
      db.AddFactOrDie("R", {a, b});
      db.AddFactOrDie("S", {b, a});
    }
  }
  return db;
}

Query StarQuery(int branches) {
  assert(branches >= 1);
  std::vector<Term> core_terms{Term::Var("x")};
  for (int i = 1; i <= branches; ++i) core_terms.push_back(Y(i));
  std::vector<Literal> literals;
  literals.push_back(Pos(Atom("Core", 1, std::move(core_terms))));
  for (int i = 1; i <= branches; ++i) {
    literals.push_back(
        Neg(Atom("N" + std::to_string(i), 1, {Term::Var("x"), Y(i)})));
  }
  return Query::MakeOrDie(std::move(literals));
}

}  // namespace cqa
