#ifndef CQA_GEN_POLL_H_
#define CQA_GEN_POLL_H_

#include "cqa/base/rng.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// The persons/towns schema of Example 4.6:
///   Likes(p, t) [all-key], Born(p | t), Lives(p | t), Mayor(t | p).
Schema PollSchema();

/// The four named queries of Example 4.6. q1/q2 have cyclic attack graphs
/// (no consistent FO rewriting); qa/qb are acyclic (rewritable).
Query PollQ1();  // { Mayor(t | p), ¬Lives(p | t) }
Query PollQ2();  // { Likes(p, t), ¬Lives(p | t), ¬Mayor(t | p) }
Query PollQa();  // { Lives(p | t), ¬Born(p | t), ¬Likes(p, t) }
Query PollQb();  // { Likes(p, t), ¬Born(p | t), ¬Lives(p | t) }

struct PollDbOptions {
  int num_persons = 10;
  int num_towns = 4;
  /// Probability that a person/town gets a second, key-violating fact in a
  /// given relation.
  double inconsistency = 0.3;
  /// Probability that a person appears in Likes at all.
  double likes_rate = 0.8;
};

/// Random poll data: every person has Born and Lives facts (possibly
/// inconsistent), most like some town, and every town has a mayor.
Database GeneratePollDatabase(const PollDbOptions& options, Rng* rng);

}  // namespace cqa

#endif  // CQA_GEN_POLL_H_
