#include "cqa/gen/poll.h"

namespace cqa {

Schema PollSchema() {
  Schema s;
  s.AddRelationOrDie("Likes", 2, 2);  // all-key: a person may like many towns
  s.AddRelationOrDie("Born", 2, 1);
  s.AddRelationOrDie("Lives", 2, 1);
  s.AddRelationOrDie("Mayor", 2, 1);
  return s;
}

namespace {
Term VarP() { return Term::Var("p"); }
Term VarT() { return Term::Var("t"); }
}  // namespace

Query PollQ1() {
  return Query::MakeOrDie({
      Pos(Atom("Mayor", 1, {VarT(), VarP()})),
      Neg(Atom("Lives", 1, {VarP(), VarT()})),
  });
}

Query PollQ2() {
  return Query::MakeOrDie({
      Pos(Atom("Likes", 2, {VarP(), VarT()})),
      Neg(Atom("Lives", 1, {VarP(), VarT()})),
      Neg(Atom("Mayor", 1, {VarT(), VarP()})),
  });
}

Query PollQa() {
  return Query::MakeOrDie({
      Pos(Atom("Lives", 1, {VarP(), VarT()})),
      Neg(Atom("Born", 1, {VarP(), VarT()})),
      Neg(Atom("Likes", 2, {VarP(), VarT()})),
  });
}

Query PollQb() {
  return Query::MakeOrDie({
      Pos(Atom("Likes", 2, {VarP(), VarT()})),
      Neg(Atom("Born", 1, {VarP(), VarT()})),
      Neg(Atom("Lives", 1, {VarP(), VarT()})),
  });
}

Database GeneratePollDatabase(const PollDbOptions& options, Rng* rng) {
  Database db(PollSchema());
  auto town = [&](uint64_t i) {
    return Value::Of("town" + std::to_string(i));
  };
  auto person = [&](int i) {
    return Value::Of("person" + std::to_string(i));
  };
  auto random_town = [&] {
    return town(rng->Below(static_cast<uint64_t>(options.num_towns)));
  };

  for (int p = 0; p < options.num_persons; ++p) {
    db.AddFactOrDie("Born", {person(p), random_town()});
    if (rng->Chance(options.inconsistency)) {
      db.AddFactOrDie("Born", {person(p), random_town()});
    }
    db.AddFactOrDie("Lives", {person(p), random_town()});
    if (rng->Chance(options.inconsistency)) {
      db.AddFactOrDie("Lives", {person(p), random_town()});
    }
    if (rng->Chance(options.likes_rate)) {
      db.AddFactOrDie("Likes", {person(p), random_town()});
      if (rng->Chance(options.inconsistency)) {
        db.AddFactOrDie("Likes", {person(p), random_town()});
      }
    }
  }
  for (int t = 0; t < options.num_towns; ++t) {
    db.AddFactOrDie(
        "Mayor",
        {town(static_cast<uint64_t>(t)),
         person(static_cast<int>(
             rng->Below(static_cast<uint64_t>(options.num_persons))))});
    if (rng->Chance(options.inconsistency)) {
      db.AddFactOrDie(
          "Mayor",
          {town(static_cast<uint64_t>(t)),
           person(static_cast<int>(
               rng->Below(static_cast<uint64_t>(options.num_persons))))});
    }
  }
  return db;
}

}  // namespace cqa
