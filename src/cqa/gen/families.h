#ifndef CQA_GEN_FAMILIES_H_
#define CQA_GEN_FAMILIES_H_

#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Parametric query families used by tests and benchmarks to study how the
/// paper's machinery scales with query size.

/// Chain: C0(x0|x1), C1(x1|x2), ..., C{k-1}(x{k-1}|xk), optionally followed
/// by ¬CN(x{k-1}|xk). Acyclic attack graph for every k (in FO).
Query ChainQuery(int k, bool negated_tail = true);

/// Cycle: C0(x0|x1), ..., C{k-1}(x{k-1}|x0). The attack graph is cyclic for
/// k >= 2 (and contains a 2-cycle, per [19]'s structure theory), so
/// CERTAINTY is L-hard.
Query CycleQuery(int k);

/// Star: Core(x | y1,...,yb) plus negated leaves ¬N1(x|y1), ..., ¬Nb(x|yb).
/// Guarded negation, acyclic attack graph (in FO); the rewriting nests one
/// block quantification per leaf, mirroring q_Hall's exponential growth.
Query StarQuery(int branches);

/// The paper's canonical coNP-complete query q1 = { R(x|y), ¬S(y|x) }.
Query PigeonholeQuery();

/// q1 with an extra (vacuous on `PigeonholeDatabase`) negated atom ¬T(x|y):
/// the same certainty question, but the third atom defeats the q1 shape
/// detector, so the auto-dispatched solver must fall back to exponential
/// backtracking. The attack graph stays cyclic (not in FO).
Query PigeonholeCyclicQuery();

/// Adversarial instance for q1: R has k blocks a_1..a_k, each holding the
/// k-1 facts R(a_i, b_j); S holds S(b_j, a_i) for all i, j (and T, used by
/// `PigeonholeCyclicQuery`, is registered but empty). A falsifying repair
/// would be a system of distinct representatives of the k R-blocks among
/// k-1 values — impossible by pigeonhole, so certainty is TRUE — but a
/// branch-and-prune search must exhaust exponentially many partial
/// matchings to prove it. Used to exercise deadline/budget enforcement.
Database PigeonholeDatabase(int k);

}  // namespace cqa

#endif  // CQA_GEN_FAMILIES_H_
