#ifndef CQA_GEN_FAMILIES_H_
#define CQA_GEN_FAMILIES_H_

#include "cqa/query/query.h"

namespace cqa {

/// Parametric query families used by tests and benchmarks to study how the
/// paper's machinery scales with query size.

/// Chain: C0(x0|x1), C1(x1|x2), ..., C{k-1}(x{k-1}|xk), optionally followed
/// by ¬CN(x{k-1}|xk). Acyclic attack graph for every k (in FO).
Query ChainQuery(int k, bool negated_tail = true);

/// Cycle: C0(x0|x1), ..., C{k-1}(x{k-1}|x0). The attack graph is cyclic for
/// k >= 2 (and contains a 2-cycle, per [19]'s structure theory), so
/// CERTAINTY is L-hard.
Query CycleQuery(int k);

/// Star: Core(x | y1,...,yb) plus negated leaves ¬N1(x|y1), ..., ¬Nb(x|yb).
/// Guarded negation, acyclic attack graph (in FO); the rewriting nests one
/// block quantification per leaf, mirroring q_Hall's exponential growth.
Query StarQuery(int branches);

}  // namespace cqa

#endif  // CQA_GEN_FAMILIES_H_
