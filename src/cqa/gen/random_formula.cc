#include "cqa/gen/random_formula.h"

#include <cassert>

namespace cqa {

namespace {

struct Generator {
  const Schema* schema;
  const RandomFormulaOptions* opts;
  Rng* rng;
  std::vector<Symbol> vars;

  Term RandomTerm() {
    if (rng->Chance(opts->constant_prob)) {
      return Term::Const("fc" + std::to_string(rng->Below(3)));
    }
    return Term::VarOf(vars[rng->Below(vars.size())]);
  }

  FoPtr Atom() {
    const auto& relations = schema->relations();
    const RelationSchema& rs = relations[rng->Below(relations.size())];
    std::vector<Term> terms;
    for (int i = 0; i < rs.arity; ++i) terms.push_back(RandomTerm());
    return FoAtom(rs.name, rs.key_len, std::move(terms));
  }

  FoPtr Gen(int depth) {
    if (depth <= 0) {
      switch (rng->Below(3)) {
        case 0:
          return Atom();
        case 1:
          return FoEquals(RandomTerm(), RandomTerm());
        default:
          return rng->Chance(0.5) ? FoNot(Atom()) : Atom();
      }
    }
    switch (rng->Below(7)) {
      case 0: {
        std::vector<FoPtr> children;
        for (int i = 0; i < 2; ++i) children.push_back(Gen(depth - 1));
        return FoAnd(std::move(children));
      }
      case 1: {
        std::vector<FoPtr> children;
        for (int i = 0; i < 2; ++i) children.push_back(Gen(depth - 1));
        return FoOr(std::move(children));
      }
      case 2:
        return FoNot(Gen(depth - 1));
      case 3:
        return FoImplies(Gen(depth - 1), Gen(depth - 1));
      case 4: {
        Symbol v = vars[rng->Below(vars.size())];
        return FoExists({v}, Gen(depth - 1));
      }
      case 5: {
        Symbol v = vars[rng->Below(vars.size())];
        return FoForall({v}, Gen(depth - 1));
      }
      default:
        return Atom();
    }
  }
};

}  // namespace

FoPtr GenerateRandomFormula(const Schema& schema,
                            const RandomFormulaOptions& options, Rng* rng) {
  assert(!schema.relations().empty());
  Generator gen;
  gen.schema = &schema;
  gen.opts = &options;
  gen.rng = rng;
  for (int i = 0; i < options.num_vars; ++i) {
    gen.vars.push_back(InternSymbol("fv" + std::to_string(i)));
  }
  FoPtr f = gen.Gen(options.max_depth);
  if (options.closed) {
    SymbolSet free = f->FreeVars();
    if (!free.empty()) {
      f = rng->Chance(0.5) ? FoExists(free.items(), std::move(f))
                           : FoForall(free.items(), std::move(f));
    }
  }
  return f;
}

}  // namespace cqa
