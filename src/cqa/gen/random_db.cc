#include "cqa/gen/random_db.h"

#include <cassert>

namespace cqa {

Database GenerateRandomDatabase(const Schema& schema,
                                const RandomDbOptions& options, Rng* rng,
                                const std::vector<Value>& extra_pool) {
  std::vector<Value> pool;
  for (int i = 0; i < options.domain_size; ++i) {
    pool.push_back(Value::Of("v" + std::to_string(i)));
  }
  for (Value v : extra_pool) pool.push_back(v);
  assert(!pool.empty());

  auto draw = [&] { return pool[rng->Below(pool.size())]; };

  Database db(schema);
  for (const RelationSchema& rs : schema.relations()) {
    for (int b = 0; b < options.blocks_per_relation; ++b) {
      Tuple key;
      for (int i = 0; i < rs.key_len; ++i) key.push_back(draw());
      int64_t size =
          rng->Range(options.min_block_size, options.max_block_size);
      for (int64_t f = 0; f < size; ++f) {
        Tuple values = key;
        for (int i = rs.key_len; i < rs.arity; ++i) values.push_back(draw());
        db.AddFactOrDie(SymbolName(rs.name), std::move(values));
      }
    }
  }
  return db;
}

Database GenerateRandomDatabaseFor(const Query& q,
                                   const RandomDbOptions& options, Rng* rng) {
  Schema schema;
  Result<bool> reg = q.RegisterInto(&schema);
  assert(reg.ok());
  (void)reg;
  std::vector<Value> extra;
  for (const Literal& l : q.literals()) {
    for (const Term& t : l.atom.terms()) {
      if (t.is_constant()) extra.push_back(t.constant());
    }
  }
  return GenerateRandomDatabase(schema, options, rng, extra);
}

}  // namespace cqa
