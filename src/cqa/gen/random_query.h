#ifndef CQA_GEN_RANDOM_QUERY_H_
#define CQA_GEN_RANDOM_QUERY_H_

#include "cqa/base/rng.h"
#include "cqa/query/query.h"

namespace cqa {

/// Knobs for random sjfBCQ¬ query generation.
struct RandomQueryOptions {
  int min_positive = 1;
  int max_positive = 3;
  int max_negative = 2;
  int max_arity = 3;
  int num_vars = 4;
  double constant_prob = 0.15;
  /// If true (default), only weakly-guarded queries are returned; negated
  /// atoms draw their variables so that the guard condition holds (retrying
  /// if necessary).
  bool require_weakly_guarded = true;
};

/// Generates a random valid (safe, self-join-free) query. Deterministic for
/// a given RNG state.
Query GenerateRandomQuery(const RandomQueryOptions& options, Rng* rng);

}  // namespace cqa

#endif  // CQA_GEN_RANDOM_QUERY_H_
