#include "cqa/gen/random_query.h"

#include <cassert>

namespace cqa {

namespace {

Term DrawTerm(const std::vector<Symbol>& vars, double constant_prob,
              Rng* rng) {
  if (rng->Chance(constant_prob)) {
    return Term::Const("c" + std::to_string(rng->Below(2)));
  }
  return Term::VarOf(vars[rng->Below(vars.size())]);
}

}  // namespace

Query GenerateRandomQuery(const RandomQueryOptions& options, Rng* rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<Symbol> vars;
    for (int i = 0; i < options.num_vars; ++i) {
      vars.push_back(InternSymbol("x" + std::to_string(i)));
    }

    std::vector<Literal> literals;
    int n_pos = static_cast<int>(
        rng->Range(options.min_positive, options.max_positive));
    for (int p = 0; p < n_pos; ++p) {
      int arity = static_cast<int>(rng->Range(1, options.max_arity));
      int key_len = static_cast<int>(rng->Range(1, arity));
      std::vector<Term> terms;
      for (int i = 0; i < arity; ++i) {
        terms.push_back(DrawTerm(vars, options.constant_prob, rng));
      }
      literals.push_back(
          Pos(Atom("P" + std::to_string(p), key_len, std::move(terms))));
    }

    // Negated atoms draw variables from one positive guard atom, which makes
    // the query guarded (hence weakly guarded) by construction; a sprinkle
    // of constants keeps shapes varied.
    int n_neg = static_cast<int>(rng->Range(0, options.max_negative));
    for (int n = 0; n < n_neg; ++n) {
      const Atom& guard =
          literals[rng->Below(static_cast<size_t>(n_pos))].atom;
      SymbolSet guard_vars = guard.Vars();
      std::vector<Symbol> pool = guard_vars.items();
      int arity = static_cast<int>(rng->Range(1, options.max_arity));
      int key_len = static_cast<int>(rng->Range(1, arity));
      std::vector<Term> terms;
      for (int i = 0; i < arity; ++i) {
        if (pool.empty() || rng->Chance(options.constant_prob)) {
          terms.push_back(Term::Const("c" + std::to_string(rng->Below(2))));
        } else {
          terms.push_back(Term::VarOf(pool[rng->Below(pool.size())]));
        }
      }
      literals.push_back(
          Neg(Atom("N" + std::to_string(n), key_len, std::move(terms))));
    }

    Result<Query> q = Query::Make(std::move(literals));
    if (!q.ok()) continue;
    if (options.require_weakly_guarded && !q->IsWeaklyGuarded()) continue;
    return q.value();
  }
  assert(false && "random query generation failed repeatedly");
  return Query::MakeOrDie({Pos(Atom("P0", 1, {Term::Var("x0")}))});
}

}  // namespace cqa
