#include "cqa/matching/hopcroft_karp.h"

#include <deque>
#include <limits>

namespace cqa {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

struct HkState {
  const BipartiteGraph* g;
  std::vector<int> match_l;
  std::vector<int> match_r;
  std::vector<int> dist;

  bool Bfs() {
    std::deque<int> queue;
    dist.assign(static_cast<size_t>(g->num_left()), kInf);
    for (int l = 0; l < g->num_left(); ++l) {
      if (match_l[static_cast<size_t>(l)] < 0) {
        dist[static_cast<size_t>(l)] = 0;
        queue.push_back(l);
      }
    }
    bool found_free = false;
    while (!queue.empty()) {
      int l = queue.front();
      queue.pop_front();
      for (int r : g->Neighbors(l)) {
        int l2 = match_r[static_cast<size_t>(r)];
        if (l2 < 0) {
          found_free = true;
        } else if (dist[static_cast<size_t>(l2)] == kInf) {
          dist[static_cast<size_t>(l2)] = dist[static_cast<size_t>(l)] + 1;
          queue.push_back(l2);
        }
      }
    }
    return found_free;
  }

  bool Dfs(int l) {
    for (int r : g->Neighbors(l)) {
      int l2 = match_r[static_cast<size_t>(r)];
      if (l2 < 0 || (dist[static_cast<size_t>(l2)] ==
                         dist[static_cast<size_t>(l)] + 1 &&
                     Dfs(l2))) {
        match_l[static_cast<size_t>(l)] = r;
        match_r[static_cast<size_t>(r)] = l;
        return true;
      }
    }
    dist[static_cast<size_t>(l)] = kInf;
    return false;
  }
};

}  // namespace

Matching MaxMatching(const BipartiteGraph& g) {
  HkState s;
  s.g = &g;
  s.match_l.assign(static_cast<size_t>(g.num_left()), -1);
  s.match_r.assign(static_cast<size_t>(g.num_right()), -1);
  int size = 0;
  while (s.Bfs()) {
    for (int l = 0; l < g.num_left(); ++l) {
      if (s.match_l[static_cast<size_t>(l)] < 0 && s.Dfs(l)) ++size;
    }
  }
  Matching out;
  out.size = size;
  out.match_left = std::move(s.match_l);
  out.match_right = std::move(s.match_r);
  return out;
}

bool HasLeftPerfectMatching(const BipartiteGraph& g) {
  return MaxMatching(g).size == g.num_left();
}

bool HasPerfectMatching(const BipartiteGraph& g) {
  return g.num_left() == g.num_right() && HasLeftPerfectMatching(g);
}

}  // namespace cqa
