#ifndef CQA_MATCHING_HOPCROFT_KARP_H_
#define CQA_MATCHING_HOPCROFT_KARP_H_

#include <vector>

#include "cqa/matching/bipartite.h"

namespace cqa {

/// Result of a maximum-matching computation.
struct Matching {
  int size = 0;
  /// match_left[l] = matched right vertex, or -1.
  std::vector<int> match_left;
  /// match_right[r] = matched left vertex, or -1.
  std::vector<int> match_right;
};

/// Hopcroft–Karp maximum bipartite matching, O(E·√V). This is the
/// polynomial engine behind the BIPARTITE PERFECT MATCHING connection of
/// Lemma 5.2 and the Hall-theorem machinery of Examples 1.2/6.12.
Matching MaxMatching(const BipartiteGraph& g);

/// True iff a matching saturating every left vertex exists.
bool HasLeftPerfectMatching(const BipartiteGraph& g);

/// True iff `g` has a perfect matching (requires num_left == num_right).
bool HasPerfectMatching(const BipartiteGraph& g);

}  // namespace cqa

#endif  // CQA_MATCHING_HOPCROFT_KARP_H_
