#ifndef CQA_MATCHING_BIPARTITE_H_
#define CQA_MATCHING_BIPARTITE_H_

#include <cstddef>
#include <vector>

namespace cqa {

/// A bipartite graph with `num_left` left vertices and `num_right` right
/// vertices, adjacency stored on the left side.
class BipartiteGraph {
 public:
  BipartiteGraph(int num_left, int num_right)
      : num_right_(num_right), adj_(static_cast<size_t>(num_left)) {}

  int num_left() const { return static_cast<int>(adj_.size()); }
  int num_right() const { return num_right_; }

  /// Adds edge (l, r). Duplicate edges are allowed and harmless.
  void AddEdge(int l, int r);

  const std::vector<int>& Neighbors(int l) const {
    return adj_[static_cast<size_t>(l)];
  }

  size_t NumEdges() const;

 private:
  int num_right_;
  std::vector<std::vector<int>> adj_;
};

}  // namespace cqa

#endif  // CQA_MATCHING_BIPARTITE_H_
