#ifndef CQA_MATCHING_HALL_H_
#define CQA_MATCHING_HALL_H_

#include <optional>
#include <vector>

#include "cqa/matching/bipartite.h"

namespace cqa {

/// Hall's Marriage Theorem utilities [14]. A left-saturating matching exists
/// iff |N(S)| >= |S| for every subset S of left vertices.

/// Checks Hall's condition by maximum matching (deficiency version of the
/// theorem); equivalent to `HasLeftPerfectMatching`.
bool HallConditionHolds(const BipartiteGraph& g);

/// A violating set S (|N(S)| < |S|) if Hall's condition fails, found by
/// taking the left vertices reachable by alternating paths from an
/// unmatched left vertex. Returns nullopt if the condition holds.
std::optional<std::vector<int>> FindHallViolator(const BipartiteGraph& g);

}  // namespace cqa

#endif  // CQA_MATCHING_HALL_H_
