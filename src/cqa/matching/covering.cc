#include "cqa/matching/covering.h"

#include <cassert>

#include "cqa/matching/hopcroft_karp.h"

namespace cqa {

std::optional<SCoveringSolution> SolveSCovering(
    const SCoveringInstance& inst) {
  BipartiteGraph g(inst.num_elements, static_cast<int>(inst.sets.size()));
  for (size_t t = 0; t < inst.sets.size(); ++t) {
    for (int a : inst.sets[t]) {
      assert(a >= 0 && a < inst.num_elements);
      g.AddEdge(a, static_cast<int>(t));
    }
  }
  Matching m = MaxMatching(g);
  if (m.size != inst.num_elements) return std::nullopt;
  SCoveringSolution out;
  out.assigned_set = std::move(m.match_left);
  return out;
}

}  // namespace cqa
