#ifndef CQA_MATCHING_COVERING_H_
#define CQA_MATCHING_COVERING_H_

#include <optional>
#include <vector>

namespace cqa {

/// The S-COVERING problem of Example 1.2: given a set S = {0..num_elements-1}
/// and a list of subsets T_1..T_ℓ, pick at most one element from each T_i so
/// that every element of S is picked exactly once, i.e. find an injective
/// f : S → {1..ℓ} with a ∈ T_{f(a)}.
struct SCoveringInstance {
  int num_elements = 0;
  std::vector<std::vector<int>> sets;  // T_1..T_ℓ, elements in [0, n)
};

/// A solution maps each element a to the index of the set it is picked from.
struct SCoveringSolution {
  std::vector<int> assigned_set;  // size num_elements
};

/// Solves S-COVERING via left-saturating bipartite matching (elements × set
/// indices). Returns nullopt if no covering exists (Hall's condition fails).
std::optional<SCoveringSolution> SolveSCovering(const SCoveringInstance& inst);

}  // namespace cqa

#endif  // CQA_MATCHING_COVERING_H_
