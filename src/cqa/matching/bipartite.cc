#include "cqa/matching/bipartite.h"

#include <cassert>

namespace cqa {

void BipartiteGraph::AddEdge(int l, int r) {
  assert(l >= 0 && static_cast<size_t>(l) < adj_.size());
  assert(r >= 0 && r < num_right_);
  adj_[static_cast<size_t>(l)].push_back(r);
}

size_t BipartiteGraph::NumEdges() const {
  size_t n = 0;
  for (const auto& nbrs : adj_) n += nbrs.size();
  return n;
}

}  // namespace cqa
