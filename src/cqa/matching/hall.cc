#include "cqa/matching/hall.h"

#include <deque>

#include "cqa/matching/hopcroft_karp.h"

namespace cqa {

bool HallConditionHolds(const BipartiteGraph& g) {
  return HasLeftPerfectMatching(g);
}

std::optional<std::vector<int>> FindHallViolator(const BipartiteGraph& g) {
  Matching m = MaxMatching(g);
  if (m.size == g.num_left()) return std::nullopt;
  // Pick an unmatched left vertex and grow alternating reachability:
  // left -> any neighbor, right -> its matched left vertex.
  int start = -1;
  for (int l = 0; l < g.num_left(); ++l) {
    if (m.match_left[static_cast<size_t>(l)] < 0) {
      start = l;
      break;
    }
  }
  std::vector<bool> left_seen(static_cast<size_t>(g.num_left()), false);
  std::vector<bool> right_seen(static_cast<size_t>(g.num_right()), false);
  std::deque<int> queue{start};
  left_seen[static_cast<size_t>(start)] = true;
  while (!queue.empty()) {
    int l = queue.front();
    queue.pop_front();
    for (int r : g.Neighbors(l)) {
      if (right_seen[static_cast<size_t>(r)]) continue;
      right_seen[static_cast<size_t>(r)] = true;
      int l2 = m.match_right[static_cast<size_t>(r)];
      if (l2 >= 0 && !left_seen[static_cast<size_t>(l2)]) {
        left_seen[static_cast<size_t>(l2)] = true;
        queue.push_back(l2);
      }
    }
  }
  // All reached right vertices are matched (else an augmenting path would
  // exist), and every reached left vertex's neighborhood is reached, so the
  // reached left set S has |N(S)| = |S| - 1.
  std::vector<int> violator;
  for (int l = 0; l < g.num_left(); ++l) {
    if (left_seen[static_cast<size_t>(l)]) violator.push_back(l);
  }
  return violator;
}

}  // namespace cqa
