#include "cqa/export/asp.h"

#include <cctype>

namespace cqa {

namespace {

// ASP constants must be lowercase identifiers or quoted strings; quote
// everything for uniformity.
std::string AspConst(Value v) {
  std::string out = "\"";
  for (char c : v.name()) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += "\"";
  return out;
}

std::string AspVarName(Symbol v, const char* prefix = "V") {
  // Variables must start with an uppercase letter; mangle the symbol id so
  // distinct variables never clash.
  return std::string(prefix) + std::to_string(v);
}

std::string PredicateName(const char* prefix, Symbol relation) {
  std::string out = prefix;
  for (char c : SymbolName(relation)) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string TermList(const Atom& atom, const char* var_prefix) {
  std::string out;
  for (int i = 0; i < atom.arity(); ++i) {
    if (i > 0) out += ", ";
    const Term& t = atom.term(i);
    out += t.is_constant() ? AspConst(t.constant())
                           : AspVarName(t.var(), var_prefix);
  }
  return out;
}

}  // namespace

Result<std::string> ToAspProgram(const Query& q, const Database& db) {
  if (!q.reified().empty() || !q.diseqs().empty()) {
    return Result<std::string>::Error(
        "ASP export supports plain sjfBCQ¬ queries (no reified variables or "
        "disequalities)");
  }
  std::string out;
  out += "% CERTAINTY(q) as ASP: answer sets = repairs falsifying q;\n";
  out += "% q is certain iff this program is UNSATISFIABLE.\n";
  out += "% query: " + q.ToString() + "\n\n";

  // Facts.
  out += "% database facts\n";
  for (const RelationSchema& rs : db.schema().relations()) {
    std::string pred = PredicateName("f_", rs.name);
    for (const Tuple& t : db.FactsOf(rs.name)) {
      out += pred + "(";
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += ", ";
        out += AspConst(t[i]);
      }
      out += ").\n";
    }
  }

  // Repair choice: exactly one fact per block.
  out += "\n% repairs: exactly one fact per block\n";
  for (const RelationSchema& rs : db.schema().relations()) {
    std::string f = PredicateName("f_", rs.name);
    std::string in = PredicateName("in_", rs.name);
    // Key variables X_i are bound by the body (one rule instance per block);
    // the non-key variables of the head condition must be LOCAL (Y_i), so
    // the choice ranges over the block's facts.
    std::string key_vars, all_vars, local_value_vars;
    for (int i = 1; i <= rs.arity; ++i) {
      if (i > 1) all_vars += ", ";
      all_vars += "X" + std::to_string(i);
      if (i <= rs.key_len) {
        if (i > 1) key_vars += ", ";
        key_vars += "X" + std::to_string(i);
      } else {
        local_value_vars += ", Y" + std::to_string(i);
      }
    }
    out += "1 { " + in + "(" + key_vars + local_value_vars + ") : " + f +
           "(" + key_vars + local_value_vars + ") } 1 :- " + f + "(" +
           all_vars + ").\n";
  }

  // Query match over the repair.
  out += "\n% q matches the repair\n";
  out += "sat :- ";
  bool first = true;
  for (const Literal& l : q.literals()) {
    if (!first) out += ", ";
    first = false;
    if (l.negated) out += "not ";
    out += PredicateName("in_", l.atom.relation()) + "(" +
           TermList(l.atom, "V") + ")";
  }
  out += ".\n";

  // Safety for clingo: negated-literal variables must be bound; they are,
  // because q is safe (every variable occurs in a positive literal).
  out += "\n% falsifying repairs only\n:- sat.\n";
  return out;
}

}  // namespace cqa
