#ifndef CQA_EXPORT_ASP_H_
#define CQA_EXPORT_ASP_H_

#include <string>

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Answer-set-programming export, after the ASP-based CQA systems the paper
/// cites in its related work ([16, 23, 24]): a clingo-style program whose
/// answer sets are exactly the repairs that FALSIFY q. Hence:
///
///   CERTAINTY(q) holds on db  ⟺  the program is UNSATISFIABLE.
///
/// Encoding: one predicate `f_R/n` per relation holding the facts, a choice
/// rule picking exactly one fact per block into `in_R/n`, a rule deriving
/// `sat` from a query match over the `in_R` predicates, and the constraint
/// `:- sat.`
Result<std::string> ToAspProgram(const Query& q, const Database& db);

}  // namespace cqa

#endif  // CQA_EXPORT_ASP_H_
