#ifndef CQA_PARALLEL_DECOMPOSE_H_
#define CQA_PARALLEL_DECOMPOSE_H_

#include <memory>
#include <vector>

#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Two-level decomposition of CERTAINTY(q, db) into independent
/// subproblems, with conservative fallbacks whenever a split cannot be
/// proven sound (docs/THEORY.md, "Component decomposition", carries the
/// proof sketches referenced below).
///
/// Level 1 — query split (AND). The literals and disequalities of q
/// partition into variable-connected groups; self-join-freeness makes the
/// groups' relation sets disjoint, so repairs factor across them and
///   CERTAIN(q, db)  =  AND_i CERTAIN(q_i, db).
/// Sound for every sjfBCQ¬≠ with an empty reified set (reified variables
/// behave like per-query constants the groups could silently share, so a
/// non-empty set falls back to the single group {q}).
///
/// Level 2 — data split (OR). For one variable-connected group q_i, the
/// blocks of db partition into value-connected components (see
/// Database::BlockComponents) and
///   CERTAIN(q_i, db)  =  OR_C CERTAIN(q_i, db|C),
/// but only under three conditions, each with a concrete counterexample
/// otherwise:
///  (1) q_i has no disequalities and no reified variables;
///  (2) the *positive* literals of q_i are variable-connected through
///      positive atoms alone (connectivity through a negated atom is not
///      enough: q = R(x|u), S(y|v), ¬N(x,y) is certain on
///      {R(a|a'), S(b|b')} with N empty, yet neither single-relation
///      component is);
///  (3) every literal of q_i carries at least one variable (a ground
///      ¬N('c'|'d') can be falsified by a fact in a *different* component
///      than the one a satisfying valuation lives in).
/// When any condition fails, `DataDecomposable` returns false and the
/// group is solved whole (one component).
struct QuerySplit {
  /// The variable-connected groups, ordered by smallest literal index.
  /// Always non-empty; a single entry equal to q when no split applies.
  std::vector<Query> subqueries;
  /// True when the split actually produced more than one group.
  bool split = false;
};

QuerySplit SplitQueryConnected(const Query& q);

/// Whether the data-level OR rule is sound for `q` (conditions (1)-(3)
/// above; `q` should be one variable-connected group).
bool DataDecomposable(const Query& q);

/// One value-connected component of the database, restricted to the
/// relations of the sub-query it was built for.
struct DataComponent {
  /// A self-contained sub-database holding exactly the facts of the
  /// component's blocks over the sub-query's relations. Built with its
  /// block index forced, so solver tasks sharing the pointer never trigger
  /// a rebuild (and must never copy the Database — copies drop the index
  /// by design).
  std::shared_ptr<const Database> db;
  size_t blocks = 0;
  size_t facts = 0;
};

/// Splits `db` into per-component sub-databases for `q` (which must be
/// `DataDecomposable`). Components lacking a block of *every* positive
/// relation of q cannot satisfy q in any repair, contribute `false` to the
/// OR, and are skipped — so the result can legitimately be empty, meaning
/// CERTAIN(q, db) is false. Components are ordered by smallest block id
/// (deterministic for a given database).
std::vector<DataComponent> DecomposeData(const Query& q, const Database& db);

}  // namespace cqa

#endif  // CQA_PARALLEL_DECOMPOSE_H_
