#ifndef CQA_PARALLEL_POOL_H_
#define CQA_PARALLEL_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cqa {

/// A bounded work-stealing pool for one parallel solve: a fixed task set is
/// distributed round-robin over per-worker deques up front, workers drain
/// their own deque front-first and steal from siblings' backs when empty.
///
/// The task set is static — `Submit` is only legal before `Start` — which
/// keeps the lifecycle trivial to reason about: every submitted task runs
/// exactly once (tasks cancelled by the solver's short-circuit logic still
/// run; they observe their stop token and return immediately), workers exit
/// when every deque is empty, and the destructor joins. There is no detach
/// path, so no task can outlive the pool ("no leaked pool tasks" in the
/// chaos suite pins this down).
class WorkStealingPool {
 public:
  /// `threads` is clamped to [1, number of submitted tasks] at `Start`.
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();  // joins all workers (waits for running tasks)

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Queues a task; only valid before `Start`.
  void Submit(std::function<void()> task);

  /// Spawns the workers. No-op when nothing was submitted.
  void Start();

  /// Blocks until every task has run, waking every `poll_every` to invoke
  /// `on_poll` (the parallel solver's parent-budget probe: it flips the
  /// component stop tokens on deadline/cancel, which makes the remaining
  /// tasks return quickly — the pool itself never kills a task).
  void WaitAll(std::chrono::milliseconds poll_every,
               const std::function<void()>& on_poll);

  /// Tasks a worker took from a sibling's deque rather than its own.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct WorkerDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  bool PopOwn(size_t self, std::function<void()>* task);
  bool StealFrom(size_t self, std::function<void()>* task);

  int requested_threads_;
  size_t next_submit_ = 0;
  size_t submitted_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> steals_{0};
  std::atomic<size_t> outstanding_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace cqa

#endif  // CQA_PARALLEL_POOL_H_
