#include "cqa/parallel/pool.h"

#include <algorithm>
#include <cassert>

namespace cqa {

WorkStealingPool::WorkStealingPool(int threads)
    : requested_threads_(std::max(1, threads)) {}

WorkStealingPool::~WorkStealingPool() {
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::Submit(std::function<void()> task) {
  assert(!started_);
  if (deques_.empty()) {
    const size_t n = static_cast<size_t>(requested_threads_);
    deques_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      deques_.push_back(std::make_unique<WorkerDeque>());
    }
  }
  deques_[next_submit_ % deques_.size()]->tasks.push_back(std::move(task));
  ++next_submit_;
  ++submitted_;
  outstanding_.fetch_add(1, std::memory_order_relaxed);
}

void WorkStealingPool::Start() {
  assert(!started_);
  started_ = true;
  if (submitted_ == 0) return;
  const size_t n =
      std::min(deques_.size(), std::max<size_t>(1, submitted_));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

bool WorkStealingPool::PopOwn(size_t self, std::function<void()>* task) {
  WorkerDeque& d = *deques_[self];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.tasks.empty()) return false;
  *task = std::move(d.tasks.front());
  d.tasks.pop_front();
  return true;
}

bool WorkStealingPool::StealFrom(size_t self, std::function<void()>* task) {
  // Scan the siblings starting after ourselves; steal from the *back* of a
  // victim's deque (the classic discipline: the owner keeps the front,
  // thieves take the coldest work).
  for (size_t off = 1; off < deques_.size(); ++off) {
    WorkerDeque& d = *deques_[(self + off) % deques_.size()];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.tasks.empty()) continue;
    *task = std::move(d.tasks.back());
    d.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::WorkerLoop(size_t self) {
  std::function<void()> task;
  for (;;) {
    if (!PopOwn(self, &task) && !StealFrom(self, &task)) {
      // Every deque empty: the task set is static, so there is nothing
      // left to wait for.
      return;
    }
    task();
    task = nullptr;
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkStealingPool::WaitAll(std::chrono::milliseconds poll_every,
                               const std::function<void()>& on_poll) {
  std::unique_lock<std::mutex> lock(done_mu_);
  for (;;) {
    if (done_cv_.wait_for(lock, poll_every, [this] {
          return outstanding_.load(std::memory_order_acquire) == 0;
        })) {
      return;
    }
    if (on_poll) on_poll();
  }
}

}  // namespace cqa
