#include "cqa/parallel/parallel_solver.h"

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/parallel/decompose.h"
#include "cqa/parallel/pool.h"

namespace cqa {

namespace {

// One component task's landing slot; written only by the task that owns it
// (the join in WaitAll publishes them to the caller).
struct TaskResult {
  bool ran = false;
  bool value = false;
  std::optional<ErrorCode> error;
  std::string error_msg;
  uint64_t steps = 0;
};

// Shared state of one sub-query (one AND-term).
struct GroupState {
  // Set once by the first component proved certain; siblings then observe
  // `stop` and unwind as cancelled.
  std::atomic<bool> resolved_true{false};
  // Cancel token wired into every component task's child budget. Flipped
  // by the in-group short-circuit, by a sibling group's refutation, and by
  // the waiting thread when the parent budget trips.
  std::atomic<bool> stop{false};
  std::atomic<int> refuted_components{0};
  int total_components = 0;
};

Result<bool> RunEngine(SolverMethod method, const Query& q,
                       const Database& db, Budget* budget, uint64_t* steps) {
  if (method == SolverMethod::kNaive) {
    NaiveOptions opts;
    opts.budget = budget;
    Result<bool> r = IsCertainNaive(q, db, opts);
    *steps = budget->steps();
    return r;
  }
  BacktrackingOptions opts;
  opts.budget = budget;
  Result<BacktrackingReport> r = SolveCertainBacktracking(q, db, opts);
  if (!r.ok()) return Result<bool>::Error(r);
  *steps = r->nodes;
  return r->certain;
}

}  // namespace

Result<ParallelReport> SolveCertainParallel(const Query& q,
                                            const Database& db,
                                            const ParallelOptions& options) {
  using R = Result<ParallelReport>;
  if (options.method != SolverMethod::kBacktracking &&
      options.method != SolverMethod::kNaive) {
    return R::Error(ErrorCode::kUnsupported,
                    "parallel solving supports the backtracking and naive "
                    "engines only (got " +
                        ToString(options.method) + ")");
  }

  ParallelReport report;
  QuerySplit split = SplitQueryConnected(q);
  report.subqueries = static_cast<int>(split.subqueries.size());

  // Snapshot the parent budget by value: component tasks never touch the
  // parent object, so the waiting thread may keep probing it freely.
  Budget proto;
  if (options.budget != nullptr) {
    if (std::optional<ErrorCode> code = options.budget->CheckNow()) {
      return R::Error(*code, Budget::Describe(*code));
    }
    proto.deadline = options.budget->deadline;
    proto.max_steps =
        options.budget->StepsRemaining().value_or(Budget::kNoStepLimit);
    proto.fail_after_probes = options.budget->fail_after_probes;
    proto.crash_after_probes = options.budget->crash_after_probes;
    proto.hog_mb_per_probe = options.budget->hog_mb_per_probe;
    proto.wedge_after_probes = options.budget->wedge_after_probes;
  }

  // Plan the component tasks. Sub-databases keep their owning shared_ptr
  // here; tasks reference them by pointer and never copy a Database (a
  // copy would drop the block index forced at decompose time).
  struct PlannedTask {
    const Query* query = nullptr;
    const Database* db = nullptr;
    size_t group = 0;
  };
  std::vector<PlannedTask> tasks;
  std::vector<DataComponent> owned_components;
  std::vector<std::unique_ptr<GroupState>> groups;
  groups.reserve(split.subqueries.size());
  bool planning_refuted = false;
  for (size_t g = 0; g < split.subqueries.size(); ++g) {
    const Query& sub = split.subqueries[g];
    groups.push_back(std::make_unique<GroupState>());
    if (DataDecomposable(sub)) {
      std::vector<DataComponent> comps = DecomposeData(sub, db);
      if (comps.empty()) {
        // Every component lacked a positive relation: the OR is empty, the
        // sub-query is not certain, and the conjunction is already false.
        planning_refuted = true;
        break;
      }
      groups[g]->total_components = static_cast<int>(comps.size());
      for (DataComponent& c : comps) {
        owned_components.push_back(std::move(c));
        tasks.push_back(PlannedTask{&sub, owned_components.back().db.get(),
                                    g});
      }
    } else {
      // Conservative fallback: one task over the whole database.
      groups[g]->total_components = 1;
      tasks.push_back(PlannedTask{&sub, &db, g});
    }
  }
  if (planning_refuted) {
    report.certain = false;
    report.decomposed = split.split;
    return report;
  }
  report.components = static_cast<int>(tasks.size());
  report.decomposed = split.split || tasks.size() > 1;

  std::vector<TaskResult> results(tasks.size());
  std::atomic<bool> refuted{false};
  std::atomic<bool> errored{false};

  auto stop_everything = [&groups] {
    for (const std::unique_ptr<GroupState>& g : groups) {
      g->stop.store(true, std::memory_order_release);
    }
  };

  WorkStealingPool pool(options.parallelism);
  for (size_t i = 0; i < tasks.size(); ++i) {
    pool.Submit([&, i] {
      const PlannedTask& task = tasks[i];
      TaskResult& slot = results[i];
      GroupState& group = *groups[task.group];
      if (group.stop.load(std::memory_order_acquire)) {
        slot.error = ErrorCode::kCancelled;
        slot.error_msg = "component task cancelled before it started";
        return;
      }
      Budget child = proto;
      child.cancel = &group.stop;
      Result<bool> r =
          RunEngine(options.method, *task.query, *task.db, &child,
                    &slot.steps);
      slot.ran = true;
      if (!r.ok()) {
        slot.error = r.code();
        slot.error_msg = r.error();
        if (r.code() != ErrorCode::kCancelled) {
          errored.store(true, std::memory_order_release);
        }
        return;
      }
      slot.value = r.value();
      if (r.value()) {
        if (!group.resolved_true.exchange(true, std::memory_order_acq_rel)) {
          // First certain component: the OR is settled, siblings of this
          // sub-query can stop.
          group.stop.store(true, std::memory_order_release);
        }
      } else if (group.refuted_components.fetch_add(
                     1, std::memory_order_acq_rel) +
                         1 ==
                 group.total_components) {
        // Every component of this sub-query refuted: the AND is false,
        // everything else is moot.
        refuted.store(true, std::memory_order_release);
        stop_everything();
      }
    });
  }
  pool.Start();
  pool.WaitAll(options.poll_every, [&] {
    if (options.budget != nullptr &&
        options.budget->CheckNow().has_value()) {
      stop_everything();
    }
  });

  uint64_t total_steps = 0;
  for (const TaskResult& r : results) total_steps += r.steps;
  report.steps = total_steps;
  report.steals = pool.steals();
  if (options.budget != nullptr) options.budget->ChargeSteps(total_steps);

  // A sound verdict beats any racing resource trip: the work that proved
  // it was already paid for.
  if (refuted.load(std::memory_order_acquire)) {
    report.certain = false;
    return report;
  }
  bool all_true = true;
  for (const std::unique_ptr<GroupState>& g : groups) {
    if (!g->resolved_true.load(std::memory_order_acquire)) {
      all_true = false;
      break;
    }
  }
  if (all_true) {
    report.certain = true;
    return report;
  }

  // No verdict: surface the parent's own trip first (it is what cancelled
  // the stragglers), then the first non-cancellation task error, then
  // cancellation.
  if (options.budget != nullptr) {
    if (std::optional<ErrorCode> code = options.budget->CheckNow()) {
      return R::Error(*code, Budget::Describe(*code));
    }
  }
  if (errored.load(std::memory_order_acquire)) {
    for (const TaskResult& r : results) {
      if (r.error.has_value() && *r.error != ErrorCode::kCancelled) {
        return R::Error(*r.error, r.error_msg);
      }
    }
  }
  for (const TaskResult& r : results) {
    if (r.error.has_value()) return R::Error(*r.error, r.error_msg);
  }
  return R::Error(ErrorCode::kInternal,
                  "parallel solve finished without verdict or error");
}

}  // namespace cqa
