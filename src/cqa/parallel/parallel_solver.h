#ifndef CQA_PARALLEL_PARALLEL_SOLVER_H_
#define CQA_PARALLEL_PARALLEL_SOLVER_H_

#include <chrono>
#include <cstdint>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Knobs for `SolveCertainParallel`.
struct ParallelOptions {
  /// Work-stealing pool width (clamped to at least 1). With width 1 the
  /// decomposition still runs — callers wanting the plain sequential
  /// engine (the byte-for-byte parity baseline) route through
  /// `SolveOptions::parallelism == 1`, which never enters this solver.
  int parallelism = 2;
  /// Engine run per component: `kBacktracking` (default) or `kNaive`.
  /// Everything else is rejected with `kUnsupported` — the FO and
  /// matching engines are polynomial, where forking per component costs
  /// more than it saves.
  SolverMethod method = SolverMethod::kBacktracking;
  /// Parent governor. Deadline, remaining step allowance, and the fault
  /// knobs are snapshotted *by value* into every component task's child
  /// budget before the fan-out (no cross-thread access to the parent);
  /// the waiting thread polls the parent's cancel token and clock every
  /// `poll_every` and flips the component stop tokens on a trip. Summed
  /// child work is folded back via `Budget::ChargeSteps` after the join.
  Budget* budget = nullptr;
  std::chrono::milliseconds poll_every{2};
};

/// Accounting for one parallel solve.
struct ParallelReport {
  /// Exact verdict: q certain in every repair of db.
  bool certain = false;
  /// Variable-connected sub-queries solved (AND-combined).
  int subqueries = 1;
  /// Component tasks spawned across all sub-queries (OR-combined within
  /// each data-decomposable sub-query).
  int components = 0;
  /// Pool tasks executed by a worker that stole them from a sibling.
  uint64_t steals = 0;
  /// Summed solver-native work units across every component task.
  uint64_t steps = 0;
  /// True when decomposition produced more than one task.
  bool decomposed = false;
};

/// Decides CERTAINTY(q, db) by decomposing into independent subproblems
/// (see cqa/parallel/decompose.h for the two levels and their fallbacks)
/// and solving them on a bounded work-stealing pool:
///
///  * within a sub-query, the first component proved certain resolves the
///    sub-query (OR) and cancels its sibling tasks;
///  * a sub-query whose components are all refuted makes the overall
///    answer NOT-CERTAIN (AND) and cancels everything;
///  * all sub-queries certain ⇒ CERTAIN.
///
/// Errors surface only when no sound verdict was reached: a definitive
/// refutation observed before a sibling's budget trip still wins. The
/// verdict always equals the sequential engine's on the same input — the
/// differential suite (tests/parallel_test.cc), the fuzz phase, and the CI
/// trace-replay parity smoke all pin this down.
Result<ParallelReport> SolveCertainParallel(const Query& q,
                                            const Database& db,
                                            const ParallelOptions& options);

}  // namespace cqa

#endif  // CQA_PARALLEL_PARALLEL_SOLVER_H_
