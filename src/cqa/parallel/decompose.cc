#include "cqa/parallel/decompose.h"

#include <map>
#include <utility>

#include "cqa/base/union_find.h"

namespace cqa {

namespace {

// Collects the variable symbols of a disequality (either side may hold
// variables; the rewriting keeps reified variables on the right).
SymbolSet DiseqVars(const Diseq& d) {
  SymbolSet vars;
  for (const Term& t : d.lhs) {
    if (t.is_variable()) vars.Insert(t.var());
  }
  for (const Term& t : d.rhs) {
    if (t.is_variable()) vars.Insert(t.var());
  }
  return vars;
}

// Unions `node` with every node already anchored to one of `vars`,
// anchoring unseen variables to `node`.
void LinkVars(const SymbolSet& vars, int node,
              std::map<Symbol, int>* var_anchor, UnionFind* uf) {
  for (Symbol v : vars.items()) {
    auto [it, inserted] = var_anchor->emplace(v, node);
    if (!inserted) uf->Union(it->second, node);
  }
}

}  // namespace

QuerySplit SplitQueryConnected(const Query& q) {
  QuerySplit out;
  const size_t n_lits = q.NumLiterals();
  const size_t n_dis = q.diseqs().size();
  // Reified variables act as constants a group boundary could silently
  // share; groups would no longer be independent, so don't split.
  if (!q.reified().empty() || n_lits <= 1) {
    out.subqueries.push_back(q);
    return out;
  }

  UnionFind uf(n_lits + n_dis);
  std::map<Symbol, int> var_anchor;
  for (size_t i = 0; i < n_lits; ++i) {
    SymbolSet vars = q.atom(i).Vars();
    // A ground literal shares no variable with anything; keep it in the
    // first group rather than minting a variable-free sub-query.
    if (vars.empty()) {
      uf.Union(0, static_cast<int>(i));
      continue;
    }
    LinkVars(vars, static_cast<int>(i), &var_anchor, &uf);
  }
  for (size_t j = 0; j < n_dis; ++j) {
    const int node = static_cast<int>(n_lits + j);
    SymbolSet vars = DiseqVars(q.diseqs()[j]);
    if (vars.empty()) {
      uf.Union(0, node);
      continue;
    }
    LinkVars(vars, node, &var_anchor, &uf);
  }

  // Bucket literals and diseqs by component, ordered by smallest literal
  // index (std::map over the first literal's index).
  std::map<int, std::pair<std::vector<Literal>, std::vector<Diseq>>> groups;
  std::map<int, int> root_to_first;
  for (size_t i = 0; i < n_lits; ++i) {
    int root = uf.Find(static_cast<int>(i));
    auto [it, inserted] = root_to_first.emplace(root, static_cast<int>(i));
    groups[it->second].first.push_back(q.literal(i));
  }
  for (size_t j = 0; j < n_dis; ++j) {
    int root = uf.Find(static_cast<int>(n_lits + j));
    auto it = root_to_first.find(root);
    if (it == root_to_first.end()) {
      // A disequality whose component holds no literal (cannot happen for
      // a safe query, but fall back rather than drop the constraint).
      out.subqueries.clear();
      out.subqueries.push_back(q);
      return out;
    }
    groups[it->second].second.push_back(q.diseqs()[j]);
  }

  if (groups.size() <= 1) {
    out.subqueries.push_back(q);
    return out;
  }
  for (auto& [first, parts] : groups) {
    Result<Query> sub =
        Query::Make(std::move(parts.first), std::move(parts.second));
    if (!sub.ok()) {
      // Safety of q makes every group safe; if validation still balks,
      // be conservative instead of wrong.
      out.subqueries.clear();
      out.subqueries.push_back(q);
      out.split = false;
      return out;
    }
    out.subqueries.push_back(std::move(sub.value()));
  }
  out.split = true;
  return out;
}

bool DataDecomposable(const Query& q) {
  if (!q.diseqs().empty() || !q.reified().empty()) return false;
  std::vector<size_t> pos = q.PositiveIndices();
  if (pos.empty()) return false;
  for (size_t i = 0; i < q.NumLiterals(); ++i) {
    if (q.atom(i).Vars().empty()) return false;
  }
  // The positive literals must be variable-connected *through positive
  // atoms alone* — one union-find pass over just the positive indices.
  UnionFind uf(pos.size());
  std::map<Symbol, int> var_anchor;
  for (size_t k = 0; k < pos.size(); ++k) {
    LinkVars(q.atom(pos[k]).Vars(), static_cast<int>(k), &var_anchor, &uf);
  }
  return uf.num_components() == 1;
}

std::vector<DataComponent> DecomposeData(const Query& q, const Database& db) {
  const std::vector<Database::Block>& bs = db.blocks();
  const Database::ComponentIndex& ci = db.BlockComponents();

  SymbolSet query_rels;
  SymbolSet positive_rels;
  for (const Literal& lit : q.literals()) {
    query_rels.Insert(lit.atom.relation());
    if (!lit.negated) positive_rels.Insert(lit.atom.relation());
  }

  // Bucket the query-relevant blocks by component. std::map keeps the
  // component-id order, which follows first appearance over the block list.
  struct CompInfo {
    std::vector<int> blocks;
    SymbolSet present_positive;
  };
  std::map<int, CompInfo> comps;
  for (size_t b = 0; b < bs.size(); ++b) {
    if (!query_rels.contains(bs[b].relation)) continue;
    CompInfo& info = comps[ci.component_of_block[b]];
    info.blocks.push_back(static_cast<int>(b));
    if (positive_rels.contains(bs[b].relation)) {
      info.present_positive.Insert(bs[b].relation);
    }
  }

  std::vector<DataComponent> out;
  for (auto& [comp_id, info] : comps) {
    // A component missing any positive relation cannot satisfy q in any of
    // its repairs: it contributes `false` to the OR — skip it.
    if (!positive_rels.IsSubsetOf(info.present_positive)) continue;
    auto sub = std::make_shared<Database>(db.schema());
    size_t facts = 0;
    for (int b : info.blocks) {
      const Database::Block& block = bs[static_cast<size_t>(b)];
      const std::vector<Tuple>& all = db.FactsOf(block.relation);
      for (int fi : block.fact_indices) {
        Result<bool> added =
            sub->AddFact(block.relation, all[static_cast<size_t>(fi)]);
        (void)added;  // schema copied from db: cannot fail
        ++facts;
      }
    }
    // Force the sub-database's block index once, here: the solver tasks
    // share the pointer and must never each pay (or race) a rebuild.
    sub->blocks();
    DataComponent component;
    component.db = std::move(sub);
    component.blocks = info.blocks.size();
    component.facts = facts;
    out.push_back(std::move(component));
  }
  return out;
}

}  // namespace cqa
