#ifndef CQA_ATTACK_ATTACK_GRAPH_H_
#define CQA_ATTACK_ATTACK_GRAPH_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cqa/base/symbol_set.h"
#include "cqa/query/query.h"

namespace cqa {

/// The attack graph of a query in sjfBCQ¬ (Section 4.1, extending [19] to
/// negated atoms). Vertices are the literals of `q` (indices into
/// `q.literals()`); there is an edge F → G iff F attacks some variable of
/// key(G).
///
/// Reified variables of `q` are treated as constants throughout. Disequality
/// constraints correspond to negated all-key atoms (Lemma 6.6) and provably
/// contribute no attacks, so they are ignored here (see
/// attack_graph_test.cc::DiseqAtomsNeverAttack).
class AttackGraph {
 public:
  explicit AttackGraph(const Query& q);

  size_t size() const { return n_; }
  const Query& query() const { return q_; }

  /// F^{⊕,q} of literal `i`.
  const SymbolSet& plus_set(size_t i) const { return plus_[i]; }

  /// {w : F_i ⇝ w} — all variables attacked by literal `i`.
  const SymbolSet& reachable_vars(size_t i) const { return reach_[i]; }

  /// {w : F_i|u ⇝ w} — variables attacked starting from `u ∈ vars(F_i)`.
  /// Empty if `u ∉ vars(F_i)` or `u ∈ F_i^{⊕,q}`.
  SymbolSet ReachFrom(size_t i, Symbol u) const;

  /// F_i ⇝ w.
  bool AttacksVar(size_t i, Symbol w) const { return reach_[i].contains(w); }

  /// F_i ⇝ F_j (i ≠ j; self-attacks are undefined and return false).
  bool Attacks(size_t i, size_t j) const;

  /// All edges (i, j) with F_i ⇝ F_j.
  std::vector<std::pair<size_t, size_t>> Edges() const;

  bool IsAcyclic() const;

  /// Some 2-cycle {F, G} with F ⇝ G ⇝ F, if the graph is cyclic. By
  /// Lemma 4.9, a cyclic attack graph of a weakly-guarded query always has
  /// one; for non-weakly-guarded queries this may be nullopt even if cyclic.
  std::optional<std::pair<size_t, size_t>> FindTwoCycle() const;

  /// Any cycle (sequence of literal indices, first == last), empty if
  /// acyclic.
  std::vector<size_t> FindCycle() const;

  /// Variables attacked by at least one atom. By Corollary 6.9 /
  /// Proposition 7.2, for weakly-guarded queries the reifiable variables are
  /// exactly the unattacked ones.
  SymbolSet AttackedVars() const;

  /// A witness sequence (u_0, ..., u_ℓ = w) for F_i ⇝ w, empty if no attack.
  std::vector<Symbol> Witness(size_t i, Symbol w) const;

  /// Literals whose atom is not all-key and that no atom attacks. The
  /// rewriting algorithm picks from these (nonempty whenever the graph is
  /// acyclic and some atom is not all-key).
  std::vector<size_t> UnattackedNonAllKey() const;

  /// Renders edges as "R -> S, ..." for diagnostics.
  std::string ToString() const;

 private:
  // BFS over the positive co-occurrence graph from `sources`, avoiding
  // `forbidden`; returns every variable reached (sources included if
  // allowed).
  SymbolSet Reach(const SymbolSet& sources, const SymbolSet& forbidden) const;

  Query q_;
  size_t n_;
  std::vector<SymbolSet> plus_;   // F^{⊕,q} per literal
  std::vector<SymbolSet> reach_;  // attacked variables per literal
  // Positive co-occurrence adjacency over non-reified variables.
  std::vector<Symbol> var_list_;
  std::vector<SymbolSet> var_adj_;  // parallel to var_list_
};

}  // namespace cqa

#endif  // CQA_ATTACK_ATTACK_GRAPH_H_
