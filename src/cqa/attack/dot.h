#ifndef CQA_ATTACK_DOT_H_
#define CQA_ATTACK_DOT_H_

#include <string>

#include "cqa/attack/attack_graph.h"

namespace cqa {

/// Renders an attack graph in Graphviz DOT format: one node per literal
/// (negated atoms drawn as boxes), one edge per attack, with 2-cycles
/// highlighted in red. Pipe into `dot -Tsvg` for the paper-style pictures.
std::string AttackGraphToDot(const AttackGraph& graph);

}  // namespace cqa

#endif  // CQA_ATTACK_DOT_H_
