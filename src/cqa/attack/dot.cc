#include "cqa/attack/dot.h"

namespace cqa {

std::string AttackGraphToDot(const AttackGraph& graph) {
  const Query& q = graph.query();
  std::string out = "digraph attack_graph {\n";
  out += "  rankdir=LR;\n";
  for (size_t i = 0; i < q.NumLiterals(); ++i) {
    const Literal& l = q.literal(i);
    out += "  n" + std::to_string(i) + " [label=\"" + l.ToString() + "\"";
    if (l.negated) out += ", shape=box";
    out += "];\n";
  }
  for (const auto& [i, j] : graph.Edges()) {
    bool in_two_cycle = graph.Attacks(j, i);
    out += "  n" + std::to_string(i) + " -> n" + std::to_string(j);
    if (in_two_cycle) out += " [color=red, penwidth=2]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace cqa
