#ifndef CQA_ATTACK_CLASSIFICATION_H_
#define CQA_ATTACK_CLASSIFICATION_H_

#include <optional>
#include <string>
#include <utility>

#include "cqa/query/query.h"

namespace cqa {

/// Complexity classification of CERTAINTY(q) per Theorem 4.3 and Section 7.
enum class CertaintyClass {
  /// Attack graph acyclic and negation weakly guarded: CERTAINTY(q) has a
  /// consistent first-order rewriting.
  kFO,
  /// Not in FO; L-hard (2-cycle with zero negated atoms, Lemma 5.5, or two
  /// negated atoms under weak guardedness, Lemma 5.7).
  kLHard,
  /// Not in FO; NL-hard (2-cycle with exactly one negated atom, Lemma 5.6;
  /// holds without the weak-guardedness hypothesis).
  kNLHard,
  /// Negation is not weakly guarded and no unconditional hardness lemma
  /// applies: Theorem 4.3 does not cover this query (Section 7 shows both
  /// outcomes are possible).
  kUnknown,
};

std::string ToString(CertaintyClass c);

/// Full classification report for a query.
struct Classification {
  CertaintyClass cls = CertaintyClass::kUnknown;
  bool weakly_guarded = false;
  bool guarded = false;
  bool attack_graph_acyclic = false;
  /// A 2-cycle witnessing hardness, if one exists (literal indices).
  std::optional<std::pair<size_t, size_t>> two_cycle;
  /// Number of negated atoms in `two_cycle` (0, 1 or 2).
  int negated_in_cycle = 0;
  std::string explanation;
};

/// Classifies CERTAINTY(q). Runs in polynomial time in |q|.
Classification Classify(const Query& q);

}  // namespace cqa

#endif  // CQA_ATTACK_CLASSIFICATION_H_
