#include "cqa/attack/attack_graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "cqa/fd/fd.h"

namespace cqa {

namespace {

// Index of `v` in `list`, or SIZE_MAX.
size_t IndexOf(const std::vector<Symbol>& list, Symbol v) {
  auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return SIZE_MAX;
  return static_cast<size_t>(it - list.begin());
}

}  // namespace

AttackGraph::AttackGraph(const Query& q) : q_(q), n_(q.NumLiterals()) {
  // Positive co-occurrence graph over non-reified variables.
  SymbolSet all_vars = q_.Vars();
  var_list_ = all_vars.items();
  var_adj_.assign(var_list_.size(), SymbolSet());
  for (const Literal& l : q_.literals()) {
    if (l.negated) continue;
    SymbolSet vs = l.atom.Vars(q_.reified());
    for (Symbol x : vs) {
      size_t xi = IndexOf(var_list_, x);
      assert(xi != SIZE_MAX);
      var_adj_[xi].UnionWith(vs);
    }
  }

  plus_.reserve(n_);
  reach_.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    plus_.push_back(PlusSet(q_, i));
    SymbolSet sources = q_.atom(i).Vars(q_.reified()).Minus(plus_[i]);
    reach_.push_back(Reach(sources, plus_[i]));
  }
}

SymbolSet AttackGraph::Reach(const SymbolSet& sources,
                             const SymbolSet& forbidden) const {
  SymbolSet visited;
  std::deque<Symbol> frontier;
  for (Symbol s : sources) {
    if (!forbidden.contains(s)) {
      visited.Insert(s);
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    Symbol u = frontier.front();
    frontier.pop_front();
    size_t ui = IndexOf(var_list_, u);
    if (ui == SIZE_MAX) continue;
    for (Symbol w : var_adj_[ui]) {
      if (!visited.contains(w) && !forbidden.contains(w)) {
        visited.Insert(w);
        frontier.push_back(w);
      }
    }
  }
  return visited;
}

SymbolSet AttackGraph::ReachFrom(size_t i, Symbol u) const {
  const SymbolSet vars = q_.atom(i).Vars(q_.reified());
  if (!vars.contains(u)) return SymbolSet();
  SymbolSet sources;
  sources.Insert(u);
  return Reach(sources, plus_[i]);
}

bool AttackGraph::Attacks(size_t i, size_t j) const {
  if (i == j) return false;
  return reach_[i].Intersects(q_.atom(j).KeyVars(q_.reified()));
}

std::vector<std::pair<size_t, size_t>> AttackGraph::Edges() const {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      if (Attacks(i, j)) out.emplace_back(i, j);
    }
  }
  return out;
}

bool AttackGraph::IsAcyclic() const { return FindCycle().empty(); }

std::optional<std::pair<size_t, size_t>> AttackGraph::FindTwoCycle() const {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      if (Attacks(i, j) && Attacks(j, i)) return std::make_pair(i, j);
    }
  }
  return std::nullopt;
}

std::vector<size_t> AttackGraph::FindCycle() const {
  // Iterative DFS with colors; returns a cycle as (v, ..., v).
  enum Color { kWhite, kGray, kBlack };
  std::vector<Color> color(n_, kWhite);
  std::vector<size_t> parent(n_, SIZE_MAX);
  for (size_t root = 0; root < n_; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<size_t, size_t>> stack;  // (node, next j)
    stack.emplace_back(root, 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [u, j] = stack.back();
      if (j < n_) {
        size_t v = j++;
        if (v == u || !Attacks(u, v)) continue;
        if (color[v] == kGray) {
          // Found a cycle: walk back from u to v.
          std::vector<size_t> cycle{v};
          size_t w = u;
          while (w != v) {
            cycle.push_back(w);
            w = parent[w];
          }
          cycle.push_back(v);
          std::reverse(cycle.begin() + 1, cycle.end() - 1);
          return cycle;
        }
        if (color[v] == kWhite) {
          color[v] = kGray;
          parent[v] = u;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

SymbolSet AttackGraph::AttackedVars() const {
  SymbolSet out;
  for (size_t i = 0; i < n_; ++i) out.UnionWith(reach_[i]);
  return out;
}

std::vector<Symbol> AttackGraph::Witness(size_t i, Symbol w) const {
  if (!reach_[i].contains(w)) return {};
  // BFS with parents from the allowed source variables of F_i.
  SymbolSet sources = q_.atom(i).Vars(q_.reified()).Minus(plus_[i]);
  std::unordered_map<Symbol, Symbol> parent;
  std::deque<Symbol> frontier;
  for (Symbol s : sources) {
    parent.emplace(s, kNoSymbol);
    frontier.push_back(s);
  }
  while (!frontier.empty()) {
    Symbol u = frontier.front();
    frontier.pop_front();
    if (u == w) {
      std::vector<Symbol> path;
      for (Symbol x = w; x != kNoSymbol; x = parent[x]) path.push_back(x);
      std::reverse(path.begin(), path.end());
      return path;
    }
    size_t ui = IndexOf(var_list_, u);
    if (ui == SIZE_MAX) continue;
    for (Symbol v : var_adj_[ui]) {
      if (plus_[i].contains(v) || parent.count(v)) continue;
      parent.emplace(v, u);
      frontier.push_back(v);
    }
  }
  return {};
}

std::vector<size_t> AttackGraph::UnattackedNonAllKey() const {
  std::vector<size_t> out;
  for (size_t j = 0; j < n_; ++j) {
    if (q_.atom(j).IsAllKey()) continue;
    bool attacked = false;
    for (size_t i = 0; i < n_ && !attacked; ++i) {
      if (Attacks(i, j)) attacked = true;
    }
    if (!attacked) out.push_back(j);
  }
  return out;
}

std::string AttackGraph::ToString() const {
  std::string out;
  for (const auto& [i, j] : Edges()) {
    if (!out.empty()) out += ", ";
    out += q_.atom(i).relation_name() + " -> " + q_.atom(j).relation_name();
  }
  return out.empty() ? "(no attacks)" : out;
}

}  // namespace cqa
