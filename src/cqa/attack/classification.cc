#include "cqa/attack/classification.h"

#include "cqa/attack/attack_graph.h"

namespace cqa {

std::string ToString(CertaintyClass c) {
  switch (c) {
    case CertaintyClass::kFO:
      return "in FO";
    case CertaintyClass::kLHard:
      return "L-hard (not in FO)";
    case CertaintyClass::kNLHard:
      return "NL-hard (not in FO)";
    case CertaintyClass::kUnknown:
      return "unknown (outside Theorem 4.3)";
  }
  return "?";
}

Classification Classify(const Query& q) {
  Classification out;
  out.weakly_guarded = q.IsWeaklyGuarded();
  out.guarded = q.IsGuarded();

  AttackGraph graph(q);
  out.attack_graph_acyclic = graph.IsAcyclic();
  out.two_cycle = graph.FindTwoCycle();
  if (out.two_cycle.has_value()) {
    out.negated_in_cycle =
        static_cast<int>(q.IsNegated(out.two_cycle->first)) +
        static_cast<int>(q.IsNegated(out.two_cycle->second));
  }

  if (out.attack_graph_acyclic) {
    if (out.weakly_guarded) {
      out.cls = CertaintyClass::kFO;
      out.explanation =
          "attack graph acyclic and negation weakly guarded: consistent "
          "first-order rewriting exists (Theorem 4.3(2))";
    } else {
      out.cls = CertaintyClass::kUnknown;
      out.explanation =
          "attack graph acyclic but negation not weakly guarded: acyclicity "
          "is not sufficient for FO membership (Section 7)";
    }
    return out;
  }

  // Cyclic attack graph: scan every 2-cycle and report the strongest
  // hardness bound the paper's lemmas give. A 2-cycle with exactly one
  // negated atom yields NL-hardness (Lemma 5.6) and is preferred over the
  // L-hardness of all-positive (Lemma 5.5) or all-negated (Lemma 5.7)
  // 2-cycles; Lemmas 5.5/5.6 hold without the weak-guardedness hypothesis.
  std::optional<std::pair<size_t, size_t>> best;
  int best_rank = -1;  // 2: NL (mixed); 1: L (positive); 0: L (negated, WG)
  for (size_t i = 0; i < q.NumLiterals(); ++i) {
    for (size_t j = i + 1; j < q.NumLiterals(); ++j) {
      if (!graph.Attacks(i, j) || !graph.Attacks(j, i)) continue;
      int negated =
          static_cast<int>(q.IsNegated(i)) + static_cast<int>(q.IsNegated(j));
      int rank = negated == 1 ? 2
                 : negated == 0 ? 1
                                : (out.weakly_guarded ? 0 : -1);
      if (rank > best_rank) {
        best_rank = rank;
        best = std::make_pair(i, j);
      }
    }
  }
  if (best.has_value()) {
    out.two_cycle = best;
    out.negated_in_cycle = static_cast<int>(q.IsNegated(best->first)) +
                           static_cast<int>(q.IsNegated(best->second));
    if (best_rank == 2) {
      out.cls = CertaintyClass::kNLHard;
      out.explanation =
          "2-cycle with one negated atom: NL-hard by Lemma 5.6 "
          "(holds without weak guardedness)";
    } else if (best_rank == 1) {
      out.cls = CertaintyClass::kLHard;
      out.explanation =
          "2-cycle between non-negated atoms: L-hard by Lemma 5.5 "
          "(holds without weak guardedness)";
    } else {
      out.cls = CertaintyClass::kLHard;
      out.explanation =
          "2-cycle between negated atoms under weak guardedness: L-hard by "
          "Lemma 5.7";
    }
    return out;
  }
  if (out.two_cycle.has_value()) {
    // Only 2-cycles between negated atoms without weak guardedness.
    out.cls = CertaintyClass::kUnknown;
    out.explanation =
        "2-cycle between negated atoms but negation is not weakly guarded: "
        "Lemma 5.7 does not apply (Example 7.1 shows such queries can be in "
        "FO)";
    return out;
  }

  // Cyclic without a 2-cycle: by Lemma 4.9 this cannot happen under weak
  // guardedness.
  out.cls = CertaintyClass::kUnknown;
  out.explanation =
      "cyclic attack graph without a 2-cycle; possible only for "
      "non-weakly-guarded negation (contrapositive of Lemma 4.9)";
  return out;
}

}  // namespace cqa
