#include "cqa/delta/snapshot.h"

#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cqa/base/crc32c.h"
#include "cqa/delta/delta.h"
#include "cqa/serve/net/json.h"

namespace cqa {
namespace {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Result<bool> WriteFully(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Result<bool>::Error(
          ErrorCode::kInternal,
          std::string("snapshot write failed: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Best-effort directory fsync so the rename itself is durable. Failure is
// not fatal: on filesystems where it matters it works, elsewhere (or under
// exotic mounts) the journal's epoch stamps still keep recovery correct.
void FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string BuildPayload(const SnapshotData& data) {
  return JsonObjectBuilder()
      .Set("version", static_cast<uint64_t>(kSnapshotVersion))
      .Set("epoch", data.epoch)
      .Set("fp", data.fingerprint.ToHex())
      .Set("facts", data.facts)
      .Set("delta_ids", EncodeDeltaIdPairs(data.delta_ids))
      .Build()
      .Serialize();
}

Result<SnapshotData> DecodePayload(const std::string& payload) {
  using R = Result<SnapshotData>;
  Result<Json> parsed = Json::Parse(payload);
  if (!parsed.ok() || !parsed->is_object()) {
    return R::Error(ErrorCode::kInternal,
                    "snapshot payload is not a JSON object");
  }
  const Json* version = parsed->Find("version");
  if (version == nullptr || !version->is_number() ||
      version->AsInt() != static_cast<int64_t>(kSnapshotVersion)) {
    return R::Error(ErrorCode::kInternal,
                    "snapshot version missing or unsupported");
  }
  SnapshotData out;
  const Json* epoch = parsed->Find("epoch");
  if (epoch == nullptr || !epoch->is_number() || epoch->AsInt() < 0) {
    return R::Error(ErrorCode::kInternal, "snapshot epoch missing");
  }
  out.epoch = static_cast<uint64_t>(epoch->AsInt());
  const Json* fp = parsed->Find("fp");
  if (fp == nullptr || !fp->is_string() ||
      !DbFingerprint::FromHex(fp->AsString(), &out.fingerprint)) {
    return R::Error(ErrorCode::kInternal, "snapshot fingerprint missing");
  }
  const Json* facts = parsed->Find("facts");
  if (facts == nullptr || !facts->is_string()) {
    return R::Error(ErrorCode::kInternal, "snapshot facts missing");
  }
  out.facts = facts->AsString();
  const Json* ids = parsed->Find("delta_ids");
  if (ids != nullptr) {
    Result<std::vector<std::pair<std::string, uint64_t>>> decoded =
        DecodeDeltaIdPairs(*ids);
    if (!decoded.ok()) return R::Error(decoded);
    out.delta_ids = std::move(decoded.value());
  }
  return out;
}

}  // namespace

Json EncodeDeltaIdPairs(
    const std::vector<std::pair<std::string, uint64_t>>& ids) {
  Json::Array array;
  array.reserve(ids.size());
  for (const auto& [id, epoch] : ids) {
    Json::Array pair;
    pair.push_back(Json::MakeString(id));
    pair.push_back(Json::MakeInt(static_cast<int64_t>(epoch)));
    array.push_back(Json::MakeArray(std::move(pair)));
  }
  return Json::MakeArray(std::move(array));
}

Result<std::vector<std::pair<std::string, uint64_t>>> DecodeDeltaIdPairs(
    const Json& json) {
  using R = Result<std::vector<std::pair<std::string, uint64_t>>>;
  if (!json.is_array()) {
    return R::Error(ErrorCode::kInternal, "delta_ids is not an array");
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(json.AsArray().size());
  for (const Json& entry : json.AsArray()) {
    if (!entry.is_array() || entry.AsArray().size() != 2 ||
        !entry.AsArray()[0].is_string() || !entry.AsArray()[1].is_number() ||
        entry.AsArray()[1].AsInt() < 0) {
      return R::Error(ErrorCode::kInternal, "malformed delta_ids entry");
    }
    const std::string& id = entry.AsArray()[0].AsString();
    if (id.empty() || id.size() > kMaxDeltaIdBytes) {
      return R::Error(ErrorCode::kInternal, "delta_ids id out of bounds");
    }
    out.emplace_back(id,
                     static_cast<uint64_t>(entry.AsArray()[1].AsInt()));
  }
  return out;
}

Result<uint64_t> WriteSnapshotFile(const std::string& path,
                                   const SnapshotData& data,
                                   const SnapshotPolicy& faults) {
  using R = Result<uint64_t>;
  std::string payload = BuildPayload(data);
  std::string file;
  file.reserve(sizeof(kSnapshotMagic) + 8 + payload.size());
  file.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(file, static_cast<uint32_t>(payload.size()));
  PutU32(file, Crc32c(payload));
  file += payload;
  if (file.size() > kMaxSnapshotBytes) {
    return R::Error(ErrorCode::kUnsupported,
                    "snapshot too large: " + std::to_string(file.size()));
  }

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return R::Error(ErrorCode::kInternal,
                    "cannot open snapshot temp '" + tmp +
                        "': " + std::strerror(errno));
  }
  if (faults.tear_temp_write) {
    // Crash drill: the process dies part-way through the temp write. The
    // half-written .tmp must never be mistaken for a snapshot.
    size_t keep = faults.tear_temp_keep_bytes < file.size()
                      ? static_cast<size_t>(faults.tear_temp_keep_bytes)
                      : file.size() - 1;
    Result<bool> w = WriteFully(fd, file.data(), keep);
    ::close(fd);
    (void)w;
    return R::Error(ErrorCode::kInternal,
                    "snapshot fault injection: torn temp write");
  }
  Result<bool> w = WriteFully(fd, file.data(), file.size());
  if (!w.ok()) {
    ::close(fd);
    return R::Error(w);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return R::Error(ErrorCode::kInternal,
                    std::string("snapshot fsync failed: ") +
                        std::strerror(err));
  }
  ::close(fd);
  if (faults.fail_before_rename) {
    // Crash drill: temp complete and durable, rename never happened. The
    // previous snapshot (or none) stays authoritative.
    return R::Error(ErrorCode::kInternal,
                    "snapshot fault injection: died before rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return R::Error(ErrorCode::kInternal,
                    "cannot rename snapshot '" + tmp + "' -> '" + path +
                        "': " + std::strerror(errno));
  }
  FsyncParentDir(path);
  return static_cast<uint64_t>(file.size());
}

Result<SnapshotReadResult> ReadSnapshotFile(const std::string& path) {
  using R = Result<SnapshotReadResult>;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return SnapshotReadResult{};  // no snapshot yet
    return R::Error(ErrorCode::kInternal,
                    "cannot read snapshot '" + path +
                        "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return R::Error(ErrorCode::kInternal,
                      "cannot read snapshot '" + path +
                          "': " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header = sizeof(kSnapshotMagic) + 8;
  if (bytes.size() < header ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return R::Error(ErrorCode::kInternal,
                    "snapshot '" + path + "' is truncated or not a snapshot");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data()) +
                  sizeof(kSnapshotMagic);
  uint32_t len = GetU32(p);
  uint32_t crc = GetU32(p + 4);
  if (bytes.size() != header + len) {
    return R::Error(ErrorCode::kInternal,
                    "snapshot '" + path + "' length mismatch");
  }
  std::string payload = bytes.substr(header);
  if (Crc32c(payload) != crc) {
    return R::Error(ErrorCode::kInternal,
                    "snapshot '" + path + "' failed its checksum");
  }
  Result<SnapshotData> data = DecodePayload(payload);
  if (!data.ok()) {
    return R::Error(data.code(), "snapshot '" + path + "': " + data.error());
  }
  SnapshotReadResult out;
  out.found = true;
  out.file_bytes = static_cast<uint64_t>(bytes.size());
  out.data = std::move(data.value());
  return out;
}

}  // namespace cqa
