#ifndef CQA_DELTA_JOURNAL_H_
#define CQA_DELTA_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/delta/delta.h"

namespace cqa {

/// On-disk format: a journal is a sequence of records, each
///
///   [u32 len][u32 crc32c(payload)][payload bytes]
///
/// with both integers little-endian and the payload a compact JSON object
/// `{"delta_id":"...","epoch":N,"fp":"<32 hex>","ops":[...]}` (`ops` as in
/// `EncodeDeltaOps`; `fp` is the fingerprint the database must have *after*
/// this record applies — the running digest recovery verifies against;
/// `epoch` is the database epoch the record produces, so replay over a
/// snapshot can skip records the snapshot already covers — a journal whose
/// compacting truncate was lost to a crash replays without double-applying).
/// Records written before epochs existed decode with `epoch` 0.
/// A record is valid iff its length is sane, the payload is fully present,
/// the CRC matches, and the payload decodes. Replay stops at the first
/// invalid record: everything before it is the acknowledged prefix,
/// everything from it on is a torn tail from a crash mid-append and is
/// truncated, never applied.

/// Upper bound on one record's payload; larger lengths are treated as
/// corruption (prevents a flipped length byte from demanding a 4 GiB read).
inline constexpr uint32_t kMaxJournalRecordBytes = 16u << 20;

enum class FsyncPolicy {
  kAlways,  // fsync after every append, before the delta is acknowledged
  kNever,   // leave flushing to the OS (test / throwaway journals)
  kGroup,   // append immediately, ack after a shared batched fsync covers
            // the record — one fsync amortised over up to `group_max_batch`
            // concurrent acks (see `WaitDurable`)
};

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;

  // kGroup batching window: the batcher fsyncs once it has either
  // `group_max_batch` unsynced appends or the oldest unsynced append has
  // waited `group_max_delay`. Both bound ack latency; neither affects
  // durability semantics (no ack before a covering fsync, ever).
  std::chrono::milliseconds group_max_delay{5};
  uint64_t group_max_batch = 64;

  // Fault-injection knobs (0 = disabled), for crash drills: counting
  // *successful* prior appends, the next append either fails cleanly
  // without writing (`fail_after_appends`) or writes only the first
  // `tear_keep_bytes` bytes of the record and then fails
  // (`tear_after_appends`) — the on-disk image a kill -9 mid-write leaves.
  // `fail_after_fsyncs` makes every fsync after the Nth successful one
  // fail, for drills of the group batcher's sticky-error path.
  uint64_t fail_after_appends = 0;
  uint64_t tear_after_appends = 0;
  uint64_t tear_keep_bytes = 0;
  uint64_t fail_after_fsyncs = 0;
};

/// Append handle for one database's journal. `Append`/`Reset` are not
/// thread-safe — the owning shard serialises them under its delta lock —
/// but under `FsyncPolicy::kGroup`, `WaitDurable` may be called from many
/// threads concurrently (and concurrently with further appends): that is
/// the whole point of the batcher.
class DeltaJournal {
 public:
  /// Opens (creating if absent) the journal for appending. Existing bytes
  /// are preserved — replay them first via `ReplayJournalFile`, which also
  /// truncates any torn tail so appends continue from a record boundary.
  static Result<std::unique_ptr<DeltaJournal>> Open(std::string path,
                                                   JournalOptions options);

  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Appends one record and (policy permitting) fsyncs it. On any error the
  /// delta MUST NOT be acknowledged or applied — the write-ahead contract
  /// is append-then-publish. Under `kGroup` a successful return means the
  /// bytes were *written*, not yet durable: the caller must not ack until
  /// `WaitDurable(appends())` also succeeds (it may release its delta
  /// lock in between — that is what lets acks batch).
  Result<bool> Append(const FactDelta& delta, const DbFingerprint& fp_after,
                      uint64_t epoch = 0);

  /// Blocks until the `append_seq`-th successful append (an `appends()`
  /// value captured right after the Append, under the same delta lock) is
  /// covered by an fsync, then returns success. Sequence numbers — not byte
  /// offsets — survive compaction: `Reset` truncates the file but never
  /// rewinds the sequence, so a waiter can never be stranded by a
  /// concurrent snapshot. Immediate success under `kAlways` (the append
  /// already synced) and `kNever` (durability is explicitly not promised).
  /// If a batched fsync fails the error is sticky: every waiter past the
  /// last durable sequence gets `kInternal` and the journal accepts no
  /// more appends.
  Result<bool> WaitDurable(uint64_t append_seq);

  /// Barrier: waits until everything appended so far is durable (no-op
  /// outside `kGroup`). The snapshotter calls this before truncating —
  /// compaction must never outrun an ack in flight.
  Result<bool> FlushDurable() { return WaitDurable(appends_.load()); }

  /// Truncates the journal to zero length after a snapshot made its
  /// records redundant (compaction). Caller must hold the delta lock and
  /// must have called `FlushDurable` first.
  Result<bool> Reset();

  uint64_t bytes_written() const { return bytes_written_; }  // file size
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t appends() const { return appends_; }
  /// Bytes guaranteed on stable storage: everything under `kAlways`, the
  /// batcher's high-water mark under `kGroup`, nothing under `kNever`.
  /// Crash drills truncate the file to this offset to simulate the on-disk
  /// image of power loss (kill -9 alone never drops page-cache writes).
  uint64_t durable_bytes() const;
  const std::string& path() const { return path_; }

 private:
  DeltaJournal(std::string path, int fd, uint64_t existing_bytes,
               JournalOptions options);

  void BatcherLoop();
  Result<bool> DoFsync();  // shared by kAlways appends and the batcher

  std::string path_;
  int fd_ = -1;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> appends_{0};
  JournalOptions options_;

  // kGroup state. `sync_mu_` guards the fields below; `batch_cv_` wakes the
  // batcher (new work / shutdown), `sync_cv_` wakes waiters (fsync done /
  // failed). The durable marks are atomic so the accessors need no lock.
  // `durable_seq_` / `appends_` are monotonic across `Reset` (see
  // WaitDurable); `durable_file_bytes_` is a file-offset gauge that resets
  // with the file.
  std::mutex sync_mu_;
  std::condition_variable batch_cv_;
  std::condition_variable sync_cv_;
  std::atomic<uint64_t> durable_seq_{0};
  std::atomic<uint64_t> durable_file_bytes_{0};
  uint64_t pending_appends_ = 0;  // appended since the last fsync
  uint64_t durable_waiters_ = 0;  // threads blocked in WaitDurable
  bool sync_failed_ = false;      // sticky: one failed batch poisons all
  bool stop_ = false;
  std::thread batcher_;
};

/// One replayed record.
struct JournalRecord {
  FactDelta delta;
  DbFingerprint fp_after;
  uint64_t epoch = 0;  // 0 for records written before epochs were stamped
};

struct JournalReplay {
  std::vector<JournalRecord> records;
  uint64_t valid_bytes = 0;    // offset of the first invalid byte, if any
  bool truncated_tail = false; // input had bytes past the valid prefix
};

/// Pure, total decoder: any byte string yields the longest valid record
/// prefix — never crashes, never throws, the journal-bytes fuzz target
/// calls this directly on raw fuzz input.
JournalReplay ParseJournalBytes(std::string_view bytes);

/// Reads and decodes `path`. A missing file is an empty journal, not an
/// error. With `truncate_torn_tail`, a detected torn/corrupt tail is also
/// cut from the file on disk so subsequent appends restart cleanly at the
/// last record boundary.
Result<JournalReplay> ReplayJournalFile(const std::string& path,
                                        bool truncate_torn_tail);

}  // namespace cqa

#endif  // CQA_DELTA_JOURNAL_H_
