#ifndef CQA_DELTA_JOURNAL_H_
#define CQA_DELTA_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/delta/delta.h"

namespace cqa {

/// On-disk format: a journal is a sequence of records, each
///
///   [u32 len][u32 crc32c(payload)][payload bytes]
///
/// with both integers little-endian and the payload a compact JSON object
/// `{"delta_id":"...","fp":"<32 hex>","ops":[...]}` (`ops` as in
/// `EncodeDeltaOps`; `fp` is the fingerprint the database must have *after*
/// this record applies — the running digest recovery verifies against).
/// A record is valid iff its length is sane, the payload is fully present,
/// the CRC matches, and the payload decodes. Replay stops at the first
/// invalid record: everything before it is the acknowledged prefix,
/// everything from it on is a torn tail from a crash mid-append and is
/// truncated, never applied.

/// Upper bound on one record's payload; larger lengths are treated as
/// corruption (prevents a flipped length byte from demanding a 4 GiB read).
inline constexpr uint32_t kMaxJournalRecordBytes = 16u << 20;

enum class FsyncPolicy {
  kAlways,  // fsync after every append, before the delta is acknowledged
  kNever,   // leave flushing to the OS (test / throwaway journals)
};

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;

  // Fault-injection knobs (0 = disabled), for crash drills: counting
  // *successful* prior appends, the next append either fails cleanly
  // without writing (`fail_after_appends`) or writes only the first
  // `tear_keep_bytes` bytes of the record and then fails
  // (`tear_after_appends`) — the on-disk image a kill -9 mid-write leaves.
  uint64_t fail_after_appends = 0;
  uint64_t tear_after_appends = 0;
  uint64_t tear_keep_bytes = 0;
};

/// Append handle for one database's journal. Not thread-safe; the owning
/// shard serialises appends under its delta lock.
class DeltaJournal {
 public:
  /// Opens (creating if absent) the journal for appending. Existing bytes
  /// are preserved — replay them first via `ReplayJournalFile`, which also
  /// truncates any torn tail so appends continue from a record boundary.
  static Result<std::unique_ptr<DeltaJournal>> Open(std::string path,
                                                   JournalOptions options);

  ~DeltaJournal();
  DeltaJournal(const DeltaJournal&) = delete;
  DeltaJournal& operator=(const DeltaJournal&) = delete;

  /// Appends one record and (policy permitting) fsyncs it. On any error the
  /// delta MUST NOT be acknowledged or applied — the write-ahead contract
  /// is append-then-publish.
  Result<bool> Append(const FactDelta& delta, const DbFingerprint& fp_after);

  uint64_t bytes_written() const { return bytes_written_; }  // file size
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t appends() const { return appends_; }
  const std::string& path() const { return path_; }

 private:
  DeltaJournal(std::string path, int fd, uint64_t existing_bytes,
               JournalOptions options)
      : path_(std::move(path)),
        fd_(fd),
        bytes_written_(existing_bytes),
        options_(options) {}

  std::string path_;
  int fd_ = -1;
  uint64_t bytes_written_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t appends_ = 0;
  JournalOptions options_;
};

/// One replayed record.
struct JournalRecord {
  FactDelta delta;
  DbFingerprint fp_after;
};

struct JournalReplay {
  std::vector<JournalRecord> records;
  uint64_t valid_bytes = 0;    // offset of the first invalid byte, if any
  bool truncated_tail = false; // input had bytes past the valid prefix
};

/// Pure, total decoder: any byte string yields the longest valid record
/// prefix — never crashes, never throws, the journal-bytes fuzz target
/// calls this directly on raw fuzz input.
JournalReplay ParseJournalBytes(std::string_view bytes);

/// Reads and decodes `path`. A missing file is an empty journal, not an
/// error. With `truncate_torn_tail`, a detected torn/corrupt tail is also
/// cut from the file on disk so subsequent appends restart cleanly at the
/// last record boundary.
Result<JournalReplay> ReplayJournalFile(const std::string& path,
                                        bool truncate_torn_tail);

}  // namespace cqa

#endif  // CQA_DELTA_JOURNAL_H_
