#include "cqa/delta/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cqa/base/crc32c.h"
#include "cqa/serve/net/json.h"

namespace cqa {
namespace {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

std::string BuildPayload(const FactDelta& delta, const DbFingerprint& fp) {
  return JsonObjectBuilder()
      .Set("delta_id", delta.id)
      .Set("fp", fp.ToHex())
      .Set("ops", EncodeDeltaOps(delta.ops))
      .Build()
      .Serialize();
}

bool ParseFpHex(const std::string& hex, DbFingerprint* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      char c = hex[static_cast<size_t>(p * 16 + i)];
      uint64_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
      words[p] = (words[p] << 4) | nibble;
    }
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

/// Decodes one payload; false on any structural problem (treated by the
/// caller exactly like a CRC mismatch — the record and everything after it
/// is a torn tail).
bool DecodePayload(const std::string& payload, JournalRecord* out) {
  Result<Json> parsed = Json::Parse(payload);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const Json* id = parsed->Find("delta_id");
  if (id == nullptr || !id->is_string() || id->AsString().empty() ||
      id->AsString().size() > kMaxDeltaIdBytes) {
    return false;
  }
  const Json* fp = parsed->Find("fp");
  if (fp == nullptr || !fp->is_string() ||
      !ParseFpHex(fp->AsString(), &out->fp_after)) {
    return false;
  }
  const Json* ops = parsed->Find("ops");
  if (ops == nullptr) return false;
  Result<std::vector<DeltaOp>> decoded = DecodeDeltaOps(*ops);
  if (!decoded.ok()) return false;
  out->delta.id = id->AsString();
  out->delta.ops = std::move(decoded.value());
  return true;
}

Result<bool> WriteFully(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Result<bool>::Error(
          ErrorCode::kInternal,
          std::string("journal write failed: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::Open(
    std::string path, JournalOptions options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Result<std::unique_ptr<DeltaJournal>>::Error(
        ErrorCode::kInternal, "cannot open journal '" + path +
                                  "': " + std::strerror(errno));
  }
  struct stat st;
  uint64_t existing = 0;
  if (::fstat(fd, &st) == 0) existing = static_cast<uint64_t>(st.st_size);
  return std::unique_ptr<DeltaJournal>(
      new DeltaJournal(std::move(path), fd, existing, options));
}

DeltaJournal::~DeltaJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<bool> DeltaJournal::Append(const FactDelta& delta,
                                  const DbFingerprint& fp_after) {
  if (options_.fail_after_appends != 0 &&
      appends_ >= options_.fail_after_appends) {
    return Result<bool>::Error(ErrorCode::kInternal,
                               "journal fault injection: append failed");
  }
  std::string payload = BuildPayload(delta, fp_after);
  if (payload.size() > kMaxJournalRecordBytes) {
    return Result<bool>::Error(
        ErrorCode::kUnsupported,
        "journal record too large: " + std::to_string(payload.size()) +
            " bytes");
  }
  std::string record;
  record.reserve(8 + payload.size());
  PutU32(record, static_cast<uint32_t>(payload.size()));
  PutU32(record, Crc32c(payload));
  record += payload;

  if (options_.tear_after_appends != 0 &&
      appends_ >= options_.tear_after_appends) {
    // Simulated kill -9 mid-write: part of the record reaches disk, then
    // the "process" dies. The caller must treat this as append failure.
    size_t keep = options_.tear_keep_bytes < record.size()
                      ? static_cast<size_t>(options_.tear_keep_bytes)
                      : record.size() - 1;
    Result<bool> w = WriteFully(fd_, record.data(), keep);
    if (w.ok()) bytes_written_ += keep;
    return Result<bool>::Error(ErrorCode::kInternal,
                               "journal fault injection: torn append");
  }

  Result<bool> w = WriteFully(fd_, record.data(), record.size());
  if (!w.ok()) return w;
  bytes_written_ += record.size();
  if (options_.fsync == FsyncPolicy::kAlways) {
    if (::fsync(fd_) != 0) {
      return Result<bool>::Error(
          ErrorCode::kInternal,
          std::string("journal fsync failed: ") + std::strerror(errno));
    }
    ++fsyncs_;
  }
  ++appends_;
  return true;
}

JournalReplay ParseJournalBytes(std::string_view bytes) {
  JournalReplay out;
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t off = 0;
  while (true) {
    if (bytes.size() - off < 8) break;  // no full header left
    uint32_t len = GetU32(base + off);
    uint32_t crc = GetU32(base + off + 4);
    if (len > kMaxJournalRecordBytes) break;
    if (bytes.size() - off - 8 < len) break;  // payload torn
    std::string payload(bytes.substr(off + 8, len));
    if (Crc32c(payload) != crc) break;
    JournalRecord rec;
    if (!DecodePayload(payload, &rec)) break;
    out.records.push_back(std::move(rec));
    off += 8 + len;
  }
  out.valid_bytes = off;
  out.truncated_tail = off < bytes.size();
  return out;
}

Result<JournalReplay> ReplayJournalFile(const std::string& path,
                                        bool truncate_torn_tail) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return JournalReplay{};  // no journal yet
    return Result<JournalReplay>::Error(
        ErrorCode::kInternal,
        "cannot read journal '" + path + "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Result<JournalReplay>::Error(
          ErrorCode::kInternal,
          "cannot read journal '" + path + "': " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  JournalReplay replay = ParseJournalBytes(bytes);
  if (replay.truncated_tail && truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(replay.valid_bytes)) !=
        0) {
      return Result<JournalReplay>::Error(
          ErrorCode::kInternal, "cannot truncate torn journal tail of '" +
                                    path + "': " + std::strerror(errno));
    }
  }
  return replay;
}

}  // namespace cqa
