#include "cqa/delta/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cqa/base/crc32c.h"
#include "cqa/serve/net/json.h"

namespace cqa {
namespace {

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

std::string BuildPayload(const FactDelta& delta, const DbFingerprint& fp,
                         uint64_t epoch) {
  return JsonObjectBuilder()
      .Set("delta_id", delta.id)
      .Set("epoch", epoch)
      .Set("fp", fp.ToHex())
      .Set("ops", EncodeDeltaOps(delta.ops))
      .Build()
      .Serialize();
}

bool ParseFpHex(const std::string& hex, DbFingerprint* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 16; ++i) {
      char c = hex[static_cast<size_t>(p * 16 + i)];
      uint64_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
      words[p] = (words[p] << 4) | nibble;
    }
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

/// Decodes one payload; false on any structural problem (treated by the
/// caller exactly like a CRC mismatch — the record and everything after it
/// is a torn tail).
bool DecodePayload(const std::string& payload, JournalRecord* out) {
  Result<Json> parsed = Json::Parse(payload);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const Json* id = parsed->Find("delta_id");
  if (id == nullptr || !id->is_string() || id->AsString().empty() ||
      id->AsString().size() > kMaxDeltaIdBytes) {
    return false;
  }
  const Json* fp = parsed->Find("fp");
  if (fp == nullptr || !fp->is_string() ||
      !ParseFpHex(fp->AsString(), &out->fp_after)) {
    return false;
  }
  // Pre-epoch journals omit the field; they decode with epoch 0 and replay
  // positionally, exactly as before epochs existed.
  const Json* epoch = parsed->Find("epoch");
  if (epoch != nullptr) {
    if (!epoch->is_number() || epoch->AsInt() < 0) return false;
    out->epoch = static_cast<uint64_t>(epoch->AsInt());
  }
  const Json* ops = parsed->Find("ops");
  if (ops == nullptr) return false;
  Result<std::vector<DeltaOp>> decoded = DecodeDeltaOps(*ops);
  if (!decoded.ok()) return false;
  out->delta.id = id->AsString();
  out->delta.ops = std::move(decoded.value());
  return true;
}

Result<bool> WriteFully(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Result<bool>::Error(
          ErrorCode::kInternal,
          std::string("journal write failed: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

DeltaJournal::DeltaJournal(std::string path, int fd, uint64_t existing_bytes,
                           JournalOptions options)
    : path_(std::move(path)),
      fd_(fd),
      bytes_written_(existing_bytes),
      options_(options) {
  if (options_.fsync == FsyncPolicy::kGroup) {
    // Bytes that survived to be read back at open are on disk by
    // definition; the batcher only owes fsyncs for what *this* process
    // appends.
    durable_file_bytes_.store(existing_bytes);
    batcher_ = std::thread([this] { BatcherLoop(); });
  }
}

Result<std::unique_ptr<DeltaJournal>> DeltaJournal::Open(
    std::string path, JournalOptions options) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Result<std::unique_ptr<DeltaJournal>>::Error(
        ErrorCode::kInternal, "cannot open journal '" + path +
                                  "': " + std::strerror(errno));
  }
  struct stat st;
  uint64_t existing = 0;
  if (::fstat(fd, &st) == 0) existing = static_cast<uint64_t>(st.st_size);
  return std::unique_ptr<DeltaJournal>(
      new DeltaJournal(std::move(path), fd, existing, options));
}

DeltaJournal::~DeltaJournal() {
  if (batcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sync_mu_);
      stop_ = true;
    }
    batch_cv_.notify_all();
    batcher_.join();
  }
  if (fd_ >= 0) ::close(fd_);
}

Result<bool> DeltaJournal::DoFsync() {
  if (options_.fail_after_fsyncs != 0 &&
      fsyncs_.load() >= options_.fail_after_fsyncs) {
    return Result<bool>::Error(ErrorCode::kInternal,
                               "journal fault injection: fsync failed");
  }
  if (::fsync(fd_) != 0) {
    return Result<bool>::Error(
        ErrorCode::kInternal,
        std::string("journal fsync failed: ") + std::strerror(errno));
  }
  ++fsyncs_;
  return true;
}

Result<bool> DeltaJournal::Append(const FactDelta& delta,
                                  const DbFingerprint& fp_after,
                                  uint64_t epoch) {
  if (options_.fail_after_appends != 0 &&
      appends_.load() >= options_.fail_after_appends) {
    return Result<bool>::Error(ErrorCode::kInternal,
                               "journal fault injection: append failed");
  }
  if (options_.fsync == FsyncPolicy::kGroup) {
    std::lock_guard<std::mutex> lock(sync_mu_);
    if (sync_failed_) {
      return Result<bool>::Error(
          ErrorCode::kInternal,
          "journal poisoned: a group fsync failed; no further appends");
    }
  }
  std::string payload = BuildPayload(delta, fp_after, epoch);
  if (payload.size() > kMaxJournalRecordBytes) {
    return Result<bool>::Error(
        ErrorCode::kUnsupported,
        "journal record too large: " + std::to_string(payload.size()) +
            " bytes");
  }
  std::string record;
  record.reserve(8 + payload.size());
  PutU32(record, static_cast<uint32_t>(payload.size()));
  PutU32(record, Crc32c(payload));
  record += payload;

  if (options_.tear_after_appends != 0 &&
      appends_.load() >= options_.tear_after_appends) {
    // Simulated kill -9 mid-write: part of the record reaches disk, then
    // the "process" dies. The caller must treat this as append failure.
    size_t keep = options_.tear_keep_bytes < record.size()
                      ? static_cast<size_t>(options_.tear_keep_bytes)
                      : record.size() - 1;
    Result<bool> w = WriteFully(fd_, record.data(), keep);
    if (w.ok()) bytes_written_ += keep;
    return Result<bool>::Error(ErrorCode::kInternal,
                               "journal fault injection: torn append");
  }

  Result<bool> w = WriteFully(fd_, record.data(), record.size());
  if (!w.ok()) return w;
  bytes_written_ += record.size();
  if (options_.fsync == FsyncPolicy::kAlways) {
    Result<bool> synced = DoFsync();
    if (!synced.ok()) return synced;
    ++appends_;
  } else if (options_.fsync == FsyncPolicy::kGroup) {
    {
      // The sequence bump and the pending count move together under the
      // lock so the batcher's target (`appends_` read under the same lock)
      // always covers every pending record.
      std::lock_guard<std::mutex> lock(sync_mu_);
      ++appends_;
      ++pending_appends_;
    }
    batch_cv_.notify_one();
  } else {
    ++appends_;
  }
  return true;
}

Result<bool> DeltaJournal::WaitDurable(uint64_t append_seq) {
  if (options_.fsync == FsyncPolicy::kAlways ||
      options_.fsync == FsyncPolicy::kNever) {
    // kAlways: the append that produced `append_seq` already synced.
    // kNever: durability is explicitly not promised, waiting is theatre.
    return true;
  }
  std::unique_lock<std::mutex> lock(sync_mu_);
  if (!sync_failed_ && durable_seq_.load() < append_seq) {
    // Register as a waiter and poke the batcher: a registered waiter lets
    // it flush at the next arrival lull instead of sitting out the full
    // batch window (see BatcherLoop).
    ++durable_waiters_;
    batch_cv_.notify_one();
    sync_cv_.wait(lock, [&] {
      return sync_failed_ || durable_seq_.load() >= append_seq;
    });
    --durable_waiters_;
  }
  if (durable_seq_.load() >= append_seq) return true;
  return Result<bool>::Error(ErrorCode::kInternal,
                             "journal group fsync failed; record not durable");
}

Result<bool> DeltaJournal::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Result<bool>::Error(
        ErrorCode::kInternal,
        "cannot reset journal '" + path_ + "': " + std::strerror(errno));
  }
  // Make the truncate itself durable: a crash right after must not
  // resurrect pre-snapshot records *partially* (epoch stamps would still
  // save correctness, but a clean cut keeps recovery trivial).
  if (options_.fsync != FsyncPolicy::kNever) {
    Result<bool> synced = DoFsync();
    if (!synced.ok()) return synced;
  }
  bytes_written_.store(0);
  if (options_.fsync == FsyncPolicy::kGroup) {
    // Byte gauges rewind with the file; `appends_`/`durable_seq_` do NOT —
    // any ack still waiting on a pre-compaction sequence already had its
    // record fsynced (FlushDurable ran), so the monotonic marks stand.
    std::lock_guard<std::mutex> lock(sync_mu_);
    pending_appends_ = 0;
    durable_file_bytes_.store(0);
  }
  return true;
}

uint64_t DeltaJournal::durable_bytes() const {
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      return bytes_written_.load();
    case FsyncPolicy::kNever:
      return 0;
    case FsyncPolicy::kGroup:
      return durable_file_bytes_.load();
  }
  return 0;
}

void DeltaJournal::BatcherLoop() {
  std::unique_lock<std::mutex> lock(sync_mu_);
  while (true) {
    batch_cv_.wait(lock, [&] { return stop_ || pending_appends_ > 0; });
    if (pending_appends_ == 0) {
      if (stop_) return;
      continue;
    }
    if (!stop_) {
      // Batch window: let more appends pile up until the batch is full or
      // the oldest has waited long enough — but once a durability waiter
      // is registered and a wakeup brings no new appends (an arrival
      // lull), flush immediately: waiting longer only delays the ack, it
      // cannot grow the batch. Under a saturated stream appends keep
      // arriving, so batches still fill toward `group_max_batch`; an
      // isolated ack pays one prompt fsync instead of the full window.
      // On shutdown, flush immediately.
      auto deadline =
          std::chrono::steady_clock::now() + options_.group_max_delay;
      uint64_t seen = pending_appends_;
      while (!stop_ && pending_appends_ < options_.group_max_batch) {
        if (batch_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
        if (durable_waiters_ > 0 && pending_appends_ == seen) break;
        seen = pending_appends_;
      }
    }
    const uint64_t target_seq = appends_.load();
    const uint64_t target_bytes = bytes_written_.load();
    pending_appends_ = 0;
    lock.unlock();
    Result<bool> synced = DoFsync();  // ONE fsync covers the whole batch
    lock.lock();
    if (synced.ok()) {
      if (target_seq > durable_seq_.load()) durable_seq_.store(target_seq);
      if (target_bytes > durable_file_bytes_.load()) {
        durable_file_bytes_.store(target_bytes);
      }
    } else {
      sync_failed_ = true;  // sticky: see WaitDurable
    }
    sync_cv_.notify_all();
  }
}

JournalReplay ParseJournalBytes(std::string_view bytes) {
  JournalReplay out;
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t off = 0;
  while (true) {
    if (bytes.size() - off < 8) break;  // no full header left
    uint32_t len = GetU32(base + off);
    uint32_t crc = GetU32(base + off + 4);
    if (len > kMaxJournalRecordBytes) break;
    if (bytes.size() - off - 8 < len) break;  // payload torn
    std::string payload(bytes.substr(off + 8, len));
    if (Crc32c(payload) != crc) break;
    JournalRecord rec;
    if (!DecodePayload(payload, &rec)) break;
    out.records.push_back(std::move(rec));
    off += 8 + len;
  }
  out.valid_bytes = off;
  out.truncated_tail = off < bytes.size();
  return out;
}

Result<JournalReplay> ReplayJournalFile(const std::string& path,
                                        bool truncate_torn_tail) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return JournalReplay{};  // no journal yet
    return Result<JournalReplay>::Error(
        ErrorCode::kInternal,
        "cannot read journal '" + path + "': " + std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Result<JournalReplay>::Error(
          ErrorCode::kInternal,
          "cannot read journal '" + path + "': " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  JournalReplay replay = ParseJournalBytes(bytes);
  if (replay.truncated_tail && truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(replay.valid_bytes)) !=
        0) {
      return Result<JournalReplay>::Error(
          ErrorCode::kInternal, "cannot truncate torn journal tail of '" +
                                    path + "': " + std::strerror(errno));
    }
  }
  return replay;
}

}  // namespace cqa
