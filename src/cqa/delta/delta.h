#ifndef CQA_DELTA_DELTA_H_
#define CQA_DELTA_DELTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/db/database.h"
#include "cqa/serve/net/json.h"

namespace cqa {

/// One mutation: insert or delete a single fact, values by spelling (the
/// wire and journal forms are both text; interning happens at apply time).
struct DeltaOp {
  bool insert = true;
  std::string relation;
  std::vector<std::string> values;
};

/// A batch of mutations applied atomically under one idempotency id. Ops
/// apply in order within the batch (so insert-then-delete of the same fact
/// is a no-op batch, and delete-then-insert reasserts the fact).
struct FactDelta {
  std::string id;
  std::vector<DeltaOp> ops;
};

/// Limits enforced on any delta accepted from the wire or the journal.
inline constexpr size_t kMaxDeltaOps = 100000;
inline constexpr size_t kMaxDeltaIdBytes = 128;

/// Result of applying a delta: the next epoch plus everything the serving
/// layer needs to journal the change and invalidate caches.
struct DeltaApplyOutcome {
  std::shared_ptr<const Database> db;
  uint64_t inserted = 0;  // facts actually added (duplicates don't count)
  uint64_t deleted = 0;   // facts actually removed (absent ones don't count)
  /// Sorted unique names of relations named by any op — the delta's
  /// *footprint*, intersected against cached queries' footprints to decide
  /// which entries must die. Includes relations where every op was a no-op:
  /// a no-op still asserts facts about that relation's content.
  std::vector<std::string> touched;
  DbFingerprint fingerprint;  // of the new epoch
};

/// Validates and applies `delta` to `base`, producing a new immutable epoch.
///
/// Validation is all-or-nothing and happens before any mutation: every op
/// must name a known relation with matching arity, else the whole delta is
/// rejected (`kUnsupported`) and `base` is untouched. `base` itself is never
/// mutated either way — the epoch is a `CloneWithIndexes` copy sharing
/// untouched relations' storage, so cost is O(blocks + delta), and readers
/// holding the old epoch (in-flight solves, forked sandbox children) keep a
/// consistent pre-delta view until their shared_ptr drops.
Result<DeltaApplyOutcome> ApplyDeltaToDatabase(const Database& base,
                                               const FactDelta& delta);

/// Serialises ops as the JSON array both the wire frame and the journal
/// payload embed: `[{"op":"insert","relation":"R","values":["a","b"]},...]`.
Json EncodeDeltaOps(const std::vector<DeltaOp>& ops);

/// Strict inverse of `EncodeDeltaOps`. Structural validation only ("op" is
/// "insert"/"delete", fields present and typed, size caps respected) —
/// schema validation (relation exists, arity) is `ApplyDeltaToDatabase`'s
/// job, because it needs a database. Never crashes on hostile input.
Result<std::vector<DeltaOp>> DecodeDeltaOps(const Json& ops);

}  // namespace cqa

#endif  // CQA_DELTA_DELTA_H_
