#include "cqa/delta/delta.h"

#include <algorithm>
#include <set>
#include <utility>

#include "cqa/base/error.h"
#include "cqa/base/interner.h"

namespace cqa {

Result<DeltaApplyOutcome> ApplyDeltaToDatabase(const Database& base,
                                               const FactDelta& delta) {
  if (delta.ops.size() > kMaxDeltaOps) {
    return Result<DeltaApplyOutcome>::Error(
        ErrorCode::kUnsupported,
        "delta has " + std::to_string(delta.ops.size()) + " ops, max is " +
            std::to_string(kMaxDeltaOps));
  }
  // Validate every op against the schema before touching anything, so a
  // rejected delta leaves no half-applied epoch to roll back.
  const Schema& schema = base.schema();
  for (const DeltaOp& op : delta.ops) {
    Symbol rel = InternSymbol(op.relation);
    if (!schema.Has(rel)) {
      return Result<DeltaApplyOutcome>::Error(
          ErrorCode::kUnsupported, "unknown relation '" + op.relation + "'");
    }
    const RelationSchema& rs = schema.Get(rel);
    if (op.values.size() != static_cast<size_t>(rs.arity)) {
      return Result<DeltaApplyOutcome>::Error(
          ErrorCode::kUnsupported,
          "arity mismatch for '" + op.relation + "': got " +
              std::to_string(op.values.size()) + ", expected " +
              std::to_string(rs.arity));
    }
  }

  DeltaApplyOutcome out;
  std::shared_ptr<Database> next = base.CloneWithIndexes();
  std::set<std::string> touched;
  for (const DeltaOp& op : delta.ops) {
    Symbol rel = InternSymbol(op.relation);
    Tuple values;
    values.reserve(op.values.size());
    for (const std::string& v : op.values) values.push_back(Value::Of(v));
    touched.insert(op.relation);
    if (op.insert) {
      Result<bool> added = next->AddFactIncremental(rel, std::move(values));
      if (!added.ok()) {
        // Unreachable after validation above, but keep the epoch unpublished
        // rather than trusting that invariant forever.
        return Result<DeltaApplyOutcome>::Error(ErrorCode::kInternal,
                                                added.error());
      }
      if (added.value()) ++out.inserted;
    } else {
      if (next->RemoveFactIncremental(rel, values)) ++out.deleted;
    }
  }
  out.touched.assign(touched.begin(), touched.end());
  out.fingerprint = FingerprintDatabase(*next);
  out.db = std::move(next);
  return out;
}

Json EncodeDeltaOps(const std::vector<DeltaOp>& ops) {
  Json::Array arr;
  arr.reserve(ops.size());
  for (const DeltaOp& op : ops) {
    Json::Array values;
    values.reserve(op.values.size());
    for (const std::string& v : op.values) {
      values.push_back(Json::MakeString(v));
    }
    arr.push_back(JsonObjectBuilder()
                      .Set("op", op.insert ? "insert" : "delete")
                      .Set("relation", op.relation)
                      .Set("values", Json::MakeArray(std::move(values)))
                      .Build());
  }
  return Json::MakeArray(std::move(arr));
}

Result<std::vector<DeltaOp>> DecodeDeltaOps(const Json& ops) {
  using Out = Result<std::vector<DeltaOp>>;
  if (!ops.is_array()) {
    return Out::Error(ErrorCode::kParse, "'ops' must be an array");
  }
  if (ops.AsArray().size() > kMaxDeltaOps) {
    return Out::Error(ErrorCode::kParse,
                      "'ops' has " + std::to_string(ops.AsArray().size()) +
                          " entries, max is " + std::to_string(kMaxDeltaOps));
  }
  std::vector<DeltaOp> decoded;
  decoded.reserve(ops.AsArray().size());
  for (const Json& item : ops.AsArray()) {
    if (!item.is_object()) {
      return Out::Error(ErrorCode::kParse, "each op must be an object");
    }
    DeltaOp op;
    const Json* kind = item.Find("op");
    if (kind == nullptr || !kind->is_string()) {
      return Out::Error(ErrorCode::kParse, "op field 'op' must be a string");
    }
    if (kind->AsString() == "insert") {
      op.insert = true;
    } else if (kind->AsString() == "delete") {
      op.insert = false;
    } else {
      return Out::Error(ErrorCode::kParse,
                        "op field 'op' must be 'insert' or 'delete', got '" +
                            kind->AsString() + "'");
    }
    const Json* relation = item.Find("relation");
    if (relation == nullptr || !relation->is_string() ||
        relation->AsString().empty()) {
      return Out::Error(ErrorCode::kParse,
                        "op field 'relation' must be a non-empty string");
    }
    op.relation = relation->AsString();
    const Json* values = item.Find("values");
    if (values == nullptr || !values->is_array()) {
      return Out::Error(ErrorCode::kParse,
                        "op field 'values' must be an array");
    }
    op.values.reserve(values->AsArray().size());
    for (const Json& v : values->AsArray()) {
      if (!v.is_string()) {
        return Out::Error(ErrorCode::kParse, "op values must be strings");
      }
      op.values.push_back(v.AsString());
    }
    decoded.push_back(std::move(op));
  }
  return decoded;
}

}  // namespace cqa
