#ifndef CQA_DELTA_SNAPSHOT_H_
#define CQA_DELTA_SNAPSHOT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"

namespace cqa {

/// Epoch snapshots bound crash recovery: instead of replaying the whole
/// delta journal over the base facts (O(records × touched-relation size) —
/// superlinear in history length), attach loads the last snapshot, verifies
/// its fingerprint, and replays only the journal tail written after it.
///
/// On-disk format (one file per database, `<journal_dir>/<name>.snapshot`):
///
///   [8-byte magic "CQASNAP1"][u32 len][u32 crc32c(payload)][payload]
///
/// integers little-endian, payload a JSON object
///
///   {"version":1,"epoch":N,"fp":"<32 hex>","facts":"<Database::ToText>",
///    "delta_ids":[["id",epoch],...]}
///
/// `fp` is the fingerprint the facts must reproduce (recovery re-derives
/// and verifies it — a snapshot that does not hash to its own stamp is
/// corruption, refused loudly, never served). `delta_ids` persists the
/// idempotency window in insertion order so a restart still re-acks
/// recently applied delta ids with `applied:false` even when the journal
/// records carrying them were compacted away.
///
/// Write protocol: serialise to `<path>.tmp`, fsync, rename over `<path>`,
/// fsync the directory. A crash at ANY point leaves either the old
/// snapshot (plus maybe a stale `.tmp`, overwritten next time) or the new
/// one — never a half-written file that parses. The journal is truncated
/// only AFTER the rename commits; if the truncate is lost to a crash,
/// replay skips records whose epoch the snapshot already covers (records
/// are epoch-stamped for exactly this).
inline constexpr char kSnapshotMagic[8] = {'C', 'Q', 'A', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
/// Same sanity bound as the journal, scaled up: a snapshot holds a whole
/// facts dump, not one delta.
inline constexpr uint64_t kMaxSnapshotBytes = 1ull << 32;

/// When to take a snapshot automatically, plus crash-drill fault knobs.
struct SnapshotPolicy {
  /// Snapshot after this many applied deltas since the last snapshot
  /// (0 = never by count).
  uint64_t every_deltas = 0;
  /// Snapshot once the journal exceeds this many bytes (0 = never by size).
  uint64_t every_journal_bytes = 0;

  // Fault injection for the write/truncate pipeline's stage boundaries
  // (crash-drill matrix; all default off). `tear_temp_write` dies mid-way
  // through the temp file (keeping `tear_temp_keep_bytes` bytes);
  // `fail_before_rename` dies after a complete temp write;
  // `fail_before_truncate` commits the rename but dies before the journal
  // is truncated (the double-apply hazard epoch stamps exist for).
  bool tear_temp_write = false;
  uint64_t tear_temp_keep_bytes = 0;
  bool fail_before_rename = false;
  bool fail_before_truncate = false;
};

/// The logical content of a snapshot file.
struct SnapshotData {
  uint64_t epoch = 0;
  DbFingerprint fingerprint;
  std::string facts;  // Database::ToText() of the epoch's instance
  /// Idempotency window, oldest first: (delta id, epoch it produced).
  std::vector<std::pair<std::string, uint64_t>> delta_ids;
};

/// `found == false` means no snapshot file exists (a fresh database or a
/// pre-snapshot journal directory) — recovery falls back to full replay.
struct SnapshotReadResult {
  bool found = false;
  uint64_t file_bytes = 0;  // encoded size on disk (0 when not found)
  SnapshotData data;
};

/// Atomically (temp + fsync + rename) writes `data` to `path`. On error the
/// previous snapshot at `path`, if any, is untouched. Returns the encoded
/// file size.
Result<uint64_t> WriteSnapshotFile(const std::string& path,
                                   const SnapshotData& data,
                                   const SnapshotPolicy& faults);

/// Reads and verifies `path`. Missing file → `found == false`; a present
/// but corrupt/truncated/mis-versioned file is an error (`kInternal`) — the
/// caller must refuse to serve, not silently fall back over it.
Result<SnapshotReadResult> ReadSnapshotFile(const std::string& path);

// The `[["id",epoch],...]` JSON shape shared by the snapshot payload and
// the replication bootstrap frame (a late-joining follower receives the
// primary's idempotency window so duplicate suppression survives failover).
class Json;
Json EncodeDeltaIdPairs(
    const std::vector<std::pair<std::string, uint64_t>>& ids);
Result<std::vector<std::pair<std::string, uint64_t>>> DecodeDeltaIdPairs(
    const Json& json);

/// Sliding idempotency window over applied delta ids. PR 7 kept every id
/// ever applied (unbounded in a long-running daemon); the window keeps the
/// most recent `capacity` ids in insertion order, evicting the oldest —
/// duplicate detection stays exact for any delta replayed within the last
/// `capacity` applications, which is the retry horizon that matters.
/// Persisted across snapshots (see SnapshotData::delta_ids) and re-seeded
/// from journal replay. Not thread-safe; guarded by the shard's delta lock.
class DeltaIdWindow {
 public:
  static constexpr uint64_t kDefaultCapacity = 4096;

  explicit DeltaIdWindow(uint64_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Epoch the id produced, or nullptr if unknown (never seen or evicted).
  const uint64_t* Find(const std::string& id) const {
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &it->second;
  }

  /// Records `id -> epoch`, evicting the oldest entries past capacity.
  /// Re-inserting a present id refreshes its epoch but not its age.
  void Insert(const std::string& id, uint64_t epoch) {
    auto it = index_.find(id);
    if (it != index_.end()) {
      it->second = epoch;
      return;
    }
    index_.emplace(id, epoch);
    order_.push_back(id);
    while (order_.size() > capacity_) {
      index_.erase(order_.front());
      order_.pop_front();
    }
  }

  /// Oldest-first (id, epoch) pairs, the persistence format.
  std::vector<std::pair<std::string, uint64_t>> Items() const {
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(order_.size());
    for (const std::string& id : order_) {
      auto it = index_.find(id);
      if (it != index_.end()) out.emplace_back(id, it->second);
    }
    return out;
  }

  size_t size() const { return order_.size(); }
  uint64_t capacity() const { return capacity_; }

 private:
  uint64_t capacity_;
  std::deque<std::string> order_;  // insertion order, oldest at front
  std::unordered_map<std::string, uint64_t> index_;
};

}  // namespace cqa

#endif  // CQA_DELTA_SNAPSHOT_H_
