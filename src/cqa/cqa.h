#ifndef CQA_CQA_H_
#define CQA_CQA_H_

/// Umbrella header for the cqa library — consistent query answering for
/// primary keys and self-join-free conjunctive queries with negated atoms
/// (Koutris & Wijsen, PODS 2018).
///
/// Typical flow:
///   1. Parse or build a `Query` and a `Database` (query/, db/).
///   2. `Classify` the query's CERTAINTY problem (attack/).
///   3. If in FO: `RewriteCertain` and evaluate/export the formula (fo/,
///      rewriting/), or interpret with `Algorithm1`.
///   4. Otherwise: decide exactly with `IsCertainBacktracking`, or for
///      q1-shaped queries with `IsCertainQ1ByMatching` (certainty/).
/// The reductions/ directory holds the paper's constructions as runnable
/// code; gen/ provides seeded workloads.

#include "cqa/attack/attack_graph.h"
#include "cqa/attack/classification.h"
#include "cqa/attack/dot.h"
#include "cqa/base/budget.h"
#include "cqa/base/error.h"
#include "cqa/base/interner.h"
#include "cqa/base/result.h"
#include "cqa/base/rng.h"
#include "cqa/base/symbol_set.h"
#include "cqa/base/value.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/cache/query_key.h"
#include "cqa/cache/result_cache.h"
#include "cqa/cache/warm_state.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/certain_answers.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/certainty/sampling.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"
#include "cqa/db/stats.h"
#include "cqa/db/typing.h"
#include "cqa/export/asp.h"
#include "cqa/fd/fd.h"
#include "cqa/fo/algebra.h"
#include "cqa/fo/eval.h"
#include "cqa/fo/fo_parser.h"
#include "cqa/fo/formula.h"
#include "cqa/fo/normal_form.h"
#include "cqa/fo/simplify.h"
#include "cqa/fo/sql.h"
#include "cqa/gen/families.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_formula.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"
#include "cqa/query/query.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/reductions/lemma54.h"
#include "cqa/reductions/lemma66.h"
#include "cqa/reductions/prop72.h"
#include "cqa/reductions/q4.h"
#include "cqa/reductions/theta.h"
#include "cqa/reductions/ufa.h"
#include "cqa/rewriting/algorithm1.h"
#include "cqa/rewriting/rewriter.h"

#endif  // CQA_CQA_H_
