#ifndef CQA_SERVE_NET_DAEMON_H_
#define CQA_SERVE_NET_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cqa/base/net.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/serve/net/connection.h"
#include "cqa/serve/net/daemon_stats.h"
#include "cqa/serve/service.h"

namespace cqa {

struct DaemonOptions {
  /// Listen address; IPv4 dotted quad or "localhost". Port 0 binds an
  /// ephemeral port (reported by `SolveDaemon::port()`).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Hard cap on simultaneously open connections; excess clients get a
  /// fatal `overloaded` error frame and an immediate close.
  size_t max_connections = 256;
  /// Worker pool, queue discipline, timeouts, retries (see service.h).
  ServiceOptions service;
  /// Per-connection fault handling (see connection.h).
  ConnectionOptions connection;
  /// During `Shutdown`, the budget for writers to flush already-queued
  /// response frames after the service itself has drained.
  std::chrono::milliseconds flush_deadline{2'000};
};

/// TCP front-end for `SolveService`: accepts connections, speaks the
/// newline-delimited JSON protocol (protocol.h), and mirrors the service's
/// lifecycle guarantees on the wire — exactly one terminal frame per
/// accepted solve frame, typed error frames for overload and malformed
/// input, cancellation of everything a disconnected client left behind,
/// and graceful drain on shutdown.
class SolveDaemon {
 public:
  /// `db` is the database served to every connection; it must stay
  /// immutable for the daemon's lifetime.
  SolveDaemon(std::shared_ptr<const Database> db, DaemonOptions options);
  ~SolveDaemon();  // Shutdown with a zero drain deadline if still running

  SolveDaemon(const SolveDaemon&) = delete;
  SolveDaemon& operator=(const SolveDaemon&) = delete;

  /// Binds, listens and starts the accept loop. Fails with a typed error
  /// (e.g. address in use) without leaving threads behind.
  Result<bool> Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Graceful shutdown, mirroring `SolveService::Shutdown`:
  ///  1. stop accepting connections and new solve frames (clients get
  ///     typed `overloaded` errors while draining),
  ///  2. let in-flight solves finish within `drain_deadline`, then
  ///     force-cancel the rest (each still gets its terminal frame),
  ///  3. flush connection writers within `flush_deadline`, then close.
  /// Returns true when everything drained without forced cancellation.
  /// Idempotent; concurrent callers serialize.
  bool Shutdown(std::chrono::milliseconds drain_deadline);

  bool draining() const { return draining_.load(); }

  ServiceStats service_stats() const { return service_->Stats(); }
  DaemonStats daemon_stats() const { return stats_.Snapshot(); }

 private:
  void AcceptLoop();
  /// Joins and drops connections whose threads have exited.
  void ReapFinished();

  const std::shared_ptr<const Database> db_;
  const DaemonOptions options_;
  DaemonStatsCollector stats_;
  std::unique_ptr<SolveService> service_;

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  bool drained_result_ = true;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_DAEMON_H_
