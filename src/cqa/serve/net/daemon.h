#ifndef CQA_SERVE_NET_DAEMON_H_
#define CQA_SERVE_NET_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cqa/base/net.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/connection.h"
#include "cqa/serve/net/daemon_stats.h"
#include "cqa/serve/net/replication.h"
#include "cqa/serve/service.h"

namespace cqa {

struct DaemonOptions {
  /// Listen address; IPv4 dotted quad or "localhost". Port 0 binds an
  /// ephemeral port (reported by `SolveDaemon::port()`).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Hard cap on simultaneously open connections; excess clients get a
  /// fatal `overloaded` error frame and an immediate close.
  size_t max_connections = 256;
  /// Per-shard worker pool, queue discipline, timeouts, retries (see
  /// service.h): every attached database gets its own `SolveService`
  /// built from these options.
  ServiceOptions service;
  /// Per-connection fault handling (see connection.h).
  ConnectionOptions connection;
  /// During `Shutdown`, the budget for writers to flush already-queued
  /// response frames after the service itself has drained.
  std::chrono::milliseconds flush_deadline{2'000};
  /// In-flight drain budget of a `detach` admin frame (see
  /// ShardedServiceOptions::detach_drain).
  std::chrono::milliseconds detach_drain{5'000};
  /// When non-empty, enables the per-database write-ahead delta journal at
  /// `<journal_dir>/<name>.journal`: apply_delta frames are durable before
  /// they are acked, and attaching a name replays its existing journal
  /// over the base snapshot (see ShardedServiceOptions::journal_dir).
  std::string journal_dir;
  /// Journal durability knobs (fsync policy; chaos injection in tests).
  JournalOptions journal;
  /// Automatic snapshot/compaction policy (see SnapshotPolicy). The
  /// `admin snapshot` frame works regardless; these knobs only control
  /// when the daemon compacts on its own.
  SnapshotPolicy snapshot;
  /// Per-database sliding idempotency window capacity (see
  /// ShardedServiceOptions::delta_id_window).
  uint64_t delta_id_window = DeltaIdWindow::kDefaultCapacity;
  /// When non-empty, this daemon starts as a warm-standby follower of the
  /// primary at `follow_host:follow_port`: the service is read-only
  /// (writes answered with `kReadOnly`), a replication client streams the
  /// primary's state in, and an `admin promote` frame (or `Promote()`)
  /// flips it into a writable primary.
  std::string follow_host;
  uint16_t follow_port = 0;
  /// Tuning for the follower's replication client; `host`/`port` are
  /// overwritten from `follow_host`/`follow_port`.
  ReplicationClientOptions replication;
};

/// TCP front-end for the sharded solve service: accepts connections,
/// speaks the newline-delimited JSON protocol (protocol.h), routes solve
/// frames to per-database worker shards by their `"db"` field, serves the
/// registry admin frames (`attach`/`detach`/`list`/`apply_delta`), and
/// mirrors the
/// service's lifecycle guarantees on the wire — exactly one terminal frame
/// per accepted solve frame, typed error frames for overload and malformed
/// input, cancellation of everything a disconnected client left behind,
/// and graceful drain of every shard on shutdown.
class SolveDaemon {
 public:
  /// The registry name the single-database constructor attaches its
  /// database under (solve frames without `"db"` reach it as the default).
  static constexpr const char* kDefaultDbName = "default";

  /// Starts with one attached database (named `kDefaultDbName`, the
  /// registry default) — the single-database protocol unchanged. The
  /// database must stay immutable for the daemon's lifetime.
  SolveDaemon(std::shared_ptr<const Database> db, DaemonOptions options);
  /// Starts with an empty registry; call `Attach` (or let clients send
  /// attach frames) to add instances. Solve frames without `"db"` fail
  /// with `kDetached` until a first database is attached.
  explicit SolveDaemon(DaemonOptions options);
  ~SolveDaemon();  // Shutdown with a zero drain deadline if still running

  SolveDaemon(const SolveDaemon&) = delete;
  SolveDaemon& operator=(const SolveDaemon&) = delete;

  /// Binds, listens and starts the accept loop. Fails with a typed error
  /// (e.g. address in use) without leaving threads behind.
  Result<bool> Start();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Graceful shutdown, mirroring `SolveService::Shutdown`:
  ///  1. stop accepting connections and new solve frames (clients get
  ///     typed `overloaded` errors while draining),
  ///  2. let in-flight solves finish within `drain_deadline`, then
  ///     force-cancel the rest (each still gets its terminal frame),
  ///  3. flush connection writers within `flush_deadline`, then close.
  /// Returns true when everything drained without forced cancellation.
  /// Idempotent; concurrent callers serialize.
  bool Shutdown(std::chrono::milliseconds drain_deadline);

  bool draining() const { return draining_.load(); }

  /// Attaches a database from the daemon side (CLI startup flags); the
  /// first attach becomes the registry default.
  Result<DatabaseRegistry::Entry> Attach(const std::string& name,
                                         std::shared_ptr<const Database> db);

  /// Failover: stops the replication client (after this returns, no
  /// further replicated state can arrive) and makes the service writable.
  /// Returns whether the daemon actually was a follower — promoting a
  /// primary is an idempotent no-op. Also behind the `promote` frame.
  Result<bool> Promote();

  /// True while this daemon is a read-only warm standby.
  bool follower() const { return service_->read_only(); }

  /// Cross-shard aggregate (counters summed; latency percentiles are the
  /// worst shard's — exact when one database is attached).
  ServiceStats service_stats() const { return service_->Stats(); }
  /// Per-database accounting, keyed by registry name.
  std::vector<std::pair<std::string, ServiceStats>> stats_per_db() const {
    return service_->StatsPerDb();
  }
  DaemonStats daemon_stats() const {
    DaemonStats s = stats_.Snapshot();
    FoldSandboxCounters(&s, service_->Stats());
    return s;
  }
  const DatabaseRegistry& registry() const { return service_->registry(); }

 private:
  void AcceptLoop();
  /// Joins and drops connections whose threads have exited.
  void ReapFinished();

  const DaemonOptions options_;
  DaemonStatsCollector stats_;
  std::unique_ptr<ShardedSolveService> service_;
  /// `options_.connection` plus the daemon-bound hooks (promote).
  ConnectionOptions conn_options_;

  /// Live only while following; guarded by `promote_mu_` (Promote and
  /// Shutdown race on it).
  std::mutex promote_mu_;
  std::unique_ptr<ReplicationClient> repl_client_;

  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  bool drained_result_ = true;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_DAEMON_H_
