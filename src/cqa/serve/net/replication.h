#ifndef CQA_SERVE_NET_REPLICATION_H_
#define CQA_SERVE_NET_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "cqa/base/net.h"
#include "cqa/base/result.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/daemon_stats.h"

namespace cqa {

struct ReplicationClientOptions {
  /// The primary to follow.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Budget for one TCP connect attempt.
  std::chrono::milliseconds connect_timeout{2'000};
  /// Pause between reconnect attempts (the primary being down is the
  /// normal case a standby exists for — it retries forever until stopped
  /// or promoted).
  std::chrono::milliseconds retry_backoff{500};
  /// Read poll slice; bounds stop latency.
  std::chrono::milliseconds poll_slice{50};
  /// Budget for writing one frame (the replicate request or an ack).
  std::chrono::milliseconds write_timeout{5'000};
  /// Frame cap for the inbound stream. Far larger than the daemon's
  /// request cap: a bootstrap `repl_snapshot` frame carries a whole facts
  /// dump.
  size_t max_frame_bytes = 64u << 20;
};

/// The follower half of warm-standby replication: a background thread that
/// connects to the primary, sends `{"type":"replicate"}`, and applies the
/// pushed stream — `repl_snapshot` bootstraps through
/// `ShardedSolveService::ApplyReplicaSnapshot`, `repl_delta` through
/// `ApplyReplicatedDelta`, `repl_detach` through `Detach` — acking each
/// event with its stream seq. Apply errors (an epoch gap from a dropped
/// frame, a fingerprint divergence) tear the session down and reconnect,
/// which resyncs from a fresh bootstrap; the local `epoch <= ours` skip
/// makes the overlap idempotent. The owning daemon keeps the service
/// read-only while this client runs and stops it on promotion.
class ReplicationClient {
 public:
  ReplicationClient(ShardedSolveService* service, DaemonStatsCollector* stats,
                    ReplicationClientOptions options);
  ~ReplicationClient();  // Stop()

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Spawns the follower thread. Call once.
  void Start();

  /// Signals the thread, wakes any blocked read, joins. Idempotent; after
  /// it returns no further replicated state can be applied — the promote
  /// path relies on exactly that.
  void Stop();

  /// True while the follower believes it has a live session to the
  /// primary (connected and streaming).
  bool connected() const { return connected_.load(std::memory_order_acquire); }

 private:
  void Loop();
  /// One connect → stream → disconnect cycle. Returns when the session
  /// dies or a stop is requested.
  void RunSession();
  Result<bool> SendPayload(const Socket& socket, const std::string& payload);
  /// Applies one decoded stream event; false tears the session down.
  bool ApplyEvent(const ReplicationEvent& event);
  /// Interruptible backoff sleep.
  void SleepBackoff();

  ShardedSolveService* const service_;
  DaemonStatsCollector* const stats_;
  const ReplicationClientOptions options_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  /// The live session's socket fd, for Stop to shutdown(2) from outside
  /// (guarded by the atomicity of the store; the socket object itself is
  /// owned by the session on the follower thread).
  std::atomic<int> session_fd_{-1};
  std::thread thread_;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_REPLICATION_H_
