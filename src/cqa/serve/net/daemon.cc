#include "cqa/serve/net/daemon.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "cqa/serve/net/framing.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {

namespace {

ShardedServiceOptions ShardedOptionsFor(const DaemonOptions& options) {
  ShardedServiceOptions sharded;
  sharded.shard = options.service;
  sharded.detach_drain = options.detach_drain;
  sharded.journal_dir = options.journal_dir;
  sharded.journal = options.journal;
  sharded.snapshot = options.snapshot;
  sharded.delta_id_window = options.delta_id_window;
  return sharded;
}

}  // namespace

SolveDaemon::SolveDaemon(DaemonOptions options)
    : options_(std::move(options)),
      service_(
          std::make_unique<ShardedSolveService>(ShardedOptionsFor(options_))),
      conn_options_(options_.connection) {
  conn_options_.promote_hook = [this] { return Promote(); };
}

SolveDaemon::SolveDaemon(std::shared_ptr<const Database> db,
                         DaemonOptions options)
    : SolveDaemon(std::move(options)) {
  // First attach: this database becomes the registry default, so solve
  // frames without a "db" field keep their single-database semantics.
  Result<DatabaseRegistry::Entry> attached =
      service_->Attach(kDefaultDbName, std::move(db));
  assert(attached.ok());
  (void)attached;
}

Result<DatabaseRegistry::Entry> SolveDaemon::Attach(
    const std::string& name, std::shared_ptr<const Database> db) {
  return service_->Attach(name, std::move(db));
}

SolveDaemon::~SolveDaemon() { Shutdown(std::chrono::milliseconds(0)); }

Result<bool> SolveDaemon::Start() {
  Result<Socket> listener = ListenTcp(options_.host, options_.port, &port_);
  if (!listener.ok()) {
    return Result<bool>::Error(listener.code(), listener.error());
  }
  listener_ = std::move(listener.value());
  if (!options_.follow_host.empty()) {
    // Warm standby: read-only until promoted, with the replication client
    // pulling the primary's stream in the background. Ordered before the
    // accept loop so no client ever sees a writable follower.
    service_->SetReadOnly(true);
    ReplicationClientOptions repl = options_.replication;
    repl.host = options_.follow_host;
    repl.port = options_.follow_port;
    std::lock_guard<std::mutex> lock(promote_mu_);
    repl_client_ = std::make_unique<ReplicationClient>(service_.get(), &stats_,
                                                       std::move(repl));
    repl_client_->Start();
  }
  accepting_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

Result<bool> SolveDaemon::Promote() {
  std::lock_guard<std::mutex> lock(promote_mu_);
  bool was_follower = repl_client_ != nullptr || service_->read_only();
  if (repl_client_) {
    // After Stop returns the follower thread has joined: no replicated
    // state can land after the flip to writable below.
    repl_client_->Stop();
    repl_client_.reset();
  }
  service_->SetReadOnly(false);
  return was_follower;
}

void SolveDaemon::AcceptLoop() {
  while (accepting_.load()) {
    Result<PollStatus> p =
        PollReadable(listener_.fd(), std::chrono::milliseconds(100));
    ReapFinished();
    if (!p.ok()) {
      // The listener died (e.g. shut down during Shutdown); stop accepting.
      break;
    }
    if (*p == PollStatus::kTimeout) continue;
    if (!accepting_.load()) break;
    Result<Socket> accepted = AcceptConnection(listener_);
    if (!accepted.ok()) {
      // Transient (EAGAIN, ECONNABORTED, fd pressure): keep serving the
      // clients we have.
      continue;
    }
    bool at_capacity;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      at_capacity = conns_.size() >= options_.max_connections;
    }
    if (at_capacity) {
      // Best-effort typed rejection; the write is bounded and the socket
      // closes either way.
      std::string frame = EncodeFrame(EncodeErrorFrame(
          std::nullopt, ErrorCode::kOverloaded,
          "connection limit (" + std::to_string(options_.max_connections) +
              ") reached",
          /*fatal=*/true));
      WriteAll(*accepted, frame.data(), frame.size(),
               std::chrono::milliseconds(100));
      continue;  // Socket closes via RAII.
    }
    auto conn = std::make_shared<Connection>(std::move(accepted.value()),
                                             service_.get(), conn_options_,
                                             &stats_);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->Start();
  }
}

void SolveDaemon::ReapFinished() {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto alive_end = std::stable_partition(
        conns_.begin(), conns_.end(),
        [](const std::shared_ptr<Connection>& c) { return !c->finished(); });
    dead.assign(std::make_move_iterator(alive_end),
                std::make_move_iterator(conns_.end()));
    conns_.erase(alive_end, conns_.end());
  }
  // Join outside the lock; both threads have already exited.
  for (auto& c : dead) c->Join();
}

bool SolveDaemon::Shutdown(std::chrono::milliseconds drain_deadline) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return drained_result_;
  shutdown_done_ = true;

  // 0. Stop following: the replication client holds a long-lived client
  // connection and would otherwise race replicated applies into the
  // draining service.
  {
    std::lock_guard<std::mutex> lock(promote_mu_);
    if (repl_client_) {
      repl_client_->Stop();
      repl_client_.reset();
    }
  }

  // 1. Stop accepting new connections. Shutting the listener down wakes
  // the accept loop's poll immediately.
  accepting_.store(false);
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // 2. Existing connections stop admitting solves (new solve frames get a
  // typed `overloaded` error) but keep reading and writing, so clients can
  // still receive in-flight results and issue cancels during the drain.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (auto& c : conns) c->BeginDrain();
  // Published only after every connection rejects new solves, so observers
  // of draining() never race a solve into the closing service.
  draining_.store(true);

  // 3. Drain every shard, concurrently. On return every accepted request
  // has delivered its terminal callback, i.e. every response frame is
  // queued on its connection's writer.
  bool drained = service_ ? service_->Shutdown(drain_deadline) : true;

  // 4. Let writers flush, bounded by the flush deadline, then force-close.
  for (auto& c : conns) c->FinishAfterFlush();
  auto flush_end =
      std::chrono::steady_clock::now() + options_.flush_deadline;
  for (auto& c : conns) {
    while (!c->finished() && std::chrono::steady_clock::now() < flush_end) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    c->ForceClose();
    c->Join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  drained_result_ = drained;
  return drained;
}

}  // namespace cqa
