#include "cqa/serve/net/protocol.h"

#include <algorithm>

namespace cqa {

namespace {

// Reads an optional non-negative integer field; false on type errors.
bool ReadU64(const Json& object, const std::string& key, uint64_t* out,
             std::string* error) {
  const Json* field = object.Find(key);
  if (field == nullptr) return true;
  if (!field->is_int() || field->AsInt() < 0) {
    *error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<uint64_t>(field->AsInt());
  return true;
}

bool ReadBool(const Json& object, const std::string& key, bool* out,
              std::string* error) {
  const Json* field = object.Find(key);
  if (field == nullptr) return true;
  if (!field->is_bool()) {
    *error = "field '" + key + "' must be a boolean";
    return false;
  }
  *out = field->AsBool();
  return true;
}

Result<WireRequest> ParseError(const std::string& message) {
  return Result<WireRequest>::Error(ErrorCode::kParse, message);
}

}  // namespace

Result<SolverMethod> ParseSolverMethod(const std::string& name) {
  if (name.empty() || name == "auto") return SolverMethod::kAuto;
  if (name == "rewriting" || name == "fo-rewriting") {
    return SolverMethod::kRewriting;
  }
  if (name == "algorithm1") return SolverMethod::kAlgorithm1;
  if (name == "backtracking") return SolverMethod::kBacktracking;
  if (name == "naive") return SolverMethod::kNaive;
  if (name == "matching-q1") return SolverMethod::kMatchingQ1;
  if (name == "sampling") return SolverMethod::kSampling;
  return Result<SolverMethod>::Error(ErrorCode::kUnsupported,
                                     "unknown method '" + name + "'");
}

Result<WireRequest> DecodeRequest(const std::string& frame) {
  Result<Json> parsed = Json::Parse(frame);
  if (!parsed.ok()) return Result<WireRequest>::Error(parsed);
  const Json& object = parsed.value();
  if (!object.is_object()) return ParseError("request must be a JSON object");

  const Json* type = object.Find("type");
  if (type == nullptr || !type->is_string()) {
    return ParseError("missing string field 'type'");
  }

  WireRequest request;
  std::string error;
  if (!ReadU64(object, "id", &request.id, &error)) return ParseError(error);

  const std::string& type_name = type->AsString();
  if (type_name == "health") {
    request.type = WireRequestType::kHealth;
    return request;
  }
  if (type_name == "stats") {
    request.type = WireRequestType::kStats;
    return request;
  }
  if (type_name == "cancel") {
    request.type = WireRequestType::kCancel;
    if (object.Find("id") == nullptr) {
      return ParseError("cancel requires an 'id'");
    }
    const Json* target = object.Find("target");
    if (target == nullptr || !target->is_int() || target->AsInt() < 0) {
      return ParseError("cancel requires a non-negative integer 'target'");
    }
    request.target = static_cast<uint64_t>(target->AsInt());
    const Json* db = object.Find("db");
    if (db != nullptr) {
      if (!db->is_string()) return ParseError("field 'db' must be a string");
      request.db = db->AsString();
    }
    return request;
  }
  if (type_name == "list") {
    request.type = WireRequestType::kList;
    return request;
  }
  if (type_name == "snapshot") {
    request.type = WireRequestType::kSnapshot;
    if (object.Find("id") == nullptr) {
      return ParseError("snapshot requires an 'id'");
    }
    const Json* db = object.Find("db");
    if (db != nullptr) {
      if (!db->is_string()) return ParseError("field 'db' must be a string");
      request.db = db->AsString();
    }
    return request;
  }
  if (type_name == "promote") {
    request.type = WireRequestType::kPromote;
    if (object.Find("id") == nullptr) {
      return ParseError("promote requires an 'id'");
    }
    return request;
  }
  if (type_name == "replicate") {
    request.type = WireRequestType::kReplicate;
    if (object.Find("id") == nullptr) {
      return ParseError("replicate requires an 'id'");
    }
    return request;
  }
  if (type_name == "replica_ack") {
    request.type = WireRequestType::kReplicaAck;
    const Json* seq = object.Find("seq");
    if (seq == nullptr || !seq->is_int() || seq->AsInt() < 0) {
      return ParseError("replica_ack requires a non-negative integer 'seq'");
    }
    request.seq = static_cast<uint64_t>(seq->AsInt());
    return request;
  }
  if (type_name == "apply_delta") {
    request.type = WireRequestType::kApplyDelta;
    if (object.Find("id") == nullptr) {
      return ParseError("apply_delta requires an 'id'");
    }
    const Json* db = object.Find("db");
    if (db != nullptr) {
      if (!db->is_string()) return ParseError("field 'db' must be a string");
      request.db = db->AsString();
    }
    const Json* delta_id = object.Find("delta_id");
    if (delta_id == nullptr || !delta_id->is_string() ||
        delta_id->AsString().empty() ||
        delta_id->AsString().size() > kMaxDeltaIdBytes) {
      return ParseError("apply_delta requires a string 'delta_id' of 1-" +
                        std::to_string(kMaxDeltaIdBytes) + " bytes");
    }
    request.delta_id = delta_id->AsString();
    const Json* ops = object.Find("ops");
    if (ops == nullptr) {
      return ParseError("apply_delta requires an 'ops' array");
    }
    Result<std::vector<DeltaOp>> decoded = DecodeDeltaOps(*ops);
    if (!decoded.ok()) return Result<WireRequest>::Error(decoded);
    request.ops = std::move(decoded.value());
    return request;
  }
  if (type_name == "attach" || type_name == "detach") {
    request.type = type_name == "attach" ? WireRequestType::kAttach
                                         : WireRequestType::kDetach;
    if (object.Find("id") == nullptr) {
      return ParseError(type_name + " requires an 'id'");
    }
    const Json* name = object.Find("name");
    if (name == nullptr || !name->is_string()) {
      return ParseError(type_name + " requires a string 'name'");
    }
    request.name = name->AsString();
    if (request.type == WireRequestType::kAttach) {
      const Json* facts = object.Find("facts");
      if (facts == nullptr || !facts->is_string()) {
        return ParseError("attach requires a string 'facts'");
      }
      request.facts = facts->AsString();
    }
    return request;
  }
  if (type_name != "solve" && type_name != "answers") {
    return Result<WireRequest>::Error(
        ErrorCode::kUnsupported, "unknown request type '" + type_name + "'");
  }

  request.type = type_name == "answers" ? WireRequestType::kAnswers
                                        : WireRequestType::kSolve;
  if (object.Find("id") == nullptr) {
    return ParseError(type_name + " requires an 'id'");
  }
  const Json* query = object.Find("query");
  if (query == nullptr || !query->is_string()) {
    return ParseError(type_name + " requires a string 'query'");
  }
  request.query = query->AsString();

  if (request.type == WireRequestType::kAnswers) {
    const Json* free = object.Find("free");
    if (free == nullptr || !free->is_array() || free->AsArray().empty()) {
      return ParseError(
          "answers requires a non-empty 'free' array of variable names");
    }
    for (const Json& name : free->AsArray()) {
      if (!name.is_string() || name.AsString().empty()) {
        return ParseError("'free' entries must be non-empty strings");
      }
      request.free_vars.push_back(name.AsString());
    }
    if (!ReadU64(object, "max_chunk", &request.max_chunk, &error)) {
      return ParseError(error);
    }
    const Json* cursor = object.Find("cursor");
    if (cursor != nullptr) {
      if (!cursor->is_string()) {
        return ParseError("field 'cursor' must be a string");
      }
      request.cursor = cursor->AsString();
    }
  }

  const Json* db = object.Find("db");
  if (db != nullptr) {
    if (!db->is_string()) return ParseError("field 'db' must be a string");
    request.db = db->AsString();
  }

  uint64_t timeout_ms = 0;
  if (object.Find("timeout_ms") != nullptr) {
    if (!ReadU64(object, "timeout_ms", &timeout_ms, &error)) {
      return ParseError(error);
    }
    request.timeout_ms = timeout_ms;
  }
  if (!ReadU64(object, "max_steps", &request.max_steps, &error) ||
      !ReadU64(object, "max_samples", &request.max_samples, &error) ||
      !ReadU64(object, "chaos_sleep_ms", &request.chaos_sleep_ms, &error) ||
      !ReadU64(object, "fail_after_probes", &request.fail_after_probes,
               &error) ||
      !ReadU64(object, "crash_after_probes", &request.crash_after_probes,
               &error) ||
      !ReadU64(object, "hog_mb_per_probe", &request.hog_mb_per_probe,
               &error) ||
      !ReadU64(object, "wedge_after_probes", &request.wedge_after_probes,
               &error) ||
      !ReadU64(object, "parallelism", &request.parallelism, &error) ||
      !ReadBool(object, "degrade_to_sampling", &request.degrade_to_sampling,
                &error) ||
      !ReadBool(object, "deadline_from_submit", &request.deadline_from_submit,
                &error)) {
    return ParseError(error);
  }
  uint64_t fault_attempts = static_cast<uint64_t>(request.fault_attempts);
  if (!ReadU64(object, "fault_attempts", &fault_attempts, &error)) {
    return ParseError(error);
  }
  request.fault_attempts = static_cast<int>(
      std::min<uint64_t>(fault_attempts, INT_MAX));

  const Json* method = object.Find("method");
  if (method != nullptr) {
    if (!method->is_string()) {
      return ParseError("field 'method' must be a string");
    }
    Result<SolverMethod> m = ParseSolverMethod(method->AsString());
    if (!m.ok()) return Result<WireRequest>::Error(m);
    request.method = m.value();
  }

  const Json* isolation = object.Find("isolation");
  if (isolation != nullptr) {
    if (!isolation->is_string()) {
      return ParseError("field 'isolation' must be a string");
    }
    std::optional<IsolationMode> mode =
        ParseIsolationMode(isolation->AsString());
    if (!mode.has_value()) {
      return Result<WireRequest>::Error(
          ErrorCode::kUnsupported,
          "field 'isolation' must be 'auto', 'inproc' or 'fork'");
    }
    request.isolation = *mode;
  }

  const Json* cache = object.Find("cache");
  if (cache != nullptr) {
    if (!cache->is_string()) {
      return ParseError("field 'cache' must be a string");
    }
    const std::string& policy = cache->AsString();
    if (policy == "bypass") {
      request.cache_bypass = true;
    } else if (policy != "default") {
      return ParseError("field 'cache' must be 'default' or 'bypass'");
    }
  }
  return request;
}

void FoldSandboxCounters(DaemonStats* daemon, const ServiceStats& service) {
  daemon->sandbox_forks = service.sandbox_forks;
  daemon->sandbox_kills = service.sandbox_kills;
  daemon->sandbox_crashes = service.sandbox_crashes;
  daemon->sandbox_rss_breaches = service.sandbox_rss_breaches;
  daemon->sandbox_peak_rss_kb = service.sandbox_peak_rss_kb;
}

std::string EncodeResultFrame(uint64_t id, const SolveReport& report,
                              int attempts,
                              std::chrono::microseconds latency) {
  JsonObjectBuilder b;
  b.Set("type", "result")
      .Set("id", id)
      .Set("verdict", ToString(report.verdict))
      .Set("attempts", static_cast<int64_t>(attempts))
      .Set("latency_us", static_cast<uint64_t>(latency.count()));
  if (report.verdict == Verdict::kProbablyCertain) {
    b.Set("confidence", report.confidence).Set("samples", report.samples);
  }
  if (report.components > 0) {
    // Component-parallel accounting, present only when the decomposer ran
    // (keeps sequential result frames byte-identical to the old wire).
    b.Set("parallelism", static_cast<int64_t>(report.parallelism))
        .Set("components", static_cast<int64_t>(report.components))
        .Set("steals", report.steals);
  }
  return b.Build().Serialize();
}

std::string EncodeAnswerChunkFrame(uint64_t id, const AnswerChunk& chunk,
                                   const std::string& cursor) {
  Json::Array vars;
  vars.reserve(chunk.free_vars.size());
  for (const std::string& v : chunk.free_vars) {
    vars.push_back(Json::MakeString(v));
  }
  Json::Array tuples;
  tuples.reserve(chunk.answers.size());
  for (const Tuple& tuple : chunk.answers) {
    Json::Array row;
    row.reserve(tuple.size());
    for (const Value& value : tuple) {
      row.push_back(Json::MakeString(value.name()));
    }
    tuples.push_back(Json::MakeArray(std::move(row)));
  }
  JsonObjectBuilder b;
  b.Set("type", "answer_chunk")
      .Set("id", id)
      .Set("free", Json::MakeArray(std::move(vars)))
      .Set("tuples", Json::MakeArray(std::move(tuples)))
      .Set("start", chunk.start)
      .Set("next", chunk.next)
      .Set("total", chunk.total);
  if (chunk.exhausted) b.Set("exhausted", true);
  if (!cursor.empty()) b.Set("cursor", cursor);
  return b.Build().Serialize();
}

std::string EncodeAnswerDoneFrame(uint64_t id, uint64_t answers,
                                  uint64_t candidates, uint64_t chunks,
                                  std::chrono::microseconds latency) {
  return JsonObjectBuilder()
      .Set("type", "answer_done")
      .Set("id", id)
      .Set("answers", answers)
      .Set("candidates", candidates)
      .Set("chunks", chunks)
      .Set("latency_us", static_cast<uint64_t>(latency.count()))
      .Build()
      .Serialize();
}

std::string EncodeErrorFrame(std::optional<uint64_t> id, ErrorCode code,
                             const std::string& message, bool fatal) {
  JsonObjectBuilder b;
  b.Set("type", "error").Set("code", ToString(code)).Set("message", message);
  if (id.has_value()) b.Set("id", *id);
  if (fatal) b.Set("fatal", true);
  return b.Build().Serialize();
}

std::string EncodeCancelledFrame(uint64_t id, const std::string& message) {
  return JsonObjectBuilder()
      .Set("type", "cancelled")
      .Set("id", id)
      .Set("message", message)
      .Build()
      .Serialize();
}

std::string EncodeHealthFrame(uint64_t id, bool draining, bool follower) {
  return JsonObjectBuilder()
      .Set("type", "health")
      .Set("id", id)
      .Set("status", draining ? "draining" : "serving")
      .Set("role", follower ? "follower" : "primary")
      .Build()
      .Serialize();
}

namespace {

Json ServiceStatsJson(const ServiceStats& service) {
  return JsonObjectBuilder()
      .Set("submitted", service.submitted)
      .Set("accepted", service.accepted)
      .Set("shed", service.shed)
      .Set("completed", service.completed)
      .Set("failed", service.failed)
      .Set("cancelled", service.cancelled)
      .Set("retries", service.retries)
      .Set("degraded", service.degraded)
      .Set("inflight", service.inflight)
      .Set("cache_hits", service.cache_hits)
      .Set("cache_misses", service.cache_misses)
      .Set("cache_coalesced", service.cache_coalesced)
      .Set("cache_bypass", service.cache_bypass)
      .Set("cache_entries", service.cache_entries)
      .Set("cache_evictions", service.cache_evictions)
      .Set("cache_invalidated", service.cache_invalidated)
      .Set("cache_rekeyed", service.cache_rekeyed)
      .Set("epoch", service.epoch)
      .Set("deltas_applied", service.deltas_applied)
      .Set("journal_bytes", service.journal_bytes)
      .Set("journal_fsyncs", service.journal_fsyncs)
      .Set("snapshots_taken", service.snapshots_taken)
      .Set("snapshots_failed", service.snapshots_failed)
      .Set("snapshot_bytes", service.snapshot_bytes)
      .Set("snapshot_epoch", service.snapshot_epoch)
      .Set("sandbox_forks", service.sandbox_forks)
      .Set("sandbox_kills", service.sandbox_kills)
      .Set("sandbox_crashes", service.sandbox_crashes)
      .Set("sandbox_rss_breaches", service.sandbox_rss_breaches)
      .Set("sandbox_peak_rss_kb", service.sandbox_peak_rss_kb)
      .Set("parallel_solves", service.parallel_solves)
      .Set("components_found", service.components_found)
      .Set("parallel_steals", service.parallel_steals)
      .Set("answer_chunks", service.answer_chunks)
      .Set("answer_tuples", service.answer_tuples)
      .Set("answers_stale_cursors", service.answers_stale_cursors)
      .Set("latency_count", service.latency_count)
      .Set("latency_p50_us", service.latency_p50_us)
      .Set("latency_p90_us", service.latency_p90_us)
      .Set("latency_p99_us", service.latency_p99_us)
      .Set("latency_max_us", service.latency_max_us)
      .Build();
}

Json DbEntryJson(const WireDbEntry& entry) {
  return JsonObjectBuilder()
      .Set("name", entry.name)
      .Set("fingerprint", entry.fingerprint)
      .Set("facts", entry.facts)
      .Set("blocks", entry.blocks)
      .Set("default", entry.is_default)
      .Build();
}

}  // namespace

std::string EncodeStatsFrame(
    uint64_t id, const ServiceStats& service, const DaemonStats& daemon,
    const std::vector<std::pair<std::string, ServiceStats>>& per_db) {
  Json daemon_json =
      JsonObjectBuilder()
          .Set("connections_opened", daemon.connections_opened)
          .Set("connections_active", daemon.connections_active)
          .Set("connections_closed_garbage", daemon.connections_closed_garbage)
          .Set("connections_closed_oversize",
               daemon.connections_closed_oversize)
          .Set("connections_closed_idle", daemon.connections_closed_idle)
          .Set("connections_closed_error", daemon.connections_closed_error)
          .Set("frames_received", daemon.frames_received)
          .Set("frames_garbage", daemon.frames_garbage)
          .Set("solves_admitted", daemon.solves_admitted)
          .Set("solves_rejected_inflight_cap",
               daemon.solves_rejected_inflight_cap)
          .Set("solves_rejected_overloaded",
               daemon.solves_rejected_overloaded)
          .Set("answers_streams", daemon.answers_streams)
          .Set("answers_resumed", daemon.answers_resumed)
          .Set("answer_chunks_sent", daemon.answer_chunks_sent)
          .Set("answer_tuples_sent", daemon.answer_tuples_sent)
          .Set("answers_stale_cursors", daemon.answers_stale_cursors)
          .Set("databases_attached", daemon.databases_attached)
          .Set("databases_detached", daemon.databases_detached)
          .Set("solves_rejected_detached", daemon.solves_rejected_detached)
          .Set("deltas_applied", daemon.deltas_applied)
          .Set("deltas_rejected", daemon.deltas_rejected)
          .Set("repl_streams_opened", daemon.repl_streams_opened)
          .Set("repl_streams_closed", daemon.repl_streams_closed)
          .Set("repl_events_sent", daemon.repl_events_sent)
          .Set("repl_acks_received", daemon.repl_acks_received)
          .Set("repl_lag", daemon.repl_lag)
          .Set("follower_connects", daemon.follower_connects)
          .Set("follower_disconnects", daemon.follower_disconnects)
          .Set("follower_snapshots_applied",
               daemon.follower_snapshots_applied)
          .Set("follower_deltas_applied", daemon.follower_deltas_applied)
          .Set("follower_apply_errors", daemon.follower_apply_errors)
          .Set("sandbox_forks", daemon.sandbox_forks)
          .Set("sandbox_kills", daemon.sandbox_kills)
          .Set("sandbox_crashes", daemon.sandbox_crashes)
          .Set("sandbox_rss_breaches", daemon.sandbox_rss_breaches)
          .Set("sandbox_peak_rss_kb", daemon.sandbox_peak_rss_kb)
          .Build();
  JsonObjectBuilder frame;
  frame.Set("type", "stats")
      .Set("id", id)
      .Set("service", ServiceStatsJson(service))
      .Set("daemon", std::move(daemon_json));
  if (!per_db.empty()) {
    // Per-instance breakdown, keyed by registry name: each shard owns its
    // cache, so an operator reads cold instances straight off this map.
    JsonObjectBuilder databases;
    for (const auto& [name, stats] : per_db) {
      databases.Set(name, ServiceStatsJson(stats));
    }
    frame.Set("databases", databases.Build());
  }
  return frame.Build().Serialize();
}

std::string EncodeAttachAckFrame(uint64_t id, const WireDbEntry& entry) {
  return JsonObjectBuilder()
      .Set("type", "attach_ack")
      .Set("id", id)
      .Set("name", entry.name)
      .Set("fingerprint", entry.fingerprint)
      .Set("facts", entry.facts)
      .Set("blocks", entry.blocks)
      .Set("default", entry.is_default)
      .Build()
      .Serialize();
}

std::string EncodeDetachAckFrame(uint64_t id, const std::string& name,
                                 uint64_t shed, bool drained) {
  return JsonObjectBuilder()
      .Set("type", "detach_ack")
      .Set("id", id)
      .Set("name", name)
      .Set("shed", shed)
      .Set("drained", drained)
      .Build()
      .Serialize();
}

std::string EncodeDbListFrame(uint64_t id,
                              const std::vector<WireDbEntry>& entries) {
  Json::Array list;
  list.reserve(entries.size());
  std::string default_name;
  for (const WireDbEntry& entry : entries) {
    if (entry.is_default) default_name = entry.name;
    list.push_back(DbEntryJson(entry));
  }
  return JsonObjectBuilder()
      .Set("type", "db_list")
      .Set("id", id)
      .Set("default", default_name)
      .Set("databases", Json::MakeArray(std::move(list)))
      .Build()
      .Serialize();
}

std::string EncodeDeltaAckFrame(uint64_t id, const DeltaOutcome& outcome) {
  return JsonObjectBuilder()
      .Set("type", "delta_ack")
      .Set("id", id)
      .Set("db", outcome.name)
      .Set("delta_id", outcome.delta_id)
      .Set("applied", outcome.applied)
      .Set("epoch", outcome.epoch)
      .Set("fingerprint", outcome.fingerprint.ToHex())
      .Set("inserted", outcome.inserted)
      .Set("deleted", outcome.deleted)
      .Set("cache_invalidated", outcome.cache_invalidated)
      .Set("cache_rekeyed", outcome.cache_rekeyed)
      .Build()
      .Serialize();
}

std::string EncodeSnapshotAckFrame(uint64_t id,
                                   const SnapshotOutcome& outcome) {
  return JsonObjectBuilder()
      .Set("type", "snapshot_ack")
      .Set("id", id)
      .Set("db", outcome.name)
      .Set("epoch", outcome.epoch)
      .Set("fingerprint", outcome.fingerprint.ToHex())
      .Set("snapshot_bytes", outcome.snapshot_bytes)
      .Set("journal_bytes_before", outcome.journal_bytes_before)
      .Set("journal_bytes_after", outcome.journal_bytes_after)
      .Build()
      .Serialize();
}

std::string EncodePromoteAckFrame(uint64_t id, bool was_follower) {
  return JsonObjectBuilder()
      .Set("type", "promote_ack")
      .Set("id", id)
      .Set("was_follower", was_follower)
      .Set("role", "primary")
      .Build()
      .Serialize();
}

std::string EncodeReplicationEventFrame(uint64_t seq,
                                        const ReplicationEvent& event) {
  JsonObjectBuilder b;
  switch (event.kind) {
    case ReplicationEvent::Kind::kAttach:
      b.Set("type", "repl_snapshot")
          .Set("seq", seq)
          .Set("db", event.db)
          .Set("epoch", event.epoch)
          .Set("fingerprint", event.fingerprint.ToHex())
          .Set("facts", event.facts)
          .Set("delta_ids", EncodeDeltaIdPairs(event.delta_ids));
      break;
    case ReplicationEvent::Kind::kDelta:
      b.Set("type", "repl_delta")
          .Set("seq", seq)
          .Set("db", event.db)
          .Set("epoch", event.epoch)
          .Set("fingerprint", event.fingerprint.ToHex())
          .Set("delta_id", event.delta.id)
          .Set("ops", EncodeDeltaOps(event.delta.ops));
      break;
    case ReplicationEvent::Kind::kDetach:
      b.Set("type", "repl_detach").Set("seq", seq).Set("db", event.db);
      break;
  }
  return b.Build().Serialize();
}

Result<ReplFrame> DecodeReplicationFrame(const std::string& frame) {
  using R = Result<ReplFrame>;
  Result<Json> parsed = Json::Parse(frame);
  if (!parsed.ok()) return R::Error(parsed);
  const Json& object = parsed.value();
  if (!object.is_object()) {
    return R::Error(ErrorCode::kParse,
                    "replication frame must be a JSON object");
  }
  const Json* type = object.Find("type");
  if (type == nullptr || !type->is_string()) {
    return R::Error(ErrorCode::kParse,
                    "replication frame missing string 'type'");
  }
  const std::string& type_name = type->AsString();
  ReplFrame out;
  if (type_name == "repl_snapshot") {
    out.event.kind = ReplicationEvent::Kind::kAttach;
  } else if (type_name == "repl_delta") {
    out.event.kind = ReplicationEvent::Kind::kDelta;
  } else if (type_name == "repl_detach") {
    out.event.kind = ReplicationEvent::Kind::kDetach;
  } else {
    return R::Error(ErrorCode::kUnsupported,
                    "not a replication frame: '" + type_name + "'");
  }
  const Json* seq = object.Find("seq");
  if (seq == nullptr || !seq->is_int() || seq->AsInt() < 0) {
    return R::Error(ErrorCode::kParse,
                    "replication frame missing integer 'seq'");
  }
  out.seq = static_cast<uint64_t>(seq->AsInt());
  const Json* db = object.Find("db");
  if (db == nullptr || !db->is_string() || db->AsString().empty()) {
    return R::Error(ErrorCode::kParse,
                    "replication frame missing string 'db'");
  }
  out.event.db = db->AsString();
  if (out.event.kind == ReplicationEvent::Kind::kDetach) return out;

  const Json* epoch = object.Find("epoch");
  if (epoch == nullptr || !epoch->is_int() || epoch->AsInt() < 0) {
    return R::Error(ErrorCode::kParse,
                    "replication frame missing integer 'epoch'");
  }
  out.event.epoch = static_cast<uint64_t>(epoch->AsInt());
  const Json* fp = object.Find("fingerprint");
  if (fp == nullptr || !fp->is_string() ||
      !DbFingerprint::FromHex(fp->AsString(), &out.event.fingerprint)) {
    return R::Error(ErrorCode::kParse,
                    "replication frame missing 32-hex 'fingerprint'");
  }
  if (out.event.kind == ReplicationEvent::Kind::kAttach) {
    const Json* facts = object.Find("facts");
    if (facts == nullptr || !facts->is_string()) {
      return R::Error(ErrorCode::kParse,
                      "repl_snapshot missing string 'facts'");
    }
    out.event.facts = facts->AsString();
    const Json* ids = object.Find("delta_ids");
    if (ids != nullptr) {
      Result<std::vector<std::pair<std::string, uint64_t>>> decoded =
          DecodeDeltaIdPairs(*ids);
      if (!decoded.ok()) return R::Error(decoded);
      out.event.delta_ids = std::move(decoded.value());
    }
    return out;
  }
  const Json* delta_id = object.Find("delta_id");
  if (delta_id == nullptr || !delta_id->is_string() ||
      delta_id->AsString().empty() ||
      delta_id->AsString().size() > kMaxDeltaIdBytes) {
    return R::Error(ErrorCode::kParse,
                    "repl_delta missing a valid 'delta_id'");
  }
  out.event.delta.id = delta_id->AsString();
  const Json* ops = object.Find("ops");
  if (ops == nullptr) {
    return R::Error(ErrorCode::kParse, "repl_delta missing 'ops'");
  }
  Result<std::vector<DeltaOp>> decoded = DecodeDeltaOps(*ops);
  if (!decoded.ok()) return R::Error(decoded);
  out.event.delta.ops = std::move(decoded.value());
  return out;
}

std::string EncodeCancelAckFrame(uint64_t id, uint64_t target, bool found) {
  return JsonObjectBuilder()
      .Set("type", "cancel_ack")
      .Set("id", id)
      .Set("target", target)
      .Set("found", found)
      .Build()
      .Serialize();
}

Result<WireResponse> DecodeResponse(const std::string& frame) {
  Result<Json> parsed = Json::Parse(frame);
  if (!parsed.ok()) return Result<WireResponse>::Error(parsed);
  const Json& object = parsed.value();
  if (!object.is_object()) {
    return Result<WireResponse>::Error(ErrorCode::kParse,
                                       "response must be a JSON object");
  }
  const Json* type = object.Find("type");
  if (type == nullptr || !type->is_string()) {
    return Result<WireResponse>::Error(ErrorCode::kParse,
                                       "response missing string 'type'");
  }
  WireResponse r;
  r.type = type->AsString();
  r.raw = object;
  auto u64 = [&object](const char* key, uint64_t fallback) -> uint64_t {
    const Json* f = object.Find(key);
    if (f != nullptr && f->is_int() && f->AsInt() >= 0) {
      return static_cast<uint64_t>(f->AsInt());
    }
    return fallback;
  };
  auto str = [&object](const char* key) -> std::string {
    const Json* f = object.Find(key);
    return f != nullptr && f->is_string() ? f->AsString() : std::string();
  };
  r.id = u64("id", 0);
  r.verdict = str("verdict");
  r.code = str("code");
  r.message = str("message");
  r.status = str("status");
  r.samples = u64("samples", 0);
  r.attempts = static_cast<int64_t>(u64("attempts", 0));
  r.latency_us = u64("latency_us", 0);
  r.target = u64("target", 0);
  r.cursor = str("cursor");
  r.start = u64("start", 0);
  r.next = u64("next", 0);
  r.total = u64("total", 0);
  r.answers = u64("answers", 0);
  r.chunks = u64("chunks", 0);
  const Json* tuples = object.Find("tuples");
  if (tuples != nullptr && tuples->is_array()) {
    for (const Json& row : tuples->AsArray()) {
      if (!row.is_array()) {
        return Result<WireResponse>::Error(
            ErrorCode::kParse, "'tuples' entries must be arrays");
      }
      std::vector<std::string> out_row;
      out_row.reserve(row.AsArray().size());
      for (const Json& value : row.AsArray()) {
        if (!value.is_string()) {
          return Result<WireResponse>::Error(
              ErrorCode::kParse, "tuple values must be strings");
        }
        out_row.push_back(value.AsString());
      }
      r.tuples.push_back(std::move(out_row));
    }
  }
  const Json* confidence = object.Find("confidence");
  if (confidence != nullptr && confidence->is_number()) {
    r.confidence = confidence->AsDouble();
  }
  const Json* fatal = object.Find("fatal");
  r.fatal = fatal != nullptr && fatal->is_bool() && fatal->AsBool();
  const Json* found = object.Find("found");
  r.found = found != nullptr && found->is_bool() && found->AsBool();
  return r;
}

}  // namespace cqa
