#ifndef CQA_SERVE_NET_PROTOCOL_H_
#define CQA_SERVE_NET_PROTOCOL_H_

#include <chrono>
#include <climits>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cqa/answers/answer_chunk.h"
#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/certainty/solver.h"
#include "cqa/delta/delta.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/sandbox/sandbox.h"
#include "cqa/serve/stats.h"

namespace cqa {

/// Wire protocol of the solve daemon (see docs/SERVING.md for the spec).
/// One JSON object per newline-delimited frame, in both directions.
///
/// Requests: {"type":"solve","id":N,"query":"...",...}, plus "health",
/// "stats" and "cancel", and the registry admin frames "attach", "detach",
/// "list" and "apply_delta". Responses echo the client-chosen id; every
/// accepted solve receives exactly one terminal frame ("result", "error"
/// or "cancelled").

enum class WireRequestType {
  kSolve,
  kAnswers,
  kHealth,
  kStats,
  kCancel,
  kAttach,
  kDetach,
  kList,
  kApplyDelta,
  kSnapshot,
  kPromote,
  kReplicate,
  kReplicaAck,
};

struct WireRequest {
  WireRequestType type = WireRequestType::kHealth;
  /// Client-chosen correlation id; required for solve, cancel, attach and
  /// detach.
  uint64_t id = 0;

  // --- solve fields ---
  std::string query;
  /// Registry name of the database to solve against; empty (the field
  /// absent) routes to the daemon's default instance — the pre-registry
  /// protocol unchanged.
  std::string db;
  /// Per-request wall-clock budget; absent inherits the daemon default.
  std::optional<uint64_t> timeout_ms;
  uint64_t max_steps = UINT64_MAX;
  SolverMethod method = SolverMethod::kAuto;
  bool degrade_to_sampling = true;
  uint64_t max_samples = 10'000;
  /// Anchor the deadline at submit time (queue wait consumes the budget);
  /// pairs with the service's earliest-deadline-first queueing.
  bool deadline_from_submit = false;
  /// "cache":"bypass" skips both the result-cache lookup and the store for
  /// this solve; "default" (or absent) uses the daemon's cache policy.
  bool cache_bypass = false;
  /// "isolation":"inproc"|"fork" pins where this solve runs; "auto" (or
  /// the field absent) defers to the daemon's isolation policy, which may
  /// escalate coNP-risk queries to a fork sandbox. See docs/SERVING.md.
  IsolationMode isolation = IsolationMode::kAuto;
  /// "parallelism": pool width for component-decomposed solving of this
  /// request; 0 (or absent) inherits the daemon's `--parallelism`, 1
  /// forces the sequential path. The service clamps the effective value.
  uint64_t parallelism = 0;
  // Chaos knobs (tests): see ServeJob.
  uint64_t chaos_sleep_ms = 0;
  uint64_t fail_after_probes = 0;
  int fault_attempts = INT_MAX;
  uint64_t crash_after_probes = 0;
  uint64_t hog_mb_per_probe = 0;
  uint64_t wedge_after_probes = 0;

  // --- answers fields ---
  /// Free variables of the answer query, in output-tuple order (required,
  /// non-empty, for "answers" frames).
  std::vector<std::string> free_vars;
  /// "max_chunk": answers per answer_chunk frame; 0 (or absent) takes the
  /// daemon default. The daemon clamps hostile values.
  uint64_t max_chunk = 0;
  /// "cursor": opaque resume cursor from a previous answer_chunk frame;
  /// empty starts the stream at position zero.
  std::string cursor;

  // --- cancel fields ---
  /// The id of the in-flight solve to cancel.
  uint64_t target = 0;

  // --- attach / detach fields ---
  /// Registry name to attach or detach (see DatabaseRegistry::ValidName).
  std::string name;
  /// Inline fact text in the `ParseFacts` grammar; the attached database
  /// is built from it (the daemon never reads files on behalf of clients).
  std::string facts;

  // --- apply_delta fields ---
  /// Client-chosen idempotency token (1-128 bytes): retrying the same
  /// delta after a lost ack is safe — the daemon acknowledges without
  /// re-applying. Routed by `db` like solve frames (empty ⇒ default).
  std::string delta_id;
  std::vector<DeltaOp> ops;

  // --- replica_ack fields ---
  /// Stream sequence number of the replication event being acknowledged
  /// (cumulative: acking N acks everything up to N).
  uint64_t seq = 0;
};

/// Parses `--method=`-style names shared by the CLI and the wire protocol.
Result<SolverMethod> ParseSolverMethod(const std::string& name);

/// Decodes one request frame. Failures are typed: `kParse` for malformed
/// JSON or missing/mistyped fields, `kUnsupported` for an unknown request
/// type or solver method. Either way the *frame* failed, not the
/// connection — the daemon answers with an error frame and keeps reading
/// (up to its consecutive-garbage limit).
Result<WireRequest> DecodeRequest(const std::string& frame);

/// Daemon-level counters, exposed through "stats" frames next to the
/// embedded `ServiceStats`.
struct DaemonStats {
  uint64_t connections_opened = 0;
  uint64_t connections_active = 0;
  uint64_t connections_closed_garbage = 0;   // N consecutive bad frames
  uint64_t connections_closed_oversize = 0;  // frame exceeded the cap
  uint64_t connections_closed_idle = 0;      // idle / read-deadline timeout
  uint64_t connections_closed_error = 0;     // write timeout or socket error
  uint64_t frames_received = 0;
  uint64_t frames_garbage = 0;
  uint64_t solves_admitted = 0;
  uint64_t solves_rejected_inflight_cap = 0;
  uint64_t solves_rejected_overloaded = 0;  // service queue shed or draining
  // Answer-stream accounting. `answers_streams` counts streams opened
  // (resumed ones included; `answers_resumed` is the sub-count that
  // started from a client-supplied cursor); chunks/tuples count
  // answer_chunk frames actually enqueued to clients; stale counts
  // streams refused or ended with a stale-cursor error.
  uint64_t answers_streams = 0;
  uint64_t answers_resumed = 0;
  uint64_t answer_chunks_sent = 0;
  uint64_t answer_tuples_sent = 0;
  uint64_t answers_stale_cursors = 0;
  // Registry admin accounting.
  uint64_t databases_attached = 0;
  uint64_t databases_detached = 0;
  uint64_t solves_rejected_detached = 0;  // unknown or detaching "db"
  // Live-update accounting: applied counts acked mutations (idempotent
  // replays of an already-applied delta id included — the ack is the
  // contract), rejected counts validation/journal failures.
  uint64_t deltas_applied = 0;
  uint64_t deltas_rejected = 0;
  // Replication accounting, primary side: one "stream" per `replicate`
  // frame accepted. `repl_lag` is a gauge — events sent minus cumulative
  // acks received across live streams, refreshed on every ack (approximate
  // across stream restarts; exact for a single steady follower).
  uint64_t repl_streams_opened = 0;
  uint64_t repl_streams_closed = 0;
  uint64_t repl_events_sent = 0;
  uint64_t repl_acks_received = 0;
  uint64_t repl_lag = 0;
  // Replication accounting, follower side (all zero on a primary).
  uint64_t follower_connects = 0;
  uint64_t follower_disconnects = 0;
  uint64_t follower_snapshots_applied = 0;
  uint64_t follower_deltas_applied = 0;
  uint64_t follower_apply_errors = 0;
  // Sandbox accounting, folded from the service layer at snapshot time
  // (see FoldSandboxCounters and the ServiceStats field docs).
  uint64_t sandbox_forks = 0;
  uint64_t sandbox_kills = 0;
  uint64_t sandbox_crashes = 0;
  uint64_t sandbox_rss_breaches = 0;
  uint64_t sandbox_peak_rss_kb = 0;
};

/// Copies the sandbox counters of a service snapshot into the daemon
/// counters (they are owned by the service layer but read as daemon-level
/// operational signals, so stats frames surface them in both places).
void FoldSandboxCounters(DaemonStats* daemon, const ServiceStats& service);

/// One attached instance as reported by db_list frames and attach acks.
struct WireDbEntry {
  std::string name;
  std::string fingerprint;  // 32 hex chars (DbFingerprint::ToHex)
  uint64_t facts = 0;
  uint64_t blocks = 0;
  bool is_default = false;
};

// --- response encoders (daemon side) ---

std::string EncodeResultFrame(uint64_t id, const SolveReport& report,
                              int attempts, std::chrono::microseconds latency);
/// One chunk of an answer stream: the tuples (array of arrays of value
/// names, in canonical order), the chunk's span ([start, next) of total
/// flat positions) and, when the stream has more to read, the opaque
/// resume `cursor`. Not a terminal frame.
std::string EncodeAnswerChunkFrame(uint64_t id, const AnswerChunk& chunk,
                                   const std::string& cursor);
/// The stream's terminal: totals over every chunk delivered on this
/// stream. Exactly one of answer_done / error / cancelled ends a stream.
std::string EncodeAnswerDoneFrame(uint64_t id, uint64_t answers,
                                  uint64_t candidates, uint64_t chunks,
                                  std::chrono::microseconds latency);
std::string EncodeErrorFrame(std::optional<uint64_t> id, ErrorCode code,
                             const std::string& message, bool fatal = false);
std::string EncodeCancelledFrame(uint64_t id, const std::string& message);
/// `follower` reports the daemon's role ("role":"follower" vs "primary") so
/// health probes can tell a warm standby from a writable primary.
std::string EncodeHealthFrame(uint64_t id, bool draining,
                              bool follower = false);
/// `per_db` breaks the service counters out per attached database (keyed
/// by registry name) under a "databases" object, so operators can see
/// which instance is cold; `service` stays the cross-shard aggregate.
std::string EncodeStatsFrame(
    uint64_t id, const ServiceStats& service, const DaemonStats& daemon,
    const std::vector<std::pair<std::string, ServiceStats>>& per_db = {});
std::string EncodeCancelAckFrame(uint64_t id, uint64_t target, bool found);
std::string EncodeAttachAckFrame(uint64_t id, const WireDbEntry& entry);
std::string EncodeDetachAckFrame(uint64_t id, const std::string& name,
                                 uint64_t shed, bool drained);
std::string EncodeDbListFrame(uint64_t id,
                              const std::vector<WireDbEntry>& entries);
/// Ack for an accepted apply_delta (rejections use error frames). Carries
/// the post-delta epoch and fingerprint so clients can chain optimistic
/// checks; `applied:false` flags an idempotent replay.
std::string EncodeDeltaAckFrame(uint64_t id, const DeltaOutcome& outcome);
/// Ack for `admin snapshot`: the epoch captured and the journal bytes the
/// compaction reclaimed.
std::string EncodeSnapshotAckFrame(uint64_t id,
                                   const SnapshotOutcome& outcome);
/// Ack for `admin promote`; `was_follower` is false when the daemon was
/// already writable (promote is idempotent).
std::string EncodePromoteAckFrame(uint64_t id, bool was_follower);

// --- replication stream frames (primary -> follower) ---
//
// A follower opens a normal client connection and sends
// {"type":"replicate","id":N}; from then on the primary pushes one frame
// per replication event, each carrying a connection-scoped monotonically
// increasing "seq" the follower acknowledges with
// {"type":"replica_ack","seq":N} (cumulative). Frame types: "repl_snapshot"
// (the kAttach bootstrap: full facts + epoch + fingerprint + idempotency
// window), "repl_delta" (one delta with its post-apply epoch/fingerprint)
// and "repl_detach".

/// Encodes `event` as its stream frame. `seq` is the stream sequence.
std::string EncodeReplicationEventFrame(uint64_t seq,
                                        const ReplicationEvent& event);

/// A decoded replication stream frame (follower side).
struct ReplFrame {
  uint64_t seq = 0;
  ReplicationEvent event;
};

/// Decodes one "repl_*" frame; `kParse` on anything malformed and
/// `kUnsupported` for a non-replication frame type.
Result<ReplFrame> DecodeReplicationFrame(const std::string& frame);

// --- response decoding (client side) ---

struct WireResponse {
  std::string type;  // "result" | "error" | "cancelled" | "health" |
                     // "stats" | "cancel_ack"
  uint64_t id = 0;
  // result
  std::string verdict;
  double confidence = 0.0;
  uint64_t samples = 0;
  int64_t attempts = 0;
  uint64_t latency_us = 0;
  // error
  std::string code;
  std::string message;
  bool fatal = false;
  // health
  std::string status;
  // cancel_ack
  uint64_t target = 0;
  bool found = false;
  // answer_chunk / answer_done
  std::vector<std::vector<std::string>> tuples;
  std::string cursor;    // empty on the stream's last chunk
  uint64_t start = 0;    // first flat position of this chunk
  uint64_t next = 0;     // resume position (== start of the next chunk)
  uint64_t total = 0;    // flat candidate-space size
  uint64_t answers = 0;  // answer_done: tuples across the whole stream
  uint64_t chunks = 0;   // answer_done: chunk frames delivered
  /// The full parsed payload (stats frames are read through this).
  Json raw;
};

Result<WireResponse> DecodeResponse(const std::string& frame);

/// True iff the response type is a terminal answer to a solve or answers
/// request ("answer_chunk" is deliberately absent: chunks are mid-stream).
inline bool IsTerminalResponseType(const std::string& type) {
  return type == "result" || type == "error" || type == "cancelled" ||
         type == "answer_done";
}

}  // namespace cqa

#endif  // CQA_SERVE_NET_PROTOCOL_H_
