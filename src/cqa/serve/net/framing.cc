#include "cqa/serve/net/framing.h"

#include <algorithm>
#include <cstring>

namespace cqa {

bool FrameDecoder::Feed(const char* data, size_t size,
                        std::vector<std::string>* frames) {
  if (overflowed_) return false;
  size_t pos = 0;
  while (pos < size) {
    const char* nl = static_cast<const char*>(
        std::memchr(data + pos, '\n', size - pos));
    if (nl == nullptr) {
      // No terminator in this chunk: buffer the tail, watching the cap.
      if (buffer_.size() + (size - pos) > max_frame_bytes_) {
        overflowed_ = true;
        buffer_.clear();
        return false;
      }
      buffer_.append(data + pos, size - pos);
      return true;
    }
    size_t chunk = static_cast<size_t>(nl - (data + pos));
    if (buffer_.size() + chunk > max_frame_bytes_) {
      overflowed_ = true;
      buffer_.clear();
      return false;
    }
    buffer_.append(data + pos, chunk);
    pos += chunk + 1;  // skip '\n'
    if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
    if (!buffer_.empty()) frames->push_back(std::move(buffer_));
    buffer_.clear();
  }
  return true;
}

std::string EncodeFrame(const std::string& payload) {
  std::string frame = payload;
  std::replace(frame.begin(), frame.end(), '\n', ' ');
  frame.push_back('\n');
  return frame;
}

}  // namespace cqa
