#include "cqa/serve/net/client.h"

#include <sys/socket.h>

#include <utility>
#include <vector>

namespace cqa {

Result<bool> NetClient::Connect(const std::string& host, uint16_t port,
                                std::chrono::milliseconds timeout) {
  Result<Socket> s = ConnectTcp(host, port, timeout);
  if (!s.ok()) return Result<bool>::Error(s.code(), s.error());
  socket_ = std::move(s.value());
  return true;
}

void NetClient::CloseWriteHalf() {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

Result<bool> NetClient::SendFrame(const std::string& payload,
                                  std::chrono::milliseconds timeout) {
  return SendRaw(EncodeFrame(payload), timeout);
}

Result<bool> NetClient::SendRaw(const std::string& bytes,
                                std::chrono::milliseconds timeout) {
  if (!socket_.valid()) {
    return Result<bool>::Error(ErrorCode::kInternal, "not connected");
  }
  Result<size_t> w = WriteAll(socket_, bytes.data(), bytes.size(), timeout);
  if (!w.ok()) return Result<bool>::Error(w.code(), w.error());
  return true;
}

Result<WireResponse> NetClient::ReadResponse(
    std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  char buf[4096];
  std::vector<std::string> frames;
  while (pending_frames_.empty()) {
    if (!socket_.valid()) {
      return Result<WireResponse>::Error(ErrorCode::kInternal,
                                         "not connected");
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Result<WireResponse>::Error(ErrorCode::kDeadlineExceeded,
                                         "no frame before the deadline");
    }
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    Result<size_t> r = ReadSome(socket_, buf, sizeof(buf), left);
    if (!r.ok()) return Result<WireResponse>::Error(r.code(), r.error());
    if (*r == 0) {
      return Result<WireResponse>::Error(ErrorCode::kInternal,
                                         "connection closed");
    }
    frames.clear();
    if (!decoder_.Feed(buf, *r, &frames)) {
      return Result<WireResponse>::Error(ErrorCode::kParse,
                                         "oversized response frame");
    }
    for (std::string& f : frames) pending_frames_.push_back(std::move(f));
  }
  std::string frame = std::move(pending_frames_.front());
  pending_frames_.pop_front();
  return DecodeResponse(frame);
}

Result<WireResponse> NetClient::WaitTerminal(
    uint64_t id, std::chrono::milliseconds timeout) {
  for (auto it = stashed_terminals_.begin(); it != stashed_terminals_.end();
       ++it) {
    if (it->id == id) {
      WireResponse resp = std::move(*it);
      stashed_terminals_.erase(it);
      return resp;
    }
  }
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Result<WireResponse>::Error(ErrorCode::kDeadlineExceeded,
                                         "no terminal frame for id " +
                                             std::to_string(id));
    }
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    Result<WireResponse> resp = ReadResponse(left);
    if (!resp.ok()) return resp;
    if (!IsTerminalResponseType(resp->type)) continue;
    if (resp->id == id) return resp;
    stashed_terminals_.push_back(std::move(*resp));
  }
}

}  // namespace cqa
