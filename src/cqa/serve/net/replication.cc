#include "cqa/serve/net/replication.h"

#include <sys/socket.h>

#include <utility>
#include <vector>

#include "cqa/serve/net/framing.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {

ReplicationClient::ReplicationClient(ShardedSolveService* service,
                                     DaemonStatsCollector* stats,
                                     ReplicationClientOptions options)
    : service_(service), stats_(stats), options_(std::move(options)) {}

ReplicationClient::~ReplicationClient() { Stop(); }

void ReplicationClient::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void ReplicationClient::Stop() {
  stop_.store(true, std::memory_order_release);
  // Wake a read blocked inside the live session, if any. The fd is only
  // shut down, never closed, from here — the session thread owns the
  // close, so the descriptor cannot be recycled under it.
  int fd = session_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

void ReplicationClient::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    RunSession();
    if (stop_.load(std::memory_order_acquire)) break;
    SleepBackoff();
  }
}

void ReplicationClient::SleepBackoff() {
  // Sliced so a Stop during the primary's downtime returns promptly.
  auto deadline = std::chrono::steady_clock::now() + options_.retry_backoff;
  while (!stop_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Result<bool> ReplicationClient::SendPayload(const Socket& socket,
                                            const std::string& payload) {
  std::string frame = EncodeFrame(payload);
  Result<size_t> w =
      WriteAll(socket, frame.data(), frame.size(), options_.write_timeout);
  if (!w.ok()) return Result<bool>::Error(w);
  return true;
}

bool ReplicationClient::ApplyEvent(const ReplicationEvent& event) {
  switch (event.kind) {
    case ReplicationEvent::Kind::kAttach: {
      Result<bool> applied = service_->ApplyReplicaSnapshot(
          event.db, event.facts, event.epoch, event.fingerprint,
          event.delta_ids);
      if (!applied.ok()) {
        stats_->OnFollowerApplyError();
        return false;
      }
      stats_->OnFollowerSnapshotApplied();
      return true;
    }
    case ReplicationEvent::Kind::kDelta: {
      Result<DeltaOutcome> applied = service_->ApplyReplicatedDelta(
          event.db, event.delta, event.epoch, event.fingerprint);
      if (!applied.ok()) {
        // Epoch gap or fingerprint divergence: the stream is torn; tear
        // the session down and resync from a fresh bootstrap.
        stats_->OnFollowerApplyError();
        return false;
      }
      stats_->OnFollowerDeltaApplied();
      return true;
    }
    case ReplicationEvent::Kind::kDetach: {
      // Idempotent: the database may never have reached us, or a resync
      // already dropped it.
      Result<DetachOutcome> detached = service_->Detach(event.db);
      (void)detached;
      return true;
    }
  }
  return true;
}

void ReplicationClient::RunSession() {
  Result<Socket> connected =
      ConnectTcp(options_.host, options_.port, options_.connect_timeout);
  if (!connected.ok()) return;
  Socket socket = std::move(connected.value());
  session_fd_.store(socket.fd(), std::memory_order_release);
  if (stop_.load(std::memory_order_acquire)) {
    session_fd_.store(-1, std::memory_order_release);
    return;
  }

  Result<bool> sent = SendPayload(socket, JsonObjectBuilder()
                                              .Set("type", "replicate")
                                              .Set("id", uint64_t{1})
                                              .Build()
                                              .Serialize());
  if (!sent.ok()) {
    session_fd_.store(-1, std::memory_order_release);
    return;
  }
  stats_->OnFollowerConnect();
  connected_.store(true, std::memory_order_release);

  FrameDecoder decoder(options_.max_frame_bytes);
  std::vector<std::string> frames;
  char buf[1 << 16];
  bool session_ok = true;
  while (session_ok && !stop_.load(std::memory_order_acquire)) {
    Result<size_t> r =
        ReadSome(socket, buf, sizeof(buf), options_.poll_slice);
    if (!r.ok()) {
      if (r.code() == ErrorCode::kDeadlineExceeded) continue;  // poll slice
      break;  // socket error
    }
    if (*r == 0) break;  // primary hung up (crash, drain, detach of us)
    frames.clear();
    if (!decoder.Feed(buf, *r, &frames)) break;  // oversized frame
    for (const std::string& frame : frames) {
      Result<ReplFrame> decoded = DecodeReplicationFrame(frame);
      if (!decoded.ok()) {
        // Non-replication chatter (an error frame for the replicate
        // request, say) is skipped; actual garbage tears the session.
        if (decoded.code() == ErrorCode::kUnsupported) continue;
        session_ok = false;
        break;
      }
      if (!ApplyEvent(decoded->event)) {
        session_ok = false;
        break;
      }
      Result<bool> acked =
          SendPayload(socket, JsonObjectBuilder()
                                  .Set("type", "replica_ack")
                                  .Set("seq", decoded->seq)
                                  .Build()
                                  .Serialize());
      if (!acked.ok()) {
        session_ok = false;
        break;
      }
    }
  }
  connected_.store(false, std::memory_order_release);
  session_fd_.store(-1, std::memory_order_release);
  stats_->OnFollowerDisconnect();
}

}  // namespace cqa
