#ifndef CQA_SERVE_NET_CONNECTION_H_
#define CQA_SERVE_NET_CONNECTION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "cqa/base/net.h"
#include "cqa/registry/sharded_service.h"
#include "cqa/serve/net/framing.h"
#include "cqa/serve/net/protocol.h"
#include "cqa/serve/service.h"

namespace cqa {

/// Fault-handling knobs of one daemon connection. Every limit exists to
/// keep a single misbehaving client from wedging the daemon: slowloris
/// writers hit the partial-frame read deadline, silent clients the idle
/// timeout, stalled readers the write deadline, and floods the per-
/// connection in-flight cap.
struct ConnectionOptions {
  /// Hard cap on one frame; exceeding it is unrecoverable (the stream can
  /// no longer be resynchronized) and closes the connection.
  size_t max_frame_bytes = 1 << 20;
  /// Consecutive undecodable frames tolerated before the connection is
  /// closed as hostile. A single garbage frame only fails that frame.
  int max_consecutive_garbage = 3;
  /// Cap on solve requests in flight per connection; beyond it new solves
  /// are answered with a typed `overloaded` error frame.
  size_t max_inflight = 16;
  /// Connection with no traffic at all for this long is closed.
  std::chrono::milliseconds idle_timeout{300'000};
  /// A started-but-unterminated frame older than this closes the
  /// connection (read deadline).
  std::chrono::milliseconds read_deadline{30'000};
  /// Total time allowed to write one response frame to a slow reader.
  std::chrono::milliseconds write_deadline{30'000};
  /// Reader-generated frames (errors, health, stats) buffered before the
  /// reader blocks — slow readers backpressure the connection's own
  /// reader, never the service workers.
  size_t outbound_soft_cap = 64;
  /// Admin frames (attach / detach / apply_delta) queued for the admin
  /// thread before new ones are rejected with a typed `overloaded` error.
  /// Bounds the memory a client can park in inline fact payloads.
  size_t max_admin_queue = 8;
  /// Poll slice for the reader loop; bounds shutdown latency.
  std::chrono::milliseconds poll_slice{50};
  /// Failover hook behind the `promote` admin frame: flips the daemon from
  /// read-only follower to writable primary (stopping its replication
  /// client) and returns whether it actually was a follower. Unset (the
  /// default) answers promote frames with `kUnsupported`.
  std::function<Result<bool>()> promote_hook;
};

/// Why a connection ended (recorded in `DaemonStats`).
enum class CloseReason {
  kOpen,      // not closed yet
  kClientEof, // orderly client disconnect
  kGarbage,   // too many consecutive undecodable frames
  kOversize,  // a frame exceeded max_frame_bytes
  kIdle,      // idle timeout or partial-frame read deadline
  kError,     // socket error or write deadline
  kDrain,     // daemon shutdown
};

class DaemonStatsCollector;

/// One accepted client connection: a reader thread that decodes frames and
/// bridges solve requests into the sharded solve service (routing by the
/// frame's `"db"` field), and a writer thread that owns all socket writes.
/// Worker callbacks only enqueue response frames (never block, never touch
/// the socket), so a slow or dead client cannot stall the solve workers.
/// The connection guarantees exactly one terminal frame (result / typed
/// error / cancellation notice) per decoded solve frame for as long as the
/// socket lives, and cancels every outstanding request the moment the
/// client disconnects.
///
/// Heavy admin frames (`attach`, `detach`, `apply_delta`) run on a
/// lazily-started per-connection admin thread: an attach pays the
/// block-index + fingerprint precompute and a detach blocks through its
/// shard's drain before the ack is enqueued, but neither stalls unrelated
/// frames (solves, health, cancel) arriving on the same connection — the
/// reader only enqueues the admin request and keeps decoding. Ordering is
/// therefore ack-based, not read-your-writes: a client that attaches and
/// immediately solves against the new name must wait for the attach ack
/// first. Admin frames on one connection still execute one at a time in
/// arrival order, and the queue is bounded (`max_admin_queue`) so one
/// client cannot flood the registry. `list` is cheap and stays inline on
/// the reader.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(Socket socket, ShardedSolveService* service,
             ConnectionOptions options, DaemonStatsCollector* stats);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Spawns the reader and writer threads. Call once, on a shared_ptr-owned
  /// instance (callbacks keep the connection alive via shared_from_this).
  void Start();

  /// Daemon drain: stop admitting new solves (they get a typed overloaded
  /// error frame); reads and writes continue so in-flight results flush.
  void BeginDrain();

  /// Asks the connection to finish: the writer flushes what is queued and
  /// then closes the socket; the reader stops at its next poll slice.
  void FinishAfterFlush();

  /// Hard stop: shuts the socket down both ways (waking any blocked
  /// reader/writer) and abandons unflushed output.
  void ForceClose();

  /// True once every spawned thread has exited (reader, writer, and the
  /// admin thread if one was ever started) — the connection can be joined
  /// without blocking.
  bool finished() const {
    return threads_exited_.load() == expected_threads_.load();
  }

  /// Joins all threads; call after `finished()` or after ForceClose.
  void Join();

 private:
  void ReaderLoop();
  void WriterLoop();
  void AdminLoop();
  void HandleFrame(const std::string& frame);
  void HandleSolve(WireRequest request);
  /// Opens an answer stream: admission checks, query parse, stream-state
  /// insert, then the first chunk submission.
  void HandleAnswers(WireRequest request);
  /// Submits the stream's next chunk job to the service, looping on
  /// synchronous (warm-cache) completions instead of recursing: a chain of
  /// cache-hit chunks is a while loop here, not a call stack.
  void SubmitAnswerChunk(uint64_t client_id);
  /// Terminal callback of one chunk job. Runs on a worker thread, or
  /// synchronously inside Submit on a cache hit — in which case it only
  /// stashes the response for the SubmitAnswerChunk loop to process.
  void AnswersCallback(uint64_t client_id, const ServeResponse& response);
  /// Applies one chunk terminal to the stream: emits the chunk frame and
  /// either the stream terminal (done / error / cancelled) or parks the
  /// stream behind the outbound buffer. True iff the caller should submit
  /// the next chunk.
  bool ProcessAnswerResponse(uint64_t client_id,
                             const ServeResponse& response);
  /// Writer-side resume of streams parked behind the outbound soft cap.
  void ResumeParkedStreams();
  void HandleAttach(const WireRequest& request);
  void HandleDetach(const WireRequest& request);
  void HandleApplyDelta(const WireRequest& request);
  void HandleSnapshot(const WireRequest& request);
  void HandlePromote(const WireRequest& request);
  void HandleList(const WireRequest& request);
  /// Subscribes this connection to the replication stream: every event is
  /// pushed as one frame through the non-blocking worker enqueue path (a
  /// stalled follower is bounded by the write deadline, which drops the
  /// stream — never the daemon).
  void HandleReplicate(const WireRequest& request);
  void HandleReplicaAck(const WireRequest& request);
  /// Replication listener body: assigns the stream seq and enqueues the
  /// frame. Called under the emitting shard's delta lock; must not block.
  void OnReplicationEvent(const ReplicationEvent& event);
  void SolveCallback(uint64_t client_id, const ServeResponse& response);
  /// Reader-side handoff of an admin frame to the admin thread (started on
  /// first use). Full queue ⇒ typed `overloaded` error frame instead.
  void EnqueueAdmin(WireRequest request);

  /// Worker-side enqueue of a response payload (framed here): never
  /// blocks; drops the frame only if the connection is already closed
  /// (the client is gone).
  void EnqueueFromWorker(std::string payload);
  /// Reader- or admin-side enqueue: blocks (bounded by the writer's own
  /// deadline, and released by any close) when the outbound buffer is past
  /// the soft cap — this is the backpressure path for slow readers.
  void EnqueueFromReader(std::string payload);

  /// Records the close reason once (first cause wins); true on the first
  /// call, which also updates the daemon stats.
  bool RecordCloseReason(CloseReason reason);
  /// Stops the reader and new output, lets the writer flush what is queued
  /// (the path that delivers fatal error frames), then closes the socket.
  void CloseAfterFlush(CloseReason reason);
  /// Hard stop: drops unflushed output and shuts the socket down both
  /// ways, waking any blocked reader/writer.
  void Abort(CloseReason reason);
  /// Cancels every outstanding request of this connection.
  void CancelOutstanding();

  Socket socket_;
  ShardedSolveService* const service_;
  const ConnectionOptions options_;
  DaemonStatsCollector* const stats_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> closing_{false};
  std::atomic<int> threads_exited_{0};
  /// 2 (reader + writer), bumped to 3 by the reader before it spawns the
  /// admin thread; `finished()` compares against this.
  std::atomic<int> expected_threads_{2};

  // Outbound frame buffer, owned by the writer.
  std::mutex out_mu_;
  std::condition_variable out_ready_cv_;  // writer waits for work
  std::condition_variable out_space_cv_;  // reader waits for room
  std::deque<std::string> outbound_;
  bool out_closed_ = false;     // socket dead: drop further frames
  bool out_finishing_ = false;  // flush what is queued, then exit

  // Where an admitted, unterminated solve lives: request ids are per
  // shard, so a solve is addressed by (resolved registry name, service
  // id) — both fixed up after Submit returns (the placeholder {., 0} can
  // never cancel anything: shard ids start at 1).
  struct InflightSolve {
    std::string db;
    uint64_t service_id = 0;
  };
  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, InflightSolve> inflight_;

  // One live answer stream per client id. A stream is a chain of per-chunk
  // service jobs: between chunks nothing is queued or running anywhere —
  // a slow consumer parks the stream (parked=true) and pins only this
  // struct, never a worker. Streams count against `max_inflight` together
  // with plain solves.
  struct AnswerStream {
    std::string db;  // resolved registry name (fixed after first submit)
    std::optional<Query> query;  // always set; optional for default-construction
    std::vector<std::string> free_vars;
    uint64_t max_chunk = 64;
    SolverMethod method = SolverMethod::kAuto;
    std::optional<std::chrono::milliseconds> timeout;
    uint64_t max_steps = UINT64_MAX;
    bool deadline_from_submit = false;
    bool cache_bypass = false;
    /// Chaos injection (tests): forwarded into every chunk job.
    std::chrono::milliseconds chaos_sleep{0};
    /// Cursor for the next chunk (empty = start of the stream).
    std::string cursor;
    /// Service id of the chunk job in flight (0 between chunks).
    uint64_t service_id = 0;
    uint64_t answers = 0;  // tuples delivered so far
    uint64_t chunks = 0;   // chunk frames delivered so far
    std::chrono::steady_clock::time_point started;
    /// Trampoline state: `in_submit` marks a SubmitAnswerChunk loop in
    /// progress on some thread; a synchronous callback stashes its
    /// response in `pending` instead of recursing.
    bool in_submit = false;
    bool has_pending = false;
    ServeResponse pending;
    /// Parked behind the outbound soft cap; resumed by the writer.
    bool parked = false;
    /// Cancel observed; the stream terminates at the next safe point.
    bool cancelled = false;
  };
  std::mutex streams_mu_;
  std::unordered_map<uint64_t, AnswerStream> streams_;
  /// Cheap writer-side check: > 0 iff some stream is parked.
  std::atomic<size_t> parked_streams_{0};

  // Reader-only state.
  FrameDecoder decoder_;
  int consecutive_garbage_ = 0;

  std::mutex close_mu_;
  CloseReason close_reason_ = CloseReason::kOpen;

  // Replication stream state (at most one stream per connection). The
  // token is cleared and the listener removed by the reader on its way
  // out, so no event can be enqueued after the connection is reaped.
  std::mutex repl_state_mu_;
  uint64_t repl_token_ = 0;     // 0 = no stream subscribed
  uint64_t repl_next_seq_ = 0;  // last seq assigned to an event
  uint64_t repl_acked_seq_ = 0; // highest cumulative ack received

  // Admin executor: attach / detach / apply_delta frames queue here and
  // run on `admin_` in arrival order, off the reader thread. The thread is
  // spawned by the reader on the first admin frame and exits when
  // `closing_` is set (pending frames are dropped — the socket is going
  // away, no ack could be delivered).
  std::mutex admin_mu_;
  std::condition_variable admin_cv_;
  std::deque<WireRequest> admin_queue_;
  bool admin_started_ = false;

  std::thread reader_;
  std::thread writer_;
  std::thread admin_;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_CONNECTION_H_
