#ifndef CQA_SERVE_NET_FRAMING_H_
#define CQA_SERVE_NET_FRAMING_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cqa {

/// Newline-delimited framing for the solve daemon's wire protocol.
///
/// A frame is one line: any byte sequence not containing '\n', terminated
/// by '\n' (a preceding '\r' is stripped, so both LF and CRLF work). The
/// decoder enforces a maximum frame size: the moment the unterminated tail
/// exceeds `max_frame_bytes`, it latches the `overflowed` state — the
/// protocol cannot resynchronize reliably after an oversized frame, so the
/// connection owner must send a typed error and close.
///
/// Empty lines are silently skipped (they are a common artifact of
/// interactive clients and keepalive newlines, and carry no payload).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes a chunk of bytes from the stream and appends every complete
  /// frame to `frames`. Returns false once the decoder has overflowed
  /// (frames completed before the overflow are still delivered).
  bool Feed(const char* data, size_t size, std::vector<std::string>* frames);

  bool overflowed() const { return overflowed_; }

  /// Bytes buffered for the (incomplete) current frame.
  size_t pending_bytes() const { return buffer_.size(); }

  size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  bool overflowed_ = false;
};

/// Encodes a payload as one frame. The payload must not contain '\n'
/// (serialized JSON never does; a stray newline would desynchronize the
/// stream, so it is replaced by a space defensively).
std::string EncodeFrame(const std::string& payload);

}  // namespace cqa

#endif  // CQA_SERVE_NET_FRAMING_H_
