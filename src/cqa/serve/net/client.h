#ifndef CQA_SERVE_NET_CLIENT_H_
#define CQA_SERVE_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>

#include "cqa/base/net.h"
#include "cqa/base/result.h"
#include "cqa/serve/net/framing.h"
#include "cqa/serve/net/protocol.h"

namespace cqa {

/// Minimal blocking client for the solve daemon: connects, writes frames,
/// reads decoded responses with a deadline. Single-threaded by design —
/// tests and the CLI drive it; it is also the tool of choice for chaos
/// tests because `SendRaw` can inject arbitrary bytes (garbage, truncated
/// or oversized frames) and `Close` can hang up mid-solve.
class NetClient {
 public:
  NetClient() : decoder_(kClientMaxFrameBytes) {}

  /// Connects within `timeout`.
  Result<bool> Connect(const std::string& host, uint16_t port,
                       std::chrono::milliseconds timeout);

  bool connected() const { return socket_.valid(); }

  /// Hangs up (RST-free orderly close). Safe when not connected.
  void Close() { socket_.Close(); }

  /// Shuts down only the write side: the daemon sees EOF while this client
  /// can still read the frames already in flight.
  void CloseWriteHalf();

  /// Frames `payload` (appends the newline) and writes it.
  Result<bool> SendFrame(const std::string& payload,
                         std::chrono::milliseconds timeout);

  /// Writes raw bytes verbatim — no framing, no validation. Chaos only.
  Result<bool> SendRaw(const std::string& bytes,
                       std::chrono::milliseconds timeout);

  /// Reads the next complete frame (decoded). `kDeadlineExceeded` when the
  /// deadline passes first; `kInternal` with "connection closed" on EOF.
  Result<WireResponse> ReadResponse(std::chrono::milliseconds timeout);

  /// Reads frames until one is a terminal answer ("result" / "error" /
  /// "cancelled") for `id`; non-terminal frames are skipped. Terminal
  /// frames for *other* ids are stashed, not dropped — with concurrent
  /// workers results arrive in any order, and a later WaitTerminal for
  /// that id must still find its frame.
  Result<WireResponse> WaitTerminal(uint64_t id,
                                    std::chrono::milliseconds timeout);

 private:
  // Responses are small; a daemon-sized cap would only hide bugs.
  static constexpr size_t kClientMaxFrameBytes = 1 << 20;

  Socket socket_;
  FrameDecoder decoder_;
  std::deque<std::string> pending_frames_;
  std::deque<WireResponse> stashed_terminals_;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_CLIENT_H_
