#ifndef CQA_SERVE_NET_JSON_H_
#define CQA_SERVE_NET_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cqa/base/result.h"

namespace cqa {

/// Minimal JSON value for the wire protocol. Self-contained (the container
/// ships no JSON dependency) and written to be fuzzed: parsing any byte
/// string either yields a value or fails with a typed `kParse` error —
/// never crashes, never recurses past a fixed depth limit.
///
/// Numbers are kept as int64 when the spelling is integral and in range,
/// double otherwise; object keys are ordered (std::map) so serialization
/// is deterministic.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  static Json MakeBool(bool b);
  static Json MakeInt(int64_t i);
  static Json MakeDouble(double d);
  static Json MakeString(std::string s);
  static Json MakeArray(Array a);
  static Json MakeObject(Object o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return *array_; }
  const Object& AsObject() const { return *object_; }

  /// Object field lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Compact, deterministic serialization (keys sorted, no whitespace).
  std::string Serialize() const;

  /// Parses a complete JSON document; trailing non-whitespace is a parse
  /// error. `max_depth` bounds nesting of arrays/objects.
  static Result<Json> Parse(const std::string& text, int max_depth = 64);

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  // Indirection keeps Json movable/copyable without recursive layout.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// A convenience builder for flat response objects.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& Set(const std::string& key, Json value) {
    object_[key] = std::move(value);
    return *this;
  }
  JsonObjectBuilder& Set(const std::string& key, const std::string& value) {
    return Set(key, Json::MakeString(value));
  }
  JsonObjectBuilder& Set(const std::string& key, const char* value) {
    return Set(key, Json::MakeString(value));
  }
  JsonObjectBuilder& Set(const std::string& key, int64_t value) {
    return Set(key, Json::MakeInt(value));
  }
  JsonObjectBuilder& Set(const std::string& key, uint64_t value) {
    return Set(key, Json::MakeInt(static_cast<int64_t>(value)));
  }
  JsonObjectBuilder& Set(const std::string& key, bool value) {
    return Set(key, Json::MakeBool(value));
  }
  JsonObjectBuilder& Set(const std::string& key, double value) {
    return Set(key, Json::MakeDouble(value));
  }
  Json Build() { return Json::MakeObject(std::move(object_)); }

 private:
  Json::Object object_;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_JSON_H_
