#include "cqa/serve/net/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cqa {

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeInt(int64_t i) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = i;
  return j;
}

Json Json::MakeDouble(double d) {
  Json j;
  j.type_ = Type::kDouble;
  j.double_ = d;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray(Array a) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::make_shared<Array>(std::move(a));
  return j;
}

Json Json::MakeObject(Object o) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ = std::make_shared<Object>(std::move(o));
  return j;
}

int64_t Json::AsInt() const {
  if (type_ == Type::kDouble) return static_cast<int64_t>(double_);
  return int_;
}

double Json::AsDouble() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return double_;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

// Recursive-descent parser over a bounded input. The cursor is shared
// mutable state; every production leaves it just past what it consumed.
class Parser {
 public:
  Parser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Json> Run() {
    Result<Json> v = ParseValue(0);
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON value");
    }
    return v;
  }

 private:
  Result<Json> Fail(const std::string& message) {
    return Result<Json>::Error(
        ErrorCode::kParse,
        "json: " + message + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return Result<Json>::Error(s);
        return Json::MakeString(std::move(s.value()));
      }
      case 't':
        if (ConsumeWord("true")) return Json::MakeBool(true);
        return Fail("bad literal");
      case 'f':
        if (ConsumeWord("false")) return Json::MakeBool(false);
        return Fail("bad literal");
      case 'n':
        if (ConsumeWord("null")) return Json();
        return Fail("bad literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Fail(std::string("unexpected character '") + c + "'");
    }
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json::Object object;
    SkipWs();
    if (Consume('}')) return Json::MakeObject(std::move(object));
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return Result<Json>::Error(key);
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      Result<Json> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object[std::move(key.value())] = std::move(value.value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Json::MakeObject(std::move(object));
      return Fail("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json::Array array;
    SkipWs();
    if (Consume(']')) return Json::MakeArray(std::move(array));
    for (;;) {
      Result<Json> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.push_back(std::move(value.value()));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Json::MakeArray(std::move(array));
      return Fail("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Result<std::string>::Error(ErrorCode::kParse,
                                                "json: truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Result<std::string>::Error(ErrorCode::kParse,
                                                  "json: bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogates pass through as
            // replacement — the wire protocol is ASCII in practice).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Result<std::string>::Error(ErrorCode::kParse,
                                              "json: bad escape");
        }
        continue;
      }
      if (c < 0x20) {
        return Result<std::string>::Error(
            ErrorCode::kParse, "json: raw control character in string");
      }
      out.push_back(static_cast<char>(c));
      ++pos_;
    }
    return Result<std::string>::Error(ErrorCode::kParse,
                                      "json: unterminated string");
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool digits = false;
    while (pos_ < text_.size() && std::isdigit(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    if (!digits) return Fail("bad number");
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      bool frac = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        frac = true;
      }
      if (!frac) return Fail("bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp = true;
      }
      if (!exp) return Fail("bad number");
    }
    std::string spelling = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(spelling.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json::MakeInt(v);
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    double d = std::strtod(spelling.c_str(), nullptr);
    if (!std::isfinite(d)) return Fail("number out of range");
    return Json::MakeDouble(d);
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

void SerializeInto(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      break;
    case Json::Type::kBool:
      *out += j.AsBool() ? "true" : "false";
      break;
    case Json::Type::kInt:
      *out += std::to_string(j.AsInt());
      break;
    case Json::Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", j.AsDouble());
      *out += buf;
      break;
    }
    case Json::Type::kString:
      EscapeInto(j.AsString(), out);
      break;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : j.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        SerializeInto(item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        EscapeInto(key, out);
        out->push_back(':');
        SerializeInto(value, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Json::Serialize() const {
  std::string out;
  SerializeInto(*this, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text, int max_depth) {
  return Parser(text, max_depth).Run();
}

}  // namespace cqa
