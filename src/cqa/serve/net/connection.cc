#include "cqa/serve/net/connection.h"

#include <chrono>
#include <utility>
#include <vector>

#include "cqa/query/parser.h"
#include "cqa/serve/net/daemon_stats.h"

namespace cqa {

void DaemonStatsCollector::OnConnectionClosed(CloseReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.connections_active > 0) --stats_.connections_active;
  switch (reason) {
    case CloseReason::kGarbage:
      ++stats_.connections_closed_garbage;
      break;
    case CloseReason::kOversize:
      ++stats_.connections_closed_oversize;
      break;
    case CloseReason::kIdle:
      ++stats_.connections_closed_idle;
      break;
    case CloseReason::kError:
      ++stats_.connections_closed_error;
      break;
    case CloseReason::kOpen:
    case CloseReason::kClientEof:
    case CloseReason::kDrain:
      break;
  }
}

Connection::Connection(Socket socket, ShardedSolveService* service,
                       ConnectionOptions options, DaemonStatsCollector* stats)
    : socket_(std::move(socket)),
      service_(service),
      options_(options),
      stats_(stats),
      decoder_(options.max_frame_bytes) {}

Connection::~Connection() { Join(); }

void Connection::Start() {
  stats_->OnConnectionOpened();
  auto self = shared_from_this();
  reader_ = std::thread([self] {
    self->ReaderLoop();
    self->threads_exited_.fetch_add(1);
  });
  writer_ = std::thread([self] {
    self->WriterLoop();
    self->threads_exited_.fetch_add(1);
  });
}

void Connection::BeginDrain() { draining_.store(true); }

void Connection::FinishAfterFlush() { CloseAfterFlush(CloseReason::kDrain); }

void Connection::ForceClose() { Abort(CloseReason::kDrain); }

void Connection::Join() {
  // Reader first: `admin_` is only ever assigned on the reader thread, so
  // joining the reader makes the handle safely visible here.
  if (reader_.joinable()) reader_.join();
  if (admin_.joinable()) admin_.join();
  if (writer_.joinable()) writer_.join();
}

bool Connection::RecordCloseReason(CloseReason reason) {
  std::lock_guard<std::mutex> lock(close_mu_);
  if (close_reason_ != CloseReason::kOpen) return false;
  close_reason_ = reason;
  return true;
}

void Connection::CloseAfterFlush(CloseReason reason) {
  if (RecordCloseReason(reason)) stats_->OnConnectionClosed(reason);
  draining_.store(true);
  closing_.store(true);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_finishing_ = true;
  }
  out_ready_cv_.notify_all();
  out_space_cv_.notify_all();
  admin_cv_.notify_all();
}

void Connection::Abort(CloseReason reason) {
  if (RecordCloseReason(reason)) stats_->OnConnectionClosed(reason);
  draining_.store(true);
  closing_.store(true);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_closed_ = true;
    outbound_.clear();
  }
  out_ready_cv_.notify_all();
  out_space_cv_.notify_all();
  admin_cv_.notify_all();
  // Wakes a reader blocked in poll/read and a writer blocked in send.
  socket_.ShutdownBoth();
}

void Connection::CancelOutstanding() {
  std::vector<InflightSolve> solves;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    solves.reserve(inflight_.size());
    for (const auto& [client_id, solve] : inflight_) solves.push_back(solve);
  }
  for (const InflightSolve& solve : solves) {
    service_->Cancel(solve.db, solve.service_id);
  }
  // Answer streams: a chunk in flight is cancelled at the service (its
  // terminal flushes if the writer survives); an idle stream is simply
  // dropped — the socket is gone, no terminal could be delivered, and
  // nothing of it is queued or running anywhere.
  std::vector<InflightSolve> chunk_jobs;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    for (auto it = streams_.begin(); it != streams_.end();) {
      it->second.cancelled = true;
      if (it->second.service_id != 0 || it->second.in_submit) {
        if (it->second.service_id != 0) {
          chunk_jobs.push_back({it->second.db, it->second.service_id});
        }
        ++it;
      } else {
        if (it->second.parked) parked_streams_.fetch_sub(1);
        it = streams_.erase(it);
      }
    }
  }
  for (const InflightSolve& job : chunk_jobs) {
    service_->Cancel(job.db, job.service_id);
  }
}

void Connection::ReaderLoop() {
  using Clock = std::chrono::steady_clock;
  char buf[4096];
  Clock::time_point last_activity = Clock::now();
  std::optional<Clock::time_point> partial_since;
  std::vector<std::string> frames;

  while (!closing_.load()) {
    Result<size_t> r = ReadSome(socket_, buf, sizeof(buf), options_.poll_slice);
    if (closing_.load()) break;  // woken by shutdown, not by the client
    if (!r.ok()) {
      if (r.code() == ErrorCode::kDeadlineExceeded) {
        // Just a poll slice; enforce the connection-level deadlines.
        Clock::time_point now = Clock::now();
        if (now - last_activity >= options_.idle_timeout) {
          EnqueueFromReader(EncodeErrorFrame(std::nullopt,
                                             ErrorCode::kDeadlineExceeded,
                                             "idle timeout", /*fatal=*/true));
          CloseAfterFlush(CloseReason::kIdle);
          break;
        }
        if (partial_since && now - *partial_since >= options_.read_deadline) {
          EnqueueFromReader(EncodeErrorFrame(
              std::nullopt, ErrorCode::kDeadlineExceeded,
              "read deadline: frame not completed in time", /*fatal=*/true));
          CloseAfterFlush(CloseReason::kIdle);
          break;
        }
        continue;
      }
      Abort(CloseReason::kError);
      break;
    }
    if (*r == 0) {
      // Orderly client disconnect; outstanding solves are cancelled below.
      Abort(CloseReason::kClientEof);
      break;
    }
    last_activity = Clock::now();
    frames.clear();
    bool stream_ok = decoder_.Feed(buf, *r, &frames);
    for (const std::string& frame : frames) {
      if (closing_.load()) break;
      HandleFrame(frame);
    }
    if (!stream_ok) {
      // Oversized frame: the stream cannot be resynchronized; send a fatal
      // typed error and close.
      EnqueueFromReader(EncodeErrorFrame(
          std::nullopt, ErrorCode::kParse,
          "frame exceeds max_frame_bytes (" +
              std::to_string(options_.max_frame_bytes) + ")",
          /*fatal=*/true));
      CloseAfterFlush(CloseReason::kOversize);
      break;
    }
    if (decoder_.pending_bytes() > 0) {
      if (!partial_since) partial_since = Clock::now();
    } else {
      partial_since.reset();
    }
  }
  // Whatever ended the read loop — disconnect, deadline, garbage limit,
  // drain — this connection can never receive a cancel or produce new work,
  // so every solve still in flight is cancelled. Their terminal "cancelled"
  // frames are flushed if the write side is still alive.
  CancelOutstanding();
  // Unsubscribe the replication stream, if one was opened: after this no
  // event can enqueue, so the connection is safe to reap.
  uint64_t repl_token = 0;
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    repl_token = repl_token_;
    repl_token_ = 0;
  }
  if (repl_token != 0) {
    service_->RemoveReplicationListener(repl_token);
    stats_->OnReplStreamClosed();
  }
}

void Connection::HandleFrame(const std::string& frame) {
  Result<WireRequest> decoded = DecodeRequest(frame);
  stats_->OnFrame(/*garbage=*/!decoded.ok());
  if (!decoded.ok()) {
    ++consecutive_garbage_;
    bool fatal = consecutive_garbage_ >= options_.max_consecutive_garbage;
    // A malformed frame fails the *frame*, never the connection — unless
    // the client keeps sending garbage, which marks it hostile.
    EnqueueFromReader(
        EncodeErrorFrame(std::nullopt, decoded.code(), decoded.error(), fatal));
    if (fatal) CloseAfterFlush(CloseReason::kGarbage);
    return;
  }
  consecutive_garbage_ = 0;

  switch (decoded->type) {
    case WireRequestType::kHealth:
      EnqueueFromReader(EncodeHealthFrame(decoded->id, draining_.load(),
                                          service_->read_only()));
      return;
    case WireRequestType::kStats: {
      ServiceStats service_stats = service_->Stats();
      DaemonStats daemon_stats = stats_->Snapshot();
      FoldSandboxCounters(&daemon_stats, service_stats);
      EnqueueFromReader(EncodeStatsFrame(decoded->id, service_stats,
                                         daemon_stats,
                                         service_->StatsPerDb()));
      return;
    }
    case WireRequestType::kCancel: {
      InflightSolve solve;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        auto it = inflight_.find(decoded->target);
        if (it != inflight_.end()) {
          found = true;
          solve = it->second;
        }
      }
      if (found) found = service_->Cancel(solve.db, solve.service_id);
      if (!found) {
        // Not a plain solve: maybe an answer stream. Mark it cancelled; a
        // chunk in flight is cancelled at the service (its terminal
        // arrives as cancelled), an idle stream (parked, or between
        // chunks with no submit loop running) terminates right here —
        // no callback is ever coming for it.
        std::string db;
        uint64_t service_id = 0;
        bool terminate_now = false;
        {
          std::lock_guard<std::mutex> lock(streams_mu_);
          auto it = streams_.find(decoded->target);
          if (it != streams_.end()) {
            found = true;
            it->second.cancelled = true;
            if (it->second.service_id != 0) {
              db = it->second.db;
              service_id = it->second.service_id;
            } else if (!it->second.in_submit) {
              if (it->second.parked) parked_streams_.fetch_sub(1);
              streams_.erase(it);
              terminate_now = true;
            }
          }
        }
        if (service_id != 0) service_->Cancel(db, service_id);
        if (terminate_now) {
          EnqueueFromReader(EncodeCancelledFrame(
              decoded->target, "cancelled between answer chunks"));
        }
      }
      EnqueueFromReader(
          EncodeCancelAckFrame(decoded->id, decoded->target, found));
      return;
    }
    case WireRequestType::kSolve:
      HandleSolve(std::move(*decoded));
      return;
    case WireRequestType::kAnswers:
      HandleAnswers(std::move(*decoded));
      return;
    case WireRequestType::kAttach:
    case WireRequestType::kDetach:
    case WireRequestType::kApplyDelta:
    case WireRequestType::kSnapshot:
      // Mutating admin frames are refused on a warm standby: the
      // replication stream is the only writer until promotion.
      if (service_->read_only()) {
        EnqueueFromReader(EncodeErrorFrame(
            decoded->id, ErrorCode::kReadOnly,
            "this daemon is a read-only follower; send writes to the "
            "primary or promote it first"));
        return;
      }
      // Heavy admin work (index builds, shard drains, journal fsyncs) runs
      // on the admin thread so it cannot stall unrelated frames arriving
      // on this connection; the reader just hands the request off.
      EnqueueAdmin(std::move(*decoded));
      return;
    case WireRequestType::kPromote:
      // Promote must work precisely when the daemon is read-only; it joins
      // the replication client, so it runs off the reader too.
      EnqueueAdmin(std::move(*decoded));
      return;
    case WireRequestType::kList:
      HandleList(*decoded);
      return;
    case WireRequestType::kReplicate:
      HandleReplicate(*decoded);
      return;
    case WireRequestType::kReplicaAck:
      HandleReplicaAck(*decoded);
      return;
  }
}

void Connection::EnqueueAdmin(WireRequest request) {
  const uint64_t id = request.id;
  bool start = false;
  bool full = false;
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    if (admin_queue_.size() >= options_.max_admin_queue) {
      full = true;
    } else {
      admin_queue_.push_back(std::move(request));
      if (!admin_started_) {
        admin_started_ = true;
        start = true;
      }
    }
  }
  if (full) {
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kOverloaded,
        "admin queue full (" + std::to_string(options_.max_admin_queue) +
            " frames pending on this connection)"));
    return;
  }
  if (start) {
    // Bump the expectation before the spawn: the reader is still alive
    // here, so `finished()` cannot momentarily see exited == expected.
    expected_threads_.fetch_add(1);
    auto self = shared_from_this();
    admin_ = std::thread([self] {
      self->AdminLoop();
      self->threads_exited_.fetch_add(1);
    });
  }
  admin_cv_.notify_one();
}

void Connection::AdminLoop() {
  for (;;) {
    WireRequest request;
    {
      std::unique_lock<std::mutex> lock(admin_mu_);
      admin_cv_.wait(lock,
                     [&] { return closing_.load() || !admin_queue_.empty(); });
      // Closing drops whatever is still queued: the socket is going away,
      // so no ack could reach the client anyway.
      if (closing_.load()) break;
      request = std::move(admin_queue_.front());
      admin_queue_.pop_front();
    }
    switch (request.type) {
      case WireRequestType::kAttach:
        HandleAttach(request);
        break;
      case WireRequestType::kDetach:
        HandleDetach(request);
        break;
      case WireRequestType::kApplyDelta:
        HandleApplyDelta(request);
        break;
      case WireRequestType::kSnapshot:
        HandleSnapshot(request);
        break;
      case WireRequestType::kPromote:
        HandlePromote(request);
        break;
      default:
        break;  // unreachable: only admin frames are enqueued
    }
  }
}

namespace {

WireDbEntry ToWireEntry(const DatabaseRegistry::Entry& entry) {
  WireDbEntry e;
  e.name = entry.name;
  e.fingerprint = entry.fingerprint.ToHex();
  e.facts = entry.db->NumFacts();
  e.blocks = entry.db->NumBlocks();
  e.is_default = entry.is_default;
  return e;
}

}  // namespace

void Connection::HandleAttach(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  Result<Database> db = Database::FromText(request.facts);
  if (!db.ok()) {
    // Like an unparsable query: a request-level failure of a well-formed
    // frame, answered with a typed error, no garbage strike.
    EnqueueFromReader(EncodeErrorFrame(request.id, db.code(),
                                       "facts: " + db.error()));
    return;
  }
  Result<DatabaseRegistry::Entry> attached =
      service_->Attach(request.name, std::move(*db));
  if (!attached.ok()) {
    EnqueueFromReader(
        EncodeErrorFrame(request.id, attached.code(), attached.error()));
    return;
  }
  stats_->OnDatabaseAttached();
  EnqueueFromReader(EncodeAttachAckFrame(request.id, ToWireEntry(*attached)));
}

void Connection::HandleDetach(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  // Blocks the admin thread through the shard's drain; the ack reports
  // what the drain did. Solve terminals never wait on an admin thread, so
  // this cannot deadlock — and this connection keeps reading meanwhile.
  Result<DetachOutcome> out = service_->Detach(request.name);
  if (!out.ok()) {
    EnqueueFromReader(EncodeErrorFrame(request.id, out.code(), out.error()));
    return;
  }
  stats_->OnDatabaseDetached();
  EnqueueFromReader(EncodeDetachAckFrame(request.id, request.name, out->shed,
                                         out->drained));
}

void Connection::HandleApplyDelta(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  FactDelta delta;
  delta.id = request.delta_id;
  delta.ops = request.ops;
  // Write-ahead contract lives in the service: by the time this ack is
  // enqueued the delta is journaled (when durability is on) and the new
  // epoch published — a client that sees the ack can rely on the mutation
  // surviving a crash.
  Result<DeltaOutcome> out = service_->ApplyDelta(request.db, delta);
  if (!out.ok()) {
    stats_->OnDeltaRejected();
    EnqueueFromReader(EncodeErrorFrame(request.id, out.code(), out.error()));
    return;
  }
  stats_->OnDeltaApplied();
  EnqueueFromReader(EncodeDeltaAckFrame(request.id, *out));
}

void Connection::HandleSnapshot(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  // Flushes pending group acks, dumps the epoch's facts atomically, then
  // truncates the journal — bounded-time recovery for the next attach.
  Result<SnapshotOutcome> out = service_->Snapshot(request.db);
  if (!out.ok()) {
    EnqueueFromReader(EncodeErrorFrame(request.id, out.code(), out.error()));
    return;
  }
  EnqueueFromReader(EncodeSnapshotAckFrame(request.id, *out));
}

void Connection::HandlePromote(const WireRequest& request) {
  if (!options_.promote_hook) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kUnsupported,
        "this daemon has no failover hook; promote is only meaningful on "
        "a daemon started with --follow"));
    return;
  }
  Result<bool> was_follower = options_.promote_hook();
  if (!was_follower.ok()) {
    EnqueueFromReader(EncodeErrorFrame(request.id, was_follower.code(),
                                       was_follower.error()));
    return;
  }
  EnqueueFromReader(EncodePromoteAckFrame(request.id, *was_follower));
}

void Connection::HandleReplicate(const WireRequest& request) {
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    if (repl_token_ != 0) {
      EnqueueFromReader(EncodeErrorFrame(
          request.id, ErrorCode::kUnsupported,
          "a replication stream is already open on this connection"));
      return;
    }
  }
  stats_->OnReplStreamOpened();
  // AddReplicationListener synchronously feeds the bootstrap snapshot of
  // every attached database through OnReplicationEvent before returning,
  // so by the time the token is published the follower's resync is already
  // queued — and every later delta frame follows its bootstrap.
  auto self = shared_from_this();
  uint64_t token = service_->AddReplicationListener(
      [self](const ReplicationEvent& event) {
        self->OnReplicationEvent(event);
      });
  std::lock_guard<std::mutex> lock(repl_state_mu_);
  repl_token_ = token;
}

void Connection::HandleReplicaAck(const WireRequest& request) {
  uint64_t outstanding = 0;
  bool active;
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    active = repl_token_ != 0;
    if (request.seq > repl_acked_seq_) {
      // Cumulative, and never past what was actually sent.
      repl_acked_seq_ = std::min(request.seq, repl_next_seq_);
    }
    outstanding = repl_next_seq_ - repl_acked_seq_;
  }
  if (active) stats_->OnReplAckReceived(outstanding);
}

void Connection::OnReplicationEvent(const ReplicationEvent& event) {
  uint64_t seq;
  uint64_t outstanding;
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    seq = ++repl_next_seq_;
    outstanding = repl_next_seq_ - repl_acked_seq_;
  }
  stats_->OnReplEventSent(outstanding);
  // Worker-path enqueue: never blocks the applier holding the delta lock.
  // A follower that stops reading is bounded by the write deadline, which
  // aborts this connection and thereby unsubscribes the stream.
  EnqueueFromWorker(EncodeReplicationEventFrame(seq, event));
}

void Connection::HandleList(const WireRequest& request) {
  std::vector<WireDbEntry> entries;
  for (const DatabaseRegistry::Entry& entry : service_->registry().List()) {
    entries.push_back(ToWireEntry(entry));
  }
  EnqueueFromReader(EncodeDbListFrame(request.id, entries));
}

void Connection::HandleSolve(WireRequest request) {
  const uint64_t id = request.id;
  if (draining_.load()) {
    stats_->OnSolveRejectedOverloaded();
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kOverloaded, "daemon is draining; not accepting work"));
    return;
  }
  enum class Reject { kNone, kDuplicate, kInflightCap };
  Reject reject;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (inflight_.count(id) > 0) {
      reject = Reject::kDuplicate;
    } else if (inflight_.size() >= options_.max_inflight) {
      reject = Reject::kInflightCap;
    } else {
      reject = Reject::kNone;
      // Pre-insert before Submit so the terminal callback — which can fire
      // on a worker thread before Submit even returns — always finds the
      // entry to erase. The placeholder shard/service id is fixed up
      // below; only this reader thread reads the map until then.
      inflight_.emplace(id, InflightSolve{});
    }
  }
  if (reject == Reject::kDuplicate) {
    // Reusing an in-flight id would make "exactly one terminal frame per
    // id" ambiguous; reject the new frame, keep the old request.
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kParse,
        "duplicate id: a solve with this id is already in flight"));
    return;
  }
  if (reject == Reject::kInflightCap) {
    stats_->OnSolveRejectedInflightCap();
    EnqueueFromReader(
        EncodeErrorFrame(id, ErrorCode::kOverloaded,
                         "per-connection in-flight cap (" +
                             std::to_string(options_.max_inflight) +
                             ") reached"));
    return;
  }

  Result<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    // A well-formed frame carrying an unparsable query is a request-level
    // failure: it gets its terminal error frame and does not count toward
    // the consecutive-garbage limit.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(id);
    }
    EnqueueFromReader(EncodeErrorFrame(id, query.code(), query.error()));
    return;
  }

  // The shard's database is filled in by the sharded service when the
  // frame's "db" name (empty ⇒ default instance) resolves.
  ServeJob job(std::move(*query), nullptr);
  if (request.timeout_ms) {
    job.timeout = std::chrono::milliseconds(*request.timeout_ms);
  }
  job.deadline_from_submit = request.deadline_from_submit;
  job.max_steps = request.max_steps;
  job.method = request.method;
  job.degrade_to_sampling = request.degrade_to_sampling;
  job.max_samples = request.max_samples;
  job.isolation = request.isolation;
  job.parallelism = static_cast<int>(
      std::min<uint64_t>(request.parallelism, 64));
  job.chaos_sleep = std::chrono::milliseconds(request.chaos_sleep_ms);
  job.fail_after_probes = request.fail_after_probes;
  job.fault_attempts = request.fault_attempts;
  job.crash_after_probes = request.crash_after_probes;
  job.hog_mb_per_probe = request.hog_mb_per_probe;
  job.wedge_after_probes = request.wedge_after_probes;
  job.cache = request.cache_bypass ? CachePolicy::kBypass : CachePolicy::kDefault;

  auto self = shared_from_this();
  std::string resolved_db;
  Result<uint64_t> submitted = service_->Submit(
      request.db, std::move(job),
      [self, id](const ServeResponse& response) {
        self->SolveCallback(id, response);
      },
      &resolved_db);
  if (!submitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(id);
    }
    if (submitted.code() == ErrorCode::kDetached) {
      stats_->OnSolveRejectedDetached();
    } else {
      stats_->OnSolveRejectedOverloaded();
    }
    EnqueueFromReader(EncodeErrorFrame(id, submitted.code(), submitted.error()));
    return;
  }
  stats_->OnSolveAdmitted();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(id);
    // Absent means the terminal callback already fired and erased the
    // pre-inserted entry; do not resurrect it.
    if (it != inflight_.end()) {
      it->second.db = resolved_db;
      it->second.service_id = *submitted;
    }
  }
}

void Connection::SolveCallback(uint64_t client_id,
                               const ServeResponse& response) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(client_id);
  }
  std::string frame;
  if (response.state == RequestState::kCancelled) {
    frame = EncodeCancelledFrame(
        client_id,
        response.result.ok() ? "cancelled" : response.result.error());
  } else if (response.result.ok()) {
    frame = EncodeResultFrame(client_id, *response.result, response.attempts,
                              response.latency);
  } else {
    frame = EncodeErrorFrame(client_id, response.result.code(),
                             response.result.error());
  }
  EnqueueFromWorker(std::move(frame));
}

void Connection::HandleAnswers(WireRequest request) {
  const uint64_t id = request.id;
  if (draining_.load()) {
    stats_->OnSolveRejectedOverloaded();
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kOverloaded, "daemon is draining; not accepting work"));
    return;
  }
  Result<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    EnqueueFromReader(EncodeErrorFrame(id, query.code(), query.error()));
    return;
  }
  // Admission: one client id addresses one request — solve or stream —
  // and streams share the per-connection in-flight cap with solves (a
  // stream occupies a slot for its whole life, chunk in flight or not).
  // Only this reader thread inserts into either map, so the two-map check
  // cannot race another admission.
  enum class Reject { kNone, kDuplicate, kInflightCap };
  Reject reject = Reject::kNone;
  const bool resumed = !request.cursor.empty();
  size_t solves_inflight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    solves_inflight = inflight_.size();
    if (inflight_.count(id) > 0) reject = Reject::kDuplicate;
  }
  if (reject == Reject::kNone) {
    std::lock_guard<std::mutex> lock(streams_mu_);
    if (streams_.count(id) > 0) {
      reject = Reject::kDuplicate;
    } else if (solves_inflight + streams_.size() >= options_.max_inflight) {
      reject = Reject::kInflightCap;
    } else {
      AnswerStream stream;
      stream.db = request.db;
      stream.query = std::move(*query);
      stream.free_vars = std::move(request.free_vars);
      stream.max_chunk = request.max_chunk == 0
                             ? 64
                             : std::min<uint64_t>(request.max_chunk, 8192);
      stream.method = request.method;
      if (request.timeout_ms) {
        stream.timeout = std::chrono::milliseconds(*request.timeout_ms);
      }
      stream.max_steps = request.max_steps;
      stream.deadline_from_submit = request.deadline_from_submit;
      stream.cache_bypass = request.cache_bypass;
      stream.chaos_sleep = std::chrono::milliseconds(request.chaos_sleep_ms);
      stream.cursor = std::move(request.cursor);
      stream.started = std::chrono::steady_clock::now();
      streams_.emplace(id, std::move(stream));
    }
  }
  if (reject == Reject::kDuplicate) {
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kParse,
        "duplicate id: a request with this id is already in flight"));
    return;
  }
  if (reject == Reject::kInflightCap) {
    stats_->OnSolveRejectedInflightCap();
    EnqueueFromReader(
        EncodeErrorFrame(id, ErrorCode::kOverloaded,
                         "per-connection in-flight cap (" +
                             std::to_string(options_.max_inflight) +
                             ") reached"));
    return;
  }
  stats_->OnAnswersStream(resumed);
  SubmitAnswerChunk(id);
}

void Connection::SubmitAnswerChunk(uint64_t client_id) {
  auto self = shared_from_this();
  for (;;) {
    std::optional<ServeJob> job;
    std::string db_name;
    bool cancelled_idle = false;
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(streams_mu_);
      auto it = streams_.find(client_id);
      if (it == streams_.end()) return;
      AnswerStream& s = it->second;
      if (s.in_submit) return;  // another thread owns the trampoline
      if (s.cancelled || draining_.load()) {
        cancelled_idle = s.cancelled;
        drained = !s.cancelled;
        if (s.parked) parked_streams_.fetch_sub(1);
        streams_.erase(it);
      } else {
        s.in_submit = true;
        s.has_pending = false;
        db_name = s.db;
        job.emplace(*s.query, nullptr);
        job->kind = JobKind::kAnswers;
        job->free_vars = s.free_vars;
        job->answer_max_chunk = s.max_chunk;
        job->cursor = s.cursor;
        job->method = s.method;
        job->timeout = s.timeout;
        job->max_steps = s.max_steps;
        job->deadline_from_submit = s.deadline_from_submit;
        job->chaos_sleep = s.chaos_sleep;
        job->isolation = IsolationMode::kInproc;
        job->parallelism = 1;
        job->cache =
            s.cache_bypass ? CachePolicy::kBypass : CachePolicy::kDefault;
      }
    }
    if (cancelled_idle) {
      EnqueueFromWorker(
          EncodeCancelledFrame(client_id, "cancelled between answer chunks"));
      return;
    }
    if (drained) {
      EnqueueFromWorker(EncodeErrorFrame(
          client_id, ErrorCode::kOverloaded,
          "daemon is draining; answer stream ended mid-way (resume with the "
          "last cursor elsewhere)"));
      return;
    }
    std::string resolved_db;
    Result<uint64_t> submitted = service_->Submit(
        db_name, std::move(*job),
        [self, client_id](const ServeResponse& response) {
          self->AnswersCallback(client_id, response);
        },
        &resolved_db);
    if (!submitted.ok()) {
      // Typed refusal at admission: stale cursor (the epoch flipped under
      // the stream), overload, or a detached database. This is the
      // stream's terminal.
      if (submitted.code() == ErrorCode::kStaleCursor) {
        stats_->OnAnswersStaleCursor();
      }
      {
        std::lock_guard<std::mutex> lock(streams_mu_);
        auto it = streams_.find(client_id);
        if (it != streams_.end()) streams_.erase(it);
      }
      EnqueueFromWorker(
          EncodeErrorFrame(client_id, submitted.code(), submitted.error()));
      return;
    }
    bool cancel_race = false;
    ServeResponse pending;
    bool process_inline = false;
    {
      std::lock_guard<std::mutex> lock(streams_mu_);
      auto it = streams_.find(client_id);
      if (it == streams_.end()) return;  // unreachable: in_submit pins it
      AnswerStream& s = it->second;
      s.db = resolved_db;
      s.in_submit = false;
      if (s.has_pending) {
        // The chunk completed synchronously (warm cache) inside Submit;
        // process it here and keep looping instead of recursing.
        pending = std::move(s.pending);
        s.has_pending = false;
        process_inline = true;
      } else {
        s.service_id = *submitted;
        cancel_race = s.cancelled;
      }
    }
    if (cancel_race) {
      // A cancel slipped in while the job was being submitted; chase it.
      service_->Cancel(resolved_db, *submitted);
      return;
    }
    if (!process_inline) return;  // the worker callback drives from here
    if (!ProcessAnswerResponse(client_id, pending)) return;
  }
}

void Connection::AnswersCallback(uint64_t client_id,
                                 const ServeResponse& response) {
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(client_id);
    if (it == streams_.end()) return;
    if (it->second.in_submit) {
      // Synchronous delivery inside service_->Submit: stash for the
      // SubmitAnswerChunk loop (recursing here would stack one frame per
      // warm chunk).
      it->second.pending = response;
      it->second.has_pending = true;
      return;
    }
  }
  if (ProcessAnswerResponse(client_id, response)) {
    SubmitAnswerChunk(client_id);
  }
}

bool Connection::ProcessAnswerResponse(uint64_t client_id,
                                       const ServeResponse& response) {
  std::vector<std::string> frames;
  bool submit_next = false;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    auto it = streams_.find(client_id);
    if (it == streams_.end()) return false;
    AnswerStream& s = it->second;
    s.service_id = 0;
    if (response.state == RequestState::kCancelled) {
      frames.push_back(EncodeCancelledFrame(
          client_id,
          response.result.ok() ? "cancelled" : response.result.error()));
      streams_.erase(it);
    } else if (!response.result.ok()) {
      if (response.result.code() == ErrorCode::kStaleCursor) {
        stats_->OnAnswersStaleCursor();
      }
      frames.push_back(EncodeErrorFrame(client_id, response.result.code(),
                                        response.result.error()));
      streams_.erase(it);
    } else if (s.cancelled) {
      // The chunk won a race against a cancel; honor the cancel (the
      // stream's terminal must be "cancelled", and the client asked to
      // stop reading anyway).
      frames.push_back(EncodeCancelledFrame(client_id, "cancelled"));
      streams_.erase(it);
    } else if (response.result->answer_chunk == nullptr) {
      frames.push_back(EncodeErrorFrame(client_id, ErrorCode::kInternal,
                                        "answers job returned no chunk"));
      streams_.erase(it);
    } else {
      const AnswerChunk& chunk = *response.result->answer_chunk;
      frames.push_back(
          EncodeAnswerChunkFrame(client_id, chunk, response.answer_cursor));
      stats_->OnAnswerChunkSent(chunk.answers.size());
      s.answers += chunk.answers.size();
      ++s.chunks;
      if (chunk.done) {
        auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - s.started);
        frames.push_back(EncodeAnswerDoneFrame(client_id, s.answers,
                                               chunk.total, s.chunks,
                                               latency));
        streams_.erase(it);
      } else if (response.answer_cursor.empty()) {
        frames.push_back(
            EncodeErrorFrame(client_id, ErrorCode::kInternal,
                             "unfinished chunk carried no resume cursor"));
        streams_.erase(it);
      } else {
        s.cursor = response.answer_cursor;
        // Write-deadline backpressure, stream-shaped: past the outbound
        // soft cap the stream parks — nothing queued, nothing running,
        // no worker pinned — until the writer drains below the cap. A
        // consumer that never reads is bounded by the write deadline,
        // which aborts the connection and drops the parked stream.
        size_t queued;
        {
          std::lock_guard<std::mutex> out_lock(out_mu_);
          queued = outbound_.size();
        }
        if (queued >= options_.outbound_soft_cap) {
          s.parked = true;
          parked_streams_.fetch_add(1);
        } else {
          submit_next = true;
        }
      }
    }
  }
  for (std::string& frame : frames) EnqueueFromWorker(std::move(frame));
  return submit_next;
}

void Connection::ResumeParkedStreams() {
  if (parked_streams_.load() == 0) return;
  std::vector<uint64_t> resume;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    for (auto& [id, s] : streams_) {
      if (s.parked && !s.in_submit) {
        s.parked = false;
        parked_streams_.fetch_sub(1);
        resume.push_back(id);
      }
    }
  }
  for (uint64_t id : resume) SubmitAnswerChunk(id);
}

void Connection::EnqueueFromWorker(std::string payload) {
  std::string frame = EncodeFrame(payload);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    if (out_closed_) return;  // client is gone; nothing to deliver to
    outbound_.push_back(std::move(frame));
  }
  out_ready_cv_.notify_one();
}

void Connection::EnqueueFromReader(std::string payload) {
  std::string frame = EncodeFrame(payload);
  std::unique_lock<std::mutex> lock(out_mu_);
  // Backpressure: the reader stalls (stopping further reads → the TCP
  // window fills → the client's sends block) until the writer catches up
  // or the connection dies. The writer's own write deadline bounds this.
  out_space_cv_.wait(lock, [&] {
    return out_closed_ || out_finishing_ ||
           outbound_.size() < options_.outbound_soft_cap;
  });
  if (out_closed_) return;
  outbound_.push_back(std::move(frame));
  lock.unlock();
  out_ready_cv_.notify_one();
}

void Connection::WriterLoop() {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(out_mu_);
      out_ready_cv_.wait(lock, [&] {
        return !outbound_.empty() || out_closed_ || out_finishing_;
      });
      if (out_closed_) break;
      if (outbound_.empty()) break;  // finishing and fully flushed
      frame = std::move(outbound_.front());
      outbound_.pop_front();
    }
    out_space_cv_.notify_all();
    if (parked_streams_.load() > 0) {
      bool room;
      {
        std::lock_guard<std::mutex> lock(out_mu_);
        room = outbound_.size() < options_.outbound_soft_cap;
      }
      if (room) ResumeParkedStreams();
    }
    Result<size_t> w =
        WriteAll(socket_, frame.data(), frame.size(), options_.write_deadline);
    if (!w.ok()) {
      // Slow or dead reader past the write deadline: the stream is no
      // longer frame-aligned; drop the connection.
      Abort(CloseReason::kError);
      break;
    }
  }
  // Nothing more will ever be written: fail fast any producer still
  // enqueueing and let the peer see EOF.
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_closed_ = true;
    outbound_.clear();
  }
  out_space_cv_.notify_all();
  socket_.ShutdownBoth();
}

}  // namespace cqa
