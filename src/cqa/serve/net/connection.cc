#include "cqa/serve/net/connection.h"

#include <chrono>
#include <utility>
#include <vector>

#include "cqa/query/parser.h"
#include "cqa/serve/net/daemon_stats.h"

namespace cqa {

void DaemonStatsCollector::OnConnectionClosed(CloseReason reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.connections_active > 0) --stats_.connections_active;
  switch (reason) {
    case CloseReason::kGarbage:
      ++stats_.connections_closed_garbage;
      break;
    case CloseReason::kOversize:
      ++stats_.connections_closed_oversize;
      break;
    case CloseReason::kIdle:
      ++stats_.connections_closed_idle;
      break;
    case CloseReason::kError:
      ++stats_.connections_closed_error;
      break;
    case CloseReason::kOpen:
    case CloseReason::kClientEof:
    case CloseReason::kDrain:
      break;
  }
}

Connection::Connection(Socket socket, ShardedSolveService* service,
                       ConnectionOptions options, DaemonStatsCollector* stats)
    : socket_(std::move(socket)),
      service_(service),
      options_(options),
      stats_(stats),
      decoder_(options.max_frame_bytes) {}

Connection::~Connection() { Join(); }

void Connection::Start() {
  stats_->OnConnectionOpened();
  auto self = shared_from_this();
  reader_ = std::thread([self] {
    self->ReaderLoop();
    self->threads_exited_.fetch_add(1);
  });
  writer_ = std::thread([self] {
    self->WriterLoop();
    self->threads_exited_.fetch_add(1);
  });
}

void Connection::BeginDrain() { draining_.store(true); }

void Connection::FinishAfterFlush() { CloseAfterFlush(CloseReason::kDrain); }

void Connection::ForceClose() { Abort(CloseReason::kDrain); }

void Connection::Join() {
  // Reader first: `admin_` is only ever assigned on the reader thread, so
  // joining the reader makes the handle safely visible here.
  if (reader_.joinable()) reader_.join();
  if (admin_.joinable()) admin_.join();
  if (writer_.joinable()) writer_.join();
}

bool Connection::RecordCloseReason(CloseReason reason) {
  std::lock_guard<std::mutex> lock(close_mu_);
  if (close_reason_ != CloseReason::kOpen) return false;
  close_reason_ = reason;
  return true;
}

void Connection::CloseAfterFlush(CloseReason reason) {
  if (RecordCloseReason(reason)) stats_->OnConnectionClosed(reason);
  draining_.store(true);
  closing_.store(true);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_finishing_ = true;
  }
  out_ready_cv_.notify_all();
  out_space_cv_.notify_all();
  admin_cv_.notify_all();
}

void Connection::Abort(CloseReason reason) {
  if (RecordCloseReason(reason)) stats_->OnConnectionClosed(reason);
  draining_.store(true);
  closing_.store(true);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_closed_ = true;
    outbound_.clear();
  }
  out_ready_cv_.notify_all();
  out_space_cv_.notify_all();
  admin_cv_.notify_all();
  // Wakes a reader blocked in poll/read and a writer blocked in send.
  socket_.ShutdownBoth();
}

void Connection::CancelOutstanding() {
  std::vector<InflightSolve> solves;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    solves.reserve(inflight_.size());
    for (const auto& [client_id, solve] : inflight_) solves.push_back(solve);
  }
  for (const InflightSolve& solve : solves) {
    service_->Cancel(solve.db, solve.service_id);
  }
}

void Connection::ReaderLoop() {
  using Clock = std::chrono::steady_clock;
  char buf[4096];
  Clock::time_point last_activity = Clock::now();
  std::optional<Clock::time_point> partial_since;
  std::vector<std::string> frames;

  while (!closing_.load()) {
    Result<size_t> r = ReadSome(socket_, buf, sizeof(buf), options_.poll_slice);
    if (closing_.load()) break;  // woken by shutdown, not by the client
    if (!r.ok()) {
      if (r.code() == ErrorCode::kDeadlineExceeded) {
        // Just a poll slice; enforce the connection-level deadlines.
        Clock::time_point now = Clock::now();
        if (now - last_activity >= options_.idle_timeout) {
          EnqueueFromReader(EncodeErrorFrame(std::nullopt,
                                             ErrorCode::kDeadlineExceeded,
                                             "idle timeout", /*fatal=*/true));
          CloseAfterFlush(CloseReason::kIdle);
          break;
        }
        if (partial_since && now - *partial_since >= options_.read_deadline) {
          EnqueueFromReader(EncodeErrorFrame(
              std::nullopt, ErrorCode::kDeadlineExceeded,
              "read deadline: frame not completed in time", /*fatal=*/true));
          CloseAfterFlush(CloseReason::kIdle);
          break;
        }
        continue;
      }
      Abort(CloseReason::kError);
      break;
    }
    if (*r == 0) {
      // Orderly client disconnect; outstanding solves are cancelled below.
      Abort(CloseReason::kClientEof);
      break;
    }
    last_activity = Clock::now();
    frames.clear();
    bool stream_ok = decoder_.Feed(buf, *r, &frames);
    for (const std::string& frame : frames) {
      if (closing_.load()) break;
      HandleFrame(frame);
    }
    if (!stream_ok) {
      // Oversized frame: the stream cannot be resynchronized; send a fatal
      // typed error and close.
      EnqueueFromReader(EncodeErrorFrame(
          std::nullopt, ErrorCode::kParse,
          "frame exceeds max_frame_bytes (" +
              std::to_string(options_.max_frame_bytes) + ")",
          /*fatal=*/true));
      CloseAfterFlush(CloseReason::kOversize);
      break;
    }
    if (decoder_.pending_bytes() > 0) {
      if (!partial_since) partial_since = Clock::now();
    } else {
      partial_since.reset();
    }
  }
  // Whatever ended the read loop — disconnect, deadline, garbage limit,
  // drain — this connection can never receive a cancel or produce new work,
  // so every solve still in flight is cancelled. Their terminal "cancelled"
  // frames are flushed if the write side is still alive.
  CancelOutstanding();
  // Unsubscribe the replication stream, if one was opened: after this no
  // event can enqueue, so the connection is safe to reap.
  uint64_t repl_token = 0;
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    repl_token = repl_token_;
    repl_token_ = 0;
  }
  if (repl_token != 0) {
    service_->RemoveReplicationListener(repl_token);
    stats_->OnReplStreamClosed();
  }
}

void Connection::HandleFrame(const std::string& frame) {
  Result<WireRequest> decoded = DecodeRequest(frame);
  stats_->OnFrame(/*garbage=*/!decoded.ok());
  if (!decoded.ok()) {
    ++consecutive_garbage_;
    bool fatal = consecutive_garbage_ >= options_.max_consecutive_garbage;
    // A malformed frame fails the *frame*, never the connection — unless
    // the client keeps sending garbage, which marks it hostile.
    EnqueueFromReader(
        EncodeErrorFrame(std::nullopt, decoded.code(), decoded.error(), fatal));
    if (fatal) CloseAfterFlush(CloseReason::kGarbage);
    return;
  }
  consecutive_garbage_ = 0;

  switch (decoded->type) {
    case WireRequestType::kHealth:
      EnqueueFromReader(EncodeHealthFrame(decoded->id, draining_.load(),
                                          service_->read_only()));
      return;
    case WireRequestType::kStats: {
      ServiceStats service_stats = service_->Stats();
      DaemonStats daemon_stats = stats_->Snapshot();
      FoldSandboxCounters(&daemon_stats, service_stats);
      EnqueueFromReader(EncodeStatsFrame(decoded->id, service_stats,
                                         daemon_stats,
                                         service_->StatsPerDb()));
      return;
    }
    case WireRequestType::kCancel: {
      InflightSolve solve;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        auto it = inflight_.find(decoded->target);
        if (it != inflight_.end()) {
          found = true;
          solve = it->second;
        }
      }
      if (found) found = service_->Cancel(solve.db, solve.service_id);
      EnqueueFromReader(
          EncodeCancelAckFrame(decoded->id, decoded->target, found));
      return;
    }
    case WireRequestType::kSolve:
      HandleSolve(std::move(*decoded));
      return;
    case WireRequestType::kAttach:
    case WireRequestType::kDetach:
    case WireRequestType::kApplyDelta:
    case WireRequestType::kSnapshot:
      // Mutating admin frames are refused on a warm standby: the
      // replication stream is the only writer until promotion.
      if (service_->read_only()) {
        EnqueueFromReader(EncodeErrorFrame(
            decoded->id, ErrorCode::kReadOnly,
            "this daemon is a read-only follower; send writes to the "
            "primary or promote it first"));
        return;
      }
      // Heavy admin work (index builds, shard drains, journal fsyncs) runs
      // on the admin thread so it cannot stall unrelated frames arriving
      // on this connection; the reader just hands the request off.
      EnqueueAdmin(std::move(*decoded));
      return;
    case WireRequestType::kPromote:
      // Promote must work precisely when the daemon is read-only; it joins
      // the replication client, so it runs off the reader too.
      EnqueueAdmin(std::move(*decoded));
      return;
    case WireRequestType::kList:
      HandleList(*decoded);
      return;
    case WireRequestType::kReplicate:
      HandleReplicate(*decoded);
      return;
    case WireRequestType::kReplicaAck:
      HandleReplicaAck(*decoded);
      return;
  }
}

void Connection::EnqueueAdmin(WireRequest request) {
  const uint64_t id = request.id;
  bool start = false;
  bool full = false;
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    if (admin_queue_.size() >= options_.max_admin_queue) {
      full = true;
    } else {
      admin_queue_.push_back(std::move(request));
      if (!admin_started_) {
        admin_started_ = true;
        start = true;
      }
    }
  }
  if (full) {
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kOverloaded,
        "admin queue full (" + std::to_string(options_.max_admin_queue) +
            " frames pending on this connection)"));
    return;
  }
  if (start) {
    // Bump the expectation before the spawn: the reader is still alive
    // here, so `finished()` cannot momentarily see exited == expected.
    expected_threads_.fetch_add(1);
    auto self = shared_from_this();
    admin_ = std::thread([self] {
      self->AdminLoop();
      self->threads_exited_.fetch_add(1);
    });
  }
  admin_cv_.notify_one();
}

void Connection::AdminLoop() {
  for (;;) {
    WireRequest request;
    {
      std::unique_lock<std::mutex> lock(admin_mu_);
      admin_cv_.wait(lock,
                     [&] { return closing_.load() || !admin_queue_.empty(); });
      // Closing drops whatever is still queued: the socket is going away,
      // so no ack could reach the client anyway.
      if (closing_.load()) break;
      request = std::move(admin_queue_.front());
      admin_queue_.pop_front();
    }
    switch (request.type) {
      case WireRequestType::kAttach:
        HandleAttach(request);
        break;
      case WireRequestType::kDetach:
        HandleDetach(request);
        break;
      case WireRequestType::kApplyDelta:
        HandleApplyDelta(request);
        break;
      case WireRequestType::kSnapshot:
        HandleSnapshot(request);
        break;
      case WireRequestType::kPromote:
        HandlePromote(request);
        break;
      default:
        break;  // unreachable: only admin frames are enqueued
    }
  }
}

namespace {

WireDbEntry ToWireEntry(const DatabaseRegistry::Entry& entry) {
  WireDbEntry e;
  e.name = entry.name;
  e.fingerprint = entry.fingerprint.ToHex();
  e.facts = entry.db->NumFacts();
  e.blocks = entry.db->NumBlocks();
  e.is_default = entry.is_default;
  return e;
}

}  // namespace

void Connection::HandleAttach(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  Result<Database> db = Database::FromText(request.facts);
  if (!db.ok()) {
    // Like an unparsable query: a request-level failure of a well-formed
    // frame, answered with a typed error, no garbage strike.
    EnqueueFromReader(EncodeErrorFrame(request.id, db.code(),
                                       "facts: " + db.error()));
    return;
  }
  Result<DatabaseRegistry::Entry> attached =
      service_->Attach(request.name, std::move(*db));
  if (!attached.ok()) {
    EnqueueFromReader(
        EncodeErrorFrame(request.id, attached.code(), attached.error()));
    return;
  }
  stats_->OnDatabaseAttached();
  EnqueueFromReader(EncodeAttachAckFrame(request.id, ToWireEntry(*attached)));
}

void Connection::HandleDetach(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  // Blocks the admin thread through the shard's drain; the ack reports
  // what the drain did. Solve terminals never wait on an admin thread, so
  // this cannot deadlock — and this connection keeps reading meanwhile.
  Result<DetachOutcome> out = service_->Detach(request.name);
  if (!out.ok()) {
    EnqueueFromReader(EncodeErrorFrame(request.id, out.code(), out.error()));
    return;
  }
  stats_->OnDatabaseDetached();
  EnqueueFromReader(EncodeDetachAckFrame(request.id, request.name, out->shed,
                                         out->drained));
}

void Connection::HandleApplyDelta(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  FactDelta delta;
  delta.id = request.delta_id;
  delta.ops = request.ops;
  // Write-ahead contract lives in the service: by the time this ack is
  // enqueued the delta is journaled (when durability is on) and the new
  // epoch published — a client that sees the ack can rely on the mutation
  // surviving a crash.
  Result<DeltaOutcome> out = service_->ApplyDelta(request.db, delta);
  if (!out.ok()) {
    stats_->OnDeltaRejected();
    EnqueueFromReader(EncodeErrorFrame(request.id, out.code(), out.error()));
    return;
  }
  stats_->OnDeltaApplied();
  EnqueueFromReader(EncodeDeltaAckFrame(request.id, *out));
}

void Connection::HandleSnapshot(const WireRequest& request) {
  if (draining_.load()) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kOverloaded,
        "daemon is draining; not accepting admin frames"));
    return;
  }
  // Flushes pending group acks, dumps the epoch's facts atomically, then
  // truncates the journal — bounded-time recovery for the next attach.
  Result<SnapshotOutcome> out = service_->Snapshot(request.db);
  if (!out.ok()) {
    EnqueueFromReader(EncodeErrorFrame(request.id, out.code(), out.error()));
    return;
  }
  EnqueueFromReader(EncodeSnapshotAckFrame(request.id, *out));
}

void Connection::HandlePromote(const WireRequest& request) {
  if (!options_.promote_hook) {
    EnqueueFromReader(EncodeErrorFrame(
        request.id, ErrorCode::kUnsupported,
        "this daemon has no failover hook; promote is only meaningful on "
        "a daemon started with --follow"));
    return;
  }
  Result<bool> was_follower = options_.promote_hook();
  if (!was_follower.ok()) {
    EnqueueFromReader(EncodeErrorFrame(request.id, was_follower.code(),
                                       was_follower.error()));
    return;
  }
  EnqueueFromReader(EncodePromoteAckFrame(request.id, *was_follower));
}

void Connection::HandleReplicate(const WireRequest& request) {
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    if (repl_token_ != 0) {
      EnqueueFromReader(EncodeErrorFrame(
          request.id, ErrorCode::kUnsupported,
          "a replication stream is already open on this connection"));
      return;
    }
  }
  stats_->OnReplStreamOpened();
  // AddReplicationListener synchronously feeds the bootstrap snapshot of
  // every attached database through OnReplicationEvent before returning,
  // so by the time the token is published the follower's resync is already
  // queued — and every later delta frame follows its bootstrap.
  auto self = shared_from_this();
  uint64_t token = service_->AddReplicationListener(
      [self](const ReplicationEvent& event) {
        self->OnReplicationEvent(event);
      });
  std::lock_guard<std::mutex> lock(repl_state_mu_);
  repl_token_ = token;
}

void Connection::HandleReplicaAck(const WireRequest& request) {
  uint64_t outstanding = 0;
  bool active;
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    active = repl_token_ != 0;
    if (request.seq > repl_acked_seq_) {
      // Cumulative, and never past what was actually sent.
      repl_acked_seq_ = std::min(request.seq, repl_next_seq_);
    }
    outstanding = repl_next_seq_ - repl_acked_seq_;
  }
  if (active) stats_->OnReplAckReceived(outstanding);
}

void Connection::OnReplicationEvent(const ReplicationEvent& event) {
  uint64_t seq;
  uint64_t outstanding;
  {
    std::lock_guard<std::mutex> lock(repl_state_mu_);
    seq = ++repl_next_seq_;
    outstanding = repl_next_seq_ - repl_acked_seq_;
  }
  stats_->OnReplEventSent(outstanding);
  // Worker-path enqueue: never blocks the applier holding the delta lock.
  // A follower that stops reading is bounded by the write deadline, which
  // aborts this connection and thereby unsubscribes the stream.
  EnqueueFromWorker(EncodeReplicationEventFrame(seq, event));
}

void Connection::HandleList(const WireRequest& request) {
  std::vector<WireDbEntry> entries;
  for (const DatabaseRegistry::Entry& entry : service_->registry().List()) {
    entries.push_back(ToWireEntry(entry));
  }
  EnqueueFromReader(EncodeDbListFrame(request.id, entries));
}

void Connection::HandleSolve(WireRequest request) {
  const uint64_t id = request.id;
  if (draining_.load()) {
    stats_->OnSolveRejectedOverloaded();
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kOverloaded, "daemon is draining; not accepting work"));
    return;
  }
  enum class Reject { kNone, kDuplicate, kInflightCap };
  Reject reject;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (inflight_.count(id) > 0) {
      reject = Reject::kDuplicate;
    } else if (inflight_.size() >= options_.max_inflight) {
      reject = Reject::kInflightCap;
    } else {
      reject = Reject::kNone;
      // Pre-insert before Submit so the terminal callback — which can fire
      // on a worker thread before Submit even returns — always finds the
      // entry to erase. The placeholder shard/service id is fixed up
      // below; only this reader thread reads the map until then.
      inflight_.emplace(id, InflightSolve{});
    }
  }
  if (reject == Reject::kDuplicate) {
    // Reusing an in-flight id would make "exactly one terminal frame per
    // id" ambiguous; reject the new frame, keep the old request.
    EnqueueFromReader(EncodeErrorFrame(
        id, ErrorCode::kParse,
        "duplicate id: a solve with this id is already in flight"));
    return;
  }
  if (reject == Reject::kInflightCap) {
    stats_->OnSolveRejectedInflightCap();
    EnqueueFromReader(
        EncodeErrorFrame(id, ErrorCode::kOverloaded,
                         "per-connection in-flight cap (" +
                             std::to_string(options_.max_inflight) +
                             ") reached"));
    return;
  }

  Result<Query> query = ParseQuery(request.query);
  if (!query.ok()) {
    // A well-formed frame carrying an unparsable query is a request-level
    // failure: it gets its terminal error frame and does not count toward
    // the consecutive-garbage limit.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(id);
    }
    EnqueueFromReader(EncodeErrorFrame(id, query.code(), query.error()));
    return;
  }

  // The shard's database is filled in by the sharded service when the
  // frame's "db" name (empty ⇒ default instance) resolves.
  ServeJob job(std::move(*query), nullptr);
  if (request.timeout_ms) {
    job.timeout = std::chrono::milliseconds(*request.timeout_ms);
  }
  job.deadline_from_submit = request.deadline_from_submit;
  job.max_steps = request.max_steps;
  job.method = request.method;
  job.degrade_to_sampling = request.degrade_to_sampling;
  job.max_samples = request.max_samples;
  job.isolation = request.isolation;
  job.parallelism = static_cast<int>(
      std::min<uint64_t>(request.parallelism, 64));
  job.chaos_sleep = std::chrono::milliseconds(request.chaos_sleep_ms);
  job.fail_after_probes = request.fail_after_probes;
  job.fault_attempts = request.fault_attempts;
  job.crash_after_probes = request.crash_after_probes;
  job.hog_mb_per_probe = request.hog_mb_per_probe;
  job.wedge_after_probes = request.wedge_after_probes;
  job.cache = request.cache_bypass ? CachePolicy::kBypass : CachePolicy::kDefault;

  auto self = shared_from_this();
  std::string resolved_db;
  Result<uint64_t> submitted = service_->Submit(
      request.db, std::move(job),
      [self, id](const ServeResponse& response) {
        self->SolveCallback(id, response);
      },
      &resolved_db);
  if (!submitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(id);
    }
    if (submitted.code() == ErrorCode::kDetached) {
      stats_->OnSolveRejectedDetached();
    } else {
      stats_->OnSolveRejectedOverloaded();
    }
    EnqueueFromReader(EncodeErrorFrame(id, submitted.code(), submitted.error()));
    return;
  }
  stats_->OnSolveAdmitted();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(id);
    // Absent means the terminal callback already fired and erased the
    // pre-inserted entry; do not resurrect it.
    if (it != inflight_.end()) {
      it->second.db = resolved_db;
      it->second.service_id = *submitted;
    }
  }
}

void Connection::SolveCallback(uint64_t client_id,
                               const ServeResponse& response) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(client_id);
  }
  std::string frame;
  if (response.state == RequestState::kCancelled) {
    frame = EncodeCancelledFrame(
        client_id,
        response.result.ok() ? "cancelled" : response.result.error());
  } else if (response.result.ok()) {
    frame = EncodeResultFrame(client_id, *response.result, response.attempts,
                              response.latency);
  } else {
    frame = EncodeErrorFrame(client_id, response.result.code(),
                             response.result.error());
  }
  EnqueueFromWorker(std::move(frame));
}

void Connection::EnqueueFromWorker(std::string payload) {
  std::string frame = EncodeFrame(payload);
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    if (out_closed_) return;  // client is gone; nothing to deliver to
    outbound_.push_back(std::move(frame));
  }
  out_ready_cv_.notify_one();
}

void Connection::EnqueueFromReader(std::string payload) {
  std::string frame = EncodeFrame(payload);
  std::unique_lock<std::mutex> lock(out_mu_);
  // Backpressure: the reader stalls (stopping further reads → the TCP
  // window fills → the client's sends block) until the writer catches up
  // or the connection dies. The writer's own write deadline bounds this.
  out_space_cv_.wait(lock, [&] {
    return out_closed_ || out_finishing_ ||
           outbound_.size() < options_.outbound_soft_cap;
  });
  if (out_closed_) return;
  outbound_.push_back(std::move(frame));
  lock.unlock();
  out_ready_cv_.notify_one();
}

void Connection::WriterLoop() {
  for (;;) {
    std::string frame;
    {
      std::unique_lock<std::mutex> lock(out_mu_);
      out_ready_cv_.wait(lock, [&] {
        return !outbound_.empty() || out_closed_ || out_finishing_;
      });
      if (out_closed_) break;
      if (outbound_.empty()) break;  // finishing and fully flushed
      frame = std::move(outbound_.front());
      outbound_.pop_front();
    }
    out_space_cv_.notify_all();
    Result<size_t> w =
        WriteAll(socket_, frame.data(), frame.size(), options_.write_deadline);
    if (!w.ok()) {
      // Slow or dead reader past the write deadline: the stream is no
      // longer frame-aligned; drop the connection.
      Abort(CloseReason::kError);
      break;
    }
  }
  // Nothing more will ever be written: fail fast any producer still
  // enqueueing and let the peer see EOF.
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    out_closed_ = true;
    outbound_.clear();
  }
  out_space_cv_.notify_all();
  socket_.ShutdownBoth();
}

}  // namespace cqa
