#ifndef CQA_SERVE_NET_DAEMON_STATS_H_
#define CQA_SERVE_NET_DAEMON_STATS_H_

#include <mutex>

#include "cqa/serve/net/protocol.h"

namespace cqa {

enum class CloseReason;

/// Thread-safe accumulator for `DaemonStats`, shared by the daemon and all
/// of its connections (connections outlive neither the collector nor the
/// daemon that owns both).
class DaemonStatsCollector {
 public:
  void OnConnectionOpened() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.connections_opened;
    ++stats_.connections_active;
  }

  void OnConnectionClosed(CloseReason reason);

  void OnFrame(bool garbage) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_received;
    if (garbage) ++stats_.frames_garbage;
  }

  void OnSolveAdmitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.solves_admitted;
  }

  void OnSolveRejectedInflightCap() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.solves_rejected_inflight_cap;
  }

  void OnSolveRejectedOverloaded() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.solves_rejected_overloaded;
  }

  void OnSolveRejectedDetached() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.solves_rejected_detached;
  }

  void OnAnswersStream(bool resumed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.answers_streams;
    if (resumed) ++stats_.answers_resumed;
  }

  void OnAnswerChunkSent(uint64_t tuples) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.answer_chunks_sent;
    stats_.answer_tuples_sent += tuples;
  }

  void OnAnswersStaleCursor() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.answers_stale_cursors;
  }

  void OnDatabaseAttached() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.databases_attached;
  }

  void OnDatabaseDetached() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.databases_detached;
  }

  void OnDeltaApplied() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_applied;
  }

  void OnDeltaRejected() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_rejected;
  }

  // Replication accounting (primary side). `outstanding` is the calling
  // stream's sent-minus-acked count, published as the `repl_lag` gauge —
  // last writer wins, which is exact for the common single-follower case.
  void OnReplStreamOpened() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.repl_streams_opened;
  }

  void OnReplStreamClosed() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.repl_streams_closed;
    if (stats_.repl_streams_closed >= stats_.repl_streams_opened) {
      stats_.repl_lag = 0;  // no live stream left to lag
    }
  }

  void OnReplEventSent(uint64_t outstanding) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.repl_events_sent;
    stats_.repl_lag = outstanding;
  }

  void OnReplAckReceived(uint64_t outstanding) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.repl_acks_received;
    stats_.repl_lag = outstanding;
  }

  // Replication accounting (follower side).
  void OnFollowerConnect() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.follower_connects;
  }

  void OnFollowerDisconnect() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.follower_disconnects;
  }

  void OnFollowerSnapshotApplied() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.follower_snapshots_applied;
  }

  void OnFollowerDeltaApplied() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.follower_deltas_applied;
  }

  void OnFollowerApplyError() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.follower_apply_errors;
  }

  DaemonStats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  DaemonStats stats_;
};

}  // namespace cqa

#endif  // CQA_SERVE_NET_DAEMON_STATS_H_
