#ifndef CQA_SERVE_STATS_H_
#define CQA_SERVE_STATS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cqa {

/// A point-in-time snapshot of `SolveService` accounting. Counter identity:
///   submitted == accepted + shed
///   accepted  == completed + failed + cancelled + (still queued/running)
/// `retries` counts extra attempts, not requests; `degraded` counts
/// completions whose verdict was qualified (probably-certain / exhausted)
/// rather than exact.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;  // terminal, with a solve report (ok result)
  uint64_t failed = 0;     // terminal, with a typed error result
  uint64_t cancelled = 0;  // terminal via cancellation or shutdown
  uint64_t retries = 0;
  uint64_t degraded = 0;
  uint64_t inflight = 0;  // popped by a worker, not yet terminal

  /// Result-cache counters, folded in by `SolveService::Stats` (all zero
  /// when the service runs without a cache). Hits complete before
  /// admission; `cache_misses` counts lookups that did not hit, of which
  /// `cache_coalesced` piggybacked on an in-flight identical solve instead
  /// of scheduling work (so solves actually executed = misses − coalesced);
  /// `cache_bypass` counts jobs that opted out via `CachePolicy::kBypass`.
  /// Identity: hits + misses + bypass == cache-eligible submissions.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_coalesced = 0;
  uint64_t cache_bypass = 0;
  uint64_t cache_entries = 0;    // current size (gauge)
  uint64_t cache_evictions = 0;
  /// Delta-invalidation counters: entries dropped because a delta touched
  /// a relation their query mentions, vs. entries carried (rekeyed) to the
  /// new epoch because it did not. Their ratio is the cache's invalidation
  /// precision under live updates.
  uint64_t cache_invalidated = 0;
  uint64_t cache_rekeyed = 0;

  /// Live-update counters, overlaid per database by the sharded registry
  /// layer (zero for a standalone `SolveService`, which never sees
  /// deltas). `epoch` is a gauge: the number of deltas ever applied to the
  /// database, including those replayed from the journal at attach;
  /// `journal_bytes` is the journal's on-disk size (gauge), the other two
  /// are monotone counters for this process's lifetime.
  uint64_t epoch = 0;
  uint64_t deltas_applied = 0;
  uint64_t journal_bytes = 0;
  uint64_t journal_fsyncs = 0;
  /// Snapshot/compaction counters, overlaid like the journal counters.
  /// `snapshots_taken`/`snapshots_failed` count this process's attempts;
  /// `snapshot_bytes` is the last committed snapshot's file size (gauge,
  /// 0 before the first) and `snapshot_epoch` the epoch it captured.
  uint64_t snapshots_taken = 0;
  uint64_t snapshots_failed = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t snapshot_epoch = 0;

  /// Sandbox counters (all zero when no solve ever ran under fork
  /// isolation). `sandbox_forks` counts supervised children spawned;
  /// `sandbox_kills` children the supervisor SIGKILLed (grace breach or
  /// cancellation); `sandbox_crashes` children that died without a verdict
  /// (mapped to `kWorkerCrashed`); `sandbox_rss_breaches` children that hit
  /// the RSS cap (mapped to `kResourceExhausted`). `sandbox_peak_rss_kb` is
  /// a high-water gauge of child peak RSS across all forks.
  uint64_t sandbox_forks = 0;
  uint64_t sandbox_kills = 0;
  uint64_t sandbox_crashes = 0;
  uint64_t sandbox_rss_breaches = 0;
  uint64_t sandbox_peak_rss_kb = 0;

  /// Component-parallel counters (all zero when every solve ran the
  /// sequential path). `parallel_solves` counts in-process solves that went
  /// through the component decomposer (parallelism > 1, exponential
  /// engine); `components_found` sums the component tasks they produced;
  /// `parallel_steals` sums work-stealing pool steals. Sandboxed solves
  /// contribute too — their reports carry the counts back over the result
  /// pipe.
  uint64_t parallel_solves = 0;
  uint64_t components_found = 0;
  uint64_t parallel_steals = 0;

  /// Answer-stream counters. `answer_chunks` counts chunks produced by
  /// workers (cache hits excluded — those show up as `cache_hits`),
  /// `answer_tuples` sums the certain answers those chunks carried, and
  /// `answers_stale_cursors` counts resume attempts refused at admission
  /// because their cursor named a fingerprint from a flipped epoch.
  uint64_t answer_chunks = 0;
  uint64_t answer_tuples = 0;
  uint64_t answers_stale_cursors = 0;

  /// Submit-to-terminal latency percentiles over every terminal request.
  uint64_t latency_count = 0;
  uint64_t latency_p50_us = 0;
  uint64_t latency_p90_us = 0;
  uint64_t latency_p99_us = 0;
  uint64_t latency_max_us = 0;

  std::string ToString() const;
};

/// Thread-safe collector behind `ServiceStats`. Counters are plain
/// increments under a mutex (contention is dwarfed by the solves
/// themselves); latencies are kept exactly up to a cap, after which new
/// samples overwrite a deterministic rotating slot so the distribution
/// stays bounded in memory.
class StatsCollector {
 public:
  void RecordSubmitted();
  void RecordAccepted();
  void RecordShed();
  void RecordRetry();
  void RecordStarted();
  /// Terminal accounting for one request. `cancelled` wins over the other
  /// two; otherwise `ok` picks completed vs failed. `started` says whether
  /// the request was ever popped by a worker (balances the inflight gauge).
  void RecordTerminal(bool started, bool cancelled, bool ok, bool degraded,
                      std::chrono::microseconds latency);
  /// Sandbox accounting for one forked solve (see the ServiceStats fields).
  void RecordSandbox(bool killed, bool crashed, bool rss_breach,
                     uint64_t peak_rss_kb);
  /// Accounting for one solve that went through the component decomposer.
  void RecordParallel(uint64_t components, uint64_t steals);
  /// Accounting for one answer chunk a worker produced.
  void RecordAnswerChunk(uint64_t tuples);
  /// A resume cursor refused at admission for naming a flipped epoch.
  void RecordStaleCursor();

  ServiceStats Snapshot() const;

 private:
  static constexpr size_t kMaxLatencySamples = 1 << 16;

  mutable std::mutex mu_;
  ServiceStats counters_;
  std::vector<uint64_t> latencies_us_;
  size_t next_overwrite_ = 0;
};

}  // namespace cqa

#endif  // CQA_SERVE_STATS_H_
