#ifndef CQA_SERVE_SERVICE_H_
#define CQA_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cqa/base/backoff.h"
#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/cache/result_cache.h"
#include "cqa/cache/single_flight.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"
#include "cqa/serve/bounded_queue.h"
#include "cqa/serve/sandbox/sandbox.h"
#include "cqa/serve/stats.h"

namespace cqa {

/// Per-job cache participation.
enum class CachePolicy {
  /// Look up before admission, coalesce onto an identical in-flight solve,
  /// store exact verdicts.
  kDefault,
  /// Skip the cache entirely: no lookup, no coalescing, no store. For
  /// measurements (bench cold mode) and jobs whose chaos knobs make the
  /// outcome deliberately non-reusable.
  kBypass,
};

/// What a `ServeJob` asks for.
enum class JobKind {
  /// Decide CERTAINTY(q): one boolean verdict (the default).
  kCertainty,
  /// Enumerate one chunk of the certain answers to q with free variables:
  /// the report carries `SolveReport::answer_chunk` and the response a
  /// resume cursor. Answer jobs always run in-process (chunks do not cross
  /// the sandbox wire) and skip parallel decomposition.
  kAnswers,
};

/// One unit of work for `SolveService`: decide CERTAINTY(q) on a database.
/// The database is shared (many jobs typically target the same instance)
/// and must stay immutable while the service holds a reference.
struct ServeJob {
  ServeJob(Query q, std::shared_ptr<const Database> database)
      : query(std::move(q)), db(std::move(database)) {}

  Query query;
  std::shared_ptr<const Database> db;

  /// Per-attempt wall-clock budget; `nullopt` inherits the service's
  /// `default_timeout`, zero means no per-request deadline (the service
  /// deadline, if any, still applies).
  std::optional<std::chrono::milliseconds> timeout;
  /// When true, the deadline is anchored at submit time — queue wait,
  /// backoff, and earlier attempts all consume the same absolute budget
  /// `submitted + timeout` — instead of re-arming `now + timeout` per
  /// attempt. This is the semantics under which earliest-deadline-first
  /// queueing (ServiceOptions::discipline) actually reduces timeout rates.
  bool deadline_from_submit = false;
  /// Per-attempt step (search-node) budget.
  uint64_t max_steps = Budget::kNoStepLimit;
  SolverMethod method = SolverMethod::kAuto;
  /// See `SolveOptions`: on kAuto, an exhausted exact stage degrades to a
  /// qualified sampling verdict (which counts as completion — degraded
  /// verdicts are surfaced, never retried).
  bool degrade_to_sampling = true;
  uint64_t max_samples = 10'000;
  /// Pool width for component-decomposed solving of this request; 0 (the
  /// default) inherits `ServiceOptions::parallelism`, 1 forces the plain
  /// sequential path, >1 decomposes. Clamped to [1, 64] effective.
  int parallelism = 0;

  /// Where this solve runs. `kAuto` (the default) defers to the service:
  /// its own `ServiceOptions::isolation` policy decides, which for a
  /// service in `kAuto` means fork isolation exactly when the query
  /// classifies outside the tractable islands (coNP-risk traffic). An
  /// explicit `kInproc`/`kFork` here overrides the service policy.
  IsolationMode isolation = IsolationMode::kAuto;

  /// Chaos knobs: inject `fail_after_probes` into the attempt's `Budget`
  /// (see base/budget.h) for the first `fault_attempts` attempts, so tests
  /// can force deterministic exhaustion and then a clean retry.
  uint64_t fail_after_probes = 0;
  int fault_attempts = INT_MAX;
  /// Crash/leak/wedge injection (base/budget.h), gated by `fault_attempts`
  /// like `fail_after_probes`. Under fork isolation these exercise the
  /// sandbox's containment paths (`kWorkerCrashed`, `kResourceExhausted`,
  /// SIGKILL reclaim); inproc they do exactly what they say — crash or
  /// wedge the worker — which is the unprotected failure mode the sandbox
  /// exists to contain.
  uint64_t crash_after_probes = 0;
  uint64_t hog_mb_per_probe = 0;
  uint64_t wedge_after_probes = 0;
  /// Chaos knob: an interruptible sleep before each attempt's solve,
  /// giving tests a deterministic-duration "slow request". Cancellation
  /// and shutdown drain cut the sleep short (the request then terminates
  /// as cancelled).
  std::chrono::milliseconds chaos_sleep{0};

  /// Result-cache participation; ignored when the service has no cache.
  CachePolicy cache = CachePolicy::kDefault;

  /// Job kind; the fields below only apply to `kAnswers` jobs.
  JobKind kind = JobKind::kCertainty;
  /// Free variables of the answer query, in output-tuple order. Names must
  /// occur in the query; the enumerator rejects unknown variables.
  std::vector<std::string> free_vars;
  /// First flat candidate position of the requested chunk. Overwritten by
  /// the decoded `cursor` when one is supplied.
  uint64_t answer_start = 0;
  /// Maximum answers per chunk (clamped to at least 1).
  uint64_t answer_max_chunk = 64;
  /// Optional resume cursor (the `answer_cursor` of a previous response).
  /// Validated at `Submit`: malformed or mismatching the query fails with
  /// `kParse`; a fingerprint from another epoch fails with `kStaleCursor`.
  std::string cursor;
};

/// How a request left the service. Shed requests never enter the system:
/// `Submit` fails synchronously with `kOverloaded` and no response is
/// delivered for them.
enum class RequestState {
  /// The solve ran to a terminal result: an ok `SolveReport` (possibly
  /// with a degraded verdict) or a typed non-cancellation error.
  kCompleted,
  /// Cancelled — by `Cancel`/`CancelAll`, or by the shutdown drain
  /// deadline while still queued or running.
  kCancelled,
};

const char* ToString(RequestState state);

/// Terminal outcome of one accepted request, delivered exactly once via
/// the submit callback.
struct ServeResponse {
  uint64_t id = 0;
  RequestState state = RequestState::kCancelled;
  Result<SolveReport> result =
      Result<SolveReport>::Error(ErrorCode::kCancelled, "request never ran");
  /// Solve attempts made (0 when cancelled while still queued).
  int attempts = 0;
  /// Submit-to-terminal wall clock, queueing and backoff included.
  std::chrono::microseconds latency{0};
  /// For successful `kAnswers` jobs whose chunk did not finish the space:
  /// the opaque cursor that resumes the stream at the chunk's `next`
  /// position. Stamped at delivery time against the epoch the request was
  /// admitted under — cache hits and coalesced followers carry a cursor
  /// for the *current* fingerprint, never a stale stored one. Empty when
  /// the stream is done or the job was not an answers job.
  std::string answer_cursor;
};

/// Consumption order of the bounded work queue.
enum class QueueDiscipline {
  /// First in, first out.
  kFifo,
  /// Earliest-deadline-first: workers pop the queued request whose
  /// effective deadline — min(service deadline, submit time + timeout) —
  /// is nearest, ties broken FIFO. Requests with no deadline sort last.
  /// Under mixed timeouts this serves urgent requests before they expire
  /// in the queue, cutting timeout rates versus FIFO (see serve_test).
  kEdf,
};

struct ServiceOptions {
  /// Worker threads; clamped to at least 1.
  int workers = 4;
  /// Bounded queue capacity; a full queue sheds new submissions with
  /// `kOverloaded`. Clamped to at least 1.
  size_t queue_capacity = 64;
  /// Queue consumption order. EDF is the default: with homogeneous
  /// deadlines it degrades to exact FIFO behaviour.
  QueueDiscipline discipline = QueueDiscipline::kEdf;
  /// Default per-attempt timeout for jobs that do not set their own; zero
  /// means none.
  std::chrono::milliseconds default_timeout{0};
  /// Absolute deadline for the service as a whole: every attempt's budget
  /// deadline is clamped to it (`time_point::max()` = none). This is the
  /// top of the inheritance chain service → request → exact-stage split.
  Budget::Clock::time_point service_deadline = Budget::Clock::time_point::max();
  /// Extra attempts for requests that fail with resource exhaustion
  /// (deadline/step budget) *without* producing a degraded verdict. Each
  /// retry waits per `backoff` and re-arms a fresh per-attempt budget.
  int max_retries = 0;
  BackoffPolicy backoff;
  /// Seed for backoff jitter (each worker derives its own stream).
  uint64_t backoff_seed = 0xb0ff5eedu;

  /// Result-cache capacity in entries; 0 disables the cache (the default:
  /// existing deployments opt in via `cqa_cli serve`, which enables it).
  /// With a cache, identical (query, database, method) solves are answered
  /// before admission on a hit, and concurrent identical misses coalesce
  /// onto a single worker (single-flight).
  size_t cache_entries = 0;
  /// Shards of the cache's LRU map (clamped to [1, cache_entries]).
  size_t cache_shards = 8;
  /// Isolation policy for jobs that leave `ServeJob::isolation` at
  /// `kAuto`: `kInproc` (the default) runs every solve on the worker
  /// thread; `kFork` sandboxes every solve; `kAuto` escalates to a
  /// sandbox exactly when `ShouldIsolate(q)` says the query is coNP-risk
  /// (not FO, not q1-shaped) — the traffic whose exact solvers can wedge.
  IsolationMode isolation = IsolationMode::kInproc;
  /// Hard limits for sandboxed solves (kill grace, RSS cap).
  SandboxLimits sandbox;
  /// Default pool width for component-decomposed solving, used by jobs
  /// that leave `ServeJob::parallelism` at 0. 1 (the default) keeps every
  /// solve on the plain sequential path.
  int parallelism = 1;
  /// Per-worker warm state: memoized classification, rewritings, and
  /// Algorithm-1 arenas reused across requests on the same database
  /// fingerprint. Off by default — warm memo hits change *work done*, not
  /// answers, but deterministic fault-injection tests count probes and
  /// must opt in deliberately.
  bool warm_state = false;
};

/// A multi-threaded CERTAINTY(q) solve service: a fixed worker pool behind
/// a bounded MPMC queue, with admission control (load shedding), budget
/// inheritance, retry with exponential backoff and jitter, cross-request
/// cancellation, and graceful shutdown.
///
/// Lifecycle guarantees (the chaos suite pins these down):
///  * Every call to `Submit` either fails synchronously (`kOverloaded`,
///    counted as shed) or delivers its callback exactly once with a
///    terminal `ServeResponse` (`kCompleted` or `kCancelled`).
///  * `Shutdown` always terminates: it drains in-flight and queued work
///    until the drain deadline, then cancels whatever remains.
///
/// Callbacks run on worker threads, on the `Shutdown` caller's thread for
/// requests cancelled while queued, or on the `Submit` caller's thread for
/// cache hits (delivered synchronously, before `Submit` returns); they
/// must be thread-safe and must not call `Shutdown`.
///
/// With `ServiceOptions::cache_entries > 0` the service front-loads a
/// result cache: a hit answers before admission (no queueing, no worker),
/// a miss opens a single-flight — concurrent identical submissions attach
/// to the in-flight leader and are settled by its terminal result. A
/// submission whose effective deadline is strictly tighter than the
/// leader's is not coalesced (parking it would silently drop its own
/// deadline); it runs independently and its result still fills the cache.
/// A cancelled or failed leader promotes its earliest-deadline follower
/// to re-run the solve, so coalesced requests are never stranded. See
/// docs/CACHING.md.
class SolveService {
 public:
  using Callback = std::function<void(const ServeResponse&)>;

  explicit SolveService(ServiceOptions options);
  ~SolveService();  // shuts down with a zero drain deadline if still running

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admission control: enqueues the job and returns its request id, or
  /// fails with `kOverloaded` when the queue is full or the service is
  /// shutting down (the request is shed; the callback will never run).
  Result<uint64_t> Submit(ServeJob job, Callback callback);

  /// Requests cancellation of one in-flight or queued request. Safe from
  /// any thread. Returns false when the id is unknown or already terminal.
  /// The terminal callback still fires (state `kCancelled` if the
  /// cancellation won the race).
  bool Cancel(uint64_t id);

  /// Cancels every request currently known to the service.
  void CancelAll();

  /// Graceful shutdown: stops admissions immediately, lets workers drain
  /// queued and in-flight work for up to `drain_deadline`, then cancels
  /// the remainder and joins the pool. Returns true when everything
  /// drained without forced cancellation. Idempotent; concurrent callers
  /// serialize.
  bool Shutdown(std::chrono::milliseconds drain_deadline);

  /// Sheds every request still *queued* (not yet popped by a worker),
  /// delivering each a terminal `kCompleted` response carrying the given
  /// typed error; coalesced followers promoted by a shed flight leader are
  /// shed too (never stranded, never enqueued). In-flight requests are
  /// untouched. Returns the number of requests shed. Used by the registry
  /// layer's detach drain: queued work for a detaching database terminates
  /// with `kDetached` instead of occupying the drain window.
  size_t ShedQueued(ErrorCode code, const std::string& message);

  /// Migrates the result cache across a database delta (no-op without a
  /// cache): entries whose query footprint intersects `touched` are
  /// dropped, the rest are rekeyed to `new_fp` and keep serving hits.
  /// Returns {invalidated, rekeyed}. The caller (the registry layer)
  /// swaps in the new epoch only after this returns, so a lookup under
  /// the new fingerprint never races a stale entry.
  std::pair<uint64_t, uint64_t> OnDatabaseDelta(
      const DbFingerprint& old_fp, const DbFingerprint& new_fp,
      const std::vector<std::string>& touched);

  /// Aggregate accounting (cache counters folded in when a cache is
  /// configured); callable at any time, including after shutdown.
  ServiceStats Stats() const;

  /// The result cache, or null when disabled. Exposed for tests and stats.
  const ResultCache* cache() const { return cache_.get(); }

  const ServiceOptions& options() const { return options_; }

 private:
  struct Request {
    Request(uint64_t request_id, ServeJob j, Callback cb)
        : id(request_id), job(std::move(j)), callback(std::move(cb)) {}

    const uint64_t id;
    ServeJob job;
    Callback callback;
    Budget::Clock::time_point submitted;
    /// EDF sort key: min(service deadline, submitted + timeout);
    /// `time_point::max()` when the request has no deadline at all.
    Budget::Clock::time_point deadline_key = Budget::Clock::time_point::max();
    std::shared_ptr<std::atomic<bool>> cancel;
    /// Exactly-once terminal guard.
    std::atomic<bool> done{false};
    int attempts = 0;
    /// Cache key when the request participates in the cache (empty text
    /// otherwise), and whether it currently leads the key's flight. Both
    /// are written before the request is visible to workers (or, for a
    /// promotion, by the thread that already owns the request).
    CacheKey cache_key;
    bool flight_leader = false;
    /// Whether this request's own terminal result may be stored in the
    /// cache: true for flight leaders (promotion included) and for
    /// requests refused from a flight because their deadline was tighter
    /// than the leader's; false for settled followers (their leader
    /// already stored the shared result).
    bool cache_store = false;
    /// Answers jobs only: the epoch fingerprint and query hash captured at
    /// Submit, used by `Finish` to stamp `ServeResponse::answer_cursor`.
    DbFingerprint fp;
    uint64_t query_hash = 0;
  };
  using RequestPtr = std::shared_ptr<Request>;

  void WorkerLoop(int worker_index);
  /// Processes one popped request; returns the follower promoted to lead
  /// the same flight when this request's terminal could not settle it
  /// (the worker processes the promotion inline, see WorkerLoop).
  RequestPtr Process(const RequestPtr& req, Rng* rng, WarmState* warm);
  /// Delivers the terminal response exactly once, updates accounting, and
  /// settles the request's single-flight followers (leaders only): a
  /// cacheable result completes them, anything else promotes one — the
  /// returned request, which the caller must run or re-enqueue.
  RequestPtr Finish(const RequestPtr& req, bool started, RequestState state,
                    Result<SolveReport> result);
  /// Terminal delivery for a coalesced follower settled by its leader.
  void SettleFollower(const RequestPtr& follower, const SolveReport& report);
  /// Called when a flight leader is shed at admission: hands leadership to
  /// a follower that joined in the window (re-enqueueing it) or dissolves
  /// the flight.
  void AbandonLeadership(const RequestPtr& req);
  /// Sleeps for `delay`, interruptible by shutdown or the request's cancel
  /// token; true when the full delay elapsed (retry may proceed).
  bool WaitBackoff(std::chrono::milliseconds delay,
                   const std::atomic<bool>& cancel);

  ServiceOptions options_;
  BoundedQueue<RequestPtr> queue_;
  StatsCollector stats_;
  std::unique_ptr<ResultCache> cache_;
  SingleFlight<RequestPtr, Budget::Clock::time_point> flights_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> draining_{false};

  /// Guards `registry_` and `outstanding_`; `drained_cv_` signals both
  /// "outstanding_ hit zero" and "a backoff sleep should re-check".
  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>> registry_;
  uint64_t outstanding_ = 0;

  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  bool drained_result_ = true;

  std::vector<std::thread> workers_;
};

}  // namespace cqa

#endif  // CQA_SERVE_SERVICE_H_
