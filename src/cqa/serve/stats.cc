#include "cqa/serve/stats.h"

#include <algorithm>

namespace cqa {

namespace {

// p in [0,1]; nearest-rank percentile of a sorted, non-empty window. The
// rank is clamped so no rounding of `p * (n-1)` can ever index out of
// bounds (the empty window is handled by the caller, which reports zeros).
uint64_t PercentileSorted(const std::vector<uint64_t>& sorted, double p) {
  size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  rank = std::min(rank, sorted.size() - 1);
  return sorted[rank];
}

}  // namespace

void StatsCollector::RecordSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
}

void StatsCollector::RecordAccepted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.accepted;
}

void StatsCollector::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.shed;
}

void StatsCollector::RecordRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.retries;
}

void StatsCollector::RecordStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.inflight;
}

void StatsCollector::RecordTerminal(bool started, bool cancelled, bool ok,
                                    bool degraded,
                                    std::chrono::microseconds latency) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started) --counters_.inflight;
  if (cancelled) {
    ++counters_.cancelled;
  } else if (ok) {
    ++counters_.completed;
    if (degraded) ++counters_.degraded;
  } else {
    ++counters_.failed;
  }
  uint64_t us = static_cast<uint64_t>(std::max<int64_t>(latency.count(), 0));
  if (latencies_us_.size() < kMaxLatencySamples) {
    latencies_us_.push_back(us);
  } else {
    latencies_us_[next_overwrite_] = us;
    next_overwrite_ = (next_overwrite_ + 1) % kMaxLatencySamples;
  }
  ++counters_.latency_count;
  counters_.latency_max_us = std::max(counters_.latency_max_us, us);
}

void StatsCollector::RecordSandbox(bool killed, bool crashed, bool rss_breach,
                                   uint64_t peak_rss_kb) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.sandbox_forks;
  if (killed) ++counters_.sandbox_kills;
  if (crashed) ++counters_.sandbox_crashes;
  if (rss_breach) ++counters_.sandbox_rss_breaches;
  counters_.sandbox_peak_rss_kb =
      std::max(counters_.sandbox_peak_rss_kb, peak_rss_kb);
}

void StatsCollector::RecordParallel(uint64_t components, uint64_t steals) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.parallel_solves;
  counters_.components_found += components;
  counters_.parallel_steals += steals;
}

void StatsCollector::RecordAnswerChunk(uint64_t tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.answer_chunks;
  counters_.answer_tuples += tuples;
}

void StatsCollector::RecordStaleCursor() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.answers_stale_cursors;
}

ServiceStats StatsCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out = counters_;
  if (latencies_us_.empty()) {
    // An empty window reports all-zero percentiles (and latency_count is
    // zero by construction): never touch the sample buffer.
    return out;
  }
  std::vector<uint64_t> sorted = latencies_us_;
  std::sort(sorted.begin(), sorted.end());
  out.latency_p50_us = PercentileSorted(sorted, 0.50);
  out.latency_p90_us = PercentileSorted(sorted, 0.90);
  out.latency_p99_us = PercentileSorted(sorted, 0.99);
  return out;
}

std::string ServiceStats::ToString() const {
  std::string s;
  s += "submitted " + std::to_string(submitted);
  s += ", accepted " + std::to_string(accepted);
  s += ", shed " + std::to_string(shed);
  s += ", completed " + std::to_string(completed);
  s += ", failed " + std::to_string(failed);
  s += ", cancelled " + std::to_string(cancelled);
  s += ", retries " + std::to_string(retries);
  s += ", degraded " + std::to_string(degraded);
  s += "; cache hits " + std::to_string(cache_hits);
  s += " misses " + std::to_string(cache_misses);
  s += " coalesced " + std::to_string(cache_coalesced);
  s += " bypass " + std::to_string(cache_bypass);
  s += " entries " + std::to_string(cache_entries);
  s += " evictions " + std::to_string(cache_evictions);
  s += "; epoch " + std::to_string(epoch);
  s += " deltas " + std::to_string(deltas_applied);
  s += " journal-bytes " + std::to_string(journal_bytes);
  s += " snapshots " + std::to_string(snapshots_taken);
  s += " snapshot-failures " + std::to_string(snapshots_failed);
  s += "; sandbox forks " + std::to_string(sandbox_forks);
  s += " kills " + std::to_string(sandbox_kills);
  s += " crashes " + std::to_string(sandbox_crashes);
  s += " rss-breaches " + std::to_string(sandbox_rss_breaches);
  s += " peak-rss-kb " + std::to_string(sandbox_peak_rss_kb);
  s += "; parallel solves " + std::to_string(parallel_solves);
  s += " components " + std::to_string(components_found);
  s += " steals " + std::to_string(parallel_steals);
  s += "; answers chunks " + std::to_string(answer_chunks);
  s += " tuples " + std::to_string(answer_tuples);
  s += " stale-cursors " + std::to_string(answers_stale_cursors);
  s += "; latency us p50 " + std::to_string(latency_p50_us);
  s += " p90 " + std::to_string(latency_p90_us);
  s += " p99 " + std::to_string(latency_p99_us);
  s += " max " + std::to_string(latency_max_us);
  return s;
}

}  // namespace cqa
