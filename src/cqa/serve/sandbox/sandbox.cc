#include "cqa/serve/sandbox/sandbox.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <new>

#include "cqa/attack/classification.h"
#include "cqa/base/interner.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/serve/sandbox/codec.h"

namespace cqa {
namespace {

// Child exit protocol. 0 = frame written; the distinguished codes let the
// parent type a failure even when the pipe carries nothing.
constexpr int kExitBadAlloc = 9;   // allocation failed (RSS cap breach)
constexpr int kExitException = 10; // any other exception escaped the solve

// Supervisor poll slice: bounds how stale the cancel/deadline checks can
// be, and therefore the reclaim latency beyond the grace window.
constexpr int kPollSliceMs = 10;

// Parent address-space size in bytes (VmSize), for RSS-cap headroom
// accounting. 0 when /proc is unavailable (the cap then falls back to an
// absolute limit).
uint64_t ParentAddressSpaceBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages = 0;
  int n = std::fscanf(f, "%llu", &pages);
  std::fclose(f);
  if (n != 1) return 0;
  long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  return static_cast<uint64_t>(pages) * static_cast<uint64_t>(page);
}

// Child side: applies the address-space cap. Headroom semantics — the cap
// is `parent_as + max_rss_mb` so "64 MiB" means 64 MiB *of solve growth*,
// independent of how large the warm parent already is. Falls back to an
// absolute cap when the parent size was unreadable.
void ApplyRssCap(uint64_t max_rss_mb, uint64_t parent_as_bytes) {
  if (max_rss_mb == 0) return;
  uint64_t cap = (max_rss_mb << 20) +
                 (parent_as_bytes != 0 ? parent_as_bytes : 0);
  struct rlimit rl;
  rl.rlim_cur = static_cast<rlim_t>(cap);
  rl.rlim_max = static_cast<rlim_t>(cap);
  setrlimit(RLIMIT_AS, &rl);  // best-effort; failure means no cap
}

// Child side: run the solve, write one frame, _exit. Never returns.
[[noreturn]] void ChildMain(int write_fd, const Query& q, const Database& db,
                            const SandboxJob& job, uint64_t max_rss_mb,
                            uint64_t parent_as_bytes) {
  ApplyRssCap(max_rss_mb, parent_as_bytes);
  std::string frame;
  try {
    Budget budget;
    budget.deadline = job.deadline;
    budget.max_steps = job.max_steps;
    budget.fail_after_probes = job.fail_after_probes;
    budget.crash_after_probes = job.crash_after_probes;
    budget.hog_mb_per_probe = job.hog_mb_per_probe;
    budget.wedge_after_probes = job.wedge_after_probes;
    SolveOptions opts;
    opts.method = job.method;
    opts.budget = &budget;
    opts.warm = job.warm;
    opts.degrade_to_sampling = job.degrade_to_sampling;
    opts.max_samples = job.max_samples;
    opts.sampling_seed = job.sampling_seed;
    opts.parallelism = job.parallelism;
    Result<SolveReport> outcome = SolveCertainty(q, db, opts);
    frame = EncodeOutcome(outcome);
  } catch (const std::bad_alloc&) {
    _exit(kExitBadAlloc);
  } catch (...) {
    _exit(kExitException);
  }
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = write(write_fd, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      _exit(kExitException);  // pipe gone: parent will see the truncation
    }
  }
  _exit(0);
}

}  // namespace

std::string ToString(IsolationMode m) {
  switch (m) {
    case IsolationMode::kAuto:
      return "auto";
    case IsolationMode::kInproc:
      return "inproc";
    case IsolationMode::kFork:
      return "fork";
  }
  return "?";
}

std::optional<IsolationMode> ParseIsolationMode(const std::string& s) {
  if (s == "auto") return IsolationMode::kAuto;
  if (s == "inproc") return IsolationMode::kInproc;
  if (s == "fork") return IsolationMode::kFork;
  return std::nullopt;
}

bool ShouldIsolate(const Query& q) {
  // The tractable islands: an FO classification solves by rewriting in
  // polynomial time, and a q1-shaped query solves by matching. Everything
  // else may hand the exact solvers an exponential search.
  if (Classify(q).cls == CertaintyClass::kFO) return false;
  if (DetectQ1Shape(q).has_value()) return false;
  return true;
}

SandboxOutcome RunSandboxedSolve(const Query& q, const Database& db,
                                 const SandboxJob& job,
                                 const SandboxLimits& limits,
                                 const std::atomic<bool>* cancel) {
  SandboxOutcome out;

  // Pre-warm the database's lazy indexes so the child inherits them built
  // (COW) instead of taking `blocks_mu_` — a lock another parent thread
  // could hold at the fork moment — to build its own copy.
  db.blocks();
  db.ContentDigest();
  uint64_t parent_as = ParentAddressSpaceBytes();

  int fds[2];
  if (pipe(fds) != 0) {
    out.result = Result<SolveReport>::Error(
        ErrorCode::kOverloaded,
        std::string("sandbox: pipe: ") + std::strerror(errno));
    return out;
  }

  // The one process-global lock a child's solve touches is the interner
  // (solvers intern fresh symbols). Hold it across fork so no other thread
  // owns it in the child's (single-threaded) copy; both sides release
  // immediately. glibc serializes malloc internally across fork.
  Interner::Global().LockForFork();
  pid_t pid = fork();
  if (pid == 0) {
    Interner::Global().UnlockAfterFork();
    close(fds[0]);
    ChildMain(fds[1], q, db, job, limits.max_rss_mb, parent_as);
  }
  Interner::Global().UnlockAfterFork();
  close(fds[1]);
  if (pid < 0) {
    close(fds[0]);
    out.result = Result<SolveReport>::Error(
        ErrorCode::kOverloaded,
        std::string("sandbox: fork: ") + std::strerror(errno));
    return out;
  }

  // Supervision loop: accumulate pipe bytes in poll slices; leave on a
  // complete frame, EOF, cancellation, or grace breach.
  const bool has_deadline =
      job.deadline != Budget::Clock::time_point::max();
  const Budget::Clock::time_point kill_at =
      has_deadline ? job.deadline + limits.kill_grace
                   : Budget::Clock::time_point::max();
  std::string buf;
  bool cancel_kill = false;
  bool grace_kill = false;
  bool eof = false;
  char chunk[4096];
  while (!eof && !OutcomeFrameComplete(buf, nullptr)) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      cancel_kill = true;
      break;
    }
    if (has_deadline && Budget::Clock::now() >= kill_at) {
      grace_kill = true;
      break;
    }
    struct pollfd pfd;
    pfd.fd = fds[0];
    pfd.events = POLLIN;
    int pr = poll(&pfd, 1, kPollSliceMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;  // poll failure: fall through to kill+reap, type from status
    }
    if (pr == 0) continue;
    ssize_t n = read(fds[0], chunk, sizeof(chunk));
    if (n > 0) {
      buf.append(chunk, static_cast<size_t>(n));
    } else if (n == 0) {
      eof = true;
    } else if (errno != EINTR) {
      break;
    }
  }

  // Always kill-then-reap: SIGKILL on an already-exited child is discarded
  // (the zombie's pid cannot be recycled before it is reaped), and the
  // blocking wait guarantees this call never leaks a zombie.
  kill(pid, SIGKILL);
  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  while (wait4(pid, &status, 0, &ru) < 0 && errno == EINTR) {
  }
  out.peak_rss_kb = static_cast<uint64_t>(ru.ru_maxrss);

  // Final drain: the child may have completed its write in the races
  // between our last read, the kill decision, and its own exit. A verdict
  // that made it through the pipe intact wins over how the child died.
  if (!OutcomeFrameComplete(buf, nullptr)) {
    int flags = fcntl(fds[0], F_GETFL, 0);
    if (flags >= 0) fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    for (;;) {
      ssize_t n = read(fds[0], chunk, sizeof(chunk));
      if (n > 0) {
        buf.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
  }
  close(fds[0]);

  Result<SolveReport> decoded =
      Result<SolveReport>::Error(ErrorCode::kInternal, "");
  if (DecodeOutcome(buf, &decoded)) {
    out.result = std::move(decoded);
    return out;
  }

  if (cancel_kill) {
    out.killed = true;
    out.result = Result<SolveReport>::Error(
        ErrorCode::kCancelled, "sandbox: cancelled; child killed");
    return out;
  }
  if (grace_kill) {
    // Same code an inproc solve reports at its deadline, so retry policy
    // is isolation-agnostic; `killed` records that reclaim needed SIGKILL.
    out.killed = true;
    out.result = Result<SolveReport>::Error(
        ErrorCode::kDeadlineExceeded,
        "sandbox: deadline + kill grace exceeded; child killed");
    return out;
  }

  // The child died on its own without a decodable verdict.
  if (WIFEXITED(status)) {
    int code = WEXITSTATUS(status);
    if (code == kExitBadAlloc) {
      out.rss_breach = true;
      out.result = Result<SolveReport>::Error(
          ErrorCode::kResourceExhausted,
          "sandbox: child breached the RSS cap (allocation failed)");
      return out;
    }
    out.crashed = true;
    out.result = Result<SolveReport>::Error(
        ErrorCode::kWorkerCrashed,
        code == 0
            ? "sandbox: child exited cleanly with a truncated result pipe"
            : "sandbox: child exited with code " + std::to_string(code));
    return out;
  }
  out.crashed = true;
  int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
  out.result = Result<SolveReport>::Error(
      ErrorCode::kWorkerCrashed,
      "sandbox: child died on signal " + std::to_string(sig) +
          (sig == SIGSEGV ? " (SIGSEGV)" : ""));
  return out;
}

}  // namespace cqa
