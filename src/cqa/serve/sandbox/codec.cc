#include "cqa/serve/sandbox/codec.h"

#include <cstdint>
#include <cstring>

namespace cqa {
namespace {

// Payload format version; bumped on any layout change so a parent never
// misreads a frame from a stale child binary.
constexpr uint8_t kCodecVersion = 2;  // v2: parallel accounting fields

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked little-endian reader over one payload. Every getter
// returns false on underrun; decoding aborts (→ kWorkerCrashed upstream)
// rather than reading past the frame.
struct Reader {
  const uint8_t* p;
  size_t len;
  size_t pos = 0;

  bool GetU8(uint8_t* v) {
    if (pos + 1 > len) return false;
    *v = p[pos++];
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos + 4 > len) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    *v = r;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos + 8 > len) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    *v = r;
    return true;
  }

  bool GetString(std::string* v) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (pos + n > len) return false;
    v->assign(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return true;
  }
};

void EncodeClassification(std::string* out, const Classification& c) {
  PutU8(out, static_cast<uint8_t>(c.cls));
  PutU8(out, c.weakly_guarded ? 1 : 0);
  PutU8(out, c.guarded ? 1 : 0);
  PutU8(out, c.attack_graph_acyclic ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(c.negated_in_cycle));
  PutU8(out, c.two_cycle.has_value() ? 1 : 0);
  if (c.two_cycle.has_value()) {
    PutU64(out, static_cast<uint64_t>(c.two_cycle->first));
    PutU64(out, static_cast<uint64_t>(c.two_cycle->second));
  }
  PutString(out, c.explanation);
}

bool DecodeClassification(Reader* r, Classification* c) {
  uint8_t cls = 0, wg = 0, g = 0, acyc = 0, has_cycle = 0;
  uint32_t neg = 0;
  if (!r->GetU8(&cls) || !r->GetU8(&wg) || !r->GetU8(&g) ||
      !r->GetU8(&acyc) || !r->GetU32(&neg) || !r->GetU8(&has_cycle)) {
    return false;
  }
  if (cls > static_cast<uint8_t>(CertaintyClass::kUnknown)) return false;
  c->cls = static_cast<CertaintyClass>(cls);
  c->weakly_guarded = wg != 0;
  c->guarded = g != 0;
  c->attack_graph_acyclic = acyc != 0;
  c->negated_in_cycle = static_cast<int>(neg);
  c->two_cycle.reset();
  if (has_cycle != 0) {
    uint64_t a = 0, b = 0;
    if (!r->GetU64(&a) || !r->GetU64(&b)) return false;
    c->two_cycle = {static_cast<size_t>(a), static_cast<size_t>(b)};
  }
  return r->GetString(&c->explanation);
}

}  // namespace

std::string EncodeOutcome(const Result<SolveReport>& outcome) {
  std::string payload;
  PutU8(&payload, kCodecVersion);
  PutU8(&payload, outcome.ok() ? 1 : 0);
  if (!outcome.ok()) {
    PutU8(&payload, static_cast<uint8_t>(outcome.code()));
    PutString(&payload, outcome.error());
  } else {
    const SolveReport& rep = *outcome;
    PutU8(&payload, static_cast<uint8_t>(rep.verdict));
    PutU8(&payload, rep.certain ? 1 : 0);
    uint64_t conf_bits = 0;
    static_assert(sizeof(conf_bits) == sizeof(rep.confidence));
    std::memcpy(&conf_bits, &rep.confidence, sizeof(conf_bits));
    PutU64(&payload, conf_bits);
    PutU64(&payload, rep.samples);
    PutU8(&payload, static_cast<uint8_t>(rep.used));
    PutU32(&payload, static_cast<uint32_t>(rep.parallelism));
    PutU32(&payload, static_cast<uint32_t>(rep.components));
    PutU64(&payload, rep.steals);
    EncodeClassification(&payload, rep.classification);
    PutU32(&payload, static_cast<uint32_t>(rep.stages.size()));
    for (const SolveStage& st : rep.stages) {
      PutU8(&payload, static_cast<uint8_t>(st.method));
      PutU8(&payload, st.ok ? 1 : 0);
      PutU8(&payload, st.error.has_value() ? 1 : 0);
      PutU8(&payload,
            st.error.has_value() ? static_cast<uint8_t>(*st.error) : 0);
      PutU64(&payload, st.steps);
      PutU64(&payload, static_cast<uint64_t>(st.elapsed.count()));
    }
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

bool OutcomeFrameComplete(const std::string& data, size_t* frame_size) {
  if (data.size() < 4) return false;
  Reader r{reinterpret_cast<const uint8_t*>(data.data()), data.size()};
  uint32_t n = 0;
  if (!r.GetU32(&n)) return false;
  if (data.size() < 4u + n) return false;
  if (frame_size != nullptr) *frame_size = 4u + n;
  return true;
}

bool DecodeOutcome(const std::string& data, Result<SolveReport>* out) {
  size_t frame_size = 0;
  if (!OutcomeFrameComplete(data, &frame_size)) return false;
  Reader r{reinterpret_cast<const uint8_t*>(data.data() + 4),
           frame_size - 4};
  uint8_t version = 0, ok = 0;
  if (!r.GetU8(&version) || version != kCodecVersion) return false;
  if (!r.GetU8(&ok)) return false;
  if (ok == 0) {
    uint8_t code = 0;
    std::string message;
    if (!r.GetU8(&code) || !r.GetString(&message)) return false;
    if (code > static_cast<uint8_t>(ErrorCode::kInternal)) return false;
    *out = Result<SolveReport>::Error(static_cast<ErrorCode>(code),
                                      std::move(message));
    return true;
  }
  SolveReport rep;
  uint8_t verdict = 0, certain = 0, used = 0;
  uint64_t conf_bits = 0;
  if (!r.GetU8(&verdict) || !r.GetU8(&certain) || !r.GetU64(&conf_bits) ||
      !r.GetU64(&rep.samples) || !r.GetU8(&used)) {
    return false;
  }
  if (verdict > static_cast<uint8_t>(Verdict::kExhausted)) return false;
  if (used > static_cast<uint8_t>(SolverMethod::kSampling)) return false;
  rep.verdict = static_cast<Verdict>(verdict);
  rep.certain = certain != 0;
  std::memcpy(&rep.confidence, &conf_bits, sizeof(rep.confidence));
  rep.used = static_cast<SolverMethod>(used);
  uint32_t parallelism = 0, components = 0;
  if (!r.GetU32(&parallelism) || !r.GetU32(&components) ||
      !r.GetU64(&rep.steals)) {
    return false;
  }
  // Pool width is bounded by the wire/CLI clamp (and a fresh report says
  // 1); a value outside sanity means a corrupt frame, not a huge pool.
  if (parallelism > 4096 || components > (1u << 24)) return false;
  rep.parallelism = static_cast<int>(parallelism);
  rep.components = static_cast<int>(components);
  if (!DecodeClassification(&r, &rep.classification)) return false;
  uint32_t n_stages = 0;
  if (!r.GetU32(&n_stages)) return false;
  // A stage occupies at least 20 bytes; reject counts the remaining
  // payload cannot possibly hold instead of reserving from a corrupt value.
  if (n_stages > (r.len - r.pos) / 20 + 1) return false;
  rep.stages.reserve(n_stages);
  for (uint32_t i = 0; i < n_stages; ++i) {
    SolveStage st;
    uint8_t method = 0, st_ok = 0, has_err = 0, err = 0;
    uint64_t steps = 0, elapsed = 0;
    if (!r.GetU8(&method) || !r.GetU8(&st_ok) || !r.GetU8(&has_err) ||
        !r.GetU8(&err) || !r.GetU64(&steps) || !r.GetU64(&elapsed)) {
      return false;
    }
    if (method > static_cast<uint8_t>(SolverMethod::kSampling)) return false;
    st.method = static_cast<SolverMethod>(method);
    st.ok = st_ok != 0;
    if (has_err != 0) {
      if (err > static_cast<uint8_t>(ErrorCode::kInternal)) return false;
      st.error = static_cast<ErrorCode>(err);
    }
    st.steps = steps;
    st.elapsed = std::chrono::microseconds(static_cast<int64_t>(elapsed));
    rep.stages.push_back(st);
  }
  *out = Result<SolveReport>(std::move(rep));
  return true;
}

}  // namespace cqa
