#ifndef CQA_SERVE_SANDBOX_SANDBOX_H_
#define CQA_SERVE_SANDBOX_SANDBOX_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Fork-isolated solver sandbox.
///
/// CERTAINTY(q) is coNP-complete outside the tractable islands, and the
/// exact solvers are cooperative: they only notice a deadline at budget
/// probes. A solve wedged *between* probes — a pathological backtracking
/// region, a solver bug, runaway allocation — holds its worker thread (and
/// its memory) hostage forever. The sandbox restores hard guarantees by
/// running the solve in a forked child of the pre-warmed serving process:
///
///  - The child inherits the parsed database, its block index and content
///    digest, and the worker's warm memos by copy-on-write; a fork costs
///    page-table setup, not a re-parse.
///  - The parent supervises through a result pipe. A complete frame is the
///    verdict; past `deadline + kill_grace` (or on cancellation) the child
///    is SIGKILLed — preemption no longer depends on the solver's
///    cooperation.
///  - An RSS cap (via `RLIMIT_AS`) turns runaway allocation into a clean
///    `std::bad_alloc` inside the child, reported as `kResourceExhausted`.
///  - Every exit path — clean verdict, nonzero exit, signal death, limit
///    breach, truncated pipe — maps to exactly one typed terminal; a
///    crashing solver takes down its child, never the daemon.
///
/// Fork-safety: the supervisor holds the global interner lock across
/// `fork()` (the one process-global lock a child's solve touches) and
/// pre-warms the database's lazy indexes, so the single-threaded child
/// never blocks on a mutex another parent thread held at the fork moment.
/// The child calls only async-signal-tolerant machinery plus malloc (safe
/// post-fork under glibc), creates no threads, and leaves via `_exit`.

/// Where a solve runs.
enum class IsolationMode {
  /// Defer to policy: the service escalates to `kFork` when the query
  /// classifies outside the tractable islands (not FO and not q1-shaped),
  /// i.e. exactly when the exact solver can go exponential.
  kAuto,
  /// In the worker thread, cooperative budget only (the historical mode).
  kInproc,
  /// In a forked, supervised, hard-limited child.
  kFork,
};

std::string ToString(IsolationMode m);

/// Parses "auto" | "inproc" | "fork" (as used on the wire and the CLI).
std::optional<IsolationMode> ParseIsolationMode(const std::string& s);

/// True when policy says `q` deserves fork isolation under `kAuto`: the
/// query is not in the FO island and not q1-shaped, so the exact solvers
/// may take exponential time and hard preemption is the only reclaim
/// guarantee.
bool ShouldIsolate(const Query& q);

/// Hard limits enforced by the supervisor on a forked solve.
struct SandboxLimits {
  /// Grace past the job deadline before the child is SIGKILLed. Also the
  /// poll granularity bound: reclaim latency is at most
  /// `deadline + kill_grace + one poll slice`.
  std::chrono::milliseconds kill_grace{500};
  /// Address-space headroom (MiB) granted to the child on top of the
  /// parent's size at fork, enforced with `RLIMIT_AS` (Linux has no
  /// enforceable RSS limit; address space is the deterministic proxy).
  /// 0 disables the cap. Incompatible with AddressSanitizer (its shadow
  /// reservations exceed any sane cap); callers skip the cap under ASan.
  uint64_t max_rss_mb = 0;
};

/// Everything the child needs to run one solve (the cross-process subset
/// of `SolveOptions` plus the governing limits and fault-injection knobs).
struct SandboxJob {
  SolverMethod method = SolverMethod::kAuto;
  bool degrade_to_sampling = true;
  uint64_t max_samples = 10'000;
  uint64_t sampling_seed = 0x5eedu;
  /// Pool width for component-decomposed solving inside the child (1 =
  /// sequential). The child may spawn pool threads freely: it forked
  /// single-threaded and owns its whole address space.
  int parallelism = 1;
  /// Step limit for the child's budget; `Budget::kNoStepLimit` for none.
  uint64_t max_steps = Budget::kNoStepLimit;
  /// Absolute deadline (steady clock is process-independent on one
  /// machine, so the value crosses `fork` unchanged); `max()` for none.
  Budget::Clock::time_point deadline = Budget::Clock::time_point::max();
  /// Fault-injection knobs, forwarded into the child's budget.
  uint64_t fail_after_probes = 0;
  uint64_t crash_after_probes = 0;
  uint64_t hog_mb_per_probe = 0;
  uint64_t wedge_after_probes = 0;
  /// Optional warm memos, inherited copy-on-write by the child (its
  /// mutations die with it); not owned, may be null.
  WarmState* warm = nullptr;
};

/// One supervised solve: the typed terminal plus what the supervisor saw.
struct SandboxOutcome {
  Result<SolveReport> result;
  /// The parent SIGKILLed the child (grace breach or cancellation).
  bool killed = false;
  /// The child died without a verdict (signal, bad exit, truncated pipe);
  /// `result` holds `kWorkerCrashed`.
  bool crashed = false;
  /// The child breached the RSS cap; `result` holds `kResourceExhausted`.
  bool rss_breach = false;
  /// Child peak RSS (KiB, from `wait4`'s rusage); 0 if unavailable.
  uint64_t peak_rss_kb = 0;

  SandboxOutcome() : result(Result<SolveReport>::Error(ErrorCode::kInternal,
                                                       "sandbox: unset")) {}
};

/// Runs one solve in a forked, supervised child and maps every exit path
/// to exactly one typed terminal. `cancel` (may be null) is the parent-side
/// cancellation token; the child is killed, not signalled cooperatively.
/// Blocks until the child is reaped — no zombies outlive this call.
SandboxOutcome RunSandboxedSolve(const Query& q, const Database& db,
                                 const SandboxJob& job,
                                 const SandboxLimits& limits,
                                 const std::atomic<bool>* cancel);

}  // namespace cqa

#endif  // CQA_SERVE_SANDBOX_SANDBOX_H_
