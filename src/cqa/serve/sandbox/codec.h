#ifndef CQA_SERVE_SANDBOX_CODEC_H_
#define CQA_SERVE_SANDBOX_CODEC_H_

#include <string>

#include "cqa/base/result.h"
#include "cqa/certainty/solver.h"

namespace cqa {

/// Binary codec for the sandbox result pipe: the forked solver child
/// serializes its terminal `Result<SolveReport>` into one length-prefixed
/// frame (4-byte little-endian payload length, then the payload) and writes
/// it to the pipe before `_exit(0)`; the supervising parent decodes it.
///
/// The layout is deliberately trivial — fixed-width little-endian integers
/// and length-prefixed strings, no JSON — because the child encodes after
/// `fork()` from a multithreaded parent, where the less machinery runs the
/// better, and because a *truncated* frame is a meaningful signal (the
/// child died mid-write) that the parent must detect reliably, which the
/// length prefix makes a single comparison.

/// Encodes a terminal solve outcome (ok report or typed error) as one
/// complete frame, length prefix included.
std::string EncodeOutcome(const Result<SolveReport>& outcome);

/// True when `data` holds at least the length prefix and the full payload
/// it announces, i.e. the child finished its write. `frame_size` receives
/// the total frame size (prefix + payload) when complete.
bool OutcomeFrameComplete(const std::string& data, size_t* frame_size);

/// Decodes one complete frame back into the outcome. Returns false on a
/// truncated or corrupt frame (the caller maps that to `kWorkerCrashed`);
/// `*out` is only written on success.
bool DecodeOutcome(const std::string& data, Result<SolveReport>* out);

}  // namespace cqa

#endif  // CQA_SERVE_SANDBOX_CODEC_H_
