#include "cqa/serve/service.h"

#include <algorithm>
#include <cassert>

#include "cqa/answers/answer_chunk.h"
#include "cqa/answers/cursor.h"
#include "cqa/answers/enumerator.h"
#include "cqa/cache/warm_state.h"

namespace cqa {

const char* ToString(RequestState state) {
  switch (state) {
    case RequestState::kCompleted:
      return "completed";
    case RequestState::kCancelled:
      return "cancelled";
  }
  return "?";
}

SolveService::SolveService(ServiceOptions options)
    : options_(std::move(options)),
      queue_(std::max<size_t>(options_.queue_capacity, 1),
             options_.discipline == QueueDiscipline::kEdf
                 ? [](const RequestPtr& a, const RequestPtr& b) {
                     return a->deadline_key < b->deadline_key;
                   }
                 : BoundedQueue<RequestPtr>::BeforeFn(nullptr)) {
  if (options_.cache_entries > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_entries,
                                           options_.cache_shards);
  }
  int workers = std::max(options_.workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

SolveService::~SolveService() { Shutdown(std::chrono::milliseconds(0)); }

Result<uint64_t> SolveService::Submit(ServeJob job, Callback callback) {
  stats_.RecordSubmitted();
  if (!accepting_.load(std::memory_order_acquire)) {
    stats_.RecordShed();
    return Result<uint64_t>::Error(ErrorCode::kOverloaded,
                                   "service is shutting down");
  }
  auto req = std::make_shared<Request>(next_id_.fetch_add(1), std::move(job),
                                       std::move(callback));
  req->submitted = Budget::Clock::now();
  req->cancel = std::make_shared<std::atomic<bool>>(false);
  // EDF sort key (harmless under FIFO): the nearest deadline that can
  // terminate this request, anchored at submission.
  req->deadline_key = options_.service_deadline;
  std::chrono::milliseconds timeout =
      req->job.timeout.value_or(options_.default_timeout);
  if (timeout.count() > 0) {
    req->deadline_key = std::min(req->deadline_key, req->submitted + timeout);
  }
  if (req->job.kind == JobKind::kAnswers) {
    // Answers jobs need the epoch fingerprint regardless of caching: the
    // resume cursor is minted against it at delivery, and a supplied
    // cursor is validated here — at admission, against the epoch this
    // request will actually read — so a flipped epoch fails typed before
    // any work is scheduled. (`FingerprintDatabase` rides the database's
    // memoized digest; this is a hash-map hit after the first call.)
    req->fp = FingerprintDatabase(*req->job.db);
    req->query_hash = AnswerQueryHash(req->job.query, req->job.free_vars);
    if (!req->job.cursor.empty()) {
      Result<AnswerCursor> cursor = DecodeAnswerCursor(req->job.cursor);
      if (!cursor.ok()) {
        stats_.RecordShed();
        return Result<uint64_t>::Error(cursor);
      }
      if (cursor->query_hash != req->query_hash) {
        stats_.RecordShed();
        return Result<uint64_t>::Error(
            ErrorCode::kParse,
            "cursor belongs to a different query or free-variable list");
      }
      if (!(cursor->fingerprint == req->fp)) {
        stats_.RecordStaleCursor();
        stats_.RecordShed();
        return Result<uint64_t>::Error(
            ErrorCode::kStaleCursor,
            "cursor names database epoch " + cursor->fingerprint.ToHex() +
                " but the instance is serving " + req->fp.ToHex() +
                "; restart the stream from position zero");
      }
      req->job.answer_start = cursor->position;
    }
  }
  bool use_cache = cache_ != nullptr;
  if (use_cache && req->job.cache == CachePolicy::kBypass) {
    cache_->RecordBypass();
    use_cache = false;
  }
  if (use_cache) {
    // `FingerprintDatabase` rides the database's own memoized digest, so
    // this is a hash-map hit after the first lookup per instance.
    req->cache_key =
        req->job.kind == JobKind::kAnswers
            ? MakeAnswersCacheKey(req->fp, req->job.method, req->job.query,
                                  req->job.free_vars, req->job.answer_start,
                                  req->job.answer_max_chunk)
            : MakeCacheKey(FingerprintDatabase(*req->job.db), req->job.method,
                           req->job.query);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.emplace(req->id, req->cancel);
    ++outstanding_;
  }
  if (use_cache) {
    // Cache check before admission: a hit never touches the queue — its
    // terminal callback is delivered synchronously, right here.
    if (std::optional<SolveReport> hit = cache_->Lookup(req->cache_key)) {
      stats_.RecordAccepted();
      Finish(req, /*started=*/false, RequestState::kCompleted,
             Result<SolveReport>(std::move(*hit)));
      return req->id;
    }
    switch (flights_.JoinOrLead(req->cache_key.text, req, req->deadline_key)) {
      case FlightOutcome::kFollow:
        // Coalesced: an identical solve is already in flight with a
        // deadline at least as tight as ours; this request is settled by
        // the leader's terminal result (or promoted to re-run the solve
        // if the leader cannot settle it).
        cache_->RecordCoalesced();
        stats_.RecordAccepted();
        return req->id;
      case FlightOutcome::kLead:
        req->flight_leader = true;
        req->cache_store = true;
        break;
      case FlightOutcome::kRefuse:
        // The open flight's leader has a looser deadline than this
        // request; coalescing would silently drop its own deadline (EDF
        // key, timeout). Run it independently — its exact result still
        // fills the cache.
        req->cache_store = true;
        break;
    }
  }
  if (!queue_.TryPush(req)) {
    if (req->flight_leader) AbandonLeadership(req);
    {
      std::lock_guard<std::mutex> lock(mu_);
      registry_.erase(req->id);
      --outstanding_;
    }
    drained_cv_.notify_all();
    stats_.RecordShed();
    return Result<uint64_t>::Error(
        ErrorCode::kOverloaded,
        "work queue full (capacity " + std::to_string(queue_.capacity()) +
            "); request shed");
  }
  stats_.RecordAccepted();
  return req->id;
}

void SolveService::AbandonLeadership(const RequestPtr& req) {
  req->flight_leader = false;
  // Followers can join between JoinOrLead and the failed queue push; they
  // were accepted, so they must still reach a terminal. Promote one into
  // the queue if it has room again, else settle them as overloaded.
  for (;;) {
    std::optional<RequestPtr> next = flights_.PromoteOne(req->cache_key.text);
    if (!next.has_value()) return;  // flight dissolved
    (*next)->flight_leader = true;
    (*next)->cache_store = true;
    if (queue_.TryPush(*next)) return;  // new leader queued; flight lives on
    (*next)->flight_leader = false;
    Finish(*next, /*started=*/false, RequestState::kCompleted,
           Result<SolveReport>::Error(
               ErrorCode::kOverloaded,
               "coalesced solve shed: flight leader was shed and the work "
               "queue is full"));
  }
}

bool SolveService::Cancel(uint64_t id) {
  std::shared_ptr<std::atomic<bool>> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = registry_.find(id);
    if (it == registry_.end()) return false;
    token = it->second;
  }
  token->store(true, std::memory_order_release);
  drained_cv_.notify_all();  // interrupt a backoff sleep, if any
  return true;
}

void SolveService::CancelAll() {
  std::vector<std::shared_ptr<std::atomic<bool>>> tokens;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tokens.reserve(registry_.size());
    for (auto& [id, token] : registry_) tokens.push_back(token);
  }
  for (auto& token : tokens) token->store(true, std::memory_order_release);
  drained_cv_.notify_all();
}

bool SolveService::Shutdown(std::chrono::milliseconds drain_deadline) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return drained_result_;
  accepting_.store(false, std::memory_order_release);
  draining_.store(true, std::memory_order_release);
  queue_.Close();          // workers finish the backlog, then exit
  drained_cv_.notify_all();  // abort backoff sleeps: no retries while draining

  bool drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained = drained_cv_.wait_for(lock, drain_deadline,
                                   [&] { return outstanding_ == 0; });
  }
  if (!drained) {
    // Drain deadline expired: cancel everything still known. Requests in
    // flight trip their budget's cancel token at the next probe; requests
    // still queued are completed as cancelled right here (the workers may
    // never reach them).
    CancelAll();
    for (RequestPtr& req : queue_.DrainNow()) {
      Finish(req, /*started=*/false, RequestState::kCancelled,
             Result<SolveReport>::Error(
                 ErrorCode::kCancelled,
                 "cancelled: shutdown drain deadline expired while queued"));
    }
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [&] { return outstanding_ == 0; });
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  shutdown_done_ = true;
  drained_result_ = drained;
  return drained;
}

size_t SolveService::ShedQueued(ErrorCode code, const std::string& message) {
  size_t shed = 0;
  for (RequestPtr& req : queue_.DrainNow()) {
    // Shedding a flight leader promotes a follower (Finish returns it);
    // shed the promotion chain too instead of re-enqueueing into a queue
    // we are emptying on purpose.
    RequestPtr next = Finish(req, /*started=*/false, RequestState::kCompleted,
                             Result<SolveReport>::Error(code, message));
    ++shed;
    while (next != nullptr) {
      next = Finish(next, /*started=*/false, RequestState::kCompleted,
                    Result<SolveReport>::Error(code, message));
      ++shed;
    }
  }
  return shed;
}

void SolveService::WorkerLoop(int worker_index) {
  // Per-worker jitter stream: deterministic given the seed and the worker
  // index, independent across workers.
  Rng rng(options_.backoff_seed ^
          (0x9e3779b97f4a7c15ull * static_cast<uint64_t>(worker_index + 1)));
  // Per-worker warm state: classification/rewriting memo plus the
  // Algorithm-1 arena, reused across every request this worker runs.
  WarmState warm_storage;
  WarmState* warm = options_.warm_state ? &warm_storage : nullptr;
  RequestPtr req;
  while (queue_.Pop(&req)) {
    // A terminal that cannot settle its single-flight followers promotes
    // one of them; the promotion runs inline on this worker (it skipped
    // the queue when it coalesced, and the queue may be full or closed).
    while (req != nullptr) {
      req = Process(req, &rng, warm);
    }
  }
}

SolveService::RequestPtr SolveService::Process(const RequestPtr& req, Rng* rng,
                                               WarmState* warm) {
  stats_.RecordStarted();
  // Isolation is a property of the request, decided once: the job's
  // explicit choice wins; `kAuto` defers to the service policy, whose own
  // `kAuto` escalates to a sandbox for coNP-risk queries (classification
  // is polynomial and dwarfed by any solve it gates).
  bool use_fork = false;
  IsolationMode mode = req->job.isolation != IsolationMode::kAuto
                           ? req->job.isolation
                           : options_.isolation;
  if (mode == IsolationMode::kFork) {
    use_fork = true;
  } else if (mode == IsolationMode::kAuto) {
    use_fork = ShouldIsolate(req->job.query);
  }
  // Answer chunks never cross the sandbox result pipe (its codec carries
  // verdicts, not tuple sets): answers jobs always run in-process. The
  // per-chunk budget bounds the damage an expensive enumeration can do.
  if (req->job.kind == JobKind::kAnswers) use_fork = false;
  for (;;) {
    if (req->cancel->load(std::memory_order_acquire)) {
      return Finish(
          req, /*started=*/true, RequestState::kCancelled,
          Result<SolveReport>::Error(ErrorCode::kCancelled,
                                     "cancelled before attempt " +
                                         std::to_string(req->attempts + 1)));
    }
    ++req->attempts;

    // Chaos knob: a deterministic-duration stall before the solve,
    // interruptible by cancellation and by shutdown drain.
    if (req->job.chaos_sleep.count() > 0 &&
        !WaitBackoff(req->job.chaos_sleep, *req->cancel)) {
      return Finish(req, /*started=*/true, RequestState::kCancelled,
                    Result<SolveReport>::Error(ErrorCode::kCancelled,
                                               "cancelled during chaos sleep"));
    }

    // Budget inheritance: the attempt deadline is the tighter of the
    // service-wide deadline and this request's own timeout — re-armed per
    // attempt by default, or fixed at submit + timeout when the job opts
    // into submit-anchored deadlines; the solver's kAuto path further
    // splits it 80/20 between the exact stage and the sampling fallback.
    Budget budget;
    budget.cancel = req->cancel.get();
    budget.max_steps = req->job.max_steps;
    if (req->attempts <= req->job.fault_attempts) {
      budget.fail_after_probes = req->job.fail_after_probes;
      budget.crash_after_probes = req->job.crash_after_probes;
      budget.hog_mb_per_probe = req->job.hog_mb_per_probe;
      budget.wedge_after_probes = req->job.wedge_after_probes;
    }
    std::chrono::milliseconds timeout =
        req->job.timeout.value_or(options_.default_timeout);
    budget.deadline = options_.service_deadline;
    if (timeout.count() > 0) {
      Budget::Clock::time_point anchor = req->job.deadline_from_submit
                                             ? req->submitted
                                             : Budget::Clock::now();
      budget.deadline = std::min(budget.deadline, anchor + timeout);
    }

    if (warm != nullptr) {
      warm->BindDatabase(FingerprintDatabase(*req->job.db));
    }
    // Pool width: the job's explicit choice wins, 0 inherits the service
    // default; clamp to a sane band so a hostile wire value cannot spawn
    // thousands of threads.
    int parallelism =
        req->job.parallelism > 0 ? req->job.parallelism : options_.parallelism;
    parallelism = std::max(1, std::min(parallelism, 64));
    Result<SolveReport> result =
        Result<SolveReport>::Error(ErrorCode::kInternal, "attempt never ran");
    if (req->job.kind == JobKind::kAnswers) {
      // One chunk of certain answers, wrapped into a SolveReport whose
      // verdict encodes cacheability: kCertain for a clean chunk (exact,
      // position-complete, reusable), kExhausted for a budget-truncated
      // partial one — which `IsCacheableReport` rejects, so a retry or a
      // later identical submission re-runs instead of reusing a stub.
      std::vector<Symbol> frees;
      frees.reserve(req->job.free_vars.size());
      for (const std::string& name : req->job.free_vars) {
        frees.push_back(InternSymbol(name));
      }
      EnumerateOptions eopts;
      eopts.start = req->job.answer_start;
      eopts.max_chunk = req->job.answer_max_chunk;
      eopts.method = req->job.method;
      Result<AnswerChunk> enumerated = EnumerateAnswerChunk(
          req->job.query, frees, *req->job.db, eopts, &budget);
      if (enumerated.ok()) {
        AnswerChunk chunk = std::move(enumerated.value());
        stats_.RecordAnswerChunk(chunk.answers.size());
        SolveReport report;
        report.used = req->job.method;
        report.verdict =
            chunk.exhausted ? Verdict::kExhausted : Verdict::kCertain;
        report.confidence = chunk.exhausted ? 0.0 : 1.0;
        report.answer_chunk =
            std::make_shared<const AnswerChunk>(std::move(chunk));
        result = Result<SolveReport>(std::move(report));
      } else {
        result = Result<SolveReport>::Error(enumerated);
      }
    } else if (use_fork) {
      // Sandbox path: the attempt runs in a forked child under hard
      // limits; the budget fields cross the process boundary by value
      // (deadline, step limit, fault knobs), and the cancel token stays
      // parent-side — cancellation SIGKILLs the child instead of waiting
      // for a cooperative probe.
      SandboxJob sj;
      sj.method = req->job.method;
      sj.degrade_to_sampling = req->job.degrade_to_sampling;
      sj.max_samples = req->job.max_samples;
      sj.max_steps = budget.max_steps;
      sj.deadline = budget.deadline;
      sj.fail_after_probes = budget.fail_after_probes;
      sj.crash_after_probes = budget.crash_after_probes;
      sj.hog_mb_per_probe = budget.hog_mb_per_probe;
      sj.wedge_after_probes = budget.wedge_after_probes;
      sj.parallelism = parallelism;
      sj.warm = warm;
      SandboxOutcome outcome = RunSandboxedSolve(
          req->job.query, *req->job.db, sj, options_.sandbox,
          req->cancel.get());
      stats_.RecordSandbox(outcome.killed, outcome.crashed,
                           outcome.rss_breach, outcome.peak_rss_kb);
      result = std::move(outcome.result);
    } else {
      SolveOptions sopts;
      sopts.method = req->job.method;
      sopts.budget = &budget;
      sopts.degrade_to_sampling = req->job.degrade_to_sampling;
      sopts.max_samples = req->job.max_samples;
      sopts.parallelism = parallelism;
      sopts.warm = warm;
      result = SolveCertainty(req->job.query, *req->job.db, sopts);
    }
    if (result.ok() && result->components > 0) {
      stats_.RecordParallel(static_cast<uint64_t>(result->components),
                            result->steals);
    }

    if (result.ok()) {
      return Finish(req, /*started=*/true, RequestState::kCompleted,
                    std::move(result));
    }
    if (result.code() == ErrorCode::kCancelled) {
      return Finish(req, /*started=*/true, RequestState::kCancelled,
                    std::move(result));
    }
    // Retry only genuine resource exhaustion, within the retry allowance,
    // and never once shutdown has begun (drain fast instead).
    bool retry = IsResourceExhaustion(result.code()) &&
                 req->attempts <= options_.max_retries &&
                 !draining_.load(std::memory_order_acquire);
    if (!retry) {
      return Finish(req, /*started=*/true, RequestState::kCompleted,
                    std::move(result));
    }
    stats_.RecordRetry();
    std::chrono::milliseconds delay =
        options_.backoff.DelayFor(req->attempts, rng);
    if (!WaitBackoff(delay, *req->cancel)) {
      // Interrupted: surface the cancellation, or the last error when the
      // interruption was shutdown.
      if (req->cancel->load(std::memory_order_acquire)) {
        return Finish(
            req, /*started=*/true, RequestState::kCancelled,
            Result<SolveReport>::Error(ErrorCode::kCancelled,
                                       "cancelled during retry backoff"));
      }
      return Finish(req, /*started=*/true, RequestState::kCompleted,
                    std::move(result));
    }
  }
}

bool SolveService::WaitBackoff(std::chrono::milliseconds delay,
                               const std::atomic<bool>& cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  return !drained_cv_.wait_for(lock, delay, [&] {
    return draining_.load(std::memory_order_acquire) ||
           cancel.load(std::memory_order_acquire);
  });
}

SolveService::RequestPtr SolveService::Finish(const RequestPtr& req,
                                              bool started, RequestState state,
                                              Result<SolveReport> result) {
  if (req->done.exchange(true, std::memory_order_acq_rel)) return nullptr;
  ServeResponse response;
  response.id = req->id;
  response.state = state;
  response.result = std::move(result);
  response.attempts = req->attempts;
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      Budget::Clock::now() - req->submitted);
  bool ok = response.result.ok();
  if (ok && req->job.kind == JobKind::kAnswers &&
      response.result->answer_chunk != nullptr &&
      !response.result->answer_chunk->done) {
    // Mint the resume cursor at delivery time against the epoch captured
    // at admission. Deliberately not stored with the cached chunk: a
    // footprint-disjoint delta rekeys cache entries to the new epoch, and
    // a stored cursor would still name the old one.
    AnswerCursor cursor;
    cursor.position = response.result->answer_chunk->next;
    cursor.query_hash = req->query_hash;
    cursor.fingerprint = req->fp;
    response.answer_cursor = EncodeAnswerCursor(cursor);
  }
  bool degraded = ok && (response.result->verdict == Verdict::kProbablyCertain ||
                         response.result->verdict == Verdict::kExhausted);
  stats_.RecordTerminal(started, state == RequestState::kCancelled, ok,
                        degraded, response.latency);
  const bool leader = req->flight_leader;
  const bool cacheable = ok && IsCacheableReport(*response.result);
  if (req->cache_store && cacheable) {
    // Store *before* delivering the terminal callback: a caller that has
    // observed this result must hit the cache on its next identical
    // submission (read-your-writes), and the store-then-take-followers
    // order below closes the window where a new submission could miss the
    // cache yet find no flight to join. Deadline-refused independent runs
    // store too (cache_store without leadership): their verdict is just
    // as exact, and they typically finish before the looser leader.
    cache_->Insert(req->cache_key, *response.result);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.erase(req->id);
    assert(outstanding_ > 0);
    --outstanding_;
  }
  if (req->callback) req->callback(response);
  drained_cv_.notify_all();

  // Single-flight settlement (flight leaders only; the done-guard above
  // makes this run exactly once per leader). A cacheable result was stored
  // above and completes every coalesced follower; otherwise —
  // cancellation, error, or a degraded verdict that must not be reused —
  // one follower is promoted to re-run the solve so nobody waits on a
  // dead leader.
  RequestPtr promoted;
  if (leader) {
    const std::string& key = req->cache_key.text;
    if (cacheable) {
      for (RequestPtr& follower : flights_.TakeFollowers(key)) {
        SettleFollower(follower, *response.result);
      }
    } else if (draining_.load(std::memory_order_acquire)) {
      // No promotion during shutdown: workers may never pop again. Every
      // follower terminates as cancelled, like drained queue entries.
      for (RequestPtr& follower : flights_.TakeFollowers(key)) {
        Finish(follower, /*started=*/false, RequestState::kCancelled,
               Result<SolveReport>::Error(
                   ErrorCode::kCancelled,
                   "cancelled: coalesced solve's leader terminated during "
                   "shutdown drain"));
      }
    } else {
      std::optional<RequestPtr> next = flights_.PromoteOne(key);
      if (next.has_value()) {
        (*next)->flight_leader = true;
        (*next)->cache_store = true;
        promoted = std::move(*next);
      }
    }
  }
  return promoted;
}

void SolveService::SettleFollower(const RequestPtr& follower,
                                  const SolveReport& report) {
  if (follower->cancel->load(std::memory_order_acquire)) {
    Finish(follower, /*started=*/false, RequestState::kCancelled,
           Result<SolveReport>::Error(
               ErrorCode::kCancelled,
               "cancelled while coalesced on an identical in-flight solve"));
    return;
  }
  Finish(follower, /*started=*/false, RequestState::kCompleted,
         Result<SolveReport>(report));
}

std::pair<uint64_t, uint64_t> SolveService::OnDatabaseDelta(
    const DbFingerprint& old_fp, const DbFingerprint& new_fp,
    const std::vector<std::string>& touched) {
  if (cache_ == nullptr) return {0, 0};
  return cache_->OnDatabaseDelta(old_fp, new_fp, touched);
}

ServiceStats SolveService::Stats() const {
  ServiceStats s = stats_.Snapshot();
  if (cache_ != nullptr) {
    CacheStats c = cache_->Stats();
    s.cache_hits = c.hits;
    s.cache_misses = c.misses;
    s.cache_coalesced = c.coalesced;
    s.cache_bypass = c.bypassed;
    s.cache_entries = c.entries;
    s.cache_evictions = c.evictions;
    s.cache_invalidated = c.invalidated;
    s.cache_rekeyed = c.rekeyed;
  }
  return s;
}

}  // namespace cqa
