#ifndef CQA_SERVE_BOUNDED_QUEUE_H_
#define CQA_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace cqa {

/// A bounded multi-producer multi-consumer FIFO queue, the admission point
/// of the solve service. Producers never block: `TryPush` fails immediately
/// when the queue is full (the caller sheds the request with `kOverloaded`)
/// or closed. Consumers block in `Pop` until an item arrives or the queue
/// is closed *and* drained, so closing lets workers finish the backlog and
/// then exit cleanly.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking. Returns false — and does not take the
  /// item — when the queue is at capacity or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop; false when nothing is queued right now.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects all future pushes; consumers drain the remaining items and
  /// then see `Pop` return false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Atomically removes and returns every queued item (e.g. to complete
  /// them as cancelled when a shutdown drain deadline expires).
  std::vector<T> DrainNow() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.assign(std::make_move_iterator(items_.begin()),
                 std::make_move_iterator(items_.end()));
      items_.clear();
    }
    not_empty_.notify_all();
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cqa

#endif  // CQA_SERVE_BOUNDED_QUEUE_H_
