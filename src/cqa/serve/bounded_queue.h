#ifndef CQA_SERVE_BOUNDED_QUEUE_H_
#define CQA_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace cqa {

/// A bounded multi-producer multi-consumer queue, the admission point of
/// the solve service. Producers never block: `TryPush` fails immediately
/// when the queue is full (the caller sheds the request with `kOverloaded`)
/// or closed. Consumers block in `Pop` until an item arrives or the queue
/// is closed *and* drained, so closing lets workers finish the backlog and
/// then exit cleanly.
///
/// Ordering is FIFO by default. An optional strict-weak `before` predicate
/// turns consumption into priority order (e.g. earliest-deadline-first):
/// `Pop`/`TryPop` remove the minimum element, with ties broken FIFO (the
/// scan keeps the earliest-pushed of equal elements), so a priority queue
/// with all-equal keys behaves exactly like the FIFO one. The scan is
/// O(queue length), which the bounded capacity keeps small by design.
template <typename T>
class BoundedQueue {
 public:
  using BeforeFn = std::function<bool(const T&, const T&)>;

  explicit BoundedQueue(size_t capacity, BeforeFn before = nullptr)
      : capacity_(capacity), before_(std::move(before)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking. Returns false — and does not take the
  /// item — when the queue is at capacity or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    PopNextLocked(out);
    return true;
  }

  /// Non-blocking pop; false when nothing is queued right now.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    PopNextLocked(out);
    return true;
  }

  /// Rejects all future pushes; consumers drain the remaining items and
  /// then see `Pop` return false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  /// Atomically removes and returns every queued item (e.g. to complete
  /// them as cancelled when a shutdown drain deadline expires).
  std::vector<T> DrainNow() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out.assign(std::make_move_iterator(items_.begin()),
                 std::make_move_iterator(items_.end()));
      items_.clear();
    }
    not_empty_.notify_all();
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  // Removes the next item per the queue discipline (front for FIFO, the
  // minimum under `before_` otherwise). Caller holds `mu_` and guarantees
  // non-emptiness.
  void PopNextLocked(T* out) {
    size_t pick = 0;
    if (before_) {
      for (size_t i = 1; i < items_.size(); ++i) {
        if (before_(items_[i], items_[pick])) pick = i;
      }
    }
    *out = std::move(items_[pick]);
    items_.erase(items_.begin() + static_cast<ptrdiff_t>(pick));
  }

  const size_t capacity_;
  const BeforeFn before_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cqa

#endif  // CQA_SERVE_BOUNDED_QUEUE_H_
