#ifndef CQA_BASE_SYMBOL_SET_H_
#define CQA_BASE_SYMBOL_SET_H_

#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include "cqa/base/interner.h"

namespace cqa {

/// A small set of symbols, stored as a sorted, duplicate-free vector.
/// Queries have a handful of variables, so linear/merge operations beat
/// hash sets here and give deterministic iteration order.
class SymbolSet {
 public:
  SymbolSet() = default;
  SymbolSet(std::initializer_list<Symbol> items)
      : items_(items) {
    Normalize();
  }
  explicit SymbolSet(std::vector<Symbol> items) : items_(std::move(items)) {
    Normalize();
  }

  bool contains(Symbol s) const {
    return std::binary_search(items_.begin(), items_.end(), s);
  }
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  void Insert(Symbol s) {
    auto it = std::lower_bound(items_.begin(), items_.end(), s);
    if (it == items_.end() || *it != s) items_.insert(it, s);
  }
  void Erase(Symbol s) {
    auto it = std::lower_bound(items_.begin(), items_.end(), s);
    if (it != items_.end() && *it == s) items_.erase(it);
  }

  /// In-place union.
  void UnionWith(const SymbolSet& other) {
    std::vector<Symbol> merged;
    merged.reserve(items_.size() + other.items_.size());
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(merged));
    items_ = std::move(merged);
  }

  bool IsSubsetOf(const SymbolSet& other) const {
    return std::includes(other.items_.begin(), other.items_.end(),
                         items_.begin(), items_.end());
  }

  bool Intersects(const SymbolSet& other) const {
    auto a = items_.begin();
    auto b = other.items_.begin();
    while (a != items_.end() && b != other.items_.end()) {
      if (*a == *b) return true;
      if (*a < *b) {
        ++a;
      } else {
        ++b;
      }
    }
    return false;
  }

  SymbolSet Union(const SymbolSet& other) const {
    SymbolSet out = *this;
    out.UnionWith(other);
    return out;
  }

  SymbolSet Minus(const SymbolSet& other) const {
    SymbolSet out;
    std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  SymbolSet Intersect(const SymbolSet& other) const {
    SymbolSet out;
    std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                          other.items_.end(), std::back_inserter(out.items_));
    return out;
  }

  const std::vector<Symbol>& items() const { return items_; }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  friend bool operator==(const SymbolSet& a, const SymbolSet& b) {
    return a.items_ == b.items_;
  }

  /// Renders as "{x, y, z}" using symbol names.
  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ", ";
      out += SymbolName(items_[i]);
    }
    out += "}";
    return out;
  }

 private:
  void Normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<Symbol> items_;
};

}  // namespace cqa

#endif  // CQA_BASE_SYMBOL_SET_H_
