#include "cqa/base/signals.h"

#include <atomic>
#include <cassert>
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>

namespace cqa {

namespace {

// Handler state is necessarily global: signal handlers cannot carry a
// `this`. Guarded by the one-live-instance contract of SignalDrainLatch.
std::atomic<int> g_signal_number{0};
int g_pipe_fds[2] = {-1, -1};

void DrainHandler(int signum) {
  int expected = 0;
  g_signal_number.compare_exchange_strong(expected, signum);
  // Wake any waiter. A full pipe is fine — one pending byte suffices —
  // and there is nothing useful to do on any other error here.
  char byte = 1;
  [[maybe_unused]] ssize_t ignored = ::write(g_pipe_fds[1], &byte, 1);
}

}  // namespace

struct LatchState {
  struct sigaction old_int;
  struct sigaction old_term;
  struct sigaction old_pipe;
};

// One live latch at a time; the state does not need to be per-instance.
static LatchState g_latch_state;
static std::atomic<bool> g_latch_live{false};

SignalDrainLatch::SignalDrainLatch() {
  bool was_live = g_latch_live.exchange(true);
  assert(!was_live && "only one SignalDrainLatch may be live");
  (void)was_live;
  g_signal_number.store(0);
  if (::pipe(g_pipe_fds) != 0) {
    g_pipe_fds[0] = g_pipe_fds[1] = -1;
  } else {
    ::fcntl(g_pipe_fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe_fds[1], F_SETFL, O_NONBLOCK);
  }
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  action.sa_handler = DrainHandler;
  ::sigaction(SIGINT, &action, &g_latch_state.old_int);
  ::sigaction(SIGTERM, &action, &g_latch_state.old_term);
  struct sigaction ignore = action;
  ignore.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore, &g_latch_state.old_pipe);
}

SignalDrainLatch::~SignalDrainLatch() {
  ::sigaction(SIGINT, &g_latch_state.old_int, nullptr);
  ::sigaction(SIGTERM, &g_latch_state.old_term, nullptr);
  ::sigaction(SIGPIPE, &g_latch_state.old_pipe, nullptr);
  if (g_pipe_fds[0] >= 0) ::close(g_pipe_fds[0]);
  if (g_pipe_fds[1] >= 0) ::close(g_pipe_fds[1]);
  g_pipe_fds[0] = g_pipe_fds[1] = -1;
  g_latch_live.store(false);
}

bool SignalDrainLatch::signalled() const {
  return g_signal_number.load(std::memory_order_acquire) != 0;
}

int SignalDrainLatch::signal_number() const {
  return g_signal_number.load(std::memory_order_acquire);
}

int SignalDrainLatch::fd() const { return g_pipe_fds[0]; }

bool SignalDrainLatch::Wait(std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!signalled()) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return signalled();
    struct pollfd pfd;
    pfd.fd = g_pipe_fds[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ms = static_cast<int>(std::min<int64_t>(left.count(), INT32_MAX));
    int rc = ::poll(&pfd, 1, ms);
    if (rc < 0 && errno != EINTR) return signalled();
  }
  return true;
}

void SignalDrainLatch::TripForTesting(int signal_number) {
  DrainHandler(signal_number);
}

}  // namespace cqa
