#ifndef CQA_BASE_SIGNALS_H_
#define CQA_BASE_SIGNALS_H_

#include <chrono>

namespace cqa {

/// Async-signal-safe SIGINT/SIGTERM latch built on the self-pipe trick:
/// the handler writes one byte to a pipe, so a thread can *block* on
/// "signal or timeout" (via poll on `fd()` or `Wait`) instead of spinning
/// on a flag. Used by the daemon front-end to start a graceful drain.
///
/// At most one instance may be live at a time (signal dispositions are
/// process-global); the previous dispositions are restored on destruction.
class SignalDrainLatch {
 public:
  /// Installs handlers for SIGINT and SIGTERM (and ignores SIGPIPE, which
  /// any socket daemon must).
  SignalDrainLatch();
  ~SignalDrainLatch();

  SignalDrainLatch(const SignalDrainLatch&) = delete;
  SignalDrainLatch& operator=(const SignalDrainLatch&) = delete;

  /// True once a drain signal has been received (sticky).
  bool signalled() const;

  /// The signal number that fired first (0 if none yet).
  int signal_number() const;

  /// Blocks until a signal arrives or `timeout` elapses; true iff
  /// signalled. Spurious wakeups re-wait internally.
  bool Wait(std::chrono::milliseconds timeout);

  /// Readable end of the self-pipe, for integrating into a poll loop.
  int fd() const;

  /// Trips the latch programmatically (tests; also lets a daemon reuse the
  /// same drain path for non-signal shutdown causes).
  void TripForTesting(int signal_number);
};

}  // namespace cqa

#endif  // CQA_BASE_SIGNALS_H_
