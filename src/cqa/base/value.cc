#include "cqa/base/value.h"

namespace cqa {

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].valid() ? t[i].name() : std::string("<invalid>");
  }
  out += ")";
  return out;
}

}  // namespace cqa
