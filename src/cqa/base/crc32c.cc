#include "cqa/base/crc32c.h"

#include <array>

namespace cqa {
namespace {

// Reflected-input/reflected-output table for poly 0x82F63B78, built once at
// first use (constant-initialised would also work but constexpr loops keep
// the translation unit trivially portable to older standards modes).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace cqa
