#include "cqa/base/crc32c.h"

#include <array>
#include <cstring>

// Hardware paths. Each is compiled only when the toolchain can target the
// instruction set from a per-function attribute (no global -msse4.2 /
// -march=armv8-a+crc needed), and taken only when the running CPU reports
// the feature — so one binary serves both old and new machines.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CQA_CRC32C_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__))
#define CQA_CRC32C_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace cqa {
namespace {

// Reflected-input/reflected-output table for poly 0x82F63B78, built once at
// first use (constant-initialised would also work but constexpr loops keep
// the translation unit trivially portable to older standards modes).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

#if defined(CQA_CRC32C_X86)

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = _mm_crc32_u64(crc, word);
    p += 8;
    len -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (len > 0) {
    crc32 = _mm_crc32_u8(crc32, *p);
    ++p;
    --len;
  }
  return crc32 ^ 0xFFFFFFFFu;
}

bool DetectHardwareCrc32c() { return __builtin_cpu_supports("sse4.2") != 0; }

#elif defined(CQA_CRC32C_ARM)

__attribute__((target("+crc"))) uint32_t Crc32cHardware(const void* data,
                                                        size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = __crc32cb(crc, *p);
    ++p;
    --len;
  }
  return crc ^ 0xFFFFFFFFu;
}

bool DetectHardwareCrc32c() {
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
}

#else

uint32_t Crc32cHardware(const void* data, size_t len) {
  return crc32c_internal::Crc32cSoftware(data, len);
}

bool DetectHardwareCrc32c() { return false; }

#endif

}  // namespace

namespace crc32c_internal {

uint32_t Crc32cSoftware(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool HaveHardwareCrc32c() {
  static const bool kHave = DetectHardwareCrc32c();
  return kHave;
}

}  // namespace crc32c_internal

uint32_t Crc32c(const void* data, size_t len) {
  return crc32c_internal::HaveHardwareCrc32c()
             ? Crc32cHardware(data, len)
             : crc32c_internal::Crc32cSoftware(data, len);
}

}  // namespace cqa
