#include "cqa/base/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace cqa {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Clamps a steady-clock remaining budget to a non-negative poll timeout.
int PollMs(steady_clock::time_point deadline) {
  auto left = std::chrono::duration_cast<milliseconds>(deadline -
                                                       steady_clock::now());
  return static_cast<int>(std::clamp<int64_t>(left.count(), 0, INT32_MAX));
}

Result<PollStatus> PollOne(int fd, short events, milliseconds timeout) {
  if (fd < 0) {
    return Result<PollStatus>::Error(ErrorCode::kInternal,
                                     "poll on an invalid socket");
  }
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int ms = static_cast<int>(
      std::clamp<int64_t>(timeout.count(), 0, INT32_MAX));
  int rc = ::poll(&pfd, 1, ms);
  if (rc < 0) {
    if (errno == EINTR) return PollStatus::kTimeout;  // caller re-checks
    return Result<PollStatus>::Error(ErrorCode::kInternal, Errno("poll"));
  }
  if (rc == 0) return PollStatus::kTimeout;
  // POLLERR/POLLHUP also count as "ready": the subsequent read/write will
  // surface the actual condition as a typed error or EOF.
  return PollStatus::kReady;
}

Result<struct sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string h = host.empty() || host == "localhost" ? "127.0.0.1" : host;
  if (h == "*" || h == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    return Result<struct sockaddr_in>::Error(
        ErrorCode::kParse, "not an IPv4 address: '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<PollStatus> PollReadable(int fd, milliseconds timeout) {
  return PollOne(fd, POLLIN, timeout);
}

Result<PollStatus> PollWritable(int fd, milliseconds timeout) {
  return PollOne(fd, POLLOUT, timeout);
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port) {
  Result<struct sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return Result<Socket>::Error(addr);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    return Result<Socket>::Error(ErrorCode::kInternal, Errno("socket"));
  }
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<const struct sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    return Result<Socket>::Error(ErrorCode::kInternal, Errno("bind"));
  }
  if (::listen(s.fd(), 128) != 0) {
    return Result<Socket>::Error(ErrorCode::kInternal, Errno("listen"));
  }
  if (bound_port != nullptr) {
    struct sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(s.fd(), reinterpret_cast<struct sockaddr*>(&actual),
                      &len) != 0) {
      return Result<Socket>::Error(ErrorCode::kInternal,
                                   Errno("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return s;
}

Result<Socket> AcceptConnection(const Socket& listener) {
  int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EINTR || errno == EMFILE || errno == ENFILE) {
      return Result<Socket>::Error(ErrorCode::kOverloaded, Errno("accept"));
    }
    return Result<Socket>::Error(ErrorCode::kInternal, Errno("accept"));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          milliseconds timeout) {
  Result<struct sockaddr_in> addr = ResolveV4(host, port);
  if (!addr.ok()) return Result<Socket>::Error(addr);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    return Result<Socket>::Error(ErrorCode::kInternal, Errno("socket"));
  }
  int flags = ::fcntl(s.fd(), F_GETFL, 0);
  ::fcntl(s.fd(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(
      s.fd(), reinterpret_cast<const struct sockaddr*>(&addr.value()),
      sizeof(addr.value()));
  if (rc != 0 && errno != EINPROGRESS) {
    return Result<Socket>::Error(ErrorCode::kInternal, Errno("connect"));
  }
  if (rc != 0) {
    Result<PollStatus> ready = PollWritable(s.fd(), timeout);
    if (!ready.ok()) return Result<Socket>::Error(ready);
    if (ready.value() == PollStatus::kTimeout) {
      return Result<Socket>::Error(ErrorCode::kDeadlineExceeded,
                                   "connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Result<Socket>::Error(ErrorCode::kInternal, Errno("connect"));
    }
  }
  ::fcntl(s.fd(), F_SETFL, flags);  // back to blocking
  int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Result<size_t> ReadSome(const Socket& socket, char* buffer, size_t capacity,
                        milliseconds timeout) {
  Result<PollStatus> ready = PollReadable(socket.fd(), timeout);
  if (!ready.ok()) return Result<size_t>::Error(ready);
  if (ready.value() == PollStatus::kTimeout) {
    return Result<size_t>::Error(ErrorCode::kDeadlineExceeded,
                                 "read timed out");
  }
  ssize_t n = ::recv(socket.fd(), buffer, capacity, 0);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return Result<size_t>::Error(ErrorCode::kDeadlineExceeded,
                                   "read timed out");
    }
    return Result<size_t>::Error(ErrorCode::kInternal, Errno("recv"));
  }
  return static_cast<size_t>(n);
}

Result<size_t> WriteAll(const Socket& socket, const char* data, size_t size,
                        milliseconds timeout) {
  steady_clock::time_point deadline = steady_clock::now() + timeout;
  size_t written = 0;
  while (written < size) {
    Result<PollStatus> ready =
        PollWritable(socket.fd(), milliseconds(PollMs(deadline)));
    if (!ready.ok()) return Result<size_t>::Error(ready);
    if (ready.value() == PollStatus::kTimeout) {
      if (steady_clock::now() < deadline) continue;  // EINTR slice
      return Result<size_t>::Error(ErrorCode::kDeadlineExceeded,
                                   "write timed out");
    }
    ssize_t n = ::send(socket.fd(), data + written, size - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Result<size_t>::Error(ErrorCode::kInternal, Errno("send"));
    }
    written += static_cast<size_t>(n);
  }
  return written;
}

}  // namespace cqa
