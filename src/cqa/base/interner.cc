#include "cqa/base/interner.h"

#include <cassert>
#include <memory>

namespace cqa {

Interner& Interner::Global() {
  static Interner& instance = *new Interner();
  return instance;
}

Symbol Interner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(s));
  if (it != ids_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.push_back(std::make_unique<std::string>(s));
  ids_.emplace(*names_.back(), id);
  return id;
}

const std::string& Interner::NameOf(Symbol id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id >= 0 && static_cast<size_t>(id) < names_.size());
  return *names_[static_cast<size_t>(id)];
}

Symbol Interner::Fresh(std::string_view prefix) {
  while (true) {
    std::string candidate;
    {
      std::lock_guard<std::mutex> lock(mu_);
      candidate = std::string(prefix) + "#" + std::to_string(fresh_counter_++);
      if (ids_.find(candidate) == ids_.end()) {
        Symbol id = static_cast<Symbol>(names_.size());
        names_.push_back(std::make_unique<std::string>(candidate));
        ids_.emplace(*names_.back(), id);
        return id;
      }
    }
  }
}

size_t Interner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

void Interner::LockForFork() { mu_.lock(); }

void Interner::UnlockAfterFork() { mu_.unlock(); }

Symbol InternSymbol(std::string_view s) { return Interner::Global().Intern(s); }

const std::string& SymbolName(Symbol id) {
  return Interner::Global().NameOf(id);
}

Symbol FreshSymbol(std::string_view prefix) {
  return Interner::Global().Fresh(prefix);
}

}  // namespace cqa
