#ifndef CQA_BASE_RESULT_H_
#define CQA_BASE_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

#include "cqa/base/error.h"

namespace cqa {

/// A value-or-typed-error result type. The library does not use exceptions;
/// fallible operations return `Result<T>`. Errors carry an `ErrorCode`
/// (see base/error.h) so callers can tell "malformed query" from "ran out
/// of budget" without string matching, plus a human-readable message.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result with the default `kInternal` code
  /// (source-compatible with pre-taxonomy call sites).
  static Result Error(std::string message) {
    return Result(ErrorTag{}, ErrorCode::kInternal, std::move(message));
  }

  /// Constructs a typed error result.
  static Result Error(ErrorCode code, std::string message) {
    return Result(ErrorTag{}, code, std::move(message));
  }

  /// Re-types an error from a `Result` of a different payload type,
  /// preserving both code and message.
  template <typename U>
  static Result Error(const Result<U>& other) {
    assert(!other.ok());
    return Result(ErrorTag{}, other.code(), other.error());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

  const std::string& error() const {
    assert(!ok());
    return std::get<ErrorString>(data_).message;
  }

  /// The error taxonomy code; only valid when `!ok()`.
  ErrorCode code() const {
    assert(!ok());
    return std::get<ErrorString>(data_).code;
  }

 private:
  struct ErrorTag {};
  struct ErrorString {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
  };
  Result(ErrorTag, ErrorCode code, std::string message)
      : data_(ErrorString{code, std::move(message)}) {}

  std::variant<T, ErrorString> data_;
};

}  // namespace cqa

#endif  // CQA_BASE_RESULT_H_
