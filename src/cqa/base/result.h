#ifndef CQA_BASE_RESULT_H_
#define CQA_BASE_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cqa {

/// A value-or-error-message result type. The library does not use exceptions;
/// fallible operations return `Result<T>`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result.
  static Result Error(std::string message) {
    return Result(ErrorTag{}, std::move(message));
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

  const std::string& error() const {
    assert(!ok());
    return std::get<ErrorString>(data_).message;
  }

 private:
  struct ErrorTag {};
  struct ErrorString {
    std::string message;
  };
  Result(ErrorTag, std::string message)
      : data_(ErrorString{std::move(message)}) {}

  std::variant<T, ErrorString> data_;
};

}  // namespace cqa

#endif  // CQA_BASE_RESULT_H_
