#ifndef CQA_BASE_UNION_FIND_H_
#define CQA_BASE_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace cqa {

/// Disjoint-set forest with path compression and union by size. Used by the
/// UFA (Undirected Forest Accessibility) ground-truth solver of Lemma 5.3.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of `x`'s component.
  int Find(int x);

  /// Merges the components of `a` and `b`. Returns false if already merged.
  bool Union(int a, int b);

  /// True iff `a` and `b` are in the same component.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Number of components.
  int num_components() const { return num_components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_components_;
};

}  // namespace cqa

#endif  // CQA_BASE_UNION_FIND_H_
