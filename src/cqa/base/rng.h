#ifndef CQA_BASE_RNG_H_
#define CQA_BASE_RNG_H_

#include <cstdint>

namespace cqa {

/// A small deterministic pseudo-random generator (splitmix64). Used by the
/// workload generators and property tests so that every run is reproducible
/// from a seed, independent of the standard library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool Chance(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

 private:
  uint64_t state_;
};

}  // namespace cqa

#endif  // CQA_BASE_RNG_H_
