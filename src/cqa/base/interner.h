#ifndef CQA_BASE_INTERNER_H_
#define CQA_BASE_INTERNER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cqa {

/// A dense integer id for an interned string. Symbols are used for relation
/// names, variable names, and the spellings of constants. Two symbols are
/// equal iff their underlying strings are equal.
using Symbol = int32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = -1;

/// Process-wide, thread-safe string interner. All names used by the library
/// (relations, variables, constants) are interned here so that comparisons
/// and hashing are O(1).
class Interner {
 public:
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// Returns the singleton interner.
  static Interner& Global();

  /// Interns `s`, returning its dense id. Idempotent.
  Symbol Intern(std::string_view s);

  /// Returns the string for a previously interned symbol.
  const std::string& NameOf(Symbol id) const;

  /// Returns a symbol whose name starts with `prefix` and that has never been
  /// returned by `Intern` or `Fresh` before (e.g. "z#17").
  Symbol Fresh(std::string_view prefix);

  /// Number of interned strings (for diagnostics).
  size_t size() const;

  /// Fork safety (the sandbox supervisor's prepare/parent/child protocol):
  /// the interner is the one process-global lock a forked solver child must
  /// take (solvers intern fresh symbols), so the forking thread acquires it
  /// across `fork()` — no other thread can then hold it at the fork moment —
  /// and both sides release their copy immediately after. Unlocking in the
  /// child is legal: the child's sole thread is the (copied) owner.
  void LockForFork();
  void UnlockAfterFork();

 private:
  Interner() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Symbol> ids_;
  // Deque-like stable storage: vector of pointers so NameOf stays valid
  // across rehash/regrowth without holding the lock at the caller.
  std::vector<std::unique_ptr<std::string>> names_;
  int64_t fresh_counter_ = 0;
};

/// Convenience wrappers around the global interner.
Symbol InternSymbol(std::string_view s);
const std::string& SymbolName(Symbol id);
Symbol FreshSymbol(std::string_view prefix);

}  // namespace cqa

#endif  // CQA_BASE_INTERNER_H_
