#include "cqa/base/backoff.h"

#include <algorithm>
#include <cmath>

namespace cqa {

std::chrono::milliseconds BackoffPolicy::DelayFor(int attempt,
                                                  Rng* rng) const {
  if (attempt < 1) attempt = 1;
  double base = static_cast<double>(initial.count());
  double cap = static_cast<double>(max_delay.count());
  // pow can overflow double for absurd attempt counts; clamp via repeated
  // multiplication that stops at the cap instead.
  for (int i = 1; i < attempt && base < cap; ++i) base *= multiplier;
  base = std::min(base, cap);
  double j = std::clamp(jitter, 0.0, 1.0);
  double u = rng != nullptr ? rng->NextDouble() : 0.0;
  double delay = base * (1.0 - j) + base * j * u;
  return std::chrono::milliseconds(static_cast<int64_t>(delay));
}

}  // namespace cqa
