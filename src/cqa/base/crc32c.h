#ifndef CQA_BASE_CRC32C_H_
#define CQA_BASE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cqa {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over a byte range.
/// Software table implementation — no hardware intrinsics, no dependencies.
/// Used to checksum delta-journal records: Castagnoli detects all burst
/// errors up to 32 bits and has better Hamming distance than CRC-32/ISO at
/// the record sizes the journal writes, which is why storage formats
/// (ext4, iSCSI, leveldb) standardised on it.
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

}  // namespace cqa

#endif  // CQA_BASE_CRC32C_H_
