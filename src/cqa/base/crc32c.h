#ifndef CQA_BASE_CRC32C_H_
#define CQA_BASE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cqa {

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) over a byte range.
/// Used to checksum delta-journal records and epoch snapshots: Castagnoli
/// detects all burst errors up to 32 bits and has better Hamming distance
/// than CRC-32/ISO at the record sizes the journal writes, which is why
/// storage formats (ext4, iSCSI, leveldb) standardised on it.
///
/// Dispatches at runtime to the CPU's CRC32 instructions when available
/// (SSE4.2 `crc32q` on x86-64, the ARMv8 CRC32 extension on aarch64) and
/// falls back to a portable table implementation otherwise. Both paths are
/// bit-identical; `crc32c_test` cross-checks them on random buffers.
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

namespace crc32c_internal {

/// The portable table path, always compiled. Exposed so the cross-check
/// test can diff it against the dispatched (possibly hardware) path.
uint32_t Crc32cSoftware(const void* data, size_t len);

/// True when `Crc32c` dispatches to a hardware path on this machine (the
/// instruction set exists at build time AND the CPU reports it at run time).
bool HaveHardwareCrc32c();

}  // namespace crc32c_internal

}  // namespace cqa

#endif  // CQA_BASE_CRC32C_H_
