#ifndef CQA_BASE_BACKOFF_H_
#define CQA_BASE_BACKOFF_H_

#include <chrono>

#include "cqa/base/rng.h"

namespace cqa {

/// Exponential backoff with deterministic jitter, for retrying requests
/// that failed with a retryable code (see `IsRetryable`). The k-th retry
/// (1-based) waits
///
///     base  = min(initial * multiplier^(k-1), max_delay)
///     delay = base * (1 - jitter) + base * jitter * u,   u ~ U[0,1)
///
/// so the delay always lies in `[base * (1 - jitter), base)`. Jitter draws
/// from a caller-owned `Rng`, keeping every schedule reproducible from a
/// seed; with a null rng the jitter term is dropped and `DelayFor` returns
/// the deterministic lower bound.
struct BackoffPolicy {
  std::chrono::milliseconds initial{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_delay{2'000};
  /// Fraction of the base delay that is randomized, in [0, 1].
  double jitter = 0.5;

  /// Delay before retry number `attempt` (1-based). Attempts below 1 are
  /// treated as 1.
  std::chrono::milliseconds DelayFor(int attempt, Rng* rng = nullptr) const;
};

}  // namespace cqa

#endif  // CQA_BASE_BACKOFF_H_
