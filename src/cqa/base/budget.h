#ifndef CQA_BASE_BUDGET_H_
#define CQA_BASE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cqa/base/error.h"

namespace cqa {

/// Execution governor shared by every potentially-exponential code path.
///
/// A `Budget` carries three independent limits — a wall-clock deadline, a
/// step (search-node) limit, and an external cancellation token — plus the
/// mutable counters of the run it governs. Solvers charge one step per unit
/// of work via `CheckEvery(N)`; the step-limit and fault-injection checks
/// are plain integer compares on every call, while the clock and the
/// cancellation token are only consulted every N steps, so probes are cheap
/// enough for the innermost search loops.
///
/// A violation is *sticky*: after the first non-ok probe every later probe
/// returns the same code without rechecking, so deep recursions unwind
/// promptly and report one coherent cause.
///
/// Budgets are single-threaded run state (pass one per solver call); only
/// the `cancel` token may be touched from other threads.
struct Budget {
  using Clock = std::chrono::steady_clock;

  static constexpr uint64_t kNoStepLimit = UINT64_MAX;
  /// Default amortization stride for `CheckEvery`.
  static constexpr uint64_t kDefaultStride = 256;

  /// Absolute wall-clock deadline; `time_point::max()` means none.
  Clock::time_point deadline = Clock::time_point::max();
  /// Inclusive upper bound on charged steps; `kNoStepLimit` means none.
  uint64_t max_steps = kNoStepLimit;
  /// Optional external cancellation token (set by another thread).
  const std::atomic<bool>* cancel = nullptr;
  /// Test-only fault injection: when non-zero, the probe numbered
  /// `fail_after_probes` (1-based, counting every `CheckEvery` call)
  /// deterministically reports `kBudgetExhausted`. Lets tests and the
  /// fuzzer force exhaustion at every probe site in turn and prove each
  /// solver unwinds cleanly.
  uint64_t fail_after_probes = 0;
  /// Test-only crash injection: the probe numbered `crash_after_probes`
  /// raises SIGSEGV, simulating a solver bug mid-search. Only meaningful
  /// under fork isolation (inproc it takes the whole process down — which
  /// is exactly the failure mode the sandbox contains).
  uint64_t crash_after_probes = 0;
  /// Test-only leak injection: every probe allocates (and retains, touched)
  /// this many MiB, simulating runaway solver memory. Under a sandbox RSS
  /// cap the allocation eventually fails and the child exits with
  /// `kResourceExhausted`; inproc the memory is released with the budget.
  uint64_t hog_mb_per_probe = 0;
  /// Test-only wedge injection: the probe numbered `wedge_after_probes`
  /// blocks forever, simulating a solver stuck in a pathological region
  /// *between* cooperative probes — the case only hard preemption (the
  /// sandbox's SIGKILL after the grace window) can reclaim.
  uint64_t wedge_after_probes = 0;

  Budget() = default;

  /// A budget with only a relative wall-clock timeout.
  static Budget WithTimeout(std::chrono::milliseconds timeout);
  /// A budget with only a step limit.
  static Budget WithMaxSteps(uint64_t max_steps);

  /// Charges one step and probes the limits. Step limit and fault
  /// injection are checked on every call; the clock and the cancellation
  /// token every `stride` steps (and on the first). Returns the violated
  /// code, or nullopt while within budget.
  std::optional<ErrorCode> CheckEvery(uint64_t stride = kDefaultStride) {
    if (tripped_.has_value()) return tripped_;
    ++steps_;
    if (fail_after_probes != 0 && steps_ >= fail_after_probes) {
      return Trip(ErrorCode::kBudgetExhausted);
    }
    if (crash_after_probes != 0 && steps_ >= crash_after_probes) CrashNow();
    if (wedge_after_probes != 0 && steps_ >= wedge_after_probes) WedgeNow();
    if (hog_mb_per_probe != 0) HogNow();
    if (steps_ > max_steps) return Trip(ErrorCode::kBudgetExhausted);
    if (stride == 0 || steps_ % stride == 1 || stride == 1) return CheckNow();
    return std::nullopt;
  }

  /// Unamortized probe: consults the cancellation token and the clock now
  /// (does not charge a step).
  std::optional<ErrorCode> CheckNow();

  /// Folds `n` steps performed elsewhere (the summed work of parallel
  /// component tasks, after their join) into this budget's counter,
  /// saturating instead of wrapping. Trips `kBudgetExhausted` when the
  /// folded total exceeds the step limit — later probes then fail sticky,
  /// but an answer already in hand stays valid: the work *was* done.
  std::optional<ErrorCode> ChargeSteps(uint64_t n) {
    if (tripped_.has_value()) return tripped_;
    steps_ = n > UINT64_MAX - steps_ ? UINT64_MAX : steps_ + n;
    if (steps_ > max_steps) return Trip(ErrorCode::kBudgetExhausted);
    return std::nullopt;
  }

  /// Steps charged so far.
  uint64_t steps() const { return steps_; }

  /// The sticky violation, if any probe failed.
  std::optional<ErrorCode> tripped() const { return tripped_; }

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  /// Time left until the deadline (zero if already past); nullopt if no
  /// deadline is set.
  std::optional<Clock::duration> TimeRemaining() const;

  /// Steps left before `max_steps` (zero if exhausted); nullopt if no
  /// step limit is set.
  std::optional<uint64_t> StepsRemaining() const;

  /// A human-readable message for a tripped code, e.g. for Result errors.
  static std::string Describe(ErrorCode code);

 private:
  std::optional<ErrorCode> Trip(ErrorCode code) {
    tripped_ = code;
    return tripped_;
  }

  // Out-of-line fault injectors (budget.cc) so the hot probe stays small.
  [[noreturn]] static void CrashNow();
  [[noreturn]] static void WedgeNow();
  void HogNow();

  uint64_t steps_ = 0;
  std::optional<ErrorCode> tripped_;
  /// Retained allocations of `hog_mb_per_probe` (freed with the budget).
  std::vector<std::vector<char>> hogged_;
};

}  // namespace cqa

#endif  // CQA_BASE_BUDGET_H_
