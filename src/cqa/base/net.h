#ifndef CQA_BASE_NET_H_
#define CQA_BASE_NET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "cqa/base/result.h"

namespace cqa {

/// Thin RAII + typed-error layer over POSIX TCP sockets and poll(2), shared
/// by the solve daemon and its client. All blocking operations take explicit
/// timeouts so callers can implement read/write deadlines and idle timeouts;
/// none of them ever raise SIGPIPE (writes use MSG_NOSIGNAL).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// shutdown(2) both directions; reliably wakes any thread blocked in
  /// poll/read/write on this socket from another thread. Never fails
  /// (an already-dead socket is the desired end state).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Outcome of a single poll-with-timeout on one descriptor.
enum class PollStatus {
  kReady,    // the requested event (or an error/hangup) is pending
  kTimeout,  // the timeout elapsed with nothing to do
};

/// Polls `fd` for readability; interprets EINTR as a timeout slice so
/// callers re-check their own stop conditions. `kInternal` on real errors.
Result<PollStatus> PollReadable(int fd, std::chrono::milliseconds timeout);
/// Same for writability.
Result<PollStatus> PollWritable(int fd, std::chrono::milliseconds timeout);

/// Binds and listens on `host:port` (IPv4 dotted quad or "localhost").
/// Port 0 picks an ephemeral port; `*bound_port` reports the actual one.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         uint16_t* bound_port);

/// Accepts one pending connection; call after PollReadable on the listener.
/// `kUnavailable`-style transient conditions (EAGAIN, ECONNABORTED) are
/// reported as `kOverloaded` so accept loops can just continue.
Result<Socket> AcceptConnection(const Socket& listener);

/// Connects to `host:port` within `timeout`.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          std::chrono::milliseconds timeout);

/// Reads up to `capacity` bytes once the socket is readable, waiting at
/// most `timeout`. Returns the byte count: 0 means orderly EOF. A timeout
/// is `kDeadlineExceeded`; connection errors are `kInternal`.
Result<size_t> ReadSome(const Socket& socket, char* buffer, size_t capacity,
                        std::chrono::milliseconds timeout);

/// Writes the whole buffer, waiting for writability as needed; the timeout
/// bounds the *total* call. Partial progress past the deadline still fails
/// with `kDeadlineExceeded` (the connection is no longer frame-aligned and
/// must be closed).
Result<size_t> WriteAll(const Socket& socket, const char* data, size_t size,
                        std::chrono::milliseconds timeout);

}  // namespace cqa

#endif  // CQA_BASE_NET_H_
