#ifndef CQA_BASE_ERROR_H_
#define CQA_BASE_ERROR_H_

#include <string>

namespace cqa {

/// Failure taxonomy for `Result<T>`. Callers branch on the code (retry,
/// degrade, reject) and show the message to humans.
enum class ErrorCode {
  /// Malformed input text (query, fact file, FO formula).
  kParse,
  /// The request is well-formed but outside what the callee can decide
  /// (e.g. a cyclic attack graph handed to an FO-only solver).
  kUnsupported,
  /// The wall-clock deadline of the governing `Budget` passed.
  kDeadlineExceeded,
  /// A step/node limit of the governing `Budget` was exhausted (or its
  /// fault-injection knob fired).
  kBudgetExhausted,
  /// The external cancellation token of the governing `Budget` was set.
  kCancelled,
  /// A serving layer refused admission because its work queue was full (or
  /// it was shutting down). The request never ran; resubmitting later — or
  /// to another replica — can succeed.
  kOverloaded,
  /// The named database instance was detached (or is mid-detach) from the
  /// registry that was asked to serve it. Queued requests of a detaching
  /// shard are shed with this code; resubmitting against a still-attached
  /// instance (or after a re-attach) can succeed.
  kDetached,
  /// A sandboxed solve breached a hard resource cap (RSS limit): the child
  /// process could not allocate and was terminated. Unlike
  /// `kBudgetExhausted` this is *not* resource exhaustion in the retryable
  /// sense — the same instance would deterministically breach again.
  kResourceExhausted,
  /// A sandboxed solver worker died without producing a verdict: signal
  /// death (segfault), an unexpected exit code, or a truncated result
  /// pipe. Deterministic re-failure is assumed; never retried.
  kWorkerCrashed,
  /// The instance is serving in read-only mode (a warm-standby follower
  /// replicating a primary). Solves succeed; mutations (deltas, attach,
  /// detach) are refused with this code until the follower is promoted.
  /// Not transparently retryable: the same replica refuses again — the
  /// client must redirect the write to the primary (or promote).
  kReadOnly,
  /// A resumable answer-stream cursor named a database fingerprint other
  /// than the one the target instance is serving: the epoch flipped under
  /// the stream (an `apply_delta`), so candidate positions are no longer
  /// meaningful and resuming would silently skip or repeat tuples. Not
  /// transparently retryable — the client must restart the stream from
  /// position zero against the new epoch.
  kStaleCursor,
  /// Anything else: internal invariant failures, I/O, legacy untyped errors.
  kInternal,
};

inline const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse:
      return "parse";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kBudgetExhausted:
      return "budget-exhausted";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kDetached:
      return "detached";
    case ErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::kWorkerCrashed:
      return "worker-crashed";
    case ErrorCode::kReadOnly:
      return "read-only";
    case ErrorCode::kStaleCursor:
      return "stale-cursor";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "?";
}

/// True for the codes that mean "ran out of resources, a retry with a larger
/// budget (or a cheaper method) could still succeed". Cancellation is *not*
/// resource exhaustion: the caller asked to stop, degrading would be wrong.
/// `kResourceExhausted` (a sandbox RSS-cap breach) is deliberately excluded:
/// the cap is a property of the deployment, not the attempt, so the same
/// solve re-fails deterministically.
inline bool IsResourceExhaustion(ErrorCode code) {
  return code == ErrorCode::kDeadlineExceeded ||
         code == ErrorCode::kBudgetExhausted;
}

/// True for the codes a client may transparently retry: the work itself was
/// not rejected as malformed or impossible, only the attempt was unlucky
/// (out of budget, or shed at admission). Cancellation is deliberate and
/// never retried; `kWorkerCrashed` and `kResourceExhausted` are
/// deterministic re-failures (a crashing solve crashes again, a capped
/// solve breaches again), so retrying them only multiplies the damage.
/// `kReadOnly` is excluded too: a follower keeps refusing writes until it
/// is promoted, so the retry has to go somewhere else, not merely later.
inline bool IsRetryable(ErrorCode code) {
  return IsResourceExhaustion(code) || code == ErrorCode::kOverloaded;
}

}  // namespace cqa

#endif  // CQA_BASE_ERROR_H_
