#include "cqa/base/rng.h"

#include <cassert>

namespace cqa {

uint64_t Rng::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Below(uint64_t bound) {
  assert(bound > 0);
  // Modulo bias is irrelevant for workload generation.
  return Next() % bound;
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace cqa
