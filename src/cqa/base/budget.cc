#include "cqa/base/budget.h"

#include <string>

namespace cqa {

Budget Budget::WithTimeout(std::chrono::milliseconds timeout) {
  Budget b;
  b.deadline = Clock::now() + timeout;
  return b;
}

Budget Budget::WithMaxSteps(uint64_t max_steps) {
  Budget b;
  b.max_steps = max_steps;
  return b;
}

std::optional<ErrorCode> Budget::CheckNow() {
  if (tripped_.has_value()) return tripped_;
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Trip(ErrorCode::kCancelled);
  }
  if (has_deadline() && Clock::now() >= deadline) {
    return Trip(ErrorCode::kDeadlineExceeded);
  }
  return std::nullopt;
}

std::optional<Budget::Clock::duration> Budget::TimeRemaining() const {
  if (!has_deadline()) return std::nullopt;
  Clock::time_point now = Clock::now();
  if (now >= deadline) return Clock::duration::zero();
  return deadline - now;
}

std::optional<uint64_t> Budget::StepsRemaining() const {
  if (max_steps == kNoStepLimit) return std::nullopt;
  return steps_ >= max_steps ? 0 : max_steps - steps_;
}

std::string Budget::Describe(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeadlineExceeded:
      return "wall-clock deadline exceeded";
    case ErrorCode::kBudgetExhausted:
      return "step budget exhausted";
    case ErrorCode::kCancelled:
      return "cancelled by caller";
    default:
      return ToString(code);
  }
}

}  // namespace cqa
