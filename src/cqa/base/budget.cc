#include "cqa/base/budget.h"

#include <csignal>
#include <cstring>
#include <string>
#include <thread>

namespace cqa {

void Budget::CrashNow() {
  // A genuine asynchronous crash, as a buggy solver would produce it. The
  // process (or, under fork isolation, the sandbox child) dies by signal;
  // nothing unwinds.
  std::raise(SIGSEGV);
  // raise of an unblocked SIGSEGV with the default disposition never
  // returns; abort as a backstop if a test harness blocked it.
  std::abort();
}

void Budget::WedgeNow() {
  // Block forever *without* probing the budget again: from the governor's
  // point of view this thread has left the cooperative protocol entirely.
  // Sleeping (rather than spinning) keeps chaos tests with many wedged
  // children cheap; only SIGKILL reclaims the wedge either way.
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void Budget::HogNow() {
  // Allocate and *touch* the chunk so it contributes real RSS, and retain
  // it so the footprint ratchets with every probe.
  hogged_.emplace_back();
  hogged_.back().resize(static_cast<size_t>(hog_mb_per_probe) << 20);
  std::memset(hogged_.back().data(), 0xAB, hogged_.back().size());
}

Budget Budget::WithTimeout(std::chrono::milliseconds timeout) {
  Budget b;
  b.deadline = Clock::now() + timeout;
  return b;
}

Budget Budget::WithMaxSteps(uint64_t max_steps) {
  Budget b;
  b.max_steps = max_steps;
  return b;
}

std::optional<ErrorCode> Budget::CheckNow() {
  if (tripped_.has_value()) return tripped_;
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Trip(ErrorCode::kCancelled);
  }
  if (has_deadline() && Clock::now() >= deadline) {
    return Trip(ErrorCode::kDeadlineExceeded);
  }
  return std::nullopt;
}

std::optional<Budget::Clock::duration> Budget::TimeRemaining() const {
  if (!has_deadline()) return std::nullopt;
  Clock::time_point now = Clock::now();
  if (now >= deadline) return Clock::duration::zero();
  return deadline - now;
}

std::optional<uint64_t> Budget::StepsRemaining() const {
  if (max_steps == kNoStepLimit) return std::nullopt;
  return steps_ >= max_steps ? 0 : max_steps - steps_;
}

std::string Budget::Describe(ErrorCode code) {
  switch (code) {
    case ErrorCode::kDeadlineExceeded:
      return "wall-clock deadline exceeded";
    case ErrorCode::kBudgetExhausted:
      return "step budget exhausted";
    case ErrorCode::kCancelled:
      return "cancelled by caller";
    default:
      return ToString(code);
  }
}

}  // namespace cqa
