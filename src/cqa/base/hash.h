#ifndef CQA_BASE_HASH_H_
#define CQA_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cqa {

/// A 128-bit non-cryptographic streaming hash (two independently seeded
/// 64-bit FNV-style lanes with a splitmix finalizer and a cross-lane mix).
/// Used for database fingerprints and cache keys, where 128 bits make
/// accidental collisions negligible; this is NOT a defense against
/// adversarial inputs.
///
/// The digest depends only on the byte stream fed in, never on process
/// state (interner ids, pointer values), so equal canonical serialisations
/// hash equally across runs.
class Hash128 {
 public:
  struct Digest {
    uint64_t hi = 0;
    uint64_t lo = 0;

    friend bool operator==(const Digest& a, const Digest& b) {
      return a.hi == b.hi && a.lo == b.lo;
    }
    friend bool operator!=(const Digest& a, const Digest& b) {
      return !(a == b);
    }

    /// 32 lowercase hex characters, hi half first.
    std::string ToHex() const {
      static const char* kHex = "0123456789abcdef";
      std::string out(32, '0');
      uint64_t parts[2] = {hi, lo};
      for (int p = 0; p < 2; ++p) {
        for (int i = 0; i < 16; ++i) {
          out[static_cast<size_t>(p * 16 + 15 - i)] =
              kHex[(parts[p] >> (4 * i)) & 0xf];
        }
      }
      return out;
    }
  };

  void Update(const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      a_ = (a_ ^ p[i]) * 0x100000001b3ull;           // FNV-1a prime
      b_ = (b_ ^ p[i]) * 0x9e3779b97f4a7c15ull + 1;  // golden-ratio lane
    }
    length_ += len;
  }

  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Absorbs a length-prefixed string: unambiguous under concatenation
  /// (Update("ab") + Update("c") vs Update("a") + Update("bc") differ).
  void UpdateSized(std::string_view s) {
    UpdateU64(s.size());
    Update(s);
  }

  void UpdateU64(uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    Update(bytes, 8);
  }

  Digest Finish() const {
    Digest d;
    d.hi = Avalanche(a_ ^ length_);
    d.lo = Avalanche(b_ + 0x632be59bd9b4e019ull * length_ + d.hi);
    return d;
  }

  // splitmix64 finalizer: full-avalanche bijection on 64 bits.
  static uint64_t Avalanche(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

 private:
  uint64_t a_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  uint64_t b_ = 0x6a09e667f3bcc909ull;  // sqrt(2) fraction
  uint64_t length_ = 0;
};

/// Order-independent 128-bit multiset combiner over element digests: the hi
/// lane folds with XOR (self-inverse) and the lo lane with wrapping
/// addition, so `Remove` is the exact inverse of `Add` and any permutation
/// of the same Add/Remove sequence reaches the same state. This is what
/// makes O(delta) fingerprint maintenance possible — removing a fact
/// un-mixes exactly its own contribution, no rescan.
///
/// The accumulator state (`xor_word`/`add_word`/`count`) is the canonical
/// incremental form; `Finish` avalanches it into a `Hash128::Digest` so
/// structurally close multisets (one fact apart) still get unrelated
/// digests. Both lanes are seeded with fixed constants so the empty
/// multiset finishes nonzero (fingerprints use {0,0} as "invalid").
///
/// Like `Hash128` this is non-cryptographic: XOR/add lanes are trivially
/// forgeable by an adversary choosing elements, which fingerprinting of
/// operator-owned databases does not defend against.
class SetHash128 {
 public:
  void Add(const Hash128::Digest& d) {
    xor_ ^= d.hi;
    add_ += d.lo;
    ++count_;
  }

  /// Inverse of `Add` for an element currently in the multiset. Removing
  /// an element that was never added silently corrupts the accumulator
  /// (there is no membership check here) — callers guard with their own
  /// membership structure, e.g. the database's fact index.
  void Remove(const Hash128::Digest& d) {
    xor_ ^= d.hi;
    add_ -= d.lo;
    --count_;
  }

  Hash128::Digest Finish() const {
    Hash128::Digest d;
    d.hi = Hash128::Avalanche(xor_ ^ (0x9e3779b97f4a7c15ull * count_) ^
                              0xcbf29ce484222325ull);
    d.lo = Hash128::Avalanche(add_ + 0x632be59bd9b4e019ull * count_ + d.hi);
    return d;
  }

  uint64_t xor_word() const { return xor_; }
  uint64_t add_word() const { return add_; }
  uint64_t count() const { return count_; }

  /// Restores a previously observed accumulator state (journal recovery).
  void Restore(uint64_t xor_word, uint64_t add_word, uint64_t count) {
    xor_ = xor_word;
    add_ = add_word;
    count_ = count;
  }

 private:
  uint64_t xor_ = 0;
  uint64_t add_ = 0;
  uint64_t count_ = 0;
};

}  // namespace cqa

#endif  // CQA_BASE_HASH_H_
