#ifndef CQA_BASE_VALUE_H_
#define CQA_BASE_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cqa/base/interner.h"

namespace cqa {

/// A database constant. Values are interned strings, so equality and hashing
/// are O(1). Pair values `<a,b>` (used by the Θ-valuation reductions of
/// Lemmas 5.6/5.7) are represented by interning the compound spelling.
class Value {
 public:
  /// Constructs the invalid value. Use `Value::Of` for real constants.
  Value() : id_(kNoSymbol) {}

  /// Interns `name` as a constant.
  static Value Of(std::string_view name) { return Value(InternSymbol(name)); }

  /// Interns the decimal spelling of `n`.
  static Value OfInt(int64_t n) { return Of(std::to_string(n)); }

  /// The pair constant `<a,b>`.
  static Value Pair(Value a, Value b) {
    return Of("<" + a.name() + "," + b.name() + ">");
  }

  /// A constant guaranteed to be distinct from all previously created ones.
  static Value Fresh(std::string_view prefix) {
    return Value(FreshSymbol(prefix));
  }

  /// Wraps a raw interned symbol.
  static Value FromSymbol(Symbol s) { return Value(s); }

  bool valid() const { return id_ != kNoSymbol; }
  Symbol id() const { return id_; }
  const std::string& name() const { return SymbolName(id_); }

  friend bool operator==(Value a, Value b) { return a.id_ == b.id_; }
  friend bool operator!=(Value a, Value b) { return a.id_ != b.id_; }
  friend bool operator<(Value a, Value b) { return a.id_ < b.id_; }

 private:
  explicit Value(Symbol id) : id_(id) {}

  Symbol id_;
};

/// A tuple of constants (one fact's columns, or a block key).
using Tuple = std::vector<Value>;

struct ValueHash {
  size_t operator()(Value v) const {
    return std::hash<int32_t>()(v.id());
  }
};

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (Value v : t) {
      h ^= static_cast<size_t>(v.id()) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

/// Renders a tuple as "(a, b, c)".
std::string TupleToString(const Tuple& t);

}  // namespace cqa

#endif  // CQA_BASE_VALUE_H_
