#include "cqa/base/union_find.h"

#include <cassert>
#include <numeric>

namespace cqa {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(static_cast<int>(n)) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::Find(int x) {
  assert(x >= 0 && static_cast<size_t>(x) < parent_.size());
  int root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    int next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_components_;
  return true;
}

}  // namespace cqa
