#ifndef CQA_REDUCTIONS_THETA_H_
#define CQA_REDUCTIONS_THETA_H_

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// The Θᵃᵇ valuation machinery of Lemmas 5.6 and 5.7: given a 2-cycle
/// F ⇝ G ⇝ F in the attack graph of q, the reductions map each input fact of
/// a canonical hard query (q1 or q2) to facts of q's schema via
///
///   Θᵃᵇ(w) = a      if G|v_G ⇝ w and F|v_F ̸⇝ w
///            b      if F|v_F ⇝ w and G|v_G ̸⇝ w
///            <a,b>  if both
///            ⊥      otherwise
///
/// where v_F ∈ vars(F) reaches key(G) and v_G ∈ vars(G) reaches key(F).
class ThetaReduction {
 public:
  /// Builds the machinery for the 2-cycle (f_idx, g_idx). Fails if the two
  /// literals do not attack each other.
  static Result<ThetaReduction> Create(const Query& q, size_t f_idx,
                                       size_t g_idx);

  /// Θᵃᵇ(w) for a variable w of q.
  Value Theta(Symbol w, Value a, Value b) const;

  /// Θᵃᵇ applied to the atom of literal `lit` (grounds it).
  Tuple ThetaFact(size_t lit, Value a, Value b) const;

  /// Lemma 5.6 (F ∈ q⁺, G ∈ q⁻): input over q1's schema {R[2,1], S[2,1]}.
  /// R(a,b) contributes Θᵃᵇ(P) for every P ∈ q⁺; S(b,a) contributes Θᵃᵇ(G).
  /// Every repair of `q1_db` satisfies q1 iff every repair of the result
  /// satisfies q.
  Result<Database> ApplyLemma56(const Database& q1_db) const;

  /// Lemma 5.7 (F, G ∈ q⁻): input over q2's schema {R, S, T all [2,1]}.
  /// T(a,b) → Θᵃᵇ(q⁺); R(a,b) → Θᵃᵇ(F); S(b,a) → Θᵃᵇ(G).
  Result<Database> ApplyLemma57(const Database& q2_db) const;

  size_t f_idx() const { return f_idx_; }
  size_t g_idx() const { return g_idx_; }
  Symbol v_f() const { return v_f_; }
  Symbol v_g() const { return v_g_; }

 private:
  ThetaReduction(const Query& q, size_t f_idx, size_t g_idx)
      : q_(q), f_idx_(f_idx), g_idx_(g_idx) {}

  Result<Database> Apply(const Database& in, bool lemma57) const;

  Query q_;
  size_t f_idx_;
  size_t g_idx_;
  Symbol v_f_ = kNoSymbol;
  Symbol v_g_ = kNoSymbol;
  SymbolSet reach_f_;  // {w : F|v_F ⇝ w}
  SymbolSet reach_g_;  // {w : G|v_G ⇝ w}
};

}  // namespace cqa

#endif  // CQA_REDUCTIONS_THETA_H_
