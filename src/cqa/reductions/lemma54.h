#ifndef CQA_REDUCTIONS_LEMMA54_H_
#define CQA_REDUCTIONS_LEMMA54_H_

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Lemma 5.4: for q' ⊆ q with q⁺ ⊆ q', CERTAINTY(q') first-order reduces to
/// CERTAINTY(q). The reduction deletes, for every negated atom ¬N of q that
/// is absent from q', all N-facts from the input database (and registers N's
/// relation so the schema fits q).
///
/// `dropped_relations` lists the relations of q \ q' (all must be negated in
/// q). Returns the transformed database db₀ with: every repair of db
/// satisfies q' iff every repair of db₀ satisfies q.
Result<Database> DropNegatedReduction(const Query& q,
                                      const std::vector<Symbol>& dropped,
                                      const Database& db);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_LEMMA54_H_
