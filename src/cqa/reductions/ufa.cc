#include "cqa/reductions/ufa.h"

#include "cqa/base/union_find.h"

namespace cqa {

bool SolveUfa(const UfaInstance& inst) {
  UnionFind uf(static_cast<size_t>(inst.num_vertices));
  for (const auto& [a, b] : inst.edges) uf.Union(a, b);
  return uf.Connected(inst.u, inst.v);
}

Query MakeQ2() {
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  return Query::MakeOrDie({
      Pos(Atom("R", 2, {x, y})),
      Neg(Atom("S", 1, {x, y})),
      Neg(Atom("T", 1, {y, x})),
  });
}

Database UfaToQ2Database(const UfaInstance& inst) {
  Schema schema;
  schema.AddRelationOrDie("R", 2, 2);
  schema.AddRelationOrDie("S", 2, 1);
  schema.AddRelationOrDie("T", 2, 1);
  Database db(schema);
  auto vertex = [](int i) { return Value::Of("n" + std::to_string(i)); };
  for (const auto& [a, b] : inst.edges) {
    Value e = Value::Of("e" + std::to_string(a) + "_" + std::to_string(b));
    db.AddFactOrDie("R", {vertex(a), e});
    db.AddFactOrDie("R", {vertex(b), e});
    db.AddFactOrDie("S", {vertex(a), e});
    db.AddFactOrDie("S", {vertex(b), e});
    db.AddFactOrDie("T", {e, vertex(a)});
    db.AddFactOrDie("T", {e, vertex(b)});
  }
  Value t = Value::Of("t");
  db.AddFactOrDie("R", {vertex(inst.u), t});
  db.AddFactOrDie("R", {vertex(inst.v), t});
  db.AddFactOrDie("S", {vertex(inst.u), t});
  db.AddFactOrDie("S", {vertex(inst.v), t});
  return db;
}

}  // namespace cqa
