#include "cqa/reductions/prop72.h"

#include "cqa/attack/attack_graph.h"

namespace cqa {

Result<NonReifiabilityGadget> BuildProp72Gadget(const Query& q, Symbol x) {
  AttackGraph graph(q);
  size_t attacker = SIZE_MAX;
  Symbol source = kNoSymbol;
  SymbolSet reach;
  for (size_t i = 0; i < q.NumLiterals() && attacker == SIZE_MAX; ++i) {
    if (!graph.AttacksVar(i, x)) continue;
    for (Symbol v : q.atom(i).Vars(q.reified())) {
      SymbolSet r = graph.ReachFrom(i, v);
      if (r.contains(x)) {
        attacker = i;
        source = v;
        reach = std::move(r);
        break;
      }
    }
  }
  if (attacker == SIZE_MAX) {
    return Result<NonReifiabilityGadget>::Error(
        "no atom of q attacks variable '" + SymbolName(x) + "'");
  }

  // Θ_c(w) = c if F|v_F ⇝ w, else ⊥.
  Value a = Value::Of("p72_a");
  Value b = Value::Of("p72_b");
  Value bot = Value::Of("_bot");
  auto theta_fact = [&](size_t lit, Value c) {
    Tuple out;
    for (const Term& t : q.atom(lit).terms()) {
      if (t.is_constant()) {
        out.push_back(t.constant());
      } else {
        out.push_back(reach.contains(t.var()) ? c : bot);
      }
    }
    return out;
  };

  Schema schema;
  Result<bool> reg = q.RegisterInto(&schema);
  if (!reg.ok()) return Result<NonReifiabilityGadget>::Error(reg.error());
  Database db(schema);
  for (Value c : {a, b}) {
    for (size_t i = 0; i < q.NumLiterals(); ++i) {
      if (q.IsNegated(i) && i != attacker) continue;
      Result<bool> r = db.AddFact(q.atom(i).relation(), theta_fact(i, c));
      if (!r.ok()) return Result<NonReifiabilityGadget>::Error(r.error());
    }
    // If F is negated, its Θ_c(F) fact is added explicitly (the loop above
    // already added it via the i == attacker exception).
  }
  return NonReifiabilityGadget{std::move(db), a, b, attacker, source};
}

}  // namespace cqa
