#include "cqa/reductions/q4.h"

namespace cqa {

Query MakeQ4() {
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  return Query::MakeOrDie({
      Pos(Atom("X", 1, {x})),
      Pos(Atom("Y", 1, {y})),
      Neg(Atom("R", 1, {x, y})),
      Neg(Atom("S", 1, {y, x})),
  });
}

namespace {

// Does a repair falsifying q4 exist when |X| = 1? The single x must be
// covered at every y: each S-block y can pick S(y, x); at most one uncovered
// y can be rescued by the R-block of x.
bool FalsifierExistsSingleX(const Database& db, Value x,
                            const std::vector<Tuple>& ys) {
  Symbol rel_r = InternSymbol("R");
  Symbol rel_s = InternSymbol("S");
  std::vector<Value> uncovered;
  for (const Tuple& yt : ys) {
    if (!db.Contains(rel_s, {yt[0], x})) uncovered.push_back(yt[0]);
  }
  if (uncovered.empty()) return true;
  if (uncovered.size() == 1) return db.Contains(rel_r, {x, uncovered[0]});
  return false;
}

// Symmetric case |Y| = 1.
bool FalsifierExistsSingleY(const Database& db, Value y,
                            const std::vector<Tuple>& xs) {
  Symbol rel_r = InternSymbol("R");
  Symbol rel_s = InternSymbol("S");
  std::vector<Value> uncovered;
  for (const Tuple& xt : xs) {
    if (!db.Contains(rel_r, {xt[0], y})) uncovered.push_back(xt[0]);
  }
  if (uncovered.empty()) return true;
  if (uncovered.size() == 1) return db.Contains(rel_s, {y, uncovered[0]});
  return false;
}

}  // namespace

bool IsCertainQ4(const Database& db) {
  const std::vector<Tuple>& xs = db.FactsOf(InternSymbol("X"));
  const std::vector<Tuple>& ys = db.FactsOf(InternSymbol("Y"));
  size_t m = xs.size();
  size_t n = ys.size();
  if (m == 0 || n == 0) return false;

  if (m == 1) return !FalsifierExistsSingleX(db, xs[0][0], ys);
  if (n == 1) return !FalsifierExistsSingleY(db, ys[0][0], xs);

  if (m == 2 && n == 2) {
    // A falsifying repair exists iff db ⊇ { R(a1,b_{j1}), R(a2,b_{j2}),
    // S(b_{j1},a2), S(b_{j2},a1) } for some j1 ≠ j2 (Example 7.1).
    Symbol rel_r = InternSymbol("R");
    Symbol rel_s = InternSymbol("S");
    Value a1 = xs[0][0], a2 = xs[1][0];
    Value b1 = ys[0][0], b2 = ys[1][0];
    auto pattern = [&](Value bj1, Value bj2) {
      return db.Contains(rel_r, {a1, bj1}) && db.Contains(rel_r, {a2, bj2}) &&
             db.Contains(rel_s, {bj1, a2}) && db.Contains(rel_s, {bj2, a1});
    };
    return !(pattern(b1, b2) || pattern(b2, b1));
  }

  // m·n > m+n for all remaining shapes: no repair can cover X×Y with only
  // m R-picks and n S-picks, so every repair satisfies q4.
  return true;
}

}  // namespace cqa
