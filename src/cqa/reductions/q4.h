#ifndef CQA_REDUCTIONS_Q4_H_
#define CQA_REDUCTIONS_Q4_H_

#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// q4 = { X(x), Y(y), ¬R(x | y), ¬S(y | x) } (Example 7.1): negation is NOT
/// weakly guarded and the attack graph is cyclic, yet CERTAINTY(q4) is in FO
/// by a counting argument — the paper's witness that Theorem 4.3 does not
/// extend beyond weakly-guarded negation.
Query MakeQ4();

/// Decides CERTAINTY(q4) by the combinatorial argument of Example 7.1:
/// with m = |X| and n = |Y|,
///  * m = 0 or n = 0            → false;
///  * m·n > m+n                 → true (not enough R/S picks to cover X×Y);
///  * m = 1, n = 1, or m = n = 2 → explicit degenerate-case analysis.
/// Expects X, Y unary all-key and R, S binary simple-key relations named as
/// in `MakeQ4`.
bool IsCertainQ4(const Database& db);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_Q4_H_
