#include "cqa/reductions/lemma66.h"

namespace cqa {

Result<Lemma66Reduction> ApplyLemma66(const Query& q, const Database& db) {
  // Locate a disequality v̄ ≠ c̄ with variable lhs and constant rhs.
  int target = -1;
  for (size_t i = 0; i < q.diseqs().size(); ++i) {
    const Diseq& d = q.diseqs()[i];
    bool shape_ok = true;
    for (size_t j = 0; j < d.lhs.size(); ++j) {
      if (!d.lhs[j].is_variable() || !d.rhs[j].is_constant()) {
        shape_ok = false;
        break;
      }
    }
    if (shape_ok) {
      target = static_cast<int>(i);
      break;
    }
  }
  if (target < 0) {
    return Result<Lemma66Reduction>::Error(
        "query has no disequality of the form v̄ ≠ c̄");
  }
  const Diseq& d = q.diseqs()[static_cast<size_t>(target)];

  Symbol e = FreshSymbol("E");
  int arity = static_cast<int>(d.lhs.size());

  // q ∪ {¬E(v̄)} ∪ C \ {v̄ ≠ c̄}. E is all-key, so it adds no attacks and
  // cannot break weak guardedness beyond what the disequality already
  // required (Definition 6.3).
  std::vector<Literal> literals = q.literals();
  literals.push_back(Neg(Atom(e, arity, d.lhs)));
  std::vector<Diseq> diseqs;
  for (size_t i = 0; i < q.diseqs().size(); ++i) {
    if (static_cast<int>(i) != target) diseqs.push_back(q.diseqs()[i]);
  }
  Result<Query> out_q =
      Query::Make(std::move(literals), std::move(diseqs), q.reified());
  if (!out_q.ok()) return Result<Lemma66Reduction>::Error(out_q.error());

  Database out_db = db;
  Tuple c_tuple;
  for (const Term& t : d.rhs) c_tuple.push_back(t.constant());
  Result<bool> reg = out_db.AddFactAutoSchema(SymbolName(e), arity,
                                              std::move(c_tuple));
  if (!reg.ok()) return Result<Lemma66Reduction>::Error(reg.error());

  return Lemma66Reduction{std::move(out_q.value()), std::move(out_db), e};
}

}  // namespace cqa
