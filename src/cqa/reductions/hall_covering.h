#ifndef CQA_REDUCTIONS_HALL_COVERING_H_
#define CQA_REDUCTIONS_HALL_COVERING_H_

#include "cqa/db/database.h"
#include "cqa/matching/covering.h"
#include "cqa/query/query.h"

namespace cqa {

/// q_Hall = { S(x), ¬N1('c' | x), ..., ¬Nℓ('c' | x) } (Examples 1.2 and
/// 6.12): the query whose certainty captures the complement of S-COVERING.
/// Its attack graph is acyclic, so it has a consistent first-order rewriting
/// (Figure 2 shows the case ℓ = 3) — whose length is exponential in ℓ.
Query MakeHallQuery(int ell);

/// The reduction of Example 1.2: S(a) for every element a, and N_i(c, a)
/// whenever a ∈ T_i. The S-COVERING instance has a solution iff some repair
/// falsifies q_Hall (i.e. iff CERTAINTY(q_Hall) answers false).
Database CoveringToHallDatabase(const SCoveringInstance& inst);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_HALL_COVERING_H_
