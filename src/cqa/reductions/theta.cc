#include "cqa/reductions/theta.h"

#include "cqa/attack/attack_graph.h"

namespace cqa {

Result<ThetaReduction> ThetaReduction::Create(const Query& q, size_t f_idx,
                                              size_t g_idx) {
  AttackGraph graph(q);
  if (!graph.Attacks(f_idx, g_idx) || !graph.Attacks(g_idx, f_idx)) {
    return Result<ThetaReduction>::Error(
        "ThetaReduction requires a 2-cycle F ⇝ G ⇝ F");
  }
  ThetaReduction out(q, f_idx, g_idx);
  // v_F ∈ vars(F) with F|v_F ⇝ u for some u ∈ key(G); symmetrically v_G.
  auto find_source = [&](size_t from, size_t to, Symbol* src,
                         SymbolSet* reach) {
    SymbolSet target = q.atom(to).KeyVars(q.reified());
    for (Symbol v : q.atom(from).Vars(q.reified())) {
      SymbolSet r = graph.ReachFrom(from, v);
      if (r.Intersects(target)) {
        *src = v;
        *reach = std::move(r);
        return true;
      }
    }
    return false;
  };
  if (!find_source(f_idx, g_idx, &out.v_f_, &out.reach_f_) ||
      !find_source(g_idx, f_idx, &out.v_g_, &out.reach_g_)) {
    return Result<ThetaReduction>::Error(
        "internal error: attack without a reaching source variable");
  }
  return out;
}

Value ThetaReduction::Theta(Symbol w, Value a, Value b) const {
  bool f_reaches = reach_f_.contains(w);
  bool g_reaches = reach_g_.contains(w);
  if (g_reaches && !f_reaches) return a;
  if (f_reaches && !g_reaches) return b;
  if (f_reaches && g_reaches) return Value::Pair(a, b);
  return Value::Of("_bot");
}

Tuple ThetaReduction::ThetaFact(size_t lit, Value a, Value b) const {
  const Atom& atom = q_.atom(lit);
  Tuple out;
  out.reserve(static_cast<size_t>(atom.arity()));
  for (const Term& t : atom.terms()) {
    out.push_back(t.is_constant() ? t.constant() : Theta(t.var(), a, b));
  }
  return out;
}

Result<Database> ThetaReduction::Apply(const Database& in,
                                       bool lemma57) const {
  Schema schema;
  Result<bool> reg = q_.RegisterInto(&schema);
  if (!reg.ok()) return Result<Database>::Error(reg.error());
  Database out(schema);

  Symbol rel_r = InternSymbol("R");
  Symbol rel_s = InternSymbol("S");
  Symbol rel_t = InternSymbol("T");

  auto add = [&](size_t lit, Value a, Value b) -> Result<bool> {
    return out.AddFact(q_.atom(lit).relation(), ThetaFact(lit, a, b));
  };

  std::string error;
  auto add_positive_block = [&](Value a, Value b) {
    for (size_t i = 0; i < q_.NumLiterals(); ++i) {
      if (q_.IsNegated(i)) continue;
      Result<bool> r = add(i, a, b);
      if (!r.ok()) error = r.error();
    }
  };

  // The "generator" relation whose facts produce Θᵃᵇ(q⁺): T for Lemma 5.7,
  // R for Lemma 5.6.
  Symbol generator = lemma57 ? rel_t : rel_r;
  in.ForEachFact(generator, [&](const Tuple& t) {
    add_positive_block(t[0], t[1]);
    return error.empty();
  });
  if (lemma57) {
    // R(a,b) → Θᵃᵇ(F) (F is negated here, so its facts are added directly).
    in.ForEachFact(rel_r, [&](const Tuple& t) {
      Result<bool> r = add(f_idx_, t[0], t[1]);
      if (!r.ok()) error = r.error();
      return error.empty();
    });
  }
  // S(b,a) → Θᵃᵇ(G) in both lemmas (note the argument order: key is b).
  in.ForEachFact(rel_s, [&](const Tuple& t) {
    Result<bool> r = add(g_idx_, t[1], t[0]);
    if (!r.ok()) error = r.error();
    return error.empty();
  });

  if (!error.empty()) return Result<Database>::Error(error);
  return out;
}

Result<Database> ThetaReduction::ApplyLemma56(const Database& q1_db) const {
  if (q_.IsNegated(f_idx_) || !q_.IsNegated(g_idx_)) {
    return Result<Database>::Error(
        "Lemma 5.6 requires F ∈ q⁺ and G ∈ q⁻");
  }
  return Apply(q1_db, /*lemma57=*/false);
}

Result<Database> ThetaReduction::ApplyLemma57(const Database& q2_db) const {
  if (!q_.IsNegated(f_idx_) || !q_.IsNegated(g_idx_)) {
    return Result<Database>::Error("Lemma 5.7 requires F, G ∈ q⁻");
  }
  return Apply(q2_db, /*lemma57=*/true);
}

}  // namespace cqa
