#ifndef CQA_REDUCTIONS_BPM_H_
#define CQA_REDUCTIONS_BPM_H_

#include "cqa/db/database.h"
#include "cqa/matching/bipartite.h"
#include "cqa/query/query.h"

namespace cqa {

/// The canonical query q1 = { R(x | y), ¬S(y | x) } of Section 5.1
/// (Example 1.1's girls/boys query). Its attack graph has the 2-cycle
/// R ⇄ S... more precisely R ⇝ S ⇝ R, so CERTAINTY(q1) is NL-hard
/// (Lemma 5.2) via the reduction below.
Query MakeQ1();

/// The first-order reduction of Lemma 5.2 from BIPARTITE PERFECT MATCHING to
/// the complement of CERTAINTY(q1): every edge {a_l, b_r} of `g` becomes the
/// facts R(a_l, b_r) and S(b_r, a_l).
///
/// For graphs in which every left vertex has at least one edge and
/// |A| = |B|, `g` has a perfect matching iff some repair of the result
/// falsifies q1 (i.e. iff CERTAINTY(q1) answers false).
Database BpmToQ1Database(const BipartiteGraph& g);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_BPM_H_
