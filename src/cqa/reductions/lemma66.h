#ifndef CQA_REDUCTIONS_LEMMA66_H_
#define CQA_REDUCTIONS_LEMMA66_H_

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Lemma 6.6: CERTAINTY(q ∪ C) with a disequality v̄ ≠ c̄ first-order reduces
/// to CERTAINTY(q ∪ {¬E(v̄)} ∪ C') where E is a fresh all-key relation and
/// the input database gains the single fact E(c̄).
///
/// The library's rewriter keeps disequalities native, but this reduction is
/// part of the paper's toolbox and is exposed (and tested) in its own right.
struct Lemma66Reduction {
  Query query;       // q with the first ground disequality replaced by ¬E(v̄)
  Database database; // db ∪ {E(c̄)}
  Symbol e_relation; // the fresh all-key relation name
};

/// Applies the reduction to the first disequality of `q`, which must have
/// all-constant right-hand side (the form produced by Lemma 6.5). Fails if
/// `q` has no such disequality.
Result<Lemma66Reduction> ApplyLemma66(const Query& q, const Database& db);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_LEMMA66_H_
