#include "cqa/reductions/hall_covering.h"

#include <cassert>

namespace cqa {

Query MakeHallQuery(int ell) {
  assert(ell >= 0);
  Term x = Term::Var("x");
  Term c = Term::Const("c");
  std::vector<Literal> literals;
  literals.push_back(Pos(Atom("S", 1, {x})));
  for (int i = 1; i <= ell; ++i) {
    literals.push_back(Neg(Atom("N" + std::to_string(i), 1, {c, x})));
  }
  return Query::MakeOrDie(std::move(literals));
}

Database CoveringToHallDatabase(const SCoveringInstance& inst) {
  Schema schema;
  schema.AddRelationOrDie("S", 1, 1);
  for (size_t i = 1; i <= inst.sets.size(); ++i) {
    schema.AddRelationOrDie("N" + std::to_string(i), 2, 1);
  }
  Database db(schema);
  auto elem = [](int a) { return Value::Of("s" + std::to_string(a)); };
  Value c = Value::Of("c");
  for (int a = 0; a < inst.num_elements; ++a) {
    db.AddFactOrDie("S", {elem(a)});
  }
  for (size_t i = 0; i < inst.sets.size(); ++i) {
    for (int a : inst.sets[i]) {
      db.AddFactOrDie("N" + std::to_string(i + 1), {c, elem(a)});
    }
  }
  return db;
}

}  // namespace cqa
