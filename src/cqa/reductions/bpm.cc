#include "cqa/reductions/bpm.h"

namespace cqa {

Query MakeQ1() {
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  return Query::MakeOrDie({
      Pos(Atom("R", 1, {x, y})),
      Neg(Atom("S", 1, {y, x})),
  });
}

Database BpmToQ1Database(const BipartiteGraph& g) {
  Schema schema;
  schema.AddRelationOrDie("R", 2, 1);
  schema.AddRelationOrDie("S", 2, 1);
  Database db(schema);
  for (int l = 0; l < g.num_left(); ++l) {
    Value a = Value::Of("a" + std::to_string(l));
    for (int r : g.Neighbors(l)) {
      Value b = Value::Of("b" + std::to_string(r));
      db.AddFactOrDie("R", {a, b});
      db.AddFactOrDie("S", {b, a});
    }
  }
  return db;
}

}  // namespace cqa
