#ifndef CQA_REDUCTIONS_UFA_H_
#define CQA_REDUCTIONS_UFA_H_

#include <utility>
#include <vector>

#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// An instance of UNDIRECTED FOREST ACCESSIBILITY [8]: an acyclic undirected
/// graph plus two distinguished vertices. The problem (is there a path from
/// `u` to `v`?) is L-complete and remains so when the forest has exactly two
/// connected components, each containing at least one edge — the form the
/// Lemma 5.3 reduction expects.
struct UfaInstance {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;
  int u = 0;
  int v = 0;
};

/// Ground truth via union-find.
bool SolveUfa(const UfaInstance& inst);

/// The canonical query q2 = { R(x, y), ¬S(x | y), ¬T(y | x) } of
/// Section 5.1 — the positive atom is ALL-KEY (the Lemma 5.3 proof keeps
/// R(u,t) and R(u,{u,u1}) in one repair, which forces key = {1,2});
/// CERTAINTY(q2) is L-hard (Lemma 5.3) via `UfaToQ2Database`.
Query MakeQ2();

/// The first-order reduction of Lemma 5.3 (illustrated in Fig. 4): for every
/// edge {a,b} with edge-constant e: facts R(a,e), R(b,e), S(a,e), S(b,e),
/// T(e,a), T(e,b); plus R(u,t), R(v,t), S(u,t), S(v,t) for a fresh t.
/// Then, provided u ≠ v, u and v are connected in the forest iff every
/// repair satisfies q2 (for u = v the two t-facts collapse and a falsifying
/// repair always exists, so callers must pass distinct vertices).
Database UfaToQ2Database(const UfaInstance& inst);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_UFA_H_
