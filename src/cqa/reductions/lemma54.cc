#include "cqa/reductions/lemma54.h"

#include <algorithm>

namespace cqa {

Result<Database> DropNegatedReduction(const Query& q,
                                      const std::vector<Symbol>& dropped,
                                      const Database& db) {
  // The dropped atoms must be negated atoms of q.
  for (Symbol rel : dropped) {
    std::optional<size_t> idx = q.FindRelation(rel);
    if (!idx.has_value() || !q.IsNegated(*idx)) {
      return Result<Database>::Error(
          "Lemma 5.4 reduction: '" + SymbolName(rel) +
          "' is not a negated atom of q");
    }
  }
  // Schema of the output: q's relations plus db's.
  Schema schema = db.schema();
  Result<bool> reg = q.RegisterInto(&schema);
  if (!reg.ok()) return Result<Database>::Error(reg.error());

  Database out(schema);
  for (const RelationSchema& rs : db.schema().relations()) {
    if (std::find(dropped.begin(), dropped.end(), rs.name) != dropped.end()) {
      continue;  // delete all facts of dropped negated relations
    }
    for (const Tuple& t : db.FactsOf(rs.name)) {
      Result<bool> r = out.AddFact(rs.name, t);
      if (!r.ok()) return Result<Database>::Error(r.error());
    }
  }
  return out;
}

}  // namespace cqa
