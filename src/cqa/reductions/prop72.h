#ifndef CQA_REDUCTIONS_PROP72_H_
#define CQA_REDUCTIONS_PROP72_H_

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// The two-repair gadget from the proof of Proposition 7.2, witnessing that
/// an attacked variable is not reifiable: a database with exactly two
/// repairs r_a and r_b such that both satisfy q, but q[x→a] fails in one and
/// q[x→b] fails in the other.
struct NonReifiabilityGadget {
  Database db;
  Value a;
  Value b;
  size_t attacker;     // literal index of the atom F with F ⇝ x
  Symbol source_var;   // v_F with F|v_F ⇝ x
};

/// Builds the gadget for an attacked variable `x` of `q`. Fails if no atom
/// attacks `x` (then x is reifiable by Corollary 6.9 under weak
/// guardedness).
Result<NonReifiabilityGadget> BuildProp72Gadget(const Query& q, Symbol x);

}  // namespace cqa

#endif  // CQA_REDUCTIONS_PROP72_H_
