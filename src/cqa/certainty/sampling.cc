#include "cqa/certainty/sampling.h"

#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"

namespace cqa {

SampleEstimate EstimateCertainty(const Query& q, const Database& db,
                                 uint64_t max_samples, Rng* rng,
                                 Budget* budget) {
  SampleEstimate out;
  for (uint64_t i = 0; i < max_samples; ++i) {
    if (budget != nullptr) {
      // Stride 1: a sample (full query evaluation) dwarfs a clock read.
      if (std::optional<ErrorCode> code = budget->CheckEvery(1)) {
        out.stopped = code;
        return out;
      }
    }
    Repair r = RandomRepair(db, rng);
    ++out.samples;
    if (Satisfies(q, r)) {
      ++out.satisfying;
    } else {
      out.refuted = true;
      return out;
    }
  }
  return out;
}

}  // namespace cqa
