#ifndef CQA_CERTAINTY_BACKTRACKING_H_
#define CQA_CERTAINTY_BACKTRACKING_H_

#include <cstdint>
#include <optional>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

struct BacktrackingOptions {
  /// Abort with `kBudgetExhausted` after visiting this many search nodes.
  uint64_t max_nodes = 50'000'000;
  /// Optional execution governor (wall-clock deadline, shared step budget,
  /// cancellation). Probed once per search node; not owned. The node count
  /// above applies on top of the budget's own step limit.
  Budget* budget = nullptr;
  /// Order blocks key-major (related keys adjacent) instead of relation-
  /// major; dramatically earlier pruning on realistic data (ablated in
  /// bench_ablation).
  bool key_major_order = true;
  /// Early-accept when even the optimistic view cannot match the positive
  /// part of the query (every completion falsifies q).
  bool optimistic_early_accept = true;
};

/// Per-call statistics of a backtracking run.
struct BacktrackingReport {
  /// Whether q holds in every repair.
  bool certain = false;
  /// Search nodes visited.
  uint64_t nodes = 0;
};

/// Exact CERTAINTY(q) solver for arbitrary sjfBCQ¬≠ queries (cyclic attack
/// graphs included): searches for a *falsifying* repair by branching over
/// blocks, pruning any branch in which the query is already certainly
/// satisfied — i.e. some valuation maps all positive atoms to decided
/// choices and every negated atom to a fact that cannot appear in any
/// completion. Worst-case exponential (CERTAINTY(q) is coNP-hard in
/// general), but typically orders of magnitude faster than full repair
/// enumeration. Errors are typed: `kBudgetExhausted` on the node limit,
/// `kDeadlineExceeded` / `kCancelled` from the governing budget.
Result<BacktrackingReport> SolveCertainBacktracking(
    const Query& q, const Database& db,
    const BacktrackingOptions& options = {});

/// Boolean convenience wrapper around `SolveCertainBacktracking`.
Result<bool> IsCertainBacktracking(const Query& q, const Database& db,
                                   const BacktrackingOptions& options = {});

/// Explainability companion: if CERTAINTY(q) is false on `db`, returns a
/// concrete falsifying repair (as a standalone consistent database) — the
/// evidence a user can inspect. Returns nullopt when q is certain. Errors
/// propagate from the underlying search.
Result<std::optional<Database>> FindFalsifyingRepair(
    const Query& q, const Database& db,
    const BacktrackingOptions& options = {});

}  // namespace cqa

#endif  // CQA_CERTAINTY_BACKTRACKING_H_
