#ifndef CQA_CERTAINTY_CERTAIN_ANSWERS_H_
#define CQA_CERTAINTY_CERTAIN_ANSWERS_H_

#include <vector>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/fo/formula.h"
#include "cqa/query/query.h"

namespace cqa {

/// Certain answers for non-Boolean queries. The paper (Section 1) notes
/// that free variables can be treated as constants; concretely, a tuple c̄
/// is a *certain answer* for q with free variables x̄ iff q[x̄→c̄] is true in
/// every repair. Candidate tuples need only range over the database columns
/// in which the free variables occur positively (any certain answer must
/// match a positive atom in every repair).

struct CertainAnswers {
  /// The free variables, in the order of the answer tuples.
  std::vector<Symbol> free_vars;
  /// All certain answer tuples, lexicographically sorted.
  std::vector<Tuple> answers;
  /// Number of candidate tuples examined.
  size_t candidates = 0;
};

/// The per-free-variable candidate value lists: for each variable, the
/// values of the first positive column it occurs in (every certain answer
/// must embed a positive atom into every repair, hence into db). Lists are
/// deduplicated, in the database's fact-iteration order — callers needing
/// a canonical order (the streaming enumerator) sort them by spelling.
/// Fails `kUnsupported` if a free variable has no positive occurrence.
Result<std::vector<std::vector<Value>>> CertainAnswerCandidates(
    const Query& q, const std::vector<Symbol>& free_vars, const Database& db);

/// Computes the certain answers of `q` with free variables `free_vars` on
/// `db`, deciding each candidate with the auto-dispatched solver. Fails if
/// a free variable does not occur in a positive atom (`kUnsupported`), or
/// if the underlying solver fails. An optional `budget` is probed per
/// candidate and threaded into every per-candidate solve (degradation is
/// off here: a certain-answer set must be exact, so exhaustion surfaces as
/// a typed error rather than an approximate answer set).
Result<CertainAnswers> ComputeCertainAnswers(
    const Query& q, const std::vector<Symbol>& free_vars, const Database& db,
    Budget* budget = nullptr);

/// Builds a consistent first-order rewriting for q(x̄) with the free
/// variables `free_vars` left free in the output formula (they are treated
/// as constants during construction, exactly as in the proof of Lemma 6.1).
/// Evaluating the formula under a binding of x̄ decides whether that binding
/// is a certain answer. Requires the FO conditions of Theorem 4.3 with x̄
/// treated as constants.
Result<FoPtr> RewriteCertainWithFree(const Query& q,
                                     const std::vector<Symbol>& free_vars);

/// Certain answers computed by evaluating `RewriteCertainWithFree`'s
/// formula on every candidate binding. An optional `budget` governs both
/// the candidate loop and each formula evaluation.
Result<CertainAnswers> CertainAnswersByRewriting(
    const Query& q, const std::vector<Symbol>& free_vars, const Database& db,
    Budget* budget = nullptr);

}  // namespace cqa

#endif  // CQA_CERTAINTY_CERTAIN_ANSWERS_H_
