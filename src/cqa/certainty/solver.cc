#include "cqa/certainty/solver.h"

#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/rewriting/algorithm1.h"

namespace cqa {

std::string ToString(SolverMethod m) {
  switch (m) {
    case SolverMethod::kAuto:
      return "auto";
    case SolverMethod::kRewriting:
      return "fo-rewriting";
    case SolverMethod::kAlgorithm1:
      return "algorithm1";
    case SolverMethod::kBacktracking:
      return "backtracking";
    case SolverMethod::kNaive:
      return "naive";
    case SolverMethod::kMatchingQ1:
      return "matching-q1";
  }
  return "?";
}

Result<SolveReport> SolveCertainty(const Query& q, const Database& db,
                                   SolverMethod method) {
  SolveReport report;
  report.classification = Classify(q);

  SolverMethod chosen = method;
  if (method == SolverMethod::kAuto) {
    if (report.classification.cls == CertaintyClass::kFO) {
      chosen = SolverMethod::kAlgorithm1;
    } else if (DetectQ1Shape(q).has_value()) {
      chosen = SolverMethod::kMatchingQ1;
    } else {
      chosen = SolverMethod::kBacktracking;
    }
  }
  report.used = chosen;

  switch (chosen) {
    case SolverMethod::kAuto:
      break;  // unreachable
    case SolverMethod::kRewriting: {
      Result<bool> r = IsCertainByRewriting(q, db);
      if (!r.ok()) return Result<SolveReport>::Error(r.error());
      report.certain = r.value();
      return report;
    }
    case SolverMethod::kAlgorithm1: {
      Result<bool> r = IsCertainAlgorithm1(q, db);
      if (!r.ok()) return Result<SolveReport>::Error(r.error());
      report.certain = r.value();
      return report;
    }
    case SolverMethod::kBacktracking: {
      Result<bool> r = IsCertainBacktracking(q, db);
      if (!r.ok()) return Result<SolveReport>::Error(r.error());
      report.certain = r.value();
      return report;
    }
    case SolverMethod::kNaive: {
      Result<bool> r = IsCertainNaive(q, db);
      if (!r.ok()) return Result<SolveReport>::Error(r.error());
      report.certain = r.value();
      return report;
    }
    case SolverMethod::kMatchingQ1: {
      std::optional<bool> r = IsCertainQ1ByMatching(q, db);
      if (!r.has_value()) {
        return Result<SolveReport>::Error(
            "query does not have the q1 shape required by the matching "
            "solver");
      }
      report.certain = *r;
      return report;
    }
  }
  return Result<SolveReport>::Error("invalid solver method");
}

}  // namespace cqa
