#include "cqa/certainty/solver.h"

#include "cqa/base/rng.h"
#include "cqa/cache/query_key.h"
#include "cqa/cache/warm_state.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/certainty/sampling.h"
#include "cqa/parallel/parallel_solver.h"
#include "cqa/rewriting/algorithm1.h"

namespace cqa {

std::string ToString(SolverMethod m) {
  switch (m) {
    case SolverMethod::kAuto:
      return "auto";
    case SolverMethod::kRewriting:
      return "fo-rewriting";
    case SolverMethod::kAlgorithm1:
      return "algorithm1";
    case SolverMethod::kBacktracking:
      return "backtracking";
    case SolverMethod::kNaive:
      return "naive";
    case SolverMethod::kMatchingQ1:
      return "matching-q1";
    case SolverMethod::kSampling:
      return "sampling";
  }
  return "?";
}

std::string ToString(Verdict v) {
  switch (v) {
    case Verdict::kCertain:
      return "certain";
    case Verdict::kNotCertain:
      return "not-certain";
    case Verdict::kProbablyCertain:
      return "probably-certain";
    case Verdict::kExhausted:
      return "exhausted";
  }
  return "?";
}

namespace {

// Runs `fn`, appending a SolveStage (outcome, wall-clock, work units) to the
// report. `native_steps` points at a counter the lambda fills with
// solver-native work units; when it stays 0 the governor-step delta of
// `budget` is recorded instead.
template <typename Fn>
Result<bool> RunStage(SolveReport* report, SolverMethod method, Budget* budget,
                      uint64_t* native_steps, Fn&& fn) {
  uint64_t steps_before = budget != nullptr ? budget->steps() : 0;
  auto start = std::chrono::steady_clock::now();
  Result<bool> r = fn();
  auto end = std::chrono::steady_clock::now();
  SolveStage stage;
  stage.method = method;
  stage.ok = r.ok();
  if (!r.ok()) stage.error = r.code();
  stage.steps = *native_steps != 0
                    ? *native_steps
                    : (budget != nullptr ? budget->steps() - steps_before : 0);
  stage.elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start);
  report->stages.push_back(stage);
  return r;
}

// Dispatches a backtracking/naive solve to the component-decomposed
// parallel engine, folding its accounting into the report.
Result<bool> RunParallel(SolverMethod method, const Query& q,
                         const Database& db, Budget* budget, int parallelism,
                         uint64_t* native_steps, SolveReport* report) {
  ParallelOptions popts;
  popts.parallelism = parallelism;
  popts.method = method;
  popts.budget = budget;
  Result<ParallelReport> r = SolveCertainParallel(q, db, popts);
  if (!r.ok()) return Result<bool>::Error(r);
  *native_steps = r->steps;
  report->parallelism = parallelism;
  report->components = r->components;
  report->steals = r->steals;
  return r->certain;
}

// Runs one exact (or matching) solver with the budget threaded through.
// A non-null `warm` supplies memoized rewritings and a cross-request
// Algorithm-1 arena; `warm_key` is the query's alpha-canonical key.
// `parallelism > 1` reroutes the exponential engines (backtracking, naive)
// through the component-decomposed parallel solver; `report` receives its
// accounting (components, steals).
Result<bool> RunExact(SolverMethod method, const Query& q, const Database& db,
                      Budget* budget, WarmState* warm,
                      const std::string& warm_key, int parallelism,
                      uint64_t* native_steps, SolveReport* report) {
  switch (method) {
    case SolverMethod::kRewriting: {
      if (warm == nullptr) return IsCertainByRewriting(q, db, budget);
      // The rewriting is pure in q and its formula is closed, so one
      // constructed solver answers for every alpha-variant of the query.
      const WarmState::RewritingSlot& slot = warm->RewritingMemo(warm_key, q);
      if (slot.solver == nullptr) {
        return Result<bool>::Error(slot.code, slot.error);
      }
      return slot.solver->IsCertainGoverned(db, budget);
    }
    case SolverMethod::kAlgorithm1: {
      Algorithm1Options opts;
      opts.budget = budget;
      if (warm != nullptr) opts.memo_arena = warm->Algo1Arena();
      Algorithm1 algo(db, opts);
      Result<bool> r = algo.IsCertain(q);
      *native_steps = algo.calls();
      return r;
    }
    case SolverMethod::kBacktracking: {
      if (parallelism > 1) {
        return RunParallel(method, q, db, budget, parallelism, native_steps,
                           report);
      }
      BacktrackingOptions opts;
      opts.budget = budget;
      Result<BacktrackingReport> r = SolveCertainBacktracking(q, db, opts);
      if (!r.ok()) return Result<bool>::Error(r);
      *native_steps = r->nodes;
      return r->certain;
    }
    case SolverMethod::kNaive: {
      if (parallelism > 1) {
        return RunParallel(method, q, db, budget, parallelism, native_steps,
                           report);
      }
      NaiveOptions opts;
      opts.budget = budget;
      return IsCertainNaive(q, db, opts);
    }
    case SolverMethod::kMatchingQ1: {
      std::optional<bool> r = IsCertainQ1ByMatching(q, db);
      if (!r.has_value()) {
        return Result<bool>::Error(
            ErrorCode::kUnsupported,
            "query does not have the q1 shape required by the matching "
            "solver");
      }
      return *r;
    }
    case SolverMethod::kAuto:
    case SolverMethod::kSampling:
      break;
  }
  return Result<bool>::Error(ErrorCode::kInternal, "invalid solver method");
}

// The sampling stage: never fails on deadline/step exhaustion — it reports
// whatever it saw, qualified by the verdict. Only cancellation escapes as
// an error.
Result<SolveReport> RunSampling(const Query& q, const Database& db,
                                const SolveOptions& options, Budget* budget,
                                SolveReport report) {
  Rng rng(options.sampling_seed);
  SampleEstimate est;
  uint64_t native_steps = 0;
  Result<bool> r = RunStage(
      &report, SolverMethod::kSampling, budget, &native_steps,
      [&]() -> Result<bool> {
        est = EstimateCertainty(q, db, options.max_samples, &rng, budget);
        native_steps = est.samples;
        if (est.stopped == ErrorCode::kCancelled) {
          return Result<bool>::Error(ErrorCode::kCancelled,
                                     "sampling cancelled by caller");
        }
        return !est.refuted;
      });
  if (!r.ok()) return Result<SolveReport>::Error(r);
  report.used = SolverMethod::kSampling;
  report.samples = est.samples;
  if (est.refuted) {
    // A falsifying sample is a definitive refutation.
    report.certain = false;
    report.verdict = Verdict::kNotCertain;
    report.confidence = 1.0;
  } else if (est.samples > 0) {
    report.certain = false;  // not *exactly* decided
    report.verdict = Verdict::kProbablyCertain;
    report.confidence = static_cast<double>(est.samples + 1) /
                        static_cast<double>(est.samples + 2);
  } else {
    report.certain = false;
    report.verdict = Verdict::kExhausted;
    report.confidence = 0.0;
  }
  return report;
}

}  // namespace

Result<SolveReport> SolveCertainty(const Query& q, const Database& db,
                                   SolverMethod method) {
  SolveOptions options;
  options.method = method;
  return SolveCertainty(q, db, options);
}

Result<SolveReport> SolveCertainty(const Query& q, const Database& db,
                                   const SolveOptions& options) {
  SolveReport report;
  std::string warm_key;
  if (options.warm != nullptr) {
    warm_key = CanonicalQueryKey(q);
    report.classification = options.warm->ClassifyMemo(warm_key, q);
  } else {
    report.classification = Classify(q);
  }

  if (options.method == SolverMethod::kSampling) {
    return RunSampling(q, db, options, options.budget, std::move(report));
  }

  SolverMethod chosen = options.method;
  if (chosen == SolverMethod::kAuto) {
    if (report.classification.cls == CertaintyClass::kFO) {
      chosen = SolverMethod::kAlgorithm1;
    } else if (DetectQ1Shape(q).has_value()) {
      chosen = SolverMethod::kMatchingQ1;
    } else {
      chosen = SolverMethod::kBacktracking;
    }
  }
  report.used = chosen;

  bool may_degrade =
      options.method == SolverMethod::kAuto && options.degrade_to_sampling;

  // When degradation is on the table and the caller set a deadline, the
  // exact stage only gets ~80% of the remaining wall-clock: a tripped
  // budget is sticky, so the sampling fallback needs its own slice to
  // produce a qualified verdict inside the caller's deadline.
  Budget exact_storage;
  Budget* exact_budget = options.budget;
  if (may_degrade && options.budget != nullptr &&
      options.budget->has_deadline()) {
    exact_storage = *options.budget;
    if (auto remaining = exact_storage.TimeRemaining()) {
      exact_storage.deadline = Budget::Clock::now() + (*remaining / 5) * 4;
    }
    exact_budget = &exact_storage;
  }

  uint64_t native_steps = 0;
  Result<bool> r =
      RunStage(&report, chosen, exact_budget, &native_steps, [&] {
        return RunExact(chosen, q, db, exact_budget, options.warm, warm_key,
                        options.parallelism, &native_steps, &report);
      });
  if (r.ok()) {
    report.certain = r.value();
    report.verdict = r.value() ? Verdict::kCertain : Verdict::kNotCertain;
    report.confidence = 1.0;
    return report;
  }

  // Degradation cascade: only for resource exhaustion — cancellation and
  // unsupported/parse failures propagate as typed errors.
  if (!may_degrade || !IsResourceExhaustion(r.code())) {
    return Result<SolveReport>::Error(r);
  }

  // Sampling runs under the caller's original deadline and cancellation
  // token, but not under the (already exhausted) step limit: its work is
  // capped by `max_samples` and whatever wall-clock remains.
  Budget sampling_storage;
  Budget* sampling_budget = nullptr;
  if (options.budget != nullptr) {
    sampling_storage.deadline = options.budget->deadline;
    sampling_storage.cancel = options.budget->cancel;
    sampling_storage.fail_after_probes = options.budget->fail_after_probes;
    sampling_budget = &sampling_storage;
  }
  return RunSampling(q, db, options, sampling_budget, std::move(report));
}

}  // namespace cqa
