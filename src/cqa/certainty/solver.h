#ifndef CQA_CERTAINTY_SOLVER_H_
#define CQA_CERTAINTY_SOLVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cqa/attack/classification.h"
#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Strategy for `SolveCertainty`.
enum class SolverMethod {
  /// Classify first: FO queries go through Algorithm 1; q1-shaped hard
  /// queries use the polynomial matching solver; everything else uses the
  /// exact backtracking search. Under a budget, exhaustion of the exact
  /// solver degrades to Monte-Carlo sampling (see `SolveOptions`).
  kAuto,
  kRewriting,    // build + evaluate the FO rewriting (requires FO class)
  kAlgorithm1,   // direct Algorithm 1 interpreter (requires FO class)
  kBacktracking, // exact branch-and-prune over blocks (any query)
  kNaive,        // full repair enumeration (any query; oracle)
  kMatchingQ1,   // Hopcroft–Karp (requires q1 shape)
  kSampling,     // Monte-Carlo repair sampling (any query; approximate)
};

std::string ToString(SolverMethod m);

/// How much the answer of `SolveCertainty` can be trusted.
enum class Verdict {
  /// Exactly decided: q holds in every repair.
  kCertain,
  /// Exactly decided: some repair falsifies q (sampling reports this too —
  /// a falsifying sample is a definitive refutation).
  kNotCertain,
  /// The exact solver ran out of budget; sampling found no falsifying
  /// repair among `SolveReport::samples` draws. See
  /// `SolveReport::confidence`.
  kProbablyCertain,
  /// The budget was exhausted before any evidence was gathered; the answer
  /// carries no information.
  kExhausted,
};

std::string ToString(Verdict v);

class WarmState;
struct AnswerChunk;

/// Execution knobs for `SolveCertainty`.
struct SolveOptions {
  SolverMethod method = SolverMethod::kAuto;
  /// Optional execution governor threaded through every stage; not owned.
  Budget* budget = nullptr;
  /// Optional per-worker warm state (cqa/cache/warm_state.h); not owned
  /// and NOT thread-safe — one instance per calling thread. Reuses
  /// classification results, constructed rewritings, and the Algorithm-1
  /// memo arena across calls. The caller must `BindDatabase` the warm
  /// state to `db`'s fingerprint before each call (the arena is only
  /// valid for the database it was filled from).
  WarmState* warm = nullptr;
  /// On `kAuto`, when the exact solver exhausts its budget (deadline or
  /// node limit), fall back to Monte-Carlo sampling with whatever budget
  /// remains instead of failing. Cancellation never degrades.
  bool degrade_to_sampling = true;
  /// Sample cap for the sampling stage (fallback or explicit `kSampling`).
  uint64_t max_samples = 10'000;
  /// Seed for the sampling stage (deterministic by default).
  uint64_t sampling_seed = 0x5eedu;
  /// Worker count for component-decomposed solving (cqa/parallel/). At 1
  /// (the default) the plain sequential engines run — this is the parity
  /// baseline. Above 1, the backtracking and naive engines (explicit or
  /// via `kAuto` fallthrough) decompose the instance into independent
  /// sub-problems solved on a work-stealing pool of this width; the
  /// verdict is always identical to the sequential one. Polynomial
  /// engines (FO, matching) ignore this knob.
  int parallelism = 1;
};

/// Timing and work accounting for one stage of a solve.
struct SolveStage {
  SolverMethod method = SolverMethod::kAuto;
  bool ok = false;
  /// Failure code when `!ok` (the stage that triggered degradation keeps
  /// its code here even though the overall solve succeeded).
  std::optional<ErrorCode> error;
  /// Solver-native work units: search nodes (backtracking), recursive
  /// calls (Algorithm 1), repairs (naive), samples (sampling), governor
  /// steps otherwise.
  uint64_t steps = 0;
  std::chrono::microseconds elapsed{0};
};

struct SolveReport {
  /// True iff q was *exactly* decided certain (`verdict == kCertain`).
  bool certain = false;
  /// Qualification of the answer; always set.
  Verdict verdict = Verdict::kExhausted;
  /// For `kProbablyCertain`: Laplace-smoothed estimate of the fraction of
  /// repairs satisfying q, i.e. (samples+1)/(samples+2) after `samples`
  /// satisfying draws and no falsifying one. 1.0 for exact verdicts, 0.0
  /// for `kExhausted`.
  double confidence = 0.0;
  /// Samples drawn by the sampling stage (0 when sampling never ran).
  uint64_t samples = 0;
  /// The method that produced the final answer.
  SolverMethod used = SolverMethod::kAuto;
  Classification classification;
  /// Every stage attempted, in order (e.g. backtracking then sampling).
  std::vector<SolveStage> stages;
  /// Pool width the solve actually used (1 = sequential path).
  int parallelism = 1;
  /// Component tasks the decomposer produced (0 when the sequential path
  /// or a polynomial engine ran).
  int components = 0;
  /// Work-stealing pool steals across the solve (0 on the sequential path).
  uint64_t steals = 0;
  /// Set only by answer-enumeration jobs (`ServeJob::kind == kAnswers`):
  /// the chunk of certain answers this job produced. Shared, immutable —
  /// cached reports and coalesced followers alias the same chunk. For
  /// such jobs `verdict` encodes cacheability, not an answer: `kCertain`
  /// for a clean chunk, `kExhausted` for a budget-truncated partial one
  /// (which `IsCacheableReport` rejects, exactly as intended).
  std::shared_ptr<const AnswerChunk> answer_chunk;
};

/// Unified entry point: decides whether `q` is true in every repair of `db`.
Result<SolveReport> SolveCertainty(const Query& q, const Database& db,
                                   SolverMethod method = SolverMethod::kAuto);

/// Governed entry point: bounded-latency, honestly-qualified answers.
/// With a budget and `kAuto`, a slow exact solve degrades to sampling and
/// the report says so (`verdict`, `stages`); without degradation the
/// failure is a typed error (`kDeadlineExceeded`, `kBudgetExhausted`,
/// `kCancelled`, `kUnsupported`, ...).
Result<SolveReport> SolveCertainty(const Query& q, const Database& db,
                                   const SolveOptions& options);

}  // namespace cqa

#endif  // CQA_CERTAINTY_SOLVER_H_
