#ifndef CQA_CERTAINTY_SOLVER_H_
#define CQA_CERTAINTY_SOLVER_H_

#include <string>

#include "cqa/attack/classification.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Strategy for `SolveCertainty`.
enum class SolverMethod {
  /// Classify first: FO queries go through Algorithm 1; q1-shaped hard
  /// queries use the polynomial matching solver; everything else uses the
  /// exact backtracking search.
  kAuto,
  kRewriting,    // build + evaluate the FO rewriting (requires FO class)
  kAlgorithm1,   // direct Algorithm 1 interpreter (requires FO class)
  kBacktracking, // exact branch-and-prune over blocks (any query)
  kNaive,        // full repair enumeration (any query; oracle)
  kMatchingQ1,   // Hopcroft–Karp (requires q1 shape)
};

std::string ToString(SolverMethod m);

struct SolveReport {
  bool certain = false;
  SolverMethod used = SolverMethod::kAuto;
  Classification classification;
};

/// Unified entry point: decides whether `q` is true in every repair of `db`.
Result<SolveReport> SolveCertainty(const Query& q, const Database& db,
                                   SolverMethod method = SolverMethod::kAuto);

}  // namespace cqa

#endif  // CQA_CERTAINTY_SOLVER_H_
