#ifndef CQA_CERTAINTY_MATCHING_Q1_H_
#define CQA_CERTAINTY_MATCHING_Q1_H_

#include <optional>

#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Shape detection for the paper's canonical query
///   q1 = { R(x | y), ¬S(y | x) }
/// up to renaming of relations and variables (both atoms binary and
/// simple-key, variables crossed, no constants). Returns the literal index
/// of the positive atom, or nullopt.
std::optional<size_t> DetectQ1Shape(const Query& q);

/// Polynomial-time solver for q1-shaped queries. By (the argument of)
/// Lemma 5.2, a repair falsifying q1 exists iff the bipartite graph
///   { R-block keys } × { S-block keys },  a—b iff R(a,b) ∈ db ∧ S(b,a) ∈ db
/// has a matching saturating every R-block. CERTAINTY(q1) is the complement.
/// Returns nullopt if `q` is not q1-shaped.
std::optional<bool> IsCertainQ1ByMatching(const Query& q, const Database& db);

}  // namespace cqa

#endif  // CQA_CERTAINTY_MATCHING_Q1_H_
