#include "cqa/certainty/rewriting_solver.h"

#include "cqa/fo/eval.h"

namespace cqa {

Result<RewritingSolver> RewritingSolver::Create(
    const Query& q, const RewriterOptions& options) {
  Result<Rewriting> r = RewriteCertain(q, options);
  if (!r.ok()) return Result<RewritingSolver>::Error(r.error());
  return RewritingSolver(std::move(r.value()));
}

bool RewritingSolver::IsCertain(const Database& db) const {
  return EvalFo(rewriting_.formula, db);
}

Result<bool> IsCertainByRewriting(const Query& q, const Database& db) {
  Result<RewritingSolver> solver = RewritingSolver::Create(q);
  if (!solver.ok()) return Result<bool>::Error(solver.error());
  return solver->IsCertain(db);
}

}  // namespace cqa
