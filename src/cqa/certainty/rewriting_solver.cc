#include "cqa/certainty/rewriting_solver.h"

#include "cqa/fo/eval.h"

namespace cqa {

Result<RewritingSolver> RewritingSolver::Create(
    const Query& q, const RewriterOptions& options) {
  Result<Rewriting> r = RewriteCertain(q, options);
  if (!r.ok()) return Result<RewritingSolver>::Error(r);
  return RewritingSolver(std::move(r.value()));
}

bool RewritingSolver::IsCertain(const Database& db) const {
  return EvalFo(rewriting_.formula, db);
}

Result<bool> RewritingSolver::IsCertainGoverned(const Database& db,
                                                Budget* budget) const {
  return EvalFoGoverned(rewriting_.formula, db, budget);
}

Result<bool> IsCertainByRewriting(const Query& q, const Database& db,
                                  Budget* budget) {
  Result<RewritingSolver> solver = RewritingSolver::Create(q);
  if (!solver.ok()) return Result<bool>::Error(solver);
  return solver->IsCertainGoverned(db, budget);
}

}  // namespace cqa
