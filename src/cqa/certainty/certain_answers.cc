#include "cqa/certainty/certain_answers.h"

#include <algorithm>

#include "cqa/certainty/solver.h"
#include "cqa/fo/eval.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {

namespace {

// Candidate values for one free variable: the values of some positive
// column in which it occurs (every certain answer must embed a positive
// atom into every repair, hence into db).
Result<std::vector<Value>> CandidatesFor(const Query& q, Symbol v,
                                         const Database& db) {
  for (const Literal& l : q.literals()) {
    if (l.negated) continue;
    for (int i = 0; i < l.atom.arity(); ++i) {
      if (l.atom.term(i).is_variable() && l.atom.term(i).var() == v) {
        std::vector<Value> out;
        std::unordered_map<Value, bool, ValueHash> seen;
        db.ForEachFact(l.atom.relation(), [&](const Tuple& t) {
          if (seen.emplace(t[static_cast<size_t>(i)], true).second) {
            out.push_back(t[static_cast<size_t>(i)]);
          }
          return true;
        });
        return out;
      }
    }
  }
  return Result<std::vector<Value>>::Error(
      ErrorCode::kUnsupported,
      "free variable '" + SymbolName(v) +
      "' does not occur in a non-negated atom");
}

void SortAnswers(std::vector<Tuple>* answers) {
  std::sort(answers->begin(), answers->end(),
            [](const Tuple& a, const Tuple& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                if (a[i] != b[i]) return a[i].name() < b[i].name();
              }
              return a.size() < b.size();
            });
}

// Enumerates the cartesian product of candidates, invoking `fn` per tuple.
// Returns false if `fn` reported an error.
bool ForEachCandidate(const std::vector<std::vector<Value>>& candidates,
                      const std::function<bool(const Tuple&)>& fn) {
  Tuple current(candidates.size());
  std::function<bool(size_t)> rec = [&](size_t i) {
    if (i == candidates.size()) return fn(current);
    for (Value v : candidates[i]) {
      current[i] = v;
      if (!rec(i + 1)) return false;
    }
    return true;
  };
  return rec(0);
}

}  // namespace

Result<std::vector<std::vector<Value>>> CertainAnswerCandidates(
    const Query& q, const std::vector<Symbol>& free_vars,
    const Database& db) {
  std::vector<std::vector<Value>> candidates;
  for (Symbol v : free_vars) {
    Result<std::vector<Value>> c = CandidatesFor(q, v, db);
    if (!c.ok()) return Result<std::vector<std::vector<Value>>>::Error(c);
    candidates.push_back(std::move(c.value()));
  }
  return candidates;
}

Result<CertainAnswers> ComputeCertainAnswers(
    const Query& q, const std::vector<Symbol>& free_vars, const Database& db,
    Budget* budget) {
  Result<std::vector<std::vector<Value>>> candidates =
      CertainAnswerCandidates(q, free_vars, db);
  if (!candidates.ok()) return Result<CertainAnswers>::Error(candidates);

  CertainAnswers out;
  out.free_vars = free_vars;
  std::optional<ErrorCode> error_code;
  std::string error;
  SolveOptions solve_options;
  solve_options.budget = budget;
  // A certain-answer *set* must be exact: a probably-certain candidate
  // could not soundly be included or excluded.
  solve_options.degrade_to_sampling = false;
  ForEachCandidate(*candidates, [&](const Tuple& tuple) {
    if (budget != nullptr) {
      if (std::optional<ErrorCode> code = budget->CheckEvery(1)) {
        error_code = code;
        error = "certain-answer enumeration aborted after " +
                std::to_string(out.candidates) +
                " candidates: " + Budget::Describe(*code);
        return false;
      }
    }
    ++out.candidates;
    Query ground = q;
    for (size_t i = 0; i < free_vars.size(); ++i) {
      ground = ground.Substituted(free_vars[i], tuple[i]);
    }
    Result<SolveReport> report = SolveCertainty(ground, db, solve_options);
    if (!report.ok()) {
      error_code = report.code();
      error = report.error();
      return false;
    }
    if (report->certain) out.answers.push_back(tuple);
    return true;
  });
  if (error_code.has_value()) {
    return Result<CertainAnswers>::Error(*error_code, error);
  }
  SortAnswers(&out.answers);
  return out;
}

Result<FoPtr> RewriteCertainWithFree(const Query& q,
                                     const std::vector<Symbol>& free_vars) {
  Result<Rewriting> rw =
      RewriteCertain(q.WithReified(SymbolSet(free_vars)), {});
  if (!rw.ok()) return Result<FoPtr>::Error(rw.error());
  return rw->formula;
}

Result<CertainAnswers> CertainAnswersByRewriting(
    const Query& q, const std::vector<Symbol>& free_vars, const Database& db,
    Budget* budget) {
  Result<FoPtr> formula = RewriteCertainWithFree(q, free_vars);
  if (!formula.ok()) return Result<CertainAnswers>::Error(formula);
  Result<std::vector<std::vector<Value>>> candidates =
      CertainAnswerCandidates(q, free_vars, db);
  if (!candidates.ok()) return Result<CertainAnswers>::Error(candidates);

  CertainAnswers out;
  out.free_vars = free_vars;
  FoEvaluator eval(db);
  std::optional<ErrorCode> error_code;
  std::string error;
  ForEachCandidate(*candidates, [&](const Tuple& tuple) {
    ++out.candidates;
    Valuation env;
    for (size_t i = 0; i < free_vars.size(); ++i) {
      env.emplace(free_vars[i], tuple[i]);
    }
    Result<bool> holds = eval.EvalGoverned(formula.value(), env, budget);
    if (!holds.ok()) {
      error_code = holds.code();
      error = holds.error();
      return false;
    }
    if (holds.value()) out.answers.push_back(tuple);
    return true;
  });
  if (error_code.has_value()) {
    return Result<CertainAnswers>::Error(*error_code, error);
  }
  SortAnswers(&out.answers);
  return out;
}

}  // namespace cqa
