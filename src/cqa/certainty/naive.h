#ifndef CQA_CERTAINTY_NAIVE_H_
#define CQA_CERTAINTY_NAIVE_H_

#include <cstdint>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

struct NaiveOptions {
  /// Refuse up front (with `kBudgetExhausted`) if the database has more
  /// repairs than this.
  uint64_t max_repairs = 1u << 22;
  /// Optional execution governor, probed once per enumerated repair; not
  /// owned.
  Budget* budget = nullptr;
};

/// Decides CERTAINTY(q) by enumerating every repair — the definitional
/// oracle. Exponential in the number of non-singleton blocks; used to
/// validate every other solver.
Result<bool> IsCertainNaive(const Query& q, const Database& db,
                            const NaiveOptions& options = {});

/// #repairs(q): the number of repairs satisfying q, and the total number of
/// repairs (the counting problem ♯CERTAINTY(q) of Section 2's related work).
struct RepairCount {
  uint64_t satisfying = 0;
  uint64_t total = 0;
};
Result<RepairCount> CountSatisfyingRepairs(const Query& q, const Database& db,
                                           const NaiveOptions& options = {});

}  // namespace cqa

#endif  // CQA_CERTAINTY_NAIVE_H_
