#include "cqa/certainty/naive.h"

#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"

namespace cqa {

Result<bool> IsCertainNaive(const Query& q, const Database& db,
                            const NaiveOptions& options) {
  if (db.CountRepairs(options.max_repairs) >= options.max_repairs) {
    return Result<bool>::Error(
        ErrorCode::kBudgetExhausted,
        "database has too many repairs for naive enumeration");
  }
  bool certain = true;
  Result<bool> iterated =
      ForEachRepair(db, options.budget, [&](const Repair& r) {
        if (!Satisfies(q, r)) {
          certain = false;
          return false;
        }
        return true;
      });
  if (!iterated.ok()) return iterated;
  return certain;
}

Result<RepairCount> CountSatisfyingRepairs(const Query& q, const Database& db,
                                           const NaiveOptions& options) {
  if (db.CountRepairs(options.max_repairs) >= options.max_repairs) {
    return Result<RepairCount>::Error(
        ErrorCode::kBudgetExhausted,
        "database has too many repairs for naive enumeration");
  }
  RepairCount out;
  Result<bool> iterated =
      ForEachRepair(db, options.budget, [&](const Repair& r) {
        ++out.total;
        if (Satisfies(q, r)) ++out.satisfying;
        return true;
      });
  if (!iterated.ok()) return Result<RepairCount>::Error(iterated);
  return out;
}

}  // namespace cqa
