#ifndef CQA_CERTAINTY_REWRITING_SOLVER_H_
#define CQA_CERTAINTY_REWRITING_SOLVER_H_

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {

/// CERTAINTY solver that builds the consistent first-order rewriting once
/// (Lemma 6.1) and answers by evaluating the formula — the "run it as SQL"
/// execution model. Construction cost can be exponential in |q|
/// (Example 6.12), evaluation is data-complexity AC⁰.
class RewritingSolver {
 public:
  /// Fails if CERTAINTY(q) is not in the FO fragment of Theorem 4.3.
  static Result<RewritingSolver> Create(const Query& q,
                                        const RewriterOptions& options = {});

  /// Decides whether q holds in every repair of db.
  bool IsCertain(const Database& db) const;

  /// Governed variant: evaluation probes `budget` and fails with a typed
  /// error if it trips mid-evaluation.
  Result<bool> IsCertainGoverned(const Database& db, Budget* budget) const;

  const Rewriting& rewriting() const { return rewriting_; }

 private:
  explicit RewritingSolver(Rewriting rewriting)
      : rewriting_(std::move(rewriting)) {}

  Rewriting rewriting_;
};

/// One-shot convenience wrapper. A non-null `budget` governs the formula
/// evaluation.
Result<bool> IsCertainByRewriting(const Query& q, const Database& db,
                                  Budget* budget = nullptr);

}  // namespace cqa

#endif  // CQA_CERTAINTY_REWRITING_SOLVER_H_
