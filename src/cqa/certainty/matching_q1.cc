#include "cqa/certainty/matching_q1.h"

#include <unordered_map>

#include "cqa/matching/hopcroft_karp.h"

namespace cqa {

std::optional<size_t> DetectQ1Shape(const Query& q) {
  if (q.NumLiterals() != 2 || !q.diseqs().empty() || !q.reified().empty()) {
    return std::nullopt;
  }
  size_t pos, neg;
  if (!q.IsNegated(0) && q.IsNegated(1)) {
    pos = 0;
    neg = 1;
  } else if (q.IsNegated(0) && !q.IsNegated(1)) {
    pos = 1;
    neg = 0;
  } else {
    return std::nullopt;
  }
  const Atom& r = q.atom(pos);
  const Atom& s = q.atom(neg);
  if (r.arity() != 2 || r.key_len() != 1 || s.arity() != 2 ||
      s.key_len() != 1) {
    return std::nullopt;
  }
  for (const Term& t : r.terms()) {
    if (!t.is_variable()) return std::nullopt;
  }
  for (const Term& t : s.terms()) {
    if (!t.is_variable()) return std::nullopt;
  }
  Symbol x = r.term(0).var();
  Symbol y = r.term(1).var();
  if (x == y) return std::nullopt;
  if (s.term(0).var() != y || s.term(1).var() != x) return std::nullopt;
  return pos;
}

std::optional<bool> IsCertainQ1ByMatching(const Query& q, const Database& db) {
  std::optional<size_t> pos = DetectQ1Shape(q);
  if (!pos.has_value()) return std::nullopt;
  Symbol rel_r = q.atom(*pos).relation();
  Symbol rel_s = q.atom(1 - *pos).relation();

  // Collect R-block keys (left side) and S-block keys (right side).
  std::unordered_map<Value, int, ValueHash> left_ids;
  std::unordered_map<Value, int, ValueHash> right_ids;
  db.ForEachFact(rel_r, [&](const Tuple& t) {
    left_ids.emplace(t[0], static_cast<int>(left_ids.size()));
    return true;
  });
  db.ForEachFact(rel_s, [&](const Tuple& t) {
    right_ids.emplace(t[0], static_cast<int>(right_ids.size()));
    return true;
  });

  BipartiteGraph g(static_cast<int>(left_ids.size()),
                   static_cast<int>(right_ids.size()));
  db.ForEachFact(rel_r, [&](const Tuple& t) {
    // Edge a—b iff R(a,b) ∈ db and S(b,a) ∈ db.
    if (db.Contains(rel_s, Tuple{t[1], t[0]})) {
      g.AddEdge(left_ids.at(t[0]), right_ids.at(t[1]));
    }
    return true;
  });

  bool falsifier_exists = HasLeftPerfectMatching(g);
  return !falsifier_exists;
}

}  // namespace cqa
