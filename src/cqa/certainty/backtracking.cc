#include "cqa/certainty/backtracking.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"

namespace cqa {

namespace {

// Shared decision state: chosen_[b] >= 0 iff block b is decided.
struct Decisions {
  const Database* db = nullptr;
  std::vector<int> chosen_;

  const Tuple& ChosenFact(int b) const {
    const Database::Block& block = db->blocks()[static_cast<size_t>(b)];
    int fact_idx =
        block.fact_indices[static_cast<size_t>(chosen_[static_cast<size_t>(b)])];
    return db->FactsOf(block.relation)[static_cast<size_t>(fact_idx)];
  }
};

// Pessimistic view: a block contributes facts only once decided (positive
// atoms must be certain), while `Contains` is *optimistic for negation* — an
// undecided block reports its facts as possibly present, so negated atoms
// only fire on facts that can never appear. If a query matches this view,
// it is satisfied in EVERY completion.
class PessimisticView : public FactView {
 public:
  PessimisticView(const Decisions* d, const std::vector<int>* relevant)
      : d_(d), relevant_(relevant) {}

  const Schema& schema() const override { return d_->db->schema(); }

  void ForEachFact(Symbol relation,
                   const std::function<bool(const Tuple&)>& fn) const override {
    const auto& blocks = d_->db->blocks();
    for (int b : *relevant_) {
      if (blocks[static_cast<size_t>(b)].relation != relation) continue;
      if (d_->chosen_[static_cast<size_t>(b)] < 0) continue;
      if (!fn(d_->ChosenFact(b))) return;
    }
  }

  bool Contains(Symbol relation, const Tuple& values) const override {
    std::optional<int> b = d_->db->BlockOf(relation, values);
    if (!b.has_value()) return false;  // not in db: absent from every repair
    if (d_->chosen_[static_cast<size_t>(*b)] < 0) return true;  // possible
    return d_->ChosenFact(*b) == values;
  }

  std::vector<Value> ActiveDomain() const override {
    return d_->db->ActiveDomain();
  }

 private:
  const Decisions* d_;
  const std::vector<int>* relevant_;
};

// Optimistic view for positive matching: decided blocks contribute their
// chosen fact, undecided blocks contribute ALL their facts. If the positive
// part of the query has no match here, no completion satisfies the query.
class OptimisticView : public FactView {
 public:
  explicit OptimisticView(const Decisions* d) : d_(d) {}

  const Schema& schema() const override { return d_->db->schema(); }

  void ForEachFact(Symbol relation,
                   const std::function<bool(const Tuple&)>& fn) const override {
    bool keep_going = true;
    d_->db->ForEachFact(relation, [&](const Tuple& t) {
      if (Possible(relation, t)) keep_going = fn(t);
      return keep_going;
    });
  }

  void ForEachFactWithKey(
      Symbol relation, const Tuple& key,
      const std::function<bool(const Tuple&)>& fn) const override {
    for (const Tuple* t : d_->db->FactsWithKey(relation, key)) {
      if (Possible(relation, *t) && !fn(*t)) return;
    }
  }

  bool Contains(Symbol relation, const Tuple& values) const override {
    return d_->db->Contains(relation, values) && Possible(relation, values);
  }

  std::vector<Value> ActiveDomain() const override {
    return d_->db->ActiveDomain();
  }

 private:
  bool Possible(Symbol relation, const Tuple& t) const {
    std::optional<int> b = d_->db->BlockOf(relation, t);
    if (!b.has_value()) return false;
    int c = d_->chosen_[static_cast<size_t>(*b)];
    return c < 0 || d_->ChosenFact(*b) == t;
  }

  const Decisions* d_;
};

struct Searcher {
  const Query* q;
  const Query* q_positive;  // q without negated atoms and disequalities
  Decisions* decisions;
  PessimisticView* pessimistic;
  OptimisticView* optimistic;
  const std::vector<int>* blocks;  // relevant block ids, branch order
  Budget* budget = nullptr;        // optional governor, probed per node
  uint64_t nodes = 0;
  uint64_t max_nodes = 0;
  bool early_accept = true;
  std::optional<ErrorCode> abort_code;
  bool aborted = false;

  // True iff some completion of the current partial decision falsifies q.
  bool ExistsFalsifier(size_t depth) {
    if (++nodes > max_nodes) {
      abort_code = ErrorCode::kBudgetExhausted;
      aborted = true;
      return false;
    }
    if (budget != nullptr) {
      if (std::optional<ErrorCode> code = budget->CheckEvery()) {
        abort_code = code;
        aborted = true;
        return false;
      }
    }
    // Prune: if q is already certainly satisfied, no completion falsifies.
    if (Satisfies(*q, *pessimistic)) return false;
    // Early accept: if even the optimistic view cannot match the positive
    // part, every completion falsifies q.
    if (early_accept && !Satisfies(*q_positive, *optimistic)) return true;
    if (depth == blocks->size()) return true;  // a falsifying repair
    int b = (*blocks)[depth];
    size_t width =
        decisions->db->blocks()[static_cast<size_t>(b)].size();
    for (size_t c = 0; c < width; ++c) {
      decisions->chosen_[static_cast<size_t>(b)] = static_cast<int>(c);
      bool found = ExistsFalsifier(depth + 1);
      // On success the decision stack is left in place so the caller can
      // read the falsifying (partial) repair out of `decisions`.
      if (found || aborted) return found;
      decisions->chosen_[static_cast<size_t>(b)] = -1;
    }
    return false;
  }
};

}  // namespace

namespace {

// Shared implementation: decides certainty and, if `witness` is non-null
// and a falsifying completion exists, fills it with one fact choice per
// block of the database.
Result<BacktrackingReport> SolveBacktracking(const Query& q,
                                             const Database& db,
                                             const BacktrackingOptions& options,
                                             std::vector<int>* witness) {
  // Only blocks of relations mentioned by q can influence the answer.
  std::set<Symbol> relations;
  for (const Literal& l : q.literals()) relations.insert(l.atom.relation());
  std::vector<int> relevant;
  const auto& blocks = db.blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (relations.count(blocks[b].relation) > 0) {
      relevant.push_back(static_cast<int>(b));
    }
  }
  // Key-major ordering: blocks whose keys share values end up adjacent, so
  // the certainly-satisfied prune can fire after a handful of decisions
  // instead of after a whole relation's worth.
  if (options.key_major_order) {
    std::sort(relevant.begin(), relevant.end(), [&](int a, int b) {
      const Database::Block& ba = blocks[static_cast<size_t>(a)];
      const Database::Block& bb = blocks[static_cast<size_t>(b)];
      if (ba.key != bb.key) return ba.key < bb.key;
      if (ba.relation != bb.relation) return ba.relation < bb.relation;
      return a < b;
    });
  }

  // The positive part of q, used for the unsatisfiability early-accept.
  std::vector<Literal> positive;
  for (const Literal& l : q.literals()) {
    if (!l.negated) positive.push_back(l);
  }
  Query q_positive = Query::MakeOrDie(std::move(positive), {}, q.reified());

  Decisions decisions;
  decisions.db = &db;
  decisions.chosen_.assign(blocks.size(), -1);
  PessimisticView pessimistic(&decisions, &relevant);
  OptimisticView optimistic(&decisions);

  Searcher s;
  s.q = &q;
  s.q_positive = &q_positive;
  s.decisions = &decisions;
  s.pessimistic = &pessimistic;
  s.optimistic = &optimistic;
  s.blocks = &relevant;
  s.budget = options.budget;
  s.max_nodes = options.max_nodes;
  s.early_accept = options.optimistic_early_accept;
  bool falsifier = s.ExistsFalsifier(0);
  if (s.aborted) {
    ErrorCode code = s.abort_code.value_or(ErrorCode::kBudgetExhausted);
    return Result<BacktrackingReport>::Error(
        code, "backtracking search aborted after " +
                  std::to_string(s.nodes) + " nodes: " +
                  Budget::Describe(code));
  }
  if (falsifier && witness != nullptr) {
    // The search may stop before deciding every block (prune or
    // early-accept): any completion of the recorded partial decision
    // falsifies q, so default undecided blocks to their first fact.
    witness->assign(blocks.size(), 0);
    for (size_t b = 0; b < blocks.size(); ++b) {
      if (decisions.chosen_[b] >= 0) (*witness)[b] = decisions.chosen_[b];
    }
  }
  BacktrackingReport report;
  report.certain = !falsifier;
  report.nodes = s.nodes;
  return report;
}

}  // namespace

Result<BacktrackingReport> SolveCertainBacktracking(
    const Query& q, const Database& db, const BacktrackingOptions& options) {
  return SolveBacktracking(q, db, options, nullptr);
}

Result<bool> IsCertainBacktracking(const Query& q, const Database& db,
                                   const BacktrackingOptions& options) {
  Result<BacktrackingReport> r = SolveBacktracking(q, db, options, nullptr);
  if (!r.ok()) return Result<bool>::Error(r);
  return r->certain;
}

Result<std::optional<Database>> FindFalsifyingRepair(
    const Query& q, const Database& db, const BacktrackingOptions& options) {
  std::vector<int> choices;
  Result<BacktrackingReport> certain =
      SolveBacktracking(q, db, options, &choices);
  if (!certain.ok()) {
    return Result<std::optional<Database>>::Error(certain);
  }
  if (certain->certain) return std::optional<Database>();
  return std::optional<Database>(Repair(&db, choices).ToDatabase());
}

}  // namespace cqa
