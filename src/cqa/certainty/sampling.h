#ifndef CQA_CERTAINTY_SAMPLING_H_
#define CQA_CERTAINTY_SAMPLING_H_

#include <cstdint>
#include <optional>

#include "cqa/base/budget.h"
#include "cqa/base/rng.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Monte-Carlo estimation for databases whose repair count defeats both
/// exact enumeration and (for cyclic queries) the branch-and-prune search.
/// Samples repairs uniformly (each block choice independent uniform). A
/// single falsifying sample refutes certainty exactly; otherwise the result
/// is an estimate of the fraction of satisfying repairs.
struct SampleEstimate {
  /// True iff a falsifying repair was found: certainty is definitely false.
  bool refuted = false;
  /// Samples drawn (stops early on refutation).
  uint64_t samples = 0;
  /// Satisfying samples.
  uint64_t satisfying = 0;
  /// Set when a governing budget stopped the run before `max_samples`;
  /// whatever samples were drawn up to that point are still valid.
  std::optional<ErrorCode> stopped;

  /// Fraction of satisfying repairs among the samples.
  double SatisfyingFraction() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(satisfying) /
                              static_cast<double>(samples);
  }
};

/// Draws up to `max_samples` uniform repairs and evaluates q on each.
/// A non-null `budget` is probed once per sample; sampling degrades
/// gracefully — it reports what it saw and records the stop code instead of
/// failing.
SampleEstimate EstimateCertainty(const Query& q, const Database& db,
                                 uint64_t max_samples, Rng* rng,
                                 Budget* budget = nullptr);

}  // namespace cqa

#endif  // CQA_CERTAINTY_SAMPLING_H_
