#include "cqa/query/schema.h"

#include <cassert>

namespace cqa {

Result<Symbol> Schema::AddRelation(std::string_view name, int arity,
                                   int key_len) {
  if (arity < 1) {
    return Result<Symbol>::Error("relation arity must be >= 1");
  }
  if (key_len < 1 || key_len > arity) {
    return Result<Symbol>::Error("key length must be in [1, arity]");
  }
  Symbol s = InternSymbol(name);
  auto it = index_.find(s);
  if (it != index_.end()) {
    const RelationSchema& existing = relations_[it->second];
    if (existing.arity != arity || existing.key_len != key_len) {
      return Result<Symbol>::Error("relation '" + std::string(name) +
                                   "' already registered with a different "
                                   "signature");
    }
    return s;
  }
  index_.emplace(s, relations_.size());
  relations_.push_back(RelationSchema{s, arity, key_len});
  return s;
}

Symbol Schema::AddRelationOrDie(std::string_view name, int arity,
                                int key_len) {
  Result<Symbol> r = AddRelation(name, arity, key_len);
  assert(r.ok());
  return r.value();
}

bool Schema::Has(Symbol relation) const {
  return index_.find(relation) != index_.end();
}

const RelationSchema& Schema::Get(Symbol relation) const {
  auto it = index_.find(relation);
  assert(it != index_.end());
  return relations_[it->second];
}

std::string Schema::ToString() const {
  std::string out;
  for (const RelationSchema& r : relations_) {
    out += SymbolName(r.name) + "[" + std::to_string(r.arity) + "," +
           std::to_string(r.key_len) + "]\n";
  }
  return out;
}

}  // namespace cqa
