#ifndef CQA_QUERY_SCHEMA_H_
#define CQA_QUERY_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/base/result.h"

namespace cqa {

/// Signature of one relation: arity n and primary key {1..k}.
struct RelationSchema {
  Symbol name = kNoSymbol;
  int arity = 0;
  int key_len = 0;

  bool all_key() const { return arity == key_len; }
};

/// A database schema: a finite set of relation names, each with one primary
/// key constraint (signature [n,k]).
class Schema {
 public:
  Schema() = default;

  /// Registers a relation. Fails if the name is already registered with a
  /// different signature; re-registering identically is a no-op.
  Result<Symbol> AddRelation(std::string_view name, int arity, int key_len);

  /// As above but asserts on failure.
  Symbol AddRelationOrDie(std::string_view name, int arity, int key_len);

  bool Has(Symbol relation) const;
  const RelationSchema& Get(Symbol relation) const;
  int ArityOf(Symbol relation) const { return Get(relation).arity; }
  int KeyLenOf(Symbol relation) const { return Get(relation).key_len; }

  /// All registered relations, in registration order.
  const std::vector<RelationSchema>& relations() const { return relations_; }

  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<Symbol, size_t> index_;
};

}  // namespace cqa

#endif  // CQA_QUERY_SCHEMA_H_
