#include "cqa/query/term.h"

// Term is header-only; this file exists to anchor the translation unit.
