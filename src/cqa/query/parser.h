#ifndef CQA_QUERY_PARSER_H_
#define CQA_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/base/value.h"
#include "cqa/query/query.h"

namespace cqa {

/// Parses a query from text.
///
/// Grammar (whitespace-insensitive; "--" starts a line comment):
///
///   query    := conjunct ("," conjunct)*
///   conjunct := literal | term "!=" term        -- scalar disequality
///   literal  := ("not" | "!")? atom
///   atom     := NAME "(" terms ("|" terms)? ")"
///   terms    := term ("," term)*
///   term     := IDENT            -- a variable
///             | "'" chars "'"    -- a constant
///             | NUMBER           -- a constant
///
/// Positions before "|" form the primary key; an atom without "|" is
/// all-key. Examples:
///
///   R(x | y), not S(y | x)                      -- the paper's q1
///   Lives(p | t), !Born(p | t), !Likes(p | t)   -- Example 4.6's qa
///   S(x), not N1('c' | x)                       -- part of q_Hall
///   R(x | y), y != 'b'                           -- with a disequality
Result<Query> ParseQuery(std::string_view text);

/// One parsed ground fact.
struct ParsedFact {
  std::string relation;
  int key_len = 0;  // number of terms before "|"; arity if no "|"
  Tuple values;
};

/// Parses a list of facts, e.g. "R('a'|'b'), R('a'|'c'), S('b'|'a')".
/// In fact context, bare identifiers are constants. Facts are separated by
/// commas and/or newlines.
Result<std::vector<ParsedFact>> ParseFacts(std::string_view text);

}  // namespace cqa

#endif  // CQA_QUERY_PARSER_H_
