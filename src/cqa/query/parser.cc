#include "cqa/query/parser.h"

#include <algorithm>
#include <cctype>

namespace cqa {

namespace {

// A minimal hand-written lexer shared by the query and fact parsers.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Reads an identifier ([A-Za-z_][A-Za-z0-9_]*); empty if none.
  std::string ReadIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ > start &&
        std::isdigit(static_cast<unsigned char>(text_[start]))) {
      pos_ = start;  // a number, not an identifier
      return "";
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // Reads a number as its string spelling; empty if none.
  std::string ReadNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // Reads a quoted constant 'abc'; an embedded quote is doubled (''), as
  // in SQL. Returns false on malformed input.
  bool ReadQuoted(std::string* out) {
    if (!Consume('\'')) return false;
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '\'') {
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          s += '\'';
          ++pos_;
          continue;
        }
        *out = s;
        return true;
      }
      s += c;
    }
    return false;  // unterminated
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// Parses one term. In fact context (`constants_only`), bare identifiers are
// constants instead of variables.
Result<Term> ParseTerm(Lexer* lex, bool constants_only) {
  char c = lex->Peek();
  if (c == '\'') {
    std::string s;
    if (!lex->ReadQuoted(&s)) {
      return Result<Term>::Error("unterminated quoted constant");
    }
    return Term::Const(s);
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    return Term::Const(lex->ReadNumber());
  }
  std::string ident = lex->ReadIdent();
  if (ident.empty()) {
    return Result<Term>::Error("expected a term at position " +
                               std::to_string(lex->pos()));
  }
  if (constants_only) return Term::Const(ident);
  return Term::Var(ident);
}

struct ParsedAtom {
  std::string relation;
  int key_len = 0;
  std::vector<Term> terms;
};

// Parses the body of an atom whose relation name `name` has already been
// consumed.
Result<ParsedAtom> ParseAtomBody(Lexer* lex, std::string name,
                                 bool constants_only) {
  ParsedAtom out;
  out.relation = std::move(name);
  if (out.relation.empty()) {
    return Result<ParsedAtom>::Error("expected a relation name at position " +
                                     std::to_string(lex->pos()));
  }
  if (!lex->Consume('(')) {
    return Result<ParsedAtom>::Error("expected '(' after relation name '" +
                                     out.relation + "'");
  }
  int key_len = -1;  // -1: no '|' seen yet
  while (true) {
    Result<Term> t = ParseTerm(lex, constants_only);
    if (!t.ok()) return Result<ParsedAtom>::Error(t.error());
    out.terms.push_back(t.value());
    if (lex->Consume(',')) continue;
    if (lex->Consume('|')) {
      if (key_len != -1) {
        return Result<ParsedAtom>::Error("multiple '|' in atom '" +
                                         out.relation + "'");
      }
      key_len = static_cast<int>(out.terms.size());
      continue;
    }
    if (lex->Consume(')')) break;
    return Result<ParsedAtom>::Error("expected ',', '|' or ')' in atom '" +
                                     out.relation + "'");
  }
  out.key_len = key_len == -1 ? static_cast<int>(out.terms.size()) : key_len;
  if (out.key_len < 1) {
    return Result<ParsedAtom>::Error("atom '" + out.relation +
                                     "' has an empty primary key");
  }
  return out;
}

}  // namespace

namespace {

// Re-tags any failure from a parser entry point as `kParse`, so callers can
// distinguish malformed input from resource or internal errors.
template <typename T>
Result<T> TagParse(Result<T> r) {
  if (!r.ok()) return Result<T>::Error(ErrorCode::kParse, r.error());
  return r;
}

Result<Query> ParseQueryImpl(std::string_view text) {
  Lexer lex(text);
  std::vector<Literal> literals;
  std::vector<Diseq> diseqs;
  while (!lex.AtEnd()) {
    // A conjunct starting with a quoted/numeric term can only be a
    // disequality, e.g. "'a' != x".
    char first = lex.Peek();
    bool negated = false;
    std::string ident;
    if (first != '\'' && !std::isdigit(static_cast<unsigned char>(first))) {
      if (lex.Consume('!')) {
        if (lex.Consume('=')) {
          return Result<Query>::Error("disequality without left-hand side");
        }
        negated = true;
      }
      ident = lex.ReadIdent();
      if (!negated && ident == "not") {
        negated = true;
        ident = lex.ReadIdent();
      }
    }
    if (!negated && lex.Peek() != '(') {
      // Disequality conjunct: lhs was `ident` (a variable) or a constant.
      Term lhs;
      if (ident.empty()) {
        Result<Term> t = ParseTerm(&lex, /*constants_only=*/false);
        if (!t.ok()) return Result<Query>::Error(t.error());
        lhs = t.value();
      } else {
        lhs = Term::Var(ident);
      }
      if (!(lex.Consume('!') && lex.Consume('='))) {
        return Result<Query>::Error(
            "expected '(' (atom) or '!=' (disequality) at position " +
            std::to_string(lex.pos()));
      }
      Result<Term> rhs = ParseTerm(&lex, /*constants_only=*/false);
      if (!rhs.ok()) return Result<Query>::Error(rhs.error());
      diseqs.push_back(Diseq{{lhs}, {rhs.value()}});
    } else {
      Result<ParsedAtom> atom =
          ParseAtomBody(&lex, std::move(ident), /*constants_only=*/false);
      if (!atom.ok()) return Result<Query>::Error(atom.error());
      literals.push_back(
          Literal{Atom(atom->relation, atom->key_len, atom->terms), negated});
    }
    if (!lex.Consume(',')) break;
  }
  if (!lex.AtEnd()) {
    return Result<Query>::Error("trailing input at position " +
                                std::to_string(lex.pos()));
  }
  if (literals.empty()) {
    return Result<Query>::Error("empty query");
  }
  return Query::Make(std::move(literals), std::move(diseqs));
}

// 1-based line number of byte offset `pos` in `text` (for error messages).
// The lexer skips whitespace before noticing a problem, so back up to the
// last non-blank character first — the line the offending construct is on,
// not the gap after it.
size_t LineOf(std::string_view text, size_t pos) {
  pos = std::min(pos, text.size());
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
    --pos;
  }
  return 1 + static_cast<size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<ptrdiff_t>(pos), '\n'));
}

Result<std::vector<ParsedFact>> ParseFactsImpl(std::string_view text) {
  Lexer lex(text);
  std::vector<ParsedFact> out;
  while (!lex.AtEnd()) {
    Result<ParsedAtom> atom =
        ParseAtomBody(&lex, lex.ReadIdent(), /*constants_only=*/true);
    if (!atom.ok()) {
      return Result<std::vector<ParsedFact>>::Error(
          "line " + std::to_string(LineOf(text, lex.pos())) + ": " +
          atom.error());
    }
    ParsedFact fact;
    fact.relation = atom->relation;
    fact.key_len = atom->key_len;
    for (const Term& t : atom->terms) fact.values.push_back(t.constant());
    out.push_back(std::move(fact));
    lex.Consume(',');  // optional separator (newlines also suffice)
  }
  return out;
}

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  return TagParse(ParseQueryImpl(text));
}

Result<std::vector<ParsedFact>> ParseFacts(std::string_view text) {
  return TagParse(ParseFactsImpl(text));
}

}  // namespace cqa
