#ifndef CQA_QUERY_QUERY_H_
#define CQA_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/base/symbol_set.h"
#include "cqa/query/atom.h"
#include "cqa/query/schema.h"

namespace cqa {

/// A literal: an atom or its negation.
struct Literal {
  Atom atom;
  bool negated = false;

  std::string ToString() const {
    return (negated ? "not " : "") + atom.ToString();
  }
};

/// A disequality constraint between two equal-length term vectors, with
/// semantics "lhs != rhs componentwise somewhere":  OR_i lhs[i] != rhs[i].
/// This is the `v̄ ≠ c̄` construct of Definition 6.3 (sjfBCQ¬≠), generalised
/// to allow variables on both sides (the right-hand side holds reified
/// variables during rewriting).
struct Diseq {
  std::vector<Term> lhs;
  std::vector<Term> rhs;

  std::string ToString() const;
};

/// A self-join-free Boolean conjunctive query with negated atoms and
/// optional disequality constraints (the class sjfBCQ¬≠ of Definition 6.3).
///
/// The `reified` set marks variables that are *treated as constants*: the
/// rewriting construction of Lemma 6.1 repeatedly reifies the primary-key
/// variables of unattacked atoms, and all var-set computations (safety,
/// guards, functional dependencies, attacks) exclude reified variables.
/// A freshly parsed/built query has an empty reified set.
class Query {
 public:
  /// Validates and constructs a query. Checks:
  ///  * self-join-freeness (pairwise distinct relation names),
  ///  * safety (every non-reified variable of a negated atom or disequality
  ///    occurs in a non-negated atom),
  ///  * well-formed disequalities (equal nonzero lengths).
  static Result<Query> Make(std::vector<Literal> literals,
                            std::vector<Diseq> diseqs = {},
                            SymbolSet reified = {});

  /// As `Make` but asserts validity (for statically known queries).
  static Query MakeOrDie(std::vector<Literal> literals,
                         std::vector<Diseq> diseqs = {},
                         SymbolSet reified = {});

  const std::vector<Literal>& literals() const { return literals_; }
  const std::vector<Diseq>& diseqs() const { return diseqs_; }
  const SymbolSet& reified() const { return reified_; }

  size_t NumLiterals() const { return literals_.size(); }
  const Literal& literal(size_t i) const { return literals_[i]; }
  const Atom& atom(size_t i) const { return literals_[i].atom; }
  bool IsNegated(size_t i) const { return literals_[i].negated; }

  /// Indices of non-negated / negated literals.
  std::vector<size_t> PositiveIndices() const;
  std::vector<size_t> NegativeIndices() const;

  /// Index of the literal over `relation`, if any.
  std::optional<size_t> FindRelation(Symbol relation) const;

  /// Non-reified variables of the whole query / of the positive part.
  SymbolSet Vars() const;
  SymbolSet PositiveVars() const;

  /// Number of atoms that are not all-key (the induction measure α(q) from
  /// the proof of Lemma 6.1).
  int Alpha() const;
  bool AllAtomsAllKey() const { return Alpha() == 0; }

  /// Negation is guarded: for every negated N there is a positive P with
  /// vars(N) ⊆ vars(P).
  bool IsGuarded() const;

  /// Negation is weakly guarded: any two variables sharing a negated atom
  /// (or a disequality, per Definition 6.3) also share a positive atom.
  bool IsWeaklyGuarded() const;

  /// True iff two non-reified variables co-occur in some positive atom.
  bool CoOccurPositively(Symbol x, Symbol y) const;

  /// q[v → c]: replaces variable `v` by constant `c` everywhere.
  Query Substituted(Symbol v, Value c) const;

  /// Copy with additional reified variables.
  Query WithReified(const SymbolSet& extra) const;

  /// Copy without literal `i`.
  Query WithoutLiteralAt(size_t i) const;

  /// Copy with an extra disequality constraint.
  Query WithDiseq(Diseq d) const;

  /// Registers all relations of this query into `schema`.
  Result<bool> RegisterInto(Schema* schema) const;

  std::string ToString() const;

  /// A canonical serialisation usable as a memoisation key (independent of
  /// literal order).
  std::string CanonicalKey() const;

 private:
  Query(std::vector<Literal> literals, std::vector<Diseq> diseqs,
        SymbolSet reified)
      : literals_(std::move(literals)),
        diseqs_(std::move(diseqs)),
        reified_(std::move(reified)) {}

  std::vector<Literal> literals_;
  std::vector<Diseq> diseqs_;
  SymbolSet reified_;
};

/// Convenience constructors for literals.
Literal Pos(Atom atom);
Literal Neg(Atom atom);

}  // namespace cqa

#endif  // CQA_QUERY_QUERY_H_
