#include "cqa/query/query.h"

#include <algorithm>
#include <cassert>

namespace cqa {

namespace {

// Non-reified variables occurring in a term vector.
SymbolSet TermVars(const std::vector<Term>& terms, const SymbolSet& reified) {
  SymbolSet out;
  for (const Term& t : terms) {
    if (t.is_variable() && !reified.contains(t.var())) out.Insert(t.var());
  }
  return out;
}

}  // namespace

std::string Diseq::ToString() const {
  std::string l = "(";
  std::string r = "(";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) {
      l += ", ";
      r += ", ";
    }
    l += lhs[i].ToString();
    r += rhs[i].ToString();
  }
  return l + ") != " + r + ")";
}

Literal Pos(Atom atom) { return Literal{std::move(atom), false}; }
Literal Neg(Atom atom) { return Literal{std::move(atom), true}; }

Result<Query> Query::Make(std::vector<Literal> literals,
                          std::vector<Diseq> diseqs, SymbolSet reified) {
  // Self-join-freeness.
  for (size_t i = 0; i < literals.size(); ++i) {
    for (size_t j = i + 1; j < literals.size(); ++j) {
      if (literals[i].atom.relation() == literals[j].atom.relation()) {
        return Result<Query>::Error(
            "query is not self-join-free: relation '" +
            literals[i].atom.relation_name() + "' occurs twice");
      }
    }
  }
  // Disequality shape.
  for (const Diseq& d : diseqs) {
    if (d.lhs.empty() || d.lhs.size() != d.rhs.size()) {
      return Result<Query>::Error("malformed disequality constraint");
    }
  }
  // Safety: non-reified variables of negated atoms and disequalities must
  // occur in positive atoms.
  SymbolSet positive_vars;
  for (const Literal& l : literals) {
    if (!l.negated) positive_vars.UnionWith(l.atom.Vars(reified));
  }
  for (const Literal& l : literals) {
    if (!l.negated) continue;
    SymbolSet nvars = l.atom.Vars(reified);
    if (!nvars.IsSubsetOf(positive_vars)) {
      return Result<Query>::Error(
          "unsafe query: variable(s) " +
          nvars.Minus(positive_vars).ToString() + " of negated atom " +
          l.atom.ToString() + " do not occur in any non-negated atom");
    }
  }
  for (const Diseq& d : diseqs) {
    SymbolSet dvars =
        TermVars(d.lhs, reified).Union(TermVars(d.rhs, reified));
    if (!dvars.IsSubsetOf(positive_vars)) {
      return Result<Query>::Error(
          "unsafe query: disequality variable(s) " +
          dvars.Minus(positive_vars).ToString() +
          " do not occur in any non-negated atom");
    }
  }
  return Query(std::move(literals), std::move(diseqs), std::move(reified));
}

Query Query::MakeOrDie(std::vector<Literal> literals, std::vector<Diseq> diseqs,
                       SymbolSet reified) {
  Result<Query> r =
      Make(std::move(literals), std::move(diseqs), std::move(reified));
  assert(r.ok());
  return r.value();
}

std::vector<size_t> Query::PositiveIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < literals_.size(); ++i) {
    if (!literals_[i].negated) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Query::NegativeIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < literals_.size(); ++i) {
    if (literals_[i].negated) out.push_back(i);
  }
  return out;
}

std::optional<size_t> Query::FindRelation(Symbol relation) const {
  for (size_t i = 0; i < literals_.size(); ++i) {
    if (literals_[i].atom.relation() == relation) return i;
  }
  return std::nullopt;
}

SymbolSet Query::Vars() const {
  SymbolSet out;
  for (const Literal& l : literals_) out.UnionWith(l.atom.Vars(reified_));
  for (const Diseq& d : diseqs_) {
    out.UnionWith(TermVars(d.lhs, reified_));
    out.UnionWith(TermVars(d.rhs, reified_));
  }
  return out;
}

SymbolSet Query::PositiveVars() const {
  SymbolSet out;
  for (const Literal& l : literals_) {
    if (!l.negated) out.UnionWith(l.atom.Vars(reified_));
  }
  return out;
}

int Query::Alpha() const {
  int count = 0;
  for (const Literal& l : literals_) {
    if (!l.atom.IsAllKey()) ++count;
  }
  return count;
}

bool Query::IsGuarded() const {
  for (const Literal& l : literals_) {
    if (!l.negated) continue;
    SymbolSet nvars = l.atom.Vars(reified_);
    bool guarded = nvars.empty();
    for (const Literal& p : literals_) {
      if (p.negated) continue;
      if (nvars.IsSubsetOf(p.atom.Vars(reified_))) {
        guarded = true;
        break;
      }
    }
    if (!guarded) return false;
  }
  return true;
}

bool Query::CoOccurPositively(Symbol x, Symbol y) const {
  for (const Literal& p : literals_) {
    if (p.negated) continue;
    SymbolSet pv = p.atom.Vars(reified_);
    if (pv.contains(x) && pv.contains(y)) return true;
  }
  return false;
}

bool Query::IsWeaklyGuarded() const {
  auto pairs_guarded = [&](const SymbolSet& vars) {
    for (Symbol x : vars) {
      for (Symbol y : vars) {
        if (!CoOccurPositively(x, y)) return false;
      }
    }
    return true;
  };
  for (const Literal& l : literals_) {
    if (!l.negated) continue;
    if (!pairs_guarded(l.atom.Vars(reified_))) return false;
  }
  for (const Diseq& d : diseqs_) {
    SymbolSet dvars =
        TermVars(d.lhs, reified_).Union(TermVars(d.rhs, reified_));
    if (!pairs_guarded(dvars)) return false;
  }
  return true;
}

Query Query::Substituted(Symbol v, Value c) const {
  std::vector<Literal> literals;
  literals.reserve(literals_.size());
  for (const Literal& l : literals_) {
    literals.push_back(Literal{l.atom.Substituted(v, c), l.negated});
  }
  auto subst_terms = [&](std::vector<Term> ts) {
    for (Term& t : ts) {
      if (t.is_variable() && t.var() == v) t = Term::Const(c);
    }
    return ts;
  };
  std::vector<Diseq> diseqs;
  diseqs.reserve(diseqs_.size());
  for (const Diseq& d : diseqs_) {
    diseqs.push_back(Diseq{subst_terms(d.lhs), subst_terms(d.rhs)});
  }
  SymbolSet reified = reified_;
  reified.Erase(v);
  return Query(std::move(literals), std::move(diseqs), std::move(reified));
}

Query Query::WithReified(const SymbolSet& extra) const {
  return Query(literals_, diseqs_, reified_.Union(extra));
}

Query Query::WithoutLiteralAt(size_t i) const {
  assert(i < literals_.size());
  std::vector<Literal> literals = literals_;
  literals.erase(literals.begin() + static_cast<ptrdiff_t>(i));
  return Query(std::move(literals), diseqs_, reified_);
}

Query Query::WithDiseq(Diseq d) const {
  std::vector<Diseq> diseqs = diseqs_;
  diseqs.push_back(std::move(d));
  return Query(literals_, std::move(diseqs), reified_);
}

Result<bool> Query::RegisterInto(Schema* schema) const {
  for (const Literal& l : literals_) {
    Result<Symbol> r = schema->AddRelation(
        l.atom.relation_name(), l.atom.arity(), l.atom.key_len());
    if (!r.ok()) return Result<bool>::Error(r.error());
  }
  return true;
}

std::string Query::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < literals_.size(); ++i) {
    if (i > 0) out += ", ";
    out += literals_[i].ToString();
  }
  for (const Diseq& d : diseqs_) {
    out += ", " + d.ToString();
  }
  out += "}";
  if (!reified_.empty()) out += " reified=" + reified_.ToString();
  return out;
}

std::string Query::CanonicalKey() const {
  std::vector<std::string> parts;
  for (const Literal& l : literals_) parts.push_back(l.ToString());
  for (const Diseq& d : diseqs_) parts.push_back(d.ToString());
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& p : parts) {
    out += p;
    out += ";";
  }
  out += "|R" + reified_.ToString();
  return out;
}

}  // namespace cqa
