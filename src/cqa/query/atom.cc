#include "cqa/query/atom.h"

#include <cassert>

namespace cqa {

Atom::Atom(std::string_view relation, int key_len, std::vector<Term> terms)
    : Atom(InternSymbol(relation), key_len, std::move(terms)) {}

Atom::Atom(Symbol relation, int key_len, std::vector<Term> terms)
    : relation_(relation), key_len_(key_len), terms_(std::move(terms)) {
  assert(key_len_ >= 1);
  assert(static_cast<size_t>(key_len_) <= terms_.size());
}

SymbolSet Atom::KeyVars(const SymbolSet& treat_as_const) const {
  SymbolSet out;
  for (int i = 0; i < key_len_; ++i) {
    const Term& t = terms_[static_cast<size_t>(i)];
    if (t.is_variable() && !treat_as_const.contains(t.var())) {
      out.Insert(t.var());
    }
  }
  return out;
}

SymbolSet Atom::Vars(const SymbolSet& treat_as_const) const {
  SymbolSet out;
  for (const Term& t : terms_) {
    if (t.is_variable() && !treat_as_const.contains(t.var())) {
      out.Insert(t.var());
    }
  }
  return out;
}

bool Atom::IsGround(const SymbolSet& treat_as_const) const {
  return Vars(treat_as_const).empty();
}

Atom Atom::Substituted(Symbol v, Value c) const {
  std::vector<Term> terms = terms_;
  for (Term& t : terms) {
    if (t.is_variable() && t.var() == v) t = Term::Const(c);
  }
  return Atom(relation_, key_len_, std::move(terms));
}

std::string Atom::ToString() const {
  std::string out = relation_name() + "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += (i == key_len_) ? " | " : ", ";
    out += terms_[static_cast<size_t>(i)].ToString();
  }
  out += ")";
  return out;
}

}  // namespace cqa
