#ifndef CQA_QUERY_TERM_H_
#define CQA_QUERY_TERM_H_

#include <string>

#include "cqa/base/interner.h"
#include "cqa/base/value.h"

namespace cqa {

/// A term of an atom: either a variable or a constant.
class Term {
 public:
  enum class Kind { kVariable, kConstant };

  Term() : kind_(Kind::kConstant), id_(kNoSymbol) {}

  /// A variable named `name`.
  static Term Var(std::string_view name) {
    return Term(Kind::kVariable, InternSymbol(name));
  }
  static Term VarOf(Symbol v) { return Term(Kind::kVariable, v); }

  /// A constant.
  static Term Const(Value v) { return Term(Kind::kConstant, v.id()); }
  static Term Const(std::string_view name) { return Const(Value::Of(name)); }

  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }

  /// Variable symbol; only valid if `is_variable()`.
  Symbol var() const { return id_; }

  /// Constant value; only valid if `is_constant()`.
  Value constant() const { return Value::FromSymbol(id_); }

  std::string ToString() const {
    if (!is_variable() && id_ == kNoSymbol) return "<invalid>";
    if (is_constant()) return "'" + SymbolName(id_) + "'";
    return SymbolName(id_);
  }

  friend bool operator==(Term a, Term b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(Term a, Term b) { return !(a == b); }
  friend bool operator<(Term a, Term b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.id_ < b.id_;
  }

 private:
  Term(Kind kind, Symbol id) : kind_(kind), id_(id) {}

  Kind kind_;
  Symbol id_;
};

}  // namespace cqa

#endif  // CQA_QUERY_TERM_H_
