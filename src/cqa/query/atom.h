#ifndef CQA_QUERY_ATOM_H_
#define CQA_QUERY_ATOM_H_

#include <string>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/base/symbol_set.h"
#include "cqa/base/value.h"
#include "cqa/query/term.h"

namespace cqa {

/// An atom R(s1,...,sn) over a relation with signature [n,k]: the first `k`
/// positions form the primary key. Terms may be variables or constants.
class Atom {
 public:
  /// Constructs an atom. `key_len` must satisfy 1 <= key_len <= terms.size().
  Atom(std::string_view relation, int key_len, std::vector<Term> terms);
  Atom(Symbol relation, int key_len, std::vector<Term> terms);

  Symbol relation() const { return relation_; }
  const std::string& relation_name() const { return SymbolName(relation_); }
  int key_len() const { return key_len_; }
  int arity() const { return static_cast<int>(terms_.size()); }
  const std::vector<Term>& terms() const { return terms_; }
  const Term& term(int i) const { return terms_[static_cast<size_t>(i)]; }

  /// True iff the primary key spans every position (signature [n,n]).
  bool IsAllKey() const { return key_len_ == arity(); }
  /// True iff the primary key is a single position (signature [n,1]).
  bool IsSimpleKey() const { return key_len_ == 1; }

  /// Variables occurring in the key positions, excluding `treat_as_const`
  /// (variables that have been reified and behave like constants).
  SymbolSet KeyVars(const SymbolSet& treat_as_const = SymbolSet()) const;

  /// All variables of the atom, with the same exclusion.
  SymbolSet Vars(const SymbolSet& treat_as_const = SymbolSet()) const;

  /// True iff no variable outside `treat_as_const` occurs.
  bool IsGround(const SymbolSet& treat_as_const = SymbolSet()) const;

  /// Replaces every occurrence of variable `v` by constant `c`.
  Atom Substituted(Symbol v, Value c) const;

  /// Renders as "R(x, 'a' | y)" with "|" separating key from non-key part;
  /// all-key atoms render without the separator.
  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.relation_ == b.relation_ && a.key_len_ == b.key_len_ &&
           a.terms_ == b.terms_;
  }

 private:
  Symbol relation_;
  int key_len_;
  std::vector<Term> terms_;
};

}  // namespace cqa

#endif  // CQA_QUERY_ATOM_H_
