#include "cqa/rewriting/rewriter.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <utility>

#include "cqa/attack/attack_graph.h"
#include "cqa/fo/simplify.h"

namespace cqa {

std::optional<size_t> PickUnattackedNonAllKey(const Query& q) {
  AttackGraph graph(q);
  std::vector<size_t> picks = graph.UnattackedNonAllKey();
  if (picks.empty()) return std::nullopt;
  return picks.front();
}

namespace {

// Recursive construction from the proof of Lemma 6.1. Reified variables of
// the query appear in the produced formula as free FO variables; each level
// binds the variables it reifies with an ∃ (key variables) or ∀ (the fresh
// z̄ enumerating a block).
class RewriteBuilder {
 public:
  FoPtr Rec(const Query& q) {
    ++levels_;
    if (q.AllAtomsAllKey()) return Base(q);

    std::optional<size_t> pick = PickUnattackedNonAllKey(q);
    // Guaranteed by acyclicity (checked by the caller) and preserved along
    // the recursion (Lemma 6.10 plus: a removed atom is fully reified, so
    // its removal changes neither closures nor guards over live variables).
    assert(pick.has_value() && "attack graph became cyclic during rewriting");

    const Atom& atom = q.atom(*pick);
    const bool negated = q.IsNegated(*pick);
    SymbolSet key_vars = atom.KeyVars(q.reified());
    Query q_reified = q.WithReified(key_vars);

    // Non-key terms s̄ and the new (non-reified) variables they introduce.
    std::vector<Term> s_terms(atom.terms().begin() + atom.key_len(),
                              atom.terms().end());
    SymbolSet new_vars;
    for (const Term& t : s_terms) {
      if (t.is_variable() && !q_reified.reified().contains(t.var())) {
        new_vars.Insert(t.var());
      }
    }

    Query q_rest = q_reified.WithoutLiteralAt(*pick);
    FoPtr level =
        negated ? NegativeCase(q_rest, atom, s_terms, new_vars)
                : PositiveCase(q_rest, atom, s_terms, new_vars);
    return FoExists(key_vars.items(), std::move(level));
  }

  int levels() const { return levels_; }

 private:
  // Base case: every remaining atom is all-key, so every repair contains
  // exactly the remaining relations' facts and certainty coincides with
  // plain satisfaction: ∃(free vars). ⋀ literals ∧ ⋀ disequalities.
  FoPtr Base(const Query& q) {
    std::vector<FoPtr> conjuncts;
    for (const Literal& l : q.literals()) {
      FoPtr a = FoAtom(l.atom.relation(), l.atom.key_len(), l.atom.terms());
      conjuncts.push_back(l.negated ? FoNot(std::move(a)) : std::move(a));
    }
    for (const Diseq& d : q.diseqs()) {
      std::vector<FoPtr> diffs;
      for (size_t i = 0; i < d.lhs.size(); ++i) {
        diffs.push_back(FoNotEquals(d.lhs[i], d.rhs[i]));
      }
      conjuncts.push_back(FoOr(std::move(diffs)));
    }
    return FoExists(q.Vars().items(), FoAnd(std::move(conjuncts)));
  }

  // Fresh universally quantified variables z̄, one per non-key position.
  std::vector<Symbol> FreshZ(size_t count) {
    std::vector<Symbol> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) out.push_back(FreshSymbol("z"));
    return out;
  }

  // Premise atom R(k̄, z̄) over the original key terms and fresh z̄.
  FoPtr PremiseAtom(const Atom& atom, const std::vector<Symbol>& z) {
    std::vector<Term> terms(atom.terms().begin(),
                            atom.terms().begin() + atom.key_len());
    for (Symbol zv : z) terms.push_back(Term::VarOf(zv));
    return FoAtom(atom.relation(), atom.key_len(), std::move(terms));
  }

  // Case F ∈ q⁺ (with key(F) already reified):
  //   ∃s̄ R(k̄, s̄)  ∧  ∀z̄ (R(k̄, z̄) → ∃new(z̄ = s̄ ∧ ψ))
  // where ψ rewrites q \ {F} with vars(s̄) reified.
  FoPtr PositiveCase(const Query& q_rest, const Atom& atom,
                     const std::vector<Term>& s_terms,
                     const SymbolSet& new_vars) {
    FoPtr psi = Rec(q_rest.WithReified(new_vars));

    FoPtr witness = FoExists(
        new_vars.items(), FoAtom(atom.relation(), atom.key_len(),
                                 atom.terms()));

    std::vector<Symbol> z = FreshZ(s_terms.size());
    std::vector<FoPtr> conclusion_parts;
    for (size_t j = 0; j < s_terms.size(); ++j) {
      conclusion_parts.push_back(FoEquals(Term::VarOf(z[j]), s_terms[j]));
    }
    conclusion_parts.push_back(std::move(psi));
    FoPtr conclusion =
        FoExists(new_vars.items(), FoAnd(std::move(conclusion_parts)));
    FoPtr guard =
        FoForall(z, FoImplies(PremiseAtom(atom, z), std::move(conclusion)));
    return FoAnd({std::move(witness), std::move(guard)});
  }

  // Case F ∈ q⁻ (with key(F) already reified):
  //   vars(s̄) = ∅ :  ψ0 ∧ ¬R(k̄, s̄)                          (Lemma 6.2)
  //   otherwise   :  ψ0 ∧ ∀z̄ (R(k̄, z̄) ∧ match(z̄, s̄) → ψ≠)  (Lemma 6.5)
  // where ψ0 rewrites q \ {¬F} and ψ≠ rewrites q \ {¬F} plus the
  // disequality ȳ ≠ z̄ (ȳ the distinct new variables of s̄); the z̄ that
  // occur in the disequality ride along as reified variables (they are the
  // all-key ¬E trick of Lemma 6.6, kept as native disequalities).
  FoPtr NegativeCase(const Query& q_rest, const Atom& atom,
                     const std::vector<Term>& s_terms,
                     const SymbolSet& new_vars) {
    FoPtr psi0 = Rec(q_rest);

    if (new_vars.empty()) {
      FoPtr ground =
          FoAtom(atom.relation(), atom.key_len(), atom.terms());
      return FoAnd({std::move(psi0), FoNot(std::move(ground))});
    }

    std::vector<Symbol> z = FreshZ(s_terms.size());
    std::vector<FoPtr> premise;
    premise.push_back(PremiseAtom(atom, z));

    // match(z̄, s̄): constants / reified variables pin z_j; repeated new
    // variables force equal z's. Representative position per new variable.
    std::unordered_map<Symbol, size_t> rep;
    for (size_t j = 0; j < s_terms.size(); ++j) {
      const Term& s = s_terms[j];
      if (s.is_variable() && new_vars.contains(s.var())) {
        auto it = rep.find(s.var());
        if (it == rep.end()) {
          rep.emplace(s.var(), j);
        } else {
          premise.push_back(
              FoEquals(Term::VarOf(z[j]), Term::VarOf(z[it->second])));
        }
      } else {
        premise.push_back(FoEquals(Term::VarOf(z[j]), s));
      }
    }

    // Disequality ȳ ≠ z̄_rep, ordered by representative position.
    std::vector<std::pair<size_t, Symbol>> ordered;
    for (const auto& [v, j] : rep) ordered.emplace_back(j, v);
    std::sort(ordered.begin(), ordered.end());
    Diseq diseq;
    SymbolSet z_reified;
    for (const auto& [j, v] : ordered) {
      diseq.lhs.push_back(Term::VarOf(v));
      diseq.rhs.push_back(Term::VarOf(z[j]));
      z_reified.Insert(z[j]);
    }
    FoPtr psi_ne = Rec(q_rest.WithDiseq(std::move(diseq))
                           .WithReified(z_reified));

    FoPtr guard =
        FoForall(z, FoImplies(FoAnd(std::move(premise)), std::move(psi_ne)));
    return FoAnd({std::move(psi0), std::move(guard)});
  }

  int levels_ = 0;
};

}  // namespace

Result<Rewriting> RewriteCertain(const Query& q,
                                 const RewriterOptions& options) {
  if (!q.IsWeaklyGuarded()) {
    return Result<Rewriting>::Error(
        ErrorCode::kUnsupported,
        "negation in the query is not weakly guarded; Theorem 4.3 does not "
        "apply");
  }
  AttackGraph graph(q);
  if (!graph.IsAcyclic()) {
    return Result<Rewriting>::Error(
        ErrorCode::kUnsupported,
        "the attack graph of the query is cyclic; CERTAINTY(q) is not in FO "
        "(Theorem 4.3(1))");
  }
  RewriteBuilder builder;
  Rewriting out;
  out.formula = builder.Rec(q);
  out.levels = builder.levels();
  out.raw_size = out.formula->Size();
  if (options.simplify) out.formula = Simplify(out.formula);
  out.simplified_size = out.formula->Size();
  return out;
}

}  // namespace cqa
