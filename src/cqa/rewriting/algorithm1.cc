#include "cqa/rewriting/algorithm1.h"

#include <cassert>
#include <string>

#include "cqa/attack/attack_graph.h"
#include "cqa/db/eval.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {

namespace {

// Binds the variables of `pattern` (a prefix or suffix of an atom's terms)
// against `values`. Returns false on mismatch (constants or repeated
// variables disagreeing). Bindings accumulate into `out`.
bool MatchTerms(const std::vector<Term>& pattern, const Tuple& values,
                Valuation* out) {
  assert(pattern.size() == values.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    const Term& t = pattern[i];
    if (t.is_constant()) {
      if (t.constant() != values[i]) return false;
    } else {
      auto it = out->find(t.var());
      if (it != out->end()) {
        if (it->second != values[i]) return false;
      } else {
        out->emplace(t.var(), values[i]);
      }
    }
  }
  return true;
}

Query SubstituteAll(const Query& q, const Valuation& theta) {
  Query out = q;
  for (const auto& [v, c] : theta) out = out.Substituted(v, c);
  return out;
}

}  // namespace

Result<bool> Algorithm1::IsCertain(const Query& q) {
  if (!q.reified().empty()) {
    return Result<bool>::Error(
        ErrorCode::kUnsupported,
        "Algorithm 1 expects a query without reified variables "
        "(it substitutes constants instead)");
  }
  if (!q.IsWeaklyGuarded()) {
    return Result<bool>::Error(ErrorCode::kUnsupported,
                               "negation is not weakly guarded");
  }
  if (!AttackGraph(q).IsAcyclic()) {
    return Result<bool>::Error(ErrorCode::kUnsupported,
                               "cyclic attack graph: CERTAINTY(q) not in FO");
  }
  calls_ = 0;
  // An external arena persists across runs (and across Algorithm1
  // instances) by design; only the private per-run memo is reset.
  memo_.clear();
  abort_code_.reset();
  bool certain = RecCached(q);
  if (abort_code_.has_value()) {
    return Result<bool>::Error(
        *abort_code_, "Algorithm 1 aborted after " + std::to_string(calls_) +
                          " calls: " + Budget::Describe(*abort_code_));
  }
  return certain;
}

bool Algorithm1::Probe() {
  if (abort_code_.has_value()) return false;
  if (options_.budget == nullptr) return true;
  if (std::optional<ErrorCode> code = options_.budget->CheckEvery()) {
    abort_code_ = code;
    return false;
  }
  return true;
}

bool Algorithm1::RecCached(const Query& q) {
  ++calls_;
  if (!Probe()) return false;  // unwinding; the value is meaningless
  if (!options_.memoize) return Rec(q);
  std::unordered_map<std::string, bool>* memo = Memo();
  std::string key = q.CanonicalKey();
  auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  bool result = Rec(q);
  // A result computed while unwinding from a tripped budget is bogus —
  // never memoise it.
  if (abort_code_.has_value()) return false;
  memo->emplace(std::move(key), result);
  return result;
}

bool Algorithm1::Rec(const Query& q) {
  if (q.AllAtomsAllKey()) {
    // All-key relations are necessarily consistent; every repair restricted
    // to them equals the database, so certainty is plain satisfaction.
    return Satisfies(q, db_);
  }
  std::optional<size_t> pick = PickUnattackedNonAllKey(q);
  assert(pick.has_value() && "attack graph became cyclic during Algorithm 1");
  const Atom& atom = q.atom(*pick);
  if (!atom.KeyVars().empty()) return CaseKeyVars(q, *pick);
  if (q.IsNegated(*pick)) return CaseGroundKeyNegative(q, *pick);
  return CaseGroundKeyPositive(q, *pick);
}

// key(F) has variables: reify them, i.e. search for one constant valuation
// of key(F) that makes the substituted query certain (Corollary 6.9
// justifies trying single valuations; candidates come from db columns).
bool Algorithm1::CaseKeyVars(const Query& q, size_t pick) {
  const Atom& atom = q.atom(pick);
  std::vector<Term> key_terms(atom.terms().begin(),
                              atom.terms().begin() + atom.key_len());

  if (!q.IsNegated(pick)) {
    // θ(F) must be key-equal to a fact of every repair, hence to a block of
    // the database: enumerate R-block keys matching the key pattern.
    for (const Database::Block& block : db_.blocks()) {
      if (block.relation != atom.relation()) continue;
      Valuation theta;
      if (MatchTerms(key_terms, block.key, &theta)) {
        if (RecCached(SubstituteAll(q, theta))) return true;
      }
    }
    return false;
  }

  // Negated atom with variable key: candidate values for each key variable
  // come from the column of some positive atom containing it (safety
  // guarantees one exists; any certain valuation must use db values there).
  SymbolSet key_vars = atom.KeyVars();
  std::vector<Symbol> vars = key_vars.items();
  std::vector<std::vector<Value>> candidates;
  for (Symbol v : vars) {
    std::vector<Value> vals;
    bool have = false;
    for (const Literal& l : q.literals()) {
      if (l.negated) continue;
      for (int i = 0; i < l.atom.arity() && !have; ++i) {
        if (l.atom.term(i).is_variable() && l.atom.term(i).var() == v) {
          std::unordered_map<Value, bool, ValueHash> seen;
          db_.ForEachFact(l.atom.relation(), [&](const Tuple& tuple) {
            if (seen.emplace(tuple[static_cast<size_t>(i)], true).second) {
              vals.push_back(tuple[static_cast<size_t>(i)]);
            }
            return true;
          });
          have = true;
        }
      }
      if (have) break;
    }
    if (vals.empty()) return false;  // no positive match possible at all
    candidates.push_back(std::move(vals));
  }
  // Cartesian search over candidate tuples.
  std::vector<size_t> idx(vars.size(), 0);
  while (true) {
    Valuation theta;
    for (size_t i = 0; i < vars.size(); ++i) {
      theta.emplace(vars[i], candidates[i][idx[i]]);
    }
    if (RecCached(SubstituteAll(q, theta))) return true;
    size_t i = 0;
    for (; i < idx.size(); ++i) {
      if (idx[i] + 1 < candidates[i].size()) {
        ++idx[i];
        for (size_t j = 0; j < i; ++j) idx[j] = 0;
        break;
      }
    }
    if (i == idx.size()) return false;
  }
}

// key(F) ground, F negated: Lemmas 6.2 / 6.5.
bool Algorithm1::CaseGroundKeyNegative(const Query& q, size_t pick) {
  const Atom& atom = q.atom(pick);
  Query q_rest = q.WithoutLiteralAt(pick);
  if (!RecCached(q_rest)) return false;

  std::vector<Term> s_terms(atom.terms().begin() + atom.key_len(),
                            atom.terms().end());
  SymbolSet new_vars;
  for (const Term& t : s_terms) {
    if (t.is_variable()) new_vars.Insert(t.var());
  }
  Tuple key;
  for (int i = 0; i < atom.key_len(); ++i) {
    assert(atom.term(i).is_constant());
    key.push_back(atom.term(i).constant());
  }

  if (new_vars.empty()) {
    // Fully ground negated atom: Lemma 6.2.
    Tuple full = key;
    for (const Term& t : s_terms) full.push_back(t.constant());
    return !db_.Contains(atom.relation(), full);
  }

  // Lemma 6.5: for every matching fact R(ā, b̄), the query plus ȳ ≠ b̄ must
  // stay certain. The block index narrows the scan to the single ā-block.
  for (const Tuple* tuple : db_.FactsWithKey(atom.relation(), key)) {
    Valuation theta;
    if (!MatchTerms(s_terms,
                    Tuple(tuple->begin() + atom.key_len(), tuple->end()),
                    &theta)) {
      continue;  // fact does not instantiate N
    }
    Diseq diseq;
    for (Symbol v : new_vars) {
      diseq.lhs.push_back(Term::VarOf(v));
      diseq.rhs.push_back(Term::Const(theta.at(v)));
    }
    if (!RecCached(q_rest.WithDiseq(std::move(diseq)))) return false;
  }
  return true;
}

// key(F) ground, F positive: the block with that key must exist, every fact
// in it must instantiate F, and each induced substitution must keep the rest
// certain.
bool Algorithm1::CaseGroundKeyPositive(const Query& q, size_t pick) {
  const Atom& atom = q.atom(pick);
  Query q_rest = q.WithoutLiteralAt(pick);
  std::vector<Term> s_terms(atom.terms().begin() + atom.key_len(),
                            atom.terms().end());
  Tuple key;
  for (int i = 0; i < atom.key_len(); ++i) {
    assert(atom.term(i).is_constant());
    key.push_back(atom.term(i).constant());
  }

  std::vector<const Tuple*> block = db_.FactsWithKey(atom.relation(), key);
  if (block.empty()) return false;
  for (const Tuple* tuple : block) {
    Valuation theta;
    if (!MatchTerms(s_terms,
                    Tuple(tuple->begin() + atom.key_len(), tuple->end()),
                    &theta)) {
      return false;  // some repair picks this fact; F cannot match it
    }
    if (!RecCached(SubstituteAll(q_rest, theta))) return false;
  }
  return true;
}

Result<bool> IsCertainAlgorithm1(const Query& q, const Database& db,
                                 Algorithm1Options options) {
  Algorithm1 algo(db, options);
  return algo.IsCertain(q);
}

}  // namespace cqa
