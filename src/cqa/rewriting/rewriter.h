#ifndef CQA_REWRITING_REWRITER_H_
#define CQA_REWRITING_REWRITER_H_

#include <cstddef>
#include <optional>

#include "cqa/base/result.h"
#include "cqa/fo/formula.h"
#include "cqa/query/query.h"

namespace cqa {

/// Picks a literal whose atom is not all-key and whose primary-key variables
/// are unattacked — the elimination step of Algorithm 1 / Lemma 6.1.
/// Returns nullopt iff every atom is all-key OR no such literal exists
/// (which implies the attack graph is cyclic). Deterministic: prefers the
/// lowest literal index.
std::optional<size_t> PickUnattackedNonAllKey(const Query& q);

struct RewriterOptions {
  /// Run the structural simplifier on the result (recommended; yields the
  /// paper's hand-simplified shapes).
  bool simplify = true;
};

/// A constructed consistent first-order rewriting plus size accounting.
struct Rewriting {
  FoPtr formula;
  size_t raw_size = 0;         // AST nodes before simplification
  size_t simplified_size = 0;  // AST nodes of `formula`
  int levels = 0;              // number of elimination steps performed
};

/// Constructs a consistent first-order rewriting for CERTAINTY(q)
/// (Theorem 4.3(2) / Lemma 6.1). Requires q ∈ sjfBCQ¬≠ with weakly-guarded
/// negation and an acyclic attack graph (both judged with q's reified
/// variables treated as constants). Pre-reified variables — used for
/// non-Boolean queries, see certain_answers.h — appear as free variables of
/// the output formula.
///
/// The returned sentence φ satisfies: for every database db,
///   db ⊨ φ  ⟺  every repair of db satisfies q.
/// (Verified against the naive repair-enumeration oracle in
/// rewriter_test.cc and property_test.cc.)
Result<Rewriting> RewriteCertain(const Query& q,
                                 const RewriterOptions& options = {});

}  // namespace cqa

#endif  // CQA_REWRITING_REWRITER_H_
