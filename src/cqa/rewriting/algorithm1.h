#ifndef CQA_REWRITING_ALGORITHM1_H_
#define CQA_REWRITING_ALGORITHM1_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

struct Algorithm1Options {
  /// Memoise recursive calls on the canonical query string. The rewriting is
  /// exponential in |q| (Example 6.12); memoisation collapses repeated
  /// subproblems that arise from identical substituted subqueries.
  bool memoize = true;
  /// Optional execution governor, probed once per recursive call and per
  /// candidate valuation; not owned.
  Budget* budget = nullptr;
  /// Optional externally-owned memo arena, reused *across* `IsCertain`
  /// runs (the per-worker warm state of the serve layer threads one
  /// through). Entries map canonical substituted subqueries to certainty
  /// on one specific database — the caller must clear the arena whenever
  /// the database changes (see `WarmState::BindDatabase`). When null, a
  /// fresh internal memo is used per run. Entries computed while a budget
  /// trip is unwinding are never stored, so a shared arena only ever holds
  /// fully-computed values.
  std::unordered_map<std::string, bool>* memo_arena = nullptr;
};

/// Direct recursive interpreter of the paper's Algorithm 1: decides
/// CERTAINTY(q) on `db` without materialising the first-order rewriting.
/// Unlike the rewriter it substitutes real constants (taken from `db`)
/// rather than reifying symbolically, so candidate key valuations range
/// over the relevant columns only.
///
/// Requires q weakly guarded with an acyclic attack graph.
class Algorithm1 {
 public:
  Algorithm1(const Database& db, Algorithm1Options options = {})
      : db_(db), options_(options) {}

  /// Returns whether q is true in every repair of the database, or an error
  /// if q is outside the FO fragment of Theorem 4.3.
  Result<bool> IsCertain(const Query& q);

  /// Number of recursive calls in the last `IsCertain` run.
  uint64_t calls() const { return calls_; }

 private:
  bool Rec(const Query& q);
  bool RecCached(const Query& q);
  bool Probe();  // charges the budget; sets abort_code_ and unwinds on trip

  bool CaseKeyVars(const Query& q, size_t pick);
  bool CaseGroundKeyNegative(const Query& q, size_t pick);
  bool CaseGroundKeyPositive(const Query& q, size_t pick);

  /// The memo in effect: the external arena when configured, else the
  /// internal per-run map.
  std::unordered_map<std::string, bool>* Memo() {
    return options_.memo_arena != nullptr ? options_.memo_arena : &memo_;
  }

  const Database& db_;
  Algorithm1Options options_;
  std::unordered_map<std::string, bool> memo_;
  uint64_t calls_ = 0;
  std::optional<ErrorCode> abort_code_;
};

/// One-shot convenience wrapper.
Result<bool> IsCertainAlgorithm1(const Query& q, const Database& db,
                                 Algorithm1Options options = {});

}  // namespace cqa

#endif  // CQA_REWRITING_ALGORITHM1_H_
