#ifndef CQA_DB_STATS_H_
#define CQA_DB_STATS_H_

#include <map>
#include <string>

#include "cqa/db/database.h"

namespace cqa {

/// Inconsistency profile of a database: how badly the primary keys are
/// violated, per relation and overall. Used by the CLI, the benchmarks and
/// the workload generators' self-checks.
struct InconsistencyStats {
  size_t facts = 0;
  size_t blocks = 0;
  size_t violating_blocks = 0;  // blocks with >= 2 facts
  size_t max_block_size = 0;
  /// Block-size histogram: size -> count.
  std::map<size_t, size_t> block_sizes;
  /// log2 of the number of repairs (sum of log2(block size)).
  double log2_repairs = 0.0;

  /// Fraction of blocks violating their key.
  double ViolationRate() const {
    return blocks == 0 ? 0.0
                       : static_cast<double>(violating_blocks) /
                             static_cast<double>(blocks);
  }

  std::string ToString() const;
};

InconsistencyStats ComputeStats(const Database& db);

/// Per-relation breakdown.
std::map<std::string, InconsistencyStats> ComputeStatsPerRelation(
    const Database& db);

/// The facts present in EVERY repair (the singleton blocks) — sometimes
/// called the database core or the intersection of repairs.
Database CertainFacts(const Database& db);

}  // namespace cqa

#endif  // CQA_DB_STATS_H_
