#include "cqa/db/stats.h"

#include <cmath>

namespace cqa {

namespace {

void Accumulate(InconsistencyStats* s, const Database::Block& block) {
  s->facts += block.size();
  s->blocks += 1;
  if (block.size() > 1) s->violating_blocks += 1;
  s->max_block_size = std::max(s->max_block_size, block.size());
  s->block_sizes[block.size()] += 1;
  s->log2_repairs += std::log2(static_cast<double>(block.size()));
}

}  // namespace

std::string InconsistencyStats::ToString() const {
  std::string out = std::to_string(facts) + " facts, " +
                    std::to_string(blocks) + " blocks, " +
                    std::to_string(violating_blocks) +
                    " violating (max block " +
                    std::to_string(max_block_size) + "), ~2^" +
                    std::to_string(log2_repairs) + " repairs";
  return out;
}

InconsistencyStats ComputeStats(const Database& db) {
  InconsistencyStats out;
  for (const Database::Block& block : db.blocks()) Accumulate(&out, block);
  return out;
}

std::map<std::string, InconsistencyStats> ComputeStatsPerRelation(
    const Database& db) {
  std::map<std::string, InconsistencyStats> out;
  for (const Database::Block& block : db.blocks()) {
    Accumulate(&out[SymbolName(block.relation)], block);
  }
  return out;
}

Database CertainFacts(const Database& db) {
  Database out(db.schema());
  for (const Database::Block& block : db.blocks()) {
    if (block.size() != 1) continue;
    Result<bool> r = out.AddFact(
        block.relation,
        db.FactsOf(block.relation)[static_cast<size_t>(
            block.fact_indices[0])]);
    (void)r;
  }
  return out;
}

}  // namespace cqa
