#include "cqa/db/database.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "cqa/base/hash.h"
#include "cqa/query/parser.h"

namespace cqa {

Result<Database> Database::FromText(std::string_view text) {
  Result<std::vector<ParsedFact>> facts = ParseFacts(text);
  if (!facts.ok()) return Result<Database>::Error(facts);
  Database db{Schema()};
  for (const ParsedFact& f : *facts) {
    Result<bool> r = db.AddFactAutoSchema(f.relation, f.key_len, f.values);
    // Schema conflicts in a fact file are still malformed input.
    if (!r.ok()) return Result<Database>::Error(ErrorCode::kParse, r.error());
  }
  return db;
}

Result<bool> Database::AddFact(Symbol relation, Tuple values) {
  if (!schema_.Has(relation)) {
    return Result<bool>::Error("unknown relation '" + SymbolName(relation) +
                               "'");
  }
  const RelationSchema& rs = schema_.Get(relation);
  if (static_cast<int>(values.size()) != rs.arity) {
    return Result<bool>::Error(
        "arity mismatch for '" + SymbolName(relation) + "': got " +
        std::to_string(values.size()) + ", expected " +
        std::to_string(rs.arity));
  }
  RelationData& rd = relations_[relation];
  auto [it, inserted] =
      rd.fact_index.emplace(values, static_cast<int>(rd.facts.size()));
  if (!inserted) return false;
  rd.facts.push_back(std::move(values));
  InvalidateBlocks();
  return true;
}

Result<bool> Database::AddFact(std::string_view relation, Tuple values) {
  return AddFact(InternSymbol(relation), std::move(values));
}

void Database::AddFactOrDie(std::string_view relation, Tuple values) {
  Result<bool> r = AddFact(relation, std::move(values));
  assert(r.ok());
  (void)r;
}

Result<bool> Database::AddFactAutoSchema(std::string_view relation,
                                         int key_len, Tuple values) {
  Result<Symbol> rel = schema_.AddRelation(
      relation, static_cast<int>(values.size()), key_len);
  if (!rel.ok()) return Result<bool>::Error(rel.error());
  return AddFact(rel.value(), std::move(values));
}

Result<bool> Database::AddAll(const Database& other) {
  for (const RelationSchema& rs : other.schema_.relations()) {
    Result<Symbol> r =
        schema_.AddRelation(SymbolName(rs.name), rs.arity, rs.key_len);
    if (!r.ok()) return Result<bool>::Error(r.error());
  }
  for (const auto& [rel, rd] : other.relations_) {
    for (const Tuple& t : rd.facts) {
      Result<bool> r = AddFact(rel, t);
      if (!r.ok()) return r;
    }
  }
  return true;
}

bool Database::RemoveFact(Symbol relation, const Tuple& values) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  RelationData& rd = it->second;
  auto fit = rd.fact_index.find(values);
  if (fit == rd.fact_index.end()) return false;
  int idx = fit->second;
  int last = static_cast<int>(rd.facts.size()) - 1;
  if (idx != last) {
    rd.facts[static_cast<size_t>(idx)] = rd.facts[static_cast<size_t>(last)];
    rd.fact_index[rd.facts[static_cast<size_t>(idx)]] = idx;
  }
  rd.facts.pop_back();
  rd.fact_index.erase(fit);
  InvalidateBlocks();
  return true;
}

void FactView::ForEachFactWithKey(
    Symbol relation, const Tuple& key,
    const std::function<bool(const Tuple&)>& fn) const {
  ForEachFact(relation, [&](const Tuple& t) {
    if (std::equal(key.begin(), key.end(), t.begin())) return fn(t);
    return true;
  });
}

void Database::ForEachFactWithKey(
    Symbol relation, const Tuple& key,
    const std::function<bool(const Tuple&)>& fn) const {
  for (const Tuple* t : FactsWithKey(relation, key)) {
    if (!fn(*t)) return;
  }
}

void Database::ForEachFact(Symbol relation,
                           const std::function<bool(const Tuple&)>& fn) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return;
  for (const Tuple& t : it->second.facts) {
    if (!fn(t)) return;
  }
}

bool Database::Contains(Symbol relation, const Tuple& values) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  return it->second.fact_index.count(values) > 0;
}

std::vector<Value> Database::ActiveDomain() const {
  std::set<Value> seen;
  for (const auto& [rel, rd] : relations_) {
    for (const Tuple& t : rd.facts) {
      for (Value v : t) seen.insert(v);
    }
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

const std::vector<Tuple>& Database::FactsOf(Symbol relation) const {
  static const std::vector<Tuple>& empty = *new std::vector<Tuple>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? empty : it->second.facts;
}

size_t Database::NumFacts() const {
  size_t n = 0;
  for (const auto& [rel, rd] : relations_) n += rd.facts.size();
  return n;
}

void Database::RebuildBlocks() const {
  blocks_.clear();
  fact_to_block_.clear();
  block_by_key_.clear();
  // Deterministic relation order: schema registration order.
  for (const RelationSchema& rs : schema_.relations()) {
    auto it = relations_.find(rs.name);
    if (it == relations_.end()) continue;
    const RelationData& rd = it->second;
    std::unordered_map<Tuple, int, TupleHash>& key_to_block =
        block_by_key_[rs.name];
    std::vector<int>& f2b = fact_to_block_[rs.name];
    f2b.assign(rd.facts.size(), -1);
    for (size_t i = 0; i < rd.facts.size(); ++i) {
      Tuple key(rd.facts[i].begin(), rd.facts[i].begin() + rs.key_len);
      auto [kit, inserted] =
          key_to_block.emplace(key, static_cast<int>(blocks_.size()));
      if (inserted) {
        blocks_.push_back(Block{rs.name, std::move(key), {}});
      }
      blocks_[static_cast<size_t>(kit->second)].fact_indices.push_back(
          static_cast<int>(i));
      f2b[i] = kit->second;
    }
  }
  blocks_valid_.store(true, std::memory_order_release);
}

void Database::EnsureBlocks() const {
  if (blocks_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  if (!blocks_valid_.load(std::memory_order_relaxed)) RebuildBlocks();
}

std::optional<int> Database::BlockWithKey(Symbol relation,
                                          const Tuple& key) const {
  EnsureBlocks();
  auto rit = block_by_key_.find(relation);
  if (rit == block_by_key_.end()) return std::nullopt;
  auto kit = rit->second.find(key);
  if (kit == rit->second.end()) return std::nullopt;
  return kit->second;
}

std::vector<const Tuple*> Database::FactsWithKey(Symbol relation,
                                                 const Tuple& key) const {
  std::vector<const Tuple*> out;
  std::optional<int> b = BlockWithKey(relation, key);
  if (!b.has_value()) return out;
  const Block& block = blocks_[static_cast<size_t>(*b)];
  const std::vector<Tuple>& facts = FactsOf(relation);
  out.reserve(block.fact_indices.size());
  for (int i : block.fact_indices) {
    out.push_back(&facts[static_cast<size_t>(i)]);
  }
  return out;
}

const std::vector<Database::Block>& Database::blocks() const {
  EnsureBlocks();
  return blocks_;
}

std::optional<int> Database::BlockOf(Symbol relation,
                                     const Tuple& values) const {
  EnsureBlocks();
  auto it = relations_.find(relation);
  if (it == relations_.end()) return std::nullopt;
  auto fit = it->second.fact_index.find(values);
  if (fit == it->second.fact_index.end()) return std::nullopt;
  auto bit = fact_to_block_.find(relation);
  assert(bit != fact_to_block_.end());
  return bit->second[static_cast<size_t>(fit->second)];
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks()) {
    if (b.size() > 1) return false;
  }
  return true;
}

namespace {

// One fact rendered as an unambiguous byte string: each value spelling
// length-prefixed (a value may contain any byte, including the separator
// of a naive join). Lexicographic order on these renderings sorts first by
// the key prefix, so sorting yields the block-ordered canonical form.
std::string RenderFact(const Tuple& fact) {
  std::string out;
  for (Value v : fact) {
    const std::string& name = v.name();
    uint64_t len = name.size();
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    }
    out += name;
  }
  return out;
}

}  // namespace

std::pair<uint64_t, uint64_t> Database::ContentDigest() const {
  if (!digest_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(digest_mu_);
    if (!digest_valid_.load(std::memory_order_relaxed)) {
      // Relations in name order, not registration order: two loads that
      // discovered relations in different orders must agree.
      std::vector<const RelationSchema*> rels;
      rels.reserve(schema_.relations().size());
      for (const RelationSchema& r : schema_.relations()) rels.push_back(&r);
      std::sort(rels.begin(), rels.end(),
                [](const RelationSchema* a, const RelationSchema* b) {
                  return SymbolName(a->name) < SymbolName(b->name);
                });

      Hash128 h;
      h.UpdateU64(rels.size());
      for (const RelationSchema* r : rels) {
        h.UpdateSized(SymbolName(r->name));
        h.UpdateU64(static_cast<uint64_t>(r->arity));
        h.UpdateU64(static_cast<uint64_t>(r->key_len));

        std::vector<std::string> rendered;
        rendered.reserve(NumFacts(r->name));
        for (const Tuple& fact : FactsOf(r->name)) {
          rendered.push_back(RenderFact(fact));
        }
        std::sort(rendered.begin(), rendered.end());
        h.UpdateU64(rendered.size());
        for (const std::string& f : rendered) h.UpdateSized(f);
      }

      Hash128::Digest d = h.Finish();
      digest_hi_ = d.hi;
      digest_lo_ = d.lo;
      digest_valid_.store(true, std::memory_order_release);
    }
  }
  // The release store above (or the one a concurrent computer made before
  // our acquire load succeeded) publishes the digest words.
  return {digest_hi_, digest_lo_};
}

uint64_t Database::CountRepairs(uint64_t cap) const {
  uint64_t count = 1;
  for (const Block& b : blocks()) {
    uint64_t s = b.size();
    if (count > cap / (s == 0 ? 1 : s)) return cap;
    count *= s;
  }
  return count;
}

std::string Database::ToText() const {
  std::string out;
  for (const RelationSchema& rs : schema_.relations()) {
    for (const Tuple& t : FactsOf(rs.name)) {
      out += SymbolName(rs.name) + "(";
      for (int i = 0; i < rs.arity; ++i) {
        if (i > 0) out += (i == rs.key_len) ? " | " : ", ";
        out += "'";
        for (char c : t[static_cast<size_t>(i)].name()) {
          if (c == '\'') out += '\'';  // double embedded quotes
          out += c;
        }
        out += "'";
      }
      out += ")\n";
    }
  }
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const RelationSchema& rs : schema_.relations()) {
    for (const Tuple& t : FactsOf(rs.name)) {
      out += Fact{rs.name, t}.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace cqa
