#include "cqa/db/database.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "cqa/base/hash.h"
#include "cqa/base/union_find.h"
#include "cqa/query/parser.h"

namespace cqa {

namespace {
// Process-wide count of full block-index rebuilds (see IndexBuildCount).
std::atomic<uint64_t> g_index_builds{0};
}  // namespace

uint64_t Database::IndexBuildCount() {
  return g_index_builds.load(std::memory_order_relaxed);
}

Result<Database> Database::FromText(std::string_view text) {
  Result<std::vector<ParsedFact>> facts = ParseFacts(text);
  if (!facts.ok()) return Result<Database>::Error(facts);
  Database db{Schema()};
  for (const ParsedFact& f : *facts) {
    Result<bool> r = db.AddFactAutoSchema(f.relation, f.key_len, f.values);
    // Schema conflicts in a fact file are still malformed input.
    if (!r.ok()) return Result<Database>::Error(ErrorCode::kParse, r.error());
  }
  return db;
}

Database::RelationData& Database::MutableRelation(Symbol relation) {
  std::shared_ptr<RelationData>& rd = relations_[relation];
  if (rd == nullptr) {
    rd = std::make_shared<RelationData>();
  } else if (rd.use_count() > 1) {
    // Shared with a sibling copy (another epoch): deep-copy this relation
    // before mutating so the sibling keeps its snapshot untouched.
    rd = std::make_shared<RelationData>(*rd);
  }
  return *rd;
}

Result<bool> Database::AddFact(Symbol relation, Tuple values) {
  if (!schema_.Has(relation)) {
    return Result<bool>::Error("unknown relation '" + SymbolName(relation) +
                               "'");
  }
  const RelationSchema& rs = schema_.Get(relation);
  if (static_cast<int>(values.size()) != rs.arity) {
    return Result<bool>::Error(
        "arity mismatch for '" + SymbolName(relation) + "': got " +
        std::to_string(values.size()) + ", expected " +
        std::to_string(rs.arity));
  }
  // Membership check before MutableRelation: a duplicate insert must not
  // trigger a copy-on-write clone.
  auto it = relations_.find(relation);
  if (it != relations_.end() && it->second->fact_index.count(values) > 0) {
    return false;
  }
  RelationData& rd = MutableRelation(relation);
  rd.fact_index.emplace(values, static_cast<int>(rd.facts.size()));
  rd.facts.push_back(std::move(values));
  InvalidateBlocks();
  return true;
}

Result<bool> Database::AddFact(std::string_view relation, Tuple values) {
  return AddFact(InternSymbol(relation), std::move(values));
}

void Database::AddFactOrDie(std::string_view relation, Tuple values) {
  Result<bool> r = AddFact(relation, std::move(values));
  assert(r.ok());
  (void)r;
}

Result<bool> Database::AddFactAutoSchema(std::string_view relation,
                                         int key_len, Tuple values) {
  Result<Symbol> rel = schema_.AddRelation(
      relation, static_cast<int>(values.size()), key_len);
  if (!rel.ok()) return Result<bool>::Error(rel.error());
  return AddFact(rel.value(), std::move(values));
}

Result<bool> Database::AddAll(const Database& other) {
  for (const RelationSchema& rs : other.schema_.relations()) {
    Result<Symbol> r =
        schema_.AddRelation(SymbolName(rs.name), rs.arity, rs.key_len);
    if (!r.ok()) return Result<bool>::Error(r.error());
  }
  for (const auto& [rel, rd] : other.relations_) {
    for (const Tuple& t : rd->facts) {
      Result<bool> r = AddFact(rel, t);
      if (!r.ok()) return r;
    }
  }
  return true;
}

bool Database::RemoveFact(Symbol relation, const Tuple& values) {
  auto it = relations_.find(relation);
  if (it == relations_.end() || it->second->fact_index.count(values) == 0) {
    return false;
  }
  RelationData& rd = MutableRelation(relation);
  auto fit = rd.fact_index.find(values);
  int idx = fit->second;
  int last = static_cast<int>(rd.facts.size()) - 1;
  if (idx != last) {
    rd.facts[static_cast<size_t>(idx)] = rd.facts[static_cast<size_t>(last)];
    rd.fact_index[rd.facts[static_cast<size_t>(idx)]] = idx;
  }
  rd.facts.pop_back();
  rd.fact_index.erase(fit);
  InvalidateBlocks();
  return true;
}

void FactView::ForEachFactWithKey(
    Symbol relation, const Tuple& key,
    const std::function<bool(const Tuple&)>& fn) const {
  ForEachFact(relation, [&](const Tuple& t) {
    if (std::equal(key.begin(), key.end(), t.begin())) return fn(t);
    return true;
  });
}

void Database::ForEachFactWithKey(
    Symbol relation, const Tuple& key,
    const std::function<bool(const Tuple&)>& fn) const {
  for (const Tuple* t : FactsWithKey(relation, key)) {
    if (!fn(*t)) return;
  }
}

void Database::ForEachFact(Symbol relation,
                           const std::function<bool(const Tuple&)>& fn) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return;
  for (const Tuple& t : it->second->facts) {
    if (!fn(t)) return;
  }
}

bool Database::Contains(Symbol relation, const Tuple& values) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  return it->second->fact_index.count(values) > 0;
}

std::vector<Value> Database::ActiveDomain() const {
  std::set<Value> seen;
  for (const auto& [rel, rd] : relations_) {
    for (const Tuple& t : rd->facts) {
      for (Value v : t) seen.insert(v);
    }
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

const std::vector<Tuple>& Database::FactsOf(Symbol relation) const {
  static const std::vector<Tuple>& empty = *new std::vector<Tuple>();
  auto it = relations_.find(relation);
  return it == relations_.end() ? empty : it->second->facts;
}

size_t Database::NumFacts() const {
  size_t n = 0;
  for (const auto& [rel, rd] : relations_) n += rd->facts.size();
  return n;
}

void Database::RebuildBlocks() const {
  g_index_builds.fetch_add(1, std::memory_order_relaxed);
  blocks_.clear();
  fact_to_block_.clear();
  block_by_key_.clear();
  // Deterministic relation order: schema registration order.
  for (const RelationSchema& rs : schema_.relations()) {
    auto it = relations_.find(rs.name);
    if (it == relations_.end()) continue;
    const RelationData& rd = *it->second;
    std::unordered_map<Tuple, int, TupleHash>& key_to_block =
        block_by_key_[rs.name];
    std::vector<int>& f2b = fact_to_block_[rs.name];
    f2b.assign(rd.facts.size(), -1);
    for (size_t i = 0; i < rd.facts.size(); ++i) {
      Tuple key(rd.facts[i].begin(), rd.facts[i].begin() + rs.key_len);
      auto [kit, inserted] =
          key_to_block.emplace(key, static_cast<int>(blocks_.size()));
      if (inserted) {
        blocks_.push_back(Block{rs.name, std::move(key), {}});
      }
      blocks_[static_cast<size_t>(kit->second)].fact_indices.push_back(
          static_cast<int>(i));
      f2b[i] = kit->second;
    }
  }
  blocks_valid_.store(true, std::memory_order_release);
}

void Database::EnsureBlocks() const {
  if (blocks_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(blocks_mu_);
  if (!blocks_valid_.load(std::memory_order_relaxed)) RebuildBlocks();
}

std::optional<int> Database::BlockWithKey(Symbol relation,
                                          const Tuple& key) const {
  EnsureBlocks();
  auto rit = block_by_key_.find(relation);
  if (rit == block_by_key_.end()) return std::nullopt;
  auto kit = rit->second.find(key);
  if (kit == rit->second.end()) return std::nullopt;
  return kit->second;
}

std::vector<const Tuple*> Database::FactsWithKey(Symbol relation,
                                                 const Tuple& key) const {
  std::vector<const Tuple*> out;
  std::optional<int> b = BlockWithKey(relation, key);
  if (!b.has_value()) return out;
  const Block& block = blocks_[static_cast<size_t>(*b)];
  const std::vector<Tuple>& facts = FactsOf(relation);
  out.reserve(block.fact_indices.size());
  for (int i : block.fact_indices) {
    out.push_back(&facts[static_cast<size_t>(i)]);
  }
  return out;
}

const std::vector<Database::Block>& Database::blocks() const {
  EnsureBlocks();
  return blocks_;
}

std::optional<int> Database::BlockOf(Symbol relation,
                                     const Tuple& values) const {
  EnsureBlocks();
  auto it = relations_.find(relation);
  if (it == relations_.end()) return std::nullopt;
  auto fit = it->second->fact_index.find(values);
  if (fit == it->second->fact_index.end()) return std::nullopt;
  auto bit = fact_to_block_.find(relation);
  assert(bit != fact_to_block_.end());
  return bit->second[static_cast<size_t>(fit->second)];
}

const Database::ComponentIndex& Database::BlockComponents() const {
  if (!components_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(components_mu_);
    if (!components_valid_.load(std::memory_order_relaxed)) {
      const std::vector<Block>& bs = blocks();
      UnionFind uf(bs.size());
      // A block links to every value any of its facts carries: two blocks
      // that could ever join (share a constant in any position, key or
      // non-key) end up merged. One pass, per value the first block seen
      // anchors the union.
      std::unordered_map<Symbol, int> value_anchor;
      for (size_t b = 0; b < bs.size(); ++b) {
        const std::vector<Tuple>& facts = FactsOf(bs[b].relation);
        for (int fi : bs[b].fact_indices) {
          for (Value v : facts[static_cast<size_t>(fi)]) {
            auto [it, inserted] =
                value_anchor.emplace(v.id(), static_cast<int>(b));
            if (!inserted) uf.Union(it->second, static_cast<int>(b));
          }
        }
      }
      ComponentIndex idx;
      idx.component_of_block.assign(bs.size(), -1);
      // Dense 0-based ids in order of first appearance over the block
      // list, so the numbering is deterministic for a given block order.
      std::unordered_map<int, int> root_to_id;
      for (size_t b = 0; b < bs.size(); ++b) {
        int root = uf.Find(static_cast<int>(b));
        auto [it, inserted] = root_to_id.emplace(root, idx.num_components);
        if (inserted) ++idx.num_components;
        idx.component_of_block[b] = it->second;
      }
      components_ = std::move(idx);
      components_valid_.store(true, std::memory_order_release);
    }
  }
  return components_;
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks()) {
    if (b.size() > 1) return false;
  }
  return true;
}

namespace {

// One fact rendered as an unambiguous byte string: each value spelling
// length-prefixed (a value may contain any byte, including the separator
// of a naive join). Lexicographic order on these renderings sorts first by
// the key prefix, so sorting yields the block-ordered canonical form.
std::string RenderFact(const Tuple& fact) {
  std::string out;
  for (Value v : fact) {
    const std::string& name = v.name();
    uint64_t len = name.size();
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    }
    out += name;
  }
  return out;
}

}  // namespace

Hash128::Digest Database::FactContentDigest(const RelationSchema& rs,
                                            const Tuple& fact) {
  // Each fact hashes independently, salted with its relation's full
  // signature: the same value tuple under R[2,1] and S[2,1] (or under the
  // same name with a different key) must contribute differently.
  Hash128 h;
  h.UpdateSized(SymbolName(rs.name));
  h.UpdateU64(static_cast<uint64_t>(rs.arity));
  h.UpdateU64(static_cast<uint64_t>(rs.key_len));
  h.UpdateSized(RenderFact(fact));
  return h.Finish();
}

std::pair<uint64_t, uint64_t> Database::ContentDigest() const {
  if (!digest_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(digest_mu_);
    if (!digest_valid_.load(std::memory_order_relaxed)) {
      // Per-fact digests fold through the order-independent multiset
      // combine: no sorting, no canonical relation order needed — any
      // enumeration of the same facts reaches the same accumulator, which
      // is also what lets a delta update it without this rescan.
      SetHash128 acc;
      for (const RelationSchema& rs : schema_.relations()) {
        auto it = relations_.find(rs.name);
        if (it == relations_.end()) continue;
        for (const Tuple& fact : it->second->facts) {
          acc.Add(FactContentDigest(rs, fact));
        }
      }
      digest_acc_ = acc;
      digest_valid_.store(true, std::memory_order_release);
    }
  }
  // The release store above (or the one a concurrent computer made before
  // our acquire load succeeded) publishes the accumulator words.
  Hash128::Digest d = digest_acc_.Finish();
  return {d.hi, d.lo};
}

std::shared_ptr<Database> Database::CloneWithIndexes() const {
  // Force both memos on the source so the clone starts from valid state.
  blocks();
  ContentDigest();
  // Built in place on the heap: a by-value return would be moved by the
  // caller, and Database's move constructor drops the memos on purpose.
  auto out = std::make_shared<Database>(schema_);
  out->relations_ = relations_;  // shared copy-on-write, O(relations)
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    out->blocks_ = blocks_;
    out->fact_to_block_ = fact_to_block_;
    out->block_by_key_ = block_by_key_;
  }
  out->blocks_valid_.store(true, std::memory_order_release);
  if (components_valid_.load(std::memory_order_acquire)) {
    // Carry the component partition when it happens to be built (never
    // forced: most epochs go on to mutate, which would drop it anyway).
    std::lock_guard<std::mutex> lock(components_mu_);
    out->components_ = components_;
    out->components_valid_.store(true, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    out->digest_acc_ = digest_acc_;
  }
  out->digest_valid_.store(true, std::memory_order_release);
  return out;
}

Result<bool> Database::AddFactIncremental(Symbol relation, Tuple values) {
  if (!schema_.Has(relation)) {
    return Result<bool>::Error("unknown relation '" + SymbolName(relation) +
                               "'");
  }
  const RelationSchema& rs = schema_.Get(relation);
  if (static_cast<int>(values.size()) != rs.arity) {
    return Result<bool>::Error(
        "arity mismatch for '" + SymbolName(relation) + "': got " +
        std::to_string(values.size()) + ", expected " +
        std::to_string(rs.arity));
  }
  assert(blocks_valid_.load(std::memory_order_acquire) &&
         digest_valid_.load(std::memory_order_acquire));
  auto it = relations_.find(relation);
  if (it != relations_.end() && it->second->fact_index.count(values) > 0) {
    return false;
  }
  RelationData& rd = MutableRelation(relation);
  const int idx = static_cast<int>(rd.facts.size());
  digest_acc_.Add(FactContentDigest(rs, values));
  // The new fact may bridge two components; drop the memo (rebuilt lazily)
  // rather than patch it — see BlockComponents.
  components_valid_.store(false, std::memory_order_release);

  Tuple key(values.begin(), values.begin() + rs.key_len);
  std::unordered_map<Tuple, int, TupleHash>& key_to_block =
      block_by_key_[relation];
  int block_id;
  auto kit = key_to_block.find(key);
  if (kit == key_to_block.end()) {
    block_id = static_cast<int>(blocks_.size());
    blocks_.push_back(Block{relation, key, {}});
    key_to_block.emplace(std::move(key), block_id);
  } else {
    block_id = kit->second;
  }
  blocks_[static_cast<size_t>(block_id)].fact_indices.push_back(idx);
  fact_to_block_[relation].push_back(block_id);

  rd.fact_index.emplace(values, idx);
  rd.facts.push_back(std::move(values));
  return true;
}

bool Database::RemoveFactIncremental(Symbol relation, const Tuple& values) {
  auto it = relations_.find(relation);
  if (it == relations_.end() || it->second->fact_index.count(values) == 0) {
    return false;
  }
  assert(blocks_valid_.load(std::memory_order_acquire) &&
         digest_valid_.load(std::memory_order_acquire));
  const RelationSchema& rs = schema_.Get(relation);
  RelationData& rd = MutableRelation(relation);
  auto fit = rd.fact_index.find(values);
  const int idx = fit->second;
  const int last = static_cast<int>(rd.facts.size()) - 1;
  // Removal can split a component, and the swap-with-last compaction below
  // renumbers block ids, so the block→component map cannot be patched.
  components_valid_.store(false, std::memory_order_release);
  digest_acc_.Remove(
      FactContentDigest(rs, rd.facts[static_cast<size_t>(idx)]));

  std::vector<int>& f2b = fact_to_block_[relation];
  const int removed_block = f2b[static_cast<size_t>(idx)];
  {
    std::vector<int>& members =
        blocks_[static_cast<size_t>(removed_block)].fact_indices;
    members.erase(std::find(members.begin(), members.end(), idx));
  }
  if (idx != last) {
    // Swap-with-last compaction: the last fact moves into the hole, so its
    // index entry and its block membership entry both retarget to `idx`.
    rd.facts[static_cast<size_t>(idx)] = rd.facts[static_cast<size_t>(last)];
    rd.fact_index[rd.facts[static_cast<size_t>(idx)]] = idx;
    const int moved_block = f2b[static_cast<size_t>(last)];
    std::vector<int>& members =
        blocks_[static_cast<size_t>(moved_block)].fact_indices;
    *std::find(members.begin(), members.end(), last) = idx;
    f2b[static_cast<size_t>(idx)] = moved_block;
  }
  rd.facts.pop_back();
  rd.fact_index.erase(fit);
  f2b.pop_back();

  if (blocks_[static_cast<size_t>(removed_block)].fact_indices.empty()) {
    // The block emptied: swap-with-last on the block list, retargeting the
    // moved block's key entry and its members' fact_to_block entries.
    const int end_block = static_cast<int>(blocks_.size()) - 1;
    block_by_key_[relation].erase(
        blocks_[static_cast<size_t>(removed_block)].key);
    if (removed_block != end_block) {
      blocks_[static_cast<size_t>(removed_block)] =
          std::move(blocks_[static_cast<size_t>(end_block)]);
      const Block& moved = blocks_[static_cast<size_t>(removed_block)];
      block_by_key_[moved.relation][moved.key] = removed_block;
      std::vector<int>& moved_f2b = fact_to_block_[moved.relation];
      for (int member : moved.fact_indices) {
        moved_f2b[static_cast<size_t>(member)] = removed_block;
      }
    }
    blocks_.pop_back();
  }
  return true;
}

uint64_t Database::CountRepairs(uint64_t cap) const {
  uint64_t count = 1;
  for (const Block& b : blocks()) {
    uint64_t s = b.size();
    if (count > cap / (s == 0 ? 1 : s)) return cap;
    count *= s;
  }
  return count;
}

std::string Database::ToText() const {
  std::string out;
  for (const RelationSchema& rs : schema_.relations()) {
    for (const Tuple& t : FactsOf(rs.name)) {
      out += SymbolName(rs.name) + "(";
      for (int i = 0; i < rs.arity; ++i) {
        if (i > 0) out += (i == rs.key_len) ? " | " : ", ";
        out += "'";
        for (char c : t[static_cast<size_t>(i)].name()) {
          if (c == '\'') out += '\'';  // double embedded quotes
          out += c;
        }
        out += "'";
      }
      out += ")\n";
    }
  }
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const RelationSchema& rs : schema_.relations()) {
    for (const Tuple& t : FactsOf(rs.name)) {
      out += Fact{rs.name, t}.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace cqa
