#ifndef CQA_DB_TYPING_H_
#define CQA_DB_TYPING_H_

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Transforms `db` into a database *typed relative to q* (Section 3 of the
/// paper): at every position held by a variable `x` in the atom of `q` over
/// the same relation, constants are injectively renamed into x's type
/// ("x:value"), so that distinct variables range over disjoint constant
/// sets. Positions held by constants in `q`, and relations not mentioned by
/// `q`, are left unchanged.
///
/// The renaming is injective per position and uniform per variable, so block
/// structure is preserved and CERTAINTY(q) gives the same answer on `db` and
/// on the result (tested in typing_test.cc).
///
/// Requires `q` to have no reified variables.
Result<Database> MakeTyped(const Query& q, const Database& db);

}  // namespace cqa

#endif  // CQA_DB_TYPING_H_
