#include "cqa/db/fact.h"

#include <algorithm>

namespace cqa {

std::string Fact::ToString() const {
  return SymbolName(relation) + TupleToString(values);
}

bool KeyEqual(const Fact& a, const Fact& b, int key_len) {
  if (a.relation != b.relation) return false;
  return std::equal(a.values.begin(), a.values.begin() + key_len,
                    b.values.begin());
}

}  // namespace cqa
