#include "cqa/db/eval.h"

#include <cassert>

namespace cqa {

namespace {

// Tries to extend `env` so that `atom` matches `tuple`. Appends newly bound
// variables to `trail`. Returns false (leaving some trail entries to undo)
// on mismatch.
bool MatchAtom(const Atom& atom, const Tuple& tuple, Valuation* env,
               std::vector<Symbol>* trail) {
  assert(static_cast<size_t>(atom.arity()) == tuple.size());
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& t = atom.term(i);
    Value v = tuple[static_cast<size_t>(i)];
    if (t.is_constant()) {
      if (t.constant() != v) return false;
    } else {
      auto it = env->find(t.var());
      if (it != env->end()) {
        if (it->second != v) return false;
      } else {
        env->emplace(t.var(), v);
        trail->push_back(t.var());
      }
    }
  }
  return true;
}

void UndoTrail(Valuation* env, std::vector<Symbol>* trail, size_t mark) {
  while (trail->size() > mark) {
    env->erase(trail->back());
    trail->pop_back();
  }
}

struct SearchState {
  const Query* q;
  const FactView* view;
  const std::function<bool(const Valuation&)>* fn;
  std::vector<size_t> positive;  // literal indices
  std::vector<bool> used;
  Valuation env;
  std::vector<Symbol> trail;
};

// Selection score: unbound variable count, heavily penalised when the key
// prefix is not fully bound (ground keys enable block-index lookups).
int AtomScore(const Atom& atom, const Valuation& env) {
  int n = 0;
  bool key_ground = true;
  SymbolSet seen;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& t = atom.term(i);
    if (t.is_variable() && env.find(t.var()) == env.end()) {
      if (i < atom.key_len()) key_ground = false;
      if (!seen.contains(t.var())) {
        seen.Insert(t.var());
        ++n;
      }
    }
  }
  return n + (key_ground ? 0 : 1000);
}

// Checks negated atoms and disequalities once all variables are bound.
bool CheckResiduals(SearchState* s) {
  for (const Literal& l : s->q->literals()) {
    if (!l.negated) continue;
    Tuple ground;
    ground.reserve(static_cast<size_t>(l.atom.arity()));
    for (const Term& t : l.atom.terms()) {
      Value v = ResolveTerm(t, s->env);
      assert(v.valid() && "unbound variable in negated atom (unsafe query?)");
      ground.push_back(v);
    }
    if (s->view->Contains(l.atom.relation(), ground)) return false;
  }
  for (const Diseq& d : s->q->diseqs()) {
    bool some_diff = false;
    for (size_t i = 0; i < d.lhs.size(); ++i) {
      Value a = ResolveTerm(d.lhs[i], s->env);
      Value b = ResolveTerm(d.rhs[i], s->env);
      assert(a.valid() && b.valid() &&
             "unbound variable in disequality (unsafe query?)");
      if (a != b) {
        some_diff = true;
        break;
      }
    }
    if (!some_diff) return false;
  }
  return true;
}

// Backtracking join over the positive literals. Returns false iff the
// callback requested a stop.
bool Search(SearchState* s, size_t bound_count) {
  if (bound_count == s->positive.size()) {
    if (!CheckResiduals(s)) return true;  // not a witness; keep searching
    return (*s->fn)(s->env);
  }
  // Greedy: pick the unused positive literal with the best score (ground
  // key first, then fewest unbound variables).
  size_t best = SIZE_MAX;
  int best_score = INT32_MAX;
  for (size_t i = 0; i < s->positive.size(); ++i) {
    if (s->used[i]) continue;
    int score = AtomScore(s->q->atom(s->positive[i]), s->env);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  assert(best != SIZE_MAX);
  s->used[best] = true;
  const Atom& atom = s->q->atom(s->positive[best]);
  bool keep_going = true;
  auto try_fact = [&](const Tuple& tuple) {
    size_t mark = s->trail.size();
    if (MatchAtom(atom, tuple, &s->env, &s->trail)) {
      if (!Search(s, bound_count + 1)) keep_going = false;
    }
    UndoTrail(&s->env, &s->trail, mark);
    return keep_going;
  };
  // Ground key prefix: restrict to the single matching block.
  Tuple key;
  bool key_ground = true;
  for (int i = 0; i < atom.key_len() && key_ground; ++i) {
    Value v = ResolveTerm(atom.term(i), s->env);
    if (v.valid()) {
      key.push_back(v);
    } else {
      key_ground = false;
    }
  }
  if (key_ground) {
    s->view->ForEachFactWithKey(atom.relation(), key, try_fact);
  } else {
    s->view->ForEachFact(atom.relation(), try_fact);
  }
  s->used[best] = false;
  return keep_going;
}

}  // namespace

Value ResolveTerm(const Term& t, const Valuation& env) {
  if (t.is_constant()) return t.constant();
  auto it = env.find(t.var());
  return it == env.end() ? Value() : it->second;
}

bool ForEachWitness(const Query& q, const FactView& view,
                    const Valuation& initial,
                    const std::function<bool(const Valuation&)>& fn) {
  SearchState s;
  s.q = &q;
  s.view = &view;
  s.fn = &fn;
  s.positive = q.PositiveIndices();
  s.used.assign(s.positive.size(), false);
  s.env = initial;
  return Search(&s, 0);
}

bool Satisfies(const Query& q, const FactView& view,
               const Valuation& initial) {
  bool found = false;
  ForEachWitness(q, view, initial, [&](const Valuation&) {
    found = true;
    return false;  // stop at first witness
  });
  return found;
}

std::optional<Valuation> FindWitness(const Query& q, const FactView& view,
                                     const Valuation& initial) {
  std::optional<Valuation> out;
  ForEachWitness(q, view, initial, [&](const Valuation& v) {
    out = v;
    return false;
  });
  return out;
}

std::vector<Fact> KeyRelevantFacts(const Query& q, size_t literal_idx,
                                   const FactView& view) {
  const Atom& f = q.atom(literal_idx);
  std::vector<Tuple> keys;
  ForEachWitness(q, view, {}, [&](const Valuation& theta) {
    Tuple key;
    key.reserve(static_cast<size_t>(f.key_len()));
    for (int i = 0; i < f.key_len(); ++i) {
      Value v = ResolveTerm(f.term(i), theta);
      assert(v.valid());
      key.push_back(v);
    }
    keys.push_back(std::move(key));
    return true;
  });
  std::vector<Fact> out;
  view.ForEachFact(f.relation(), [&](const Tuple& tuple) {
    Tuple key(tuple.begin(), tuple.begin() + f.key_len());
    for (const Tuple& k : keys) {
      if (k == key) {
        out.push_back(Fact{f.relation(), tuple});
        break;
      }
    }
    return true;
  });
  return out;
}

}  // namespace cqa
