#ifndef CQA_DB_EVAL_H_
#define CQA_DB_EVAL_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cqa/db/database.h"
#include "cqa/db/fact.h"
#include "cqa/query/query.h"

namespace cqa {

/// A (partial) valuation: variable symbol -> constant.
using Valuation = std::unordered_map<Symbol, Value>;

/// Enumerates every valuation θ over the variables of `q` (extending
/// `initial`, which must bind all reified variables of `q`) such that
/// `view ⊨ θ(q)`: θ maps every positive atom to a fact of `view`, no negated
/// atom to a fact of `view`, and satisfies all disequalities. Invokes `fn`
/// per witness; stops early if `fn` returns false. Returns false iff stopped
/// early.
bool ForEachWitness(const Query& q, const FactView& view,
                    const Valuation& initial,
                    const std::function<bool(const Valuation&)>& fn);

/// True iff `view` satisfies `q` (with reified variables bound by
/// `initial`, empty by default).
bool Satisfies(const Query& q, const FactView& view,
               const Valuation& initial = {});

/// A witness valuation, if one exists.
std::optional<Valuation> FindWitness(const Query& q, const FactView& view,
                                     const Valuation& initial = {});

/// The facts of `view` that are key-relevant for `q` at the atom of literal
/// `literal_idx` (the notion of Section 3 / Example 3.3): facts A such that
/// some witness θ has θ(F) key-equal to A. `view` is typically a repair.
std::vector<Fact> KeyRelevantFacts(const Query& q, size_t literal_idx,
                                   const FactView& view);

/// Resolves a term under a valuation. Returns an invalid Value for an
/// unbound variable.
Value ResolveTerm(const Term& t, const Valuation& env);

}  // namespace cqa

#endif  // CQA_DB_EVAL_H_
