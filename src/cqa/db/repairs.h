#ifndef CQA_DB_REPAIRS_H_
#define CQA_DB_REPAIRS_H_

#include <functional>
#include <vector>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/base/rng.h"
#include "cqa/db/database.h"

namespace cqa {

/// A repair of a database: a maximal consistent subset, i.e. exactly one
/// fact chosen from every block. Lightweight view; the database must outlive
/// it.
class Repair : public FactView {
 public:
  /// `choices[b]` indexes into `db->blocks()[b].fact_indices`.
  Repair(const Database* db, std::vector<int> choices);

  // FactView:
  const Schema& schema() const override { return db_->schema(); }
  void ForEachFact(Symbol relation,
                   const std::function<bool(const Tuple&)>& fn) const override;
  void ForEachFactWithKey(
      Symbol relation, const Tuple& key,
      const std::function<bool(const Tuple&)>& fn) const override;
  bool Contains(Symbol relation, const Tuple& values) const override;
  std::vector<Value> ActiveDomain() const override;

  /// The chosen fact of block `b`.
  const Tuple& ChosenFact(int b) const;

  const std::vector<int>& choices() const { return choices_; }
  const Database& db() const { return *db_; }

  /// Materialises this repair as a standalone (consistent) database.
  Database ToDatabase() const;

  std::string ToString() const;

 private:
  const Database* db_;
  std::vector<int> choices_;
};

/// Invokes `fn` on every repair of `db`, in odometer order over blocks.
/// Stops early (returning false) if `fn` returns false; otherwise returns
/// true after the last repair. A database with no facts has exactly one
/// (empty) repair.
bool ForEachRepair(const Database& db,
                   const std::function<bool(const Repair&)>& fn);

/// Budget-governed variant: charges one step per repair against `budget`
/// (which may be null) and stops with the violated code if the budget runs
/// out mid-enumeration. On success, the returned bool mirrors the ungoverned
/// overload: false iff `fn` stopped the enumeration early.
Result<bool> ForEachRepair(const Database& db, Budget* budget,
                           const std::function<bool(const Repair&)>& fn);

/// A uniformly random repair.
Repair RandomRepair(const Database& db, Rng* rng);

}  // namespace cqa

#endif  // CQA_DB_REPAIRS_H_
