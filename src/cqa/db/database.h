#ifndef CQA_DB_DATABASE_H_
#define CQA_DB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cqa/base/hash.h"
#include "cqa/base/result.h"
#include "cqa/base/value.h"
#include "cqa/db/fact.h"
#include "cqa/query/schema.h"

namespace cqa {

/// Read-only view over a set of facts. Implemented by `Database` (all facts)
/// and `Repair` (one fact per block). Query and first-order evaluation run
/// against this interface so the same evaluator serves both.
class FactView {
 public:
  virtual ~FactView() = default;

  virtual const Schema& schema() const = 0;

  /// Calls `fn` for every fact of `relation`; stops early if `fn` returns
  /// false. Unknown relations yield no facts.
  virtual void ForEachFact(
      Symbol relation,
      const std::function<bool(const Tuple&)>& fn) const = 0;

  /// Calls `fn` for every fact of `relation` whose key prefix equals `key`
  /// (i.e. one block). The default filters `ForEachFact`; implementations
  /// with a block index override this with an O(block) lookup.
  virtual void ForEachFactWithKey(
      Symbol relation, const Tuple& key,
      const std::function<bool(const Tuple&)>& fn) const;

  /// Membership test.
  virtual bool Contains(Symbol relation, const Tuple& values) const = 0;

  /// All constants occurring in any fact.
  virtual std::vector<Value> ActiveDomain() const = 0;
};

/// A (possibly inconsistent) database: a finite set of facts over a schema
/// with one primary key per relation. Maintains a block index — a *block* is
/// a maximal set of key-equal facts; repairs pick one fact per block.
class Database : public FactView {
 public:
  /// One block: all facts of `relation` sharing key `key`.
  struct Block {
    Symbol relation = kNoSymbol;
    Tuple key;
    std::vector<int> fact_indices;  // indices into facts(relation)

    size_t size() const { return fact_indices.size(); }
  };

  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  // Copy/move transfer the facts but not the lazily-built block index (the
  // cache guard is not copyable; the index rebuilds on first use). A copy
  // *shares* the per-relation fact storage until one side mutates it
  // (copy-on-write at relation granularity), so copying a large database
  // costs O(relations), not O(facts). Const access is thread-safe — many
  // threads may share one const Database (the serve layer does) — but
  // mutating concurrently with any other access is a data race, as usual.
  Database(const Database& other)
      : schema_(other.schema_), relations_(other.relations_) {}
  Database(Database&& other) noexcept
      : schema_(std::move(other.schema_)),
        relations_(std::move(other.relations_)) {}
  Database& operator=(const Database& other) {
    if (this != &other) {
      schema_ = other.schema_;
      relations_ = other.relations_;
      InvalidateBlocks();
    }
    return *this;
  }
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      schema_ = std::move(other.schema_);
      relations_ = std::move(other.relations_);
      InvalidateBlocks();
    }
    return *this;
  }

  /// Parses facts (see `ParseFacts` grammar) into a database, inferring the
  /// schema from the first occurrence of each relation.
  static Result<Database> FromText(std::string_view text);

  /// Inserts a fact (set semantics: duplicates are ignored). Returns an
  /// error if the relation is unknown or the arity mismatches. Returns true
  /// if the fact was new.
  Result<bool> AddFact(Symbol relation, Tuple values);
  Result<bool> AddFact(std::string_view relation, Tuple values);
  void AddFactOrDie(std::string_view relation, Tuple values);

  /// Registers `relation` into the schema if absent, then inserts.
  Result<bool> AddFactAutoSchema(std::string_view relation, int key_len,
                                 Tuple values);

  /// Inserts every fact of `other` (schemas must agree on shared relations).
  Result<bool> AddAll(const Database& other);

  /// Removes a fact if present; returns true if removed. Invalidates block
  /// and fact indices of that relation (they are rebuilt).
  bool RemoveFact(Symbol relation, const Tuple& values);

  // FactView:
  const Schema& schema() const override { return schema_; }
  void ForEachFact(Symbol relation,
                   const std::function<bool(const Tuple&)>& fn) const override;
  void ForEachFactWithKey(
      Symbol relation, const Tuple& key,
      const std::function<bool(const Tuple&)>& fn) const override;
  bool Contains(Symbol relation, const Tuple& values) const override;
  std::vector<Value> ActiveDomain() const override;

  /// All facts of one relation (empty for unknown relations).
  const std::vector<Tuple>& FactsOf(Symbol relation) const;

  size_t NumFacts() const;
  size_t NumFacts(Symbol relation) const { return FactsOf(relation).size(); }

  /// The global block list (across all relations). Stable order.
  const std::vector<Block>& blocks() const;

  /// Index into `blocks()` of the block containing the given fact, if the
  /// fact is present.
  std::optional<int> BlockOf(Symbol relation, const Tuple& values) const;

  /// Index into `blocks()` of the block with the given key, if any fact has
  /// that key.
  std::optional<int> BlockWithKey(Symbol relation, const Tuple& key) const;

  /// The facts whose key prefix equals `key` (one block), resolved through
  /// the block index — O(1) plus the block size, instead of a relation scan.
  /// Returns tuples by value indices; empty if no such block.
  std::vector<const Tuple*> FactsWithKey(Symbol relation,
                                         const Tuple& key) const;

  size_t NumBlocks() const { return blocks().size(); }

  /// Query-independent partition of `blocks()` into value-connected
  /// components: two blocks land in one component iff some facts of theirs
  /// share a constant, transitively closed. Any query whose positive atoms
  /// are variable-connected can only join facts along shared constants, so
  /// blocks in different components never interact through such a query —
  /// the soundness basis of the parallel component solver (see
  /// cqa/parallel/decompose.h and docs/THEORY.md). This partition is
  /// deliberately coarser than any per-query conflict graph: coarsening
  /// only merges components, which is always sound.
  struct ComponentIndex {
    /// For each index into `blocks()`, its component id. Component ids are
    /// dense, 0-based, and numbered in order of first appearance over the
    /// block list — deterministic for a given block order.
    std::vector<int> component_of_block;
    int num_components = 0;
  };

  /// The memoized component index (built on first use, like the block
  /// index; thread-safe for const access). Invalidated by any mutation,
  /// including the incremental mutators: `RemoveFactIncremental` compacts
  /// block ids swap-with-last, so a block→component map cannot be patched
  /// in place and is rebuilt instead — a delta epoch therefore never
  /// carries stale component metadata.
  const ComponentIndex& BlockComponents() const;

  /// Total `RebuildBlocks` executions across all Database instances in
  /// this process (a monotone test hook: the parallel path must not
  /// silently rebuild the block index once per component task).
  static uint64_t IndexBuildCount();

  /// True iff every block is a singleton.
  bool IsConsistent() const;

  /// 128-bit content digest over the fact *multiset*: every fact hashes
  /// independently (salted with its relation's name/arity/key length) and
  /// the per-fact digests fold through the order-independent `SetHash128`
  /// combine — so two loads that discovered the same facts in any order
  /// digest equally, and an insert or delete updates the digest in O(1)
  /// from the delta alone (see AddFactIncremental / RemoveFactIncremental).
  /// The value `FingerprintDatabase` wraps. Memoized under the same
  /// double-checked pattern as the block index — computed at most once per
  /// instance between bulk mutations. Thread-safe for const access.
  std::pair<uint64_t, uint64_t> ContentDigest() const;

  /// The digest of one fact as it enters the multiset combine. Exposed so
  /// the delta journal can reason about fingerprints without a database.
  static Hash128::Digest FactContentDigest(const RelationSchema& rs,
                                           const Tuple& fact);

  /// A copy that *keeps* the memoized block index and content digest of
  /// this instance (both forced if absent), unlike the plain copy
  /// constructor which drops them. This is how a delta derives the next
  /// epoch: clone in O(blocks), then apply O(delta) incremental mutations
  /// — never a full index rebuild or fact rescan. The relations' fact
  /// storage is shared copy-on-write, so only relations the delta touches
  /// are ever deep-copied. Returns a heap instance because moving a
  /// Database (see the copy/move doc above) intentionally drops the memos
  /// this clone exists to carry.
  std::shared_ptr<Database> CloneWithIndexes() const;

  /// Inserts a fact while *maintaining* the block index and content digest
  /// incrementally (requires both valid — call `blocks()` and
  /// `ContentDigest()` first, or start from `CloneWithIndexes`). O(1)
  /// amortized. Same validation and set semantics as `AddFact`.
  Result<bool> AddFactIncremental(Symbol relation, Tuple values);

  /// Removes a fact with incremental index + digest maintenance; the
  /// counterpart of `AddFactIncremental`. O(block) — removal compacts the
  /// fact array (swap-with-last) and, when a block empties, the block list
  /// (swap-with-last again), fixing up the affected index entries only.
  bool RemoveFactIncremental(Symbol relation, const Tuple& values);

  /// Number of repairs = product of block sizes, capped at `cap`.
  uint64_t CountRepairs(uint64_t cap = UINT64_MAX) const;

  std::string ToString() const;

  /// Serialises in the `ParseFacts` grammar (quoted values, "|" key
  /// separator), so that `Database::FromText(db.ToText())` round-trips.
  std::string ToText() const;

 private:
  struct RelationData {
    std::vector<Tuple> facts;
    std::unordered_map<Tuple, int, TupleHash> fact_index;
  };

  void InvalidateBlocks() {
    blocks_valid_.store(false, std::memory_order_release);
    digest_valid_.store(false, std::memory_order_release);
    components_valid_.store(false, std::memory_order_release);
  }
  /// Double-checked rebuild of the lazy block index; safe to call from
  /// concurrent const readers.
  void EnsureBlocks() const;
  void RebuildBlocks() const;

  /// The relation's data, cloned first if it is shared with another
  /// Database copy (copy-on-write) — a mutation must never be visible
  /// through a sibling epoch. Creates the relation when absent.
  RelationData& MutableRelation(Symbol relation);

  Schema schema_;
  // Values are shared across copies until mutated (see MutableRelation):
  // an epoch derived by a small delta deep-copies only the relations the
  // delta touches.
  std::unordered_map<Symbol, std::shared_ptr<RelationData>> relations_;

  // Lazily rebuilt block index. `blocks_valid_` is the publication flag:
  // set with release after a rebuild completes (under `blocks_mu_`), read
  // with acquire, so concurrent const readers see a fully-built index.
  mutable std::mutex blocks_mu_;
  mutable std::atomic<bool> blocks_valid_{false};
  mutable std::vector<Block> blocks_;
  // (relation, fact index) -> global block id
  mutable std::unordered_map<Symbol, std::vector<int>> fact_to_block_;
  // relation -> key tuple -> global block id
  mutable std::unordered_map<Symbol,
                             std::unordered_map<Tuple, int, TupleHash>>
      block_by_key_;

  // Lazily built value-connected component partition of the blocks,
  // published like the block index. Kept behind its own mutex so an O(n)
  // component build never holds up block-index readers.
  mutable std::mutex components_mu_;
  mutable std::atomic<bool> components_valid_{false};
  mutable ComponentIndex components_;

  // Lazily computed content digest, published like the block index: the
  // accumulator words are written under `digest_mu_` before the release
  // store of `digest_valid_`. A separate mutex so an O(n) digest
  // computation never blocks block-index readers. The raw `SetHash128`
  // accumulator (not the finished digest) is what is memoized, so the
  // incremental mutators can fold a delta straight into it.
  mutable std::mutex digest_mu_;
  mutable std::atomic<bool> digest_valid_{false};
  mutable SetHash128 digest_acc_;
};

}  // namespace cqa

#endif  // CQA_DB_DATABASE_H_
