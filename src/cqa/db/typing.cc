#include "cqa/db/typing.h"

namespace cqa {

Result<Database> MakeTyped(const Query& q, const Database& db) {
  if (!q.reified().empty()) {
    return Result<Database>::Error(
        "MakeTyped requires a query without reified variables");
  }
  Database out(db.schema());
  for (const RelationSchema& rs : db.schema().relations()) {
    std::optional<size_t> lit = q.FindRelation(rs.name);
    const Atom* atom = nullptr;
    if (lit.has_value()) {
      const Atom& a = q.atom(*lit);
      if (a.arity() == rs.arity && a.key_len() == rs.key_len) {
        atom = &a;
      } else {
        return Result<Database>::Error(
            "signature mismatch between query and database for relation '" +
            SymbolName(rs.name) + "'");
      }
    }
    for (const Tuple& t : db.FactsOf(rs.name)) {
      Tuple renamed = t;
      if (atom != nullptr) {
        for (int i = 0; i < atom->arity(); ++i) {
          const Term& term = atom->term(i);
          if (term.is_variable()) {
            renamed[static_cast<size_t>(i)] = Value::Of(
                SymbolName(term.var()) + ":" +
                t[static_cast<size_t>(i)].name());
          }
        }
      }
      Result<bool> r = out.AddFact(rs.name, std::move(renamed));
      if (!r.ok()) return Result<Database>::Error(r.error());
    }
  }
  return out;
}

}  // namespace cqa
