#include "cqa/db/repairs.h"

#include <cassert>
#include <set>

namespace cqa {

Repair::Repair(const Database* db, std::vector<int> choices)
    : db_(db), choices_(std::move(choices)) {
  assert(choices_.size() == db_->blocks().size());
}

const Tuple& Repair::ChosenFact(int b) const {
  const Database::Block& block = db_->blocks()[static_cast<size_t>(b)];
  int fact_idx =
      block.fact_indices[static_cast<size_t>(choices_[static_cast<size_t>(b)])];
  return db_->FactsOf(block.relation)[static_cast<size_t>(fact_idx)];
}

void Repair::ForEachFact(Symbol relation,
                         const std::function<bool(const Tuple&)>& fn) const {
  const auto& blocks = db_->blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].relation != relation) continue;
    if (!fn(ChosenFact(static_cast<int>(b)))) return;
  }
}

void Repair::ForEachFactWithKey(
    Symbol relation, const Tuple& key,
    const std::function<bool(const Tuple&)>& fn) const {
  std::optional<int> b = db_->BlockWithKey(relation, key);
  if (!b.has_value()) return;
  fn(ChosenFact(*b));
}

bool Repair::Contains(Symbol relation, const Tuple& values) const {
  std::optional<int> b = db_->BlockOf(relation, values);
  if (!b.has_value()) return false;
  return ChosenFact(*b) == values;
}

std::vector<Value> Repair::ActiveDomain() const {
  std::set<Value> seen;
  for (size_t b = 0; b < choices_.size(); ++b) {
    for (Value v : ChosenFact(static_cast<int>(b))) seen.insert(v);
  }
  return std::vector<Value>(seen.begin(), seen.end());
}

Database Repair::ToDatabase() const {
  Database out(db_->schema());
  const auto& blocks = db_->blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    Result<bool> r =
        out.AddFact(blocks[b].relation, ChosenFact(static_cast<int>(b)));
    assert(r.ok());
    (void)r;
  }
  return out;
}

std::string Repair::ToString() const {
  std::string out;
  const auto& blocks = db_->blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    out += Fact{blocks[b].relation, ChosenFact(static_cast<int>(b))}.ToString();
    out += "\n";
  }
  return out;
}

bool ForEachRepair(const Database& db,
                   const std::function<bool(const Repair&)>& fn) {
  const auto& blocks = db.blocks();
  std::vector<int> choices(blocks.size(), 0);
  while (true) {
    if (!fn(Repair(&db, choices))) return false;
    // Odometer increment.
    size_t i = 0;
    for (; i < blocks.size(); ++i) {
      if (choices[i] + 1 < static_cast<int>(blocks[i].size())) {
        ++choices[i];
        for (size_t j = 0; j < i; ++j) choices[j] = 0;
        break;
      }
    }
    if (i == blocks.size()) return true;
  }
}

Result<bool> ForEachRepair(const Database& db, Budget* budget,
                           const std::function<bool(const Repair&)>& fn) {
  const auto& blocks = db.blocks();
  std::vector<int> choices(blocks.size(), 0);
  while (true) {
    if (budget != nullptr) {
      if (std::optional<ErrorCode> code = budget->CheckEvery()) {
        return Result<bool>::Error(
            *code, "repair enumeration aborted: " + Budget::Describe(*code));
      }
    }
    if (!fn(Repair(&db, choices))) return false;
    size_t i = 0;
    for (; i < blocks.size(); ++i) {
      if (choices[i] + 1 < static_cast<int>(blocks[i].size())) {
        ++choices[i];
        for (size_t j = 0; j < i; ++j) choices[j] = 0;
        break;
      }
    }
    if (i == blocks.size()) return true;
  }
}

Repair RandomRepair(const Database& db, Rng* rng) {
  const auto& blocks = db.blocks();
  std::vector<int> choices(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) {
    choices[b] = static_cast<int>(rng->Below(blocks[b].size()));
  }
  return Repair(&db, choices);
}

}  // namespace cqa
