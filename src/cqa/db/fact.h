#ifndef CQA_DB_FACT_H_
#define CQA_DB_FACT_H_

#include <string>

#include "cqa/base/interner.h"
#include "cqa/base/value.h"

namespace cqa {

/// A ground fact: a relation name plus a tuple of constants.
struct Fact {
  Symbol relation = kNoSymbol;
  Tuple values;

  /// The key prefix (first `key_len` values).
  Tuple Key(int key_len) const {
    return Tuple(values.begin(), values.begin() + key_len);
  }

  std::string ToString() const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.values == b.values;
  }
};

/// True iff the two facts are key-equal (same relation, same key prefix).
bool KeyEqual(const Fact& a, const Fact& b, int key_len);

}  // namespace cqa

#endif  // CQA_DB_FACT_H_
