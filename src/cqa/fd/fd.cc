#include "cqa/fd/fd.h"

namespace cqa {

SymbolSet FdClosure(const std::vector<Fd>& fds, SymbolSet start) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (fd.lhs.IsSubsetOf(start) && !fd.rhs.IsSubsetOf(start)) {
        start.UnionWith(fd.rhs);
        changed = true;
      }
    }
  }
  return start;
}

bool FdImplies(const std::vector<Fd>& fds, const SymbolSet& lhs,
               const SymbolSet& rhs) {
  return rhs.IsSubsetOf(FdClosure(fds, lhs));
}

std::vector<Fd> KeyFds(const Query& q) {
  std::vector<Fd> out;
  for (const Literal& l : q.literals()) {
    if (l.negated) continue;
    out.push_back(
        Fd{l.atom.KeyVars(q.reified()), l.atom.Vars(q.reified())});
  }
  return out;
}

std::vector<Fd> KeyFdsExcluding(const Query& q, size_t excluded_literal) {
  std::vector<Fd> out;
  for (size_t i = 0; i < q.NumLiterals(); ++i) {
    if (i == excluded_literal || q.IsNegated(i)) continue;
    out.push_back(
        Fd{q.atom(i).KeyVars(q.reified()), q.atom(i).Vars(q.reified())});
  }
  return out;
}

SymbolSet PlusSet(const Query& q, size_t literal_idx) {
  return FdClosure(KeyFdsExcluding(q, literal_idx),
                   q.atom(literal_idx).KeyVars(q.reified()));
}

}  // namespace cqa
