#ifndef CQA_FD_FD_H_
#define CQA_FD_FD_H_

#include <string>
#include <vector>

#include "cqa/base/symbol_set.h"
#include "cqa/query/query.h"

namespace cqa {

/// A functional dependency between sets of variables.
struct Fd {
  SymbolSet lhs;
  SymbolSet rhs;

  std::string ToString() const {
    return lhs.ToString() + " -> " + rhs.ToString();
  }
};

/// The closure of `start` under `fds` (standard fixpoint computation).
SymbolSet FdClosure(const std::vector<Fd>& fds, SymbolSet start);

/// True iff `fds ⊨ lhs → rhs`.
bool FdImplies(const std::vector<Fd>& fds, const SymbolSet& lhs,
               const SymbolSet& rhs);

/// K(q⁺): one dependency key(F) → vars(F) per non-negated atom F of `q`
/// (Section 4.1). Reified variables are treated as constants and omitted.
std::vector<Fd> KeyFds(const Query& q);

/// K(q⁺ \ {F}) where F is the atom of literal `excluded_literal`. If that
/// literal is negated, this equals K(q⁺).
std::vector<Fd> KeyFdsExcluding(const Query& q, size_t excluded_literal);

/// F^{⊕,q}: the closure of key(F) with respect to K(q⁺ \ {F}), for F the
/// atom of literal `literal_idx` (Section 4.1).
SymbolSet PlusSet(const Query& q, size_t literal_idx);

}  // namespace cqa

#endif  // CQA_FD_FD_H_
