#ifndef CQA_CACHE_RESULT_CACHE_H_
#define CQA_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cqa/cache/fingerprint.h"
#include "cqa/cache/query_key.h"
#include "cqa/certainty/solver.h"

namespace cqa {

/// A fully materialised cache key: (database fingerprint, requested solver
/// method, alpha-canonical query). The method is part of the key because
/// verdicts are method-independent but *failures* are not (e.g. rewriting
/// on a non-FO query fails with `kUnsupported` while backtracking answers)
/// — a cached verdict must never mask the error a cold solve would return.
struct CacheKey {
  std::string text;
  uint64_t hash = 0;
  /// Sorted unique relation names the query mentions (positive or negated)
  /// — its *footprint*. Stored with the entry so a database delta can
  /// decide per entry whether the verdict could have changed: a delta
  /// touching only relations outside the footprint cannot affect it.
  std::vector<std::string> footprint;
};

CacheKey MakeCacheKey(const DbFingerprint& fp, SolverMethod method,
                      const Query& q);

/// Cache key for one answer-stream chunk: the solve key extended with the
/// free-variable tuple order and the chunk's span parameters, so every
/// (query, fingerprint, cursor position, chunk size) combination caches
/// independently and a partially consumed stream stays warm chunk by
/// chunk. The text keeps `CacheKeyPrefix(fp)` as its prefix and the
/// query's relation footprint, so delta-scoped invalidation and rekeying
/// treat chunk entries exactly like verdict entries.
CacheKey MakeAnswersCacheKey(const DbFingerprint& fp, SolverMethod method,
                             const Query& q,
                             const std::vector<std::string>& free_vars,
                             uint64_t start, uint64_t max_chunk);

/// The fingerprint-hex prefix of `MakeCacheKey(fp, ...)` keys, exposed so
/// the delta path can rewrite keys across epochs.
std::string CacheKeyPrefix(const DbFingerprint& fp);

/// Counters of one `ResultCache`, all monotone except `entries`.
/// `coalesced` is a sub-classification of `misses`: a coalesced submission
/// missed the cache first, then joined an in-flight identical solve, so
/// hits + misses covers every lookup and misses − coalesced is the number
/// of solves actually executed.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t coalesced = 0;  // misses that joined an in-flight solve
  uint64_t bypassed = 0;   // submissions that opted out of the cache
  uint64_t inserts = 0;
  uint64_t rejected = 0;  // insert attempts with non-cacheable reports
  uint64_t evictions = 0;
  uint64_t entries = 0;  // current size (gauge)
  // Delta bookkeeping (see OnDatabaseDelta): `invalidated` counts entries
  // dropped because their footprint intersected a delta, `rekeyed` counts
  // entries carried across to the new epoch because it did not.
  uint64_t invalidated = 0;
  uint64_t rekeyed = 0;
};

/// True iff `report` may be stored: exact verdicts only. Degraded verdicts
/// (`kProbablyCertain`, `kExhausted`) reflect the budget of one request,
/// not a property of (query, database) — a later retry with a larger
/// budget must re-solve. Errors are never `SolveReport`s, so they cannot
/// be inserted at all.
bool IsCacheableReport(const SolveReport& report);

/// A sharded, bounded LRU map from `CacheKey` to a completed exact
/// `SolveReport` (verdict plus provenance: stages, classification, work
/// accounting). Thread-safe; each shard has its own mutex and LRU list, so
/// concurrent lookups on different keys rarely contend.
///
/// The cache stores only what `IsCacheableReport` admits; `Insert` on
/// anything else is counted as rejected and dropped. Single-flight
/// coalescing lives in `SingleFlight` (the service owns the in-flight
/// request handles); this class is the pure storage layer.
class ResultCache {
 public:
  /// `max_entries` is a global bound, split across `shards` with the
  /// remainder spread over the first shards so the per-shard capacities
  /// sum to exactly `max_entries` (each shard holds at least one entry,
  /// so a 1-entry cache is one shard).
  explicit ResultCache(size_t max_entries, size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached report and refreshes its LRU position. Counts a
  /// hit or a miss.
  std::optional<SolveReport> Lookup(const CacheKey& key);

  /// Stores `report` if cacheable (evicting the shard's LRU tail when
  /// full); returns false and counts a rejection otherwise.
  bool Insert(const CacheKey& key, const SolveReport& report);

  /// Counter hooks for decisions made by the caller (the service).
  void RecordCoalesced();
  void RecordBypass();

  /// Migrates the cache across a database delta: every entry keyed under
  /// the old fingerprint either dies (its query's footprint intersects
  /// `touched` — the delta may have changed the verdict) or is *rekeyed*
  /// under the new fingerprint (disjoint footprint — the verdict provably
  /// survives, so the entry keeps serving hits on the new epoch without a
  /// re-solve). `touched` must be sorted; returns {invalidated, rekeyed}.
  ///
  /// Rekeying can move an entry between shards (the hash changes); moved
  /// entries land most-recent in their new shard and may evict its LRU
  /// tail as usual. Concurrent lookups during the migration see either the
  /// old or the new key — both are correct, because the service publishes
  /// the new epoch only after this returns.
  std::pair<uint64_t, uint64_t> OnDatabaseDelta(
      const DbFingerprint& old_fp, const DbFingerprint& new_fp,
      const std::vector<std::string>& touched);

  CacheStats Stats() const;

  size_t max_entries() const { return max_entries_; }

 private:
  struct Entry {
    std::string key;
    SolveReport report;
    std::vector<std::string> footprint;  // see CacheKey::footprint
  };
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;   // set once at construction, then read-only
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const CacheKey& key) {
    return shards_[key.hash % shards_.size()];
  }

  std::vector<Shard> shards_;
  size_t max_entries_;

  mutable std::mutex stats_mu_;
  CacheStats stats_;
};

}  // namespace cqa

#endif  // CQA_CACHE_RESULT_CACHE_H_
