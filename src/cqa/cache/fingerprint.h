#ifndef CQA_CACHE_FINGERPRINT_H_
#define CQA_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "cqa/base/hash.h"
#include "cqa/db/database.h"

namespace cqa {

/// A stable 128-bit identity for a database instance, computed once at load
/// and used as half of every result-cache key. Two databases with the same
/// facts (same relation names, signatures, and value spellings) fingerprint
/// equally regardless of insertion order, interner state, or process — the
/// hash is taken over a canonical serialisation, never over interned ids.
struct DbFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return hi != 0 || lo != 0; }

  std::string ToHex() const {
    Hash128::Digest d;
    d.hi = hi;
    d.lo = lo;
    return d.ToHex();
  }

  /// Parses the 32-lowercase-hex form `ToHex` emits. Returns false (and
  /// leaves `out` untouched) on any other input. Shared by the journal,
  /// snapshot, and replication decoders, which all carry fingerprints as
  /// hex strings on the wire / on disk.
  static bool FromHex(const std::string& hex, DbFingerprint* out) {
    if (hex.size() != 32) return false;
    uint64_t words[2] = {0, 0};
    for (int p = 0; p < 2; ++p) {
      for (int i = 0; i < 16; ++i) {
        char c = hex[static_cast<size_t>(p * 16 + i)];
        uint64_t nibble;
        if (c >= '0' && c <= '9') {
          nibble = static_cast<uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          nibble = static_cast<uint64_t>(c - 'a' + 10);
        } else {
          return false;
        }
        words[p] = (words[p] << 4) | nibble;
      }
    }
    out->hi = words[0];
    out->lo = words[1];
    return true;
  }

  friend bool operator==(const DbFingerprint& a, const DbFingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const DbFingerprint& a, const DbFingerprint& b) {
    return !(a == b);
  }
};

/// Fingerprints `db` over its fact multiset: each fact hashes independently
/// (salted with its relation's name/arity/key length) and the digests fold
/// through the order-independent `SetHash128` combine. Insertion order,
/// interner state, and process never matter — and a delta updates the
/// digest in O(delta) (see `Database::AddFactIncremental`), which is what
/// keeps live-updated epochs cheap to re-fingerprint. O(n) on first call
/// per instance; memoized after that.
DbFingerprint FingerprintDatabase(const Database& db);

struct DbFingerprintHash {
  size_t operator()(const DbFingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace cqa

#endif  // CQA_CACHE_FINGERPRINT_H_
