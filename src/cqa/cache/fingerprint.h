#ifndef CQA_CACHE_FINGERPRINT_H_
#define CQA_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "cqa/base/hash.h"
#include "cqa/db/database.h"

namespace cqa {

/// A stable 128-bit identity for a database instance, computed once at load
/// and used as half of every result-cache key. Two databases with the same
/// facts (same relation names, signatures, and value spellings) fingerprint
/// equally regardless of insertion order, interner state, or process — the
/// hash is taken over a canonical serialisation, never over interned ids.
struct DbFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return hi != 0 || lo != 0; }

  std::string ToHex() const {
    Hash128::Digest d;
    d.hi = hi;
    d.lo = lo;
    return d.ToHex();
  }

  friend bool operator==(const DbFingerprint& a, const DbFingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const DbFingerprint& a, const DbFingerprint& b) {
    return !(a == b);
  }
};

/// Fingerprints `db` over its canonical form: relations sorted by name,
/// and within each relation the facts sorted lexicographically by value
/// spelling. Since the primary key is a tuple prefix, the sorted fact list
/// is automatically block-ordered (key-equal facts are adjacent), matching
/// the repair semantics the cached verdicts depend on. O(n log n) in the
/// number of facts; call it once per load and keep the result.
DbFingerprint FingerprintDatabase(const Database& db);

struct DbFingerprintHash {
  size_t operator()(const DbFingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace cqa

#endif  // CQA_CACHE_FINGERPRINT_H_
