#ifndef CQA_CACHE_FINGERPRINT_H_
#define CQA_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "cqa/base/hash.h"
#include "cqa/db/database.h"

namespace cqa {

/// A stable 128-bit identity for a database instance, computed once at load
/// and used as half of every result-cache key. Two databases with the same
/// facts (same relation names, signatures, and value spellings) fingerprint
/// equally regardless of insertion order, interner state, or process — the
/// hash is taken over a canonical serialisation, never over interned ids.
struct DbFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return hi != 0 || lo != 0; }

  std::string ToHex() const {
    Hash128::Digest d;
    d.hi = hi;
    d.lo = lo;
    return d.ToHex();
  }

  friend bool operator==(const DbFingerprint& a, const DbFingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const DbFingerprint& a, const DbFingerprint& b) {
    return !(a == b);
  }
};

/// Fingerprints `db` over its fact multiset: each fact hashes independently
/// (salted with its relation's name/arity/key length) and the digests fold
/// through the order-independent `SetHash128` combine. Insertion order,
/// interner state, and process never matter — and a delta updates the
/// digest in O(delta) (see `Database::AddFactIncremental`), which is what
/// keeps live-updated epochs cheap to re-fingerprint. O(n) on first call
/// per instance; memoized after that.
DbFingerprint FingerprintDatabase(const Database& db);

struct DbFingerprintHash {
  size_t operator()(const DbFingerprint& fp) const {
    return static_cast<size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace cqa

#endif  // CQA_CACHE_FINGERPRINT_H_
