#include "cqa/cache/query_key.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "cqa/base/interner.h"

namespace cqa {

namespace {

class Canonicalizer {
 public:
  explicit Canonicalizer(const Query& q) : q_(q) {}

  std::string Render() {
    // Literal order by relation name: total for self-join-free queries
    // (one literal per relation) and independent of variable naming, so
    // the first-occurrence variable numbering below is structural.
    std::vector<size_t> order(q_.NumLiterals());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return q_.atom(a).relation_name() < q_.atom(b).relation_name();
    });

    std::string out;
    for (size_t idx : order) {
      if (!out.empty()) out += ";";
      const Literal& l = q_.literal(idx);
      if (l.negated) out += "!";
      out += l.atom.relation_name();
      out += "/" + std::to_string(l.atom.arity());
      out += "." + std::to_string(l.atom.key_len());
      out += "(";
      for (int i = 0; i < l.atom.arity(); ++i) {
        if (i > 0) out += i == l.atom.key_len() ? "|" : ",";
        out += RenderTerm(l.atom.term(i));
      }
      out += ")";
    }

    // Disequalities after renaming (their variables occur in positive
    // atoms by the safety condition, so names are already assigned), then
    // sorted: the diseq list is a set.
    std::vector<std::string> diseqs;
    diseqs.reserve(q_.diseqs().size());
    for (const Diseq& d : q_.diseqs()) {
      std::string s = "(";
      for (size_t i = 0; i < d.lhs.size(); ++i) {
        if (i > 0) s += ",";
        s += RenderTerm(d.lhs[i]);
      }
      s += ")!=(";
      for (size_t i = 0; i < d.rhs.size(); ++i) {
        if (i > 0) s += ",";
        s += RenderTerm(d.rhs[i]);
      }
      s += ")";
      diseqs.push_back(std::move(s));
    }
    std::sort(diseqs.begin(), diseqs.end());
    for (const std::string& s : diseqs) out += ";" + s;
    return out;
  }

 private:
  // Tag + decimal length + ':' + raw spelling. The length delimits the
  // spelling, so the rendering is injective for arbitrary byte content —
  // constants may embed quotes, commas, and every other separator used
  // here (the parser accepts doubled quotes). Mirrors the length-prefixed
  // RenderFact in fingerprint.cc, which exists for the same ambiguity.
  static std::string Sized(char tag, const std::string& s) {
    std::string out(1, tag);
    out += std::to_string(s.size());
    out += ':';
    out += s;
    return out;
  }

  std::string RenderTerm(const Term& t) {
    if (t.is_constant()) return Sized('\'', t.constant().name());
    Symbol v = t.var();
    // Reified variables behave like constants; their spelling is identity.
    if (q_.reified().contains(v)) return Sized('@', SymbolName(v));
    auto it = names_.find(v);
    if (it == names_.end()) {
      it = names_.emplace(v, "?" + std::to_string(names_.size())).first;
    }
    return it->second;
  }

  const Query& q_;
  std::unordered_map<Symbol, std::string> names_;
};

}  // namespace

std::string CanonicalQueryKey(const Query& q) {
  return Canonicalizer(q).Render();
}

}  // namespace cqa
