#ifndef CQA_CACHE_WARM_STATE_H_
#define CQA_CACHE_WARM_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "cqa/attack/classification.h"
#include "cqa/base/error.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/query/query.h"

namespace cqa {

/// Counters of one `WarmState` (single-threaded, like the state itself).
struct WarmStats {
  uint64_t classification_hits = 0;
  uint64_t classification_misses = 0;
  uint64_t rewriting_hits = 0;
  uint64_t rewriting_misses = 0;
  uint64_t arena_resets = 0;  // database changed or cap exceeded
};

/// Per-worker solver state reused across requests: the memoization the
/// dichotomy licenses. `Classify(q)` and the rewriting construction are
/// pure in the query alone (Koutris–Wijsen Theorem 4.3 / Lemma 6.1), so
/// both memoize on the alpha-canonical query key with no invalidation
/// ever. The Algorithm-1 memo arena maps substituted subqueries to
/// certainty *on one database*; `BindDatabase` clears it when the
/// fingerprint changes (the daemon fronts one immutable database, so in
/// serving traffic only the capacity cap ever clears it).
///
/// NOT thread-safe: each worker thread owns one instance. All maps are
/// bounded by `max_entries` per map — exceeding the cap clears the map
/// (memoization is an optimisation; correctness never depends on a hit).
class WarmState {
 public:
  explicit WarmState(size_t max_entries = 4096) : max_entries_(max_entries) {}

  /// Declares the database of the next solve; clears the Algorithm-1
  /// arena when it differs from the previous one.
  void BindDatabase(const DbFingerprint& fp);

  /// Memoized `Classify(q)`. `key` must be `CanonicalQueryKey(q)`
  /// (classification is invariant under variable renaming).
  const Classification& ClassifyMemo(const std::string& key, const Query& q);

  /// A constructed rewriting, or the typed error `RewritingSolver::Create`
  /// produced. The formula quantifies all variables away, so one solver
  /// instance answers for every alpha-variant of the query.
  struct RewritingSlot {
    std::shared_ptr<const RewritingSolver> solver;  // null on failure
    ErrorCode code = ErrorCode::kInternal;
    std::string error;
  };
  const RewritingSlot& RewritingMemo(const std::string& key, const Query& q);

  /// The Algorithm-1 memo arena for the bound database; pass as
  /// `Algorithm1Options::memo_arena`. The `max_entries` cap is enforced at
  /// hand-out (an over-full arena is cleared and counted as a reset), so a
  /// long-running worker on one immutable database stays bounded. Valid
  /// until the next `BindDatabase` with a different fingerprint or the
  /// next cap-exceeded hand-out.
  std::unordered_map<std::string, bool>* Algo1Arena() {
    if (!algo1_memo_.empty() && algo1_memo_.size() >= max_entries_) {
      algo1_memo_.clear();
      ++stats_.arena_resets;
    }
    return &algo1_memo_;
  }

  const WarmStats& stats() const { return stats_; }

 private:
  size_t max_entries_;
  DbFingerprint bound_;
  bool has_bound_ = false;
  std::unordered_map<std::string, Classification> classifications_;
  std::unordered_map<std::string, RewritingSlot> rewritings_;
  std::unordered_map<std::string, bool> algo1_memo_;
  WarmStats stats_;
};

}  // namespace cqa

#endif  // CQA_CACHE_WARM_STATE_H_
