#include "cqa/cache/fingerprint.h"

#include <algorithm>
#include <vector>

#include "cqa/base/interner.h"
#include "cqa/base/value.h"
#include "cqa/query/schema.h"

namespace cqa {

namespace {

// One fact rendered as an unambiguous byte string: each value spelling
// length-prefixed (a value may contain any byte, including the separator
// of a naive join). Lexicographic order on these renderings sorts first by
// the key prefix, so sorting yields the block-ordered canonical form.
std::string RenderFact(const Tuple& fact) {
  std::string out;
  for (Value v : fact) {
    const std::string& name = v.name();
    uint64_t len = name.size();
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    }
    out += name;
  }
  return out;
}

}  // namespace

DbFingerprint FingerprintDatabase(const Database& db) {
  // Relations in name order, not registration order: two loads that
  // discovered relations in different orders must agree.
  std::vector<const RelationSchema*> rels;
  rels.reserve(db.schema().relations().size());
  for (const RelationSchema& r : db.schema().relations()) rels.push_back(&r);
  std::sort(rels.begin(), rels.end(),
            [](const RelationSchema* a, const RelationSchema* b) {
              return SymbolName(a->name) < SymbolName(b->name);
            });

  Hash128 h;
  h.UpdateU64(rels.size());
  for (const RelationSchema* r : rels) {
    h.UpdateSized(SymbolName(r->name));
    h.UpdateU64(static_cast<uint64_t>(r->arity));
    h.UpdateU64(static_cast<uint64_t>(r->key_len));

    std::vector<std::string> facts;
    facts.reserve(db.NumFacts(r->name));
    for (const Tuple& fact : db.FactsOf(r->name)) {
      facts.push_back(RenderFact(fact));
    }
    std::sort(facts.begin(), facts.end());
    h.UpdateU64(facts.size());
    for (const std::string& f : facts) h.UpdateSized(f);
  }

  Hash128::Digest d = h.Finish();
  DbFingerprint fp;
  fp.hi = d.hi;
  fp.lo = d.lo;
  return fp;
}

}  // namespace cqa
