#include "cqa/cache/fingerprint.h"

namespace cqa {

DbFingerprint FingerprintDatabase(const Database& db) {
  // The canonical hashing (per-fact digests folded through the
  // order-independent multiset combine) lives in `Database::ContentDigest`,
  // which memoizes it per instance — repeated lookups against an unchanged
  // database never rehash the facts.
  auto [hi, lo] = db.ContentDigest();
  DbFingerprint fp;
  fp.hi = hi;
  fp.lo = lo;
  return fp;
}

}  // namespace cqa
