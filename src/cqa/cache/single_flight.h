#ifndef CQA_CACHE_SINGLE_FLIGHT_H_
#define CQA_CACHE_SINGLE_FLIGHT_H_

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cqa {

/// Single-flight registry: at most one solve per cache key is in flight;
/// concurrent identical submissions attach as *followers* and are settled
/// by the leader's terminal result instead of stampeding the worker pool.
///
/// The registry stores only the followers — the existence of the map entry
/// *is* the leader's flight. The owner (SolveService) drives the protocol:
///
///  * `JoinOrLead(key, h)`: true → caller is the leader and must run the
///    solve; false → `h` was queued as a follower.
///  * Leader terminal, cacheable result → `TakeFollowers(key)` removes the
///    flight and returns everyone to settle with a copy of the result.
///  * Leader terminal, non-cacheable (cancelled, error, degraded) →
///    `PromoteOne(key)`: pops the oldest follower to become the new leader
///    (the flight stays open for the remaining followers), or removes the
///    empty flight. This is the no-lost-wakeups guarantee: a cancelled
///    leader hands the flight to a live follower instead of stranding it.
///
/// Thread-safe; all operations are O(1) under one mutex.
template <typename Handle>
class SingleFlight {
 public:
  /// Returns true and opens a flight if `key` has none; otherwise appends
  /// `handle` as a follower of the existing flight.
  bool JoinOrLead(const std::string& key, Handle handle) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = flights_.try_emplace(key);
    if (inserted) return true;
    it->second.push_back(std::move(handle));
    return false;
  }

  /// Closes the flight and returns its followers (possibly none). No-op
  /// with empty result when `key` has no flight.
  std::vector<Handle> TakeFollowers(const std::string& key) {
    std::deque<Handle> followers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = flights_.find(key);
      if (it == flights_.end()) return {};
      followers = std::move(it->second);
      flights_.erase(it);
    }
    return std::vector<Handle>(std::make_move_iterator(followers.begin()),
                               std::make_move_iterator(followers.end()));
  }

  /// Pops the oldest follower to succeed a failed/cancelled leader,
  /// keeping the flight open; removes the flight and returns nullopt when
  /// no follower is waiting.
  std::optional<Handle> PromoteOne(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return std::nullopt;
    if (it->second.empty()) {
      flights_.erase(it);
      return std::nullopt;
    }
    Handle h = std::move(it->second.front());
    it->second.pop_front();
    return h;
  }

  size_t OpenFlights() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flights_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::deque<Handle>> flights_;
};

}  // namespace cqa

#endif  // CQA_CACHE_SINGLE_FLIGHT_H_
