#ifndef CQA_CACHE_SINGLE_FLIGHT_H_
#define CQA_CACHE_SINGLE_FLIGHT_H_

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cqa {

/// Single-flight registry: at most one solve per cache key is in flight;
/// concurrent identical submissions attach as *followers* and are settled
/// by the leader's terminal result instead of stampeding the worker pool.
///
/// Each flight records its leader's effective deadline. A submission with
/// a *strictly tighter* deadline than the open flight's leader is refused
/// — parking it would silently drop its own deadline semantics (the
/// leader may terminate arbitrarily later than the follower's budget
/// allows) — and the caller runs it independently. Followers therefore
/// always have deadlines no tighter than their leader's, and promotion
/// picks the earliest-deadline follower so the invariant survives leader
/// turnover.
///
/// The registry stores only the followers — the existence of the map entry
/// *is* the leader's flight. The owner (SolveService) drives the protocol:
///
///  * `JoinOrLead(key, h, deadline)`: `kLead` → caller is the leader and
///    must run the solve; `kFollow` → `h` was queued as a follower;
///    `kRefuse` → coalescing would loosen `h`'s deadline, run it yourself.
///  * Leader terminal, cacheable result → `TakeFollowers(key)` removes the
///    flight and returns everyone to settle with a copy of the result.
///  * Leader terminal, non-cacheable (cancelled, error, degraded) →
///    `PromoteOne(key)`: pops the earliest-deadline follower (ties FIFO)
///    to become the new leader (the flight stays open for the remaining
///    followers), or removes the empty flight. This is the no-lost-wakeups
///    guarantee: a cancelled leader hands the flight to a live follower
///    instead of stranding it.
///
/// `Deadline` needs only `operator<` and default construction (the service
/// uses a clock time_point; `max()` means "no deadline"). Thread-safe; all
/// operations take one mutex and are O(followers) at worst.
/// How `SingleFlight::JoinOrLead` disposed of a submission.
enum class FlightOutcome { kLead, kFollow, kRefuse };

template <typename Handle, typename Deadline>
class SingleFlight {
 public:
  /// Opens a flight led by the caller if `key` has none; otherwise appends
  /// `handle` as a follower when its deadline is no tighter than the
  /// leader's, or refuses it.
  FlightOutcome JoinOrLead(const std::string& key, Handle handle,
                           Deadline deadline) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = flights_.try_emplace(key);
    if (inserted) {
      it->second.leader_deadline = deadline;
      return FlightOutcome::kLead;
    }
    if (deadline < it->second.leader_deadline) return FlightOutcome::kRefuse;
    it->second.followers.push_back({deadline, std::move(handle)});
    return FlightOutcome::kFollow;
  }

  /// Closes the flight and returns its followers (possibly none). No-op
  /// with empty result when `key` has no flight.
  std::vector<Handle> TakeFollowers(const std::string& key) {
    std::deque<Follower> followers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = flights_.find(key);
      if (it == flights_.end()) return {};
      followers = std::move(it->second.followers);
      flights_.erase(it);
    }
    std::vector<Handle> out;
    out.reserve(followers.size());
    for (Follower& f : followers) out.push_back(std::move(f.handle));
    return out;
  }

  /// Pops the earliest-deadline follower (ties broken FIFO) to succeed a
  /// failed/cancelled leader, keeping the flight open under the new
  /// leader's deadline; removes the flight and returns nullopt when no
  /// follower is waiting.
  std::optional<Handle> PromoteOne(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return std::nullopt;
    Flight& flight = it->second;
    if (flight.followers.empty()) {
      flights_.erase(it);
      return std::nullopt;
    }
    size_t best = 0;
    for (size_t i = 1; i < flight.followers.size(); ++i) {
      if (flight.followers[i].deadline < flight.followers[best].deadline) {
        best = i;
      }
    }
    flight.leader_deadline = flight.followers[best].deadline;
    Handle h = std::move(flight.followers[best].handle);
    flight.followers.erase(flight.followers.begin() +
                           static_cast<std::ptrdiff_t>(best));
    return h;
  }

  size_t OpenFlights() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flights_.size();
  }

 private:
  struct Follower {
    Deadline deadline;
    Handle handle;
  };
  struct Flight {
    Deadline leader_deadline{};
    std::deque<Follower> followers;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Flight> flights_;
};

}  // namespace cqa

#endif  // CQA_CACHE_SINGLE_FLIGHT_H_
