#ifndef CQA_CACHE_QUERY_KEY_H_
#define CQA_CACHE_QUERY_KEY_H_

#include <string>

#include "cqa/query/query.h"

namespace cqa {

/// An alpha-invariant canonical serialisation of a query, used as the
/// query half of a result-cache key.
///
/// `Query::CanonicalKey()` is literal-order independent but serialises
/// variable names literally, so the alpha-equivalent `R(x|y), not S(y|x)`
/// and `R(a|b), not S(b|a)` get different keys. `CanonicalQueryKey`
/// additionally normalises variable naming: literals are ordered by
/// relation name (total for self-join-free queries — every relation occurs
/// at most once), and variables are renamed `?0, ?1, ...` in order of
/// first occurrence along that name-independent literal order. Two queries
/// produce the same key iff they differ only by variable renaming and
/// literal/disequality order.
///
/// Reified variables are treated as constants (they carry identity, like
/// constants do) and keep their original spelling, prefixed `@`.
std::string CanonicalQueryKey(const Query& q);

}  // namespace cqa

#endif  // CQA_CACHE_QUERY_KEY_H_
