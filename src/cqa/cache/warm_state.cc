#include "cqa/cache/warm_state.h"

#include <utility>

namespace cqa {

void WarmState::BindDatabase(const DbFingerprint& fp) {
  if (has_bound_ && bound_ == fp) return;
  if (has_bound_) {
    algo1_memo_.clear();
    ++stats_.arena_resets;
  }
  bound_ = fp;
  has_bound_ = true;
}

const Classification& WarmState::ClassifyMemo(const std::string& key,
                                              const Query& q) {
  auto it = classifications_.find(key);
  if (it != classifications_.end()) {
    ++stats_.classification_hits;
    return it->second;
  }
  ++stats_.classification_misses;
  if (classifications_.size() >= max_entries_) classifications_.clear();
  return classifications_.emplace(key, Classify(q)).first->second;
}

const WarmState::RewritingSlot& WarmState::RewritingMemo(const std::string& key,
                                                         const Query& q) {
  auto it = rewritings_.find(key);
  if (it != rewritings_.end()) {
    ++stats_.rewriting_hits;
    return it->second;
  }
  ++stats_.rewriting_misses;
  if (rewritings_.size() >= max_entries_) rewritings_.clear();
  RewritingSlot slot;
  Result<RewritingSolver> solver = RewritingSolver::Create(q);
  if (solver.ok()) {
    slot.solver =
        std::make_shared<const RewritingSolver>(std::move(solver.value()));
  } else {
    slot.code = solver.code();
    slot.error = solver.error();
  }
  return rewritings_.emplace(key, std::move(slot)).first->second;
}

}  // namespace cqa
