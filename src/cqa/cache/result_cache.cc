#include "cqa/cache/result_cache.h"

#include <algorithm>
#include <utility>

#include "cqa/base/hash.h"

namespace cqa {

namespace {

size_t ClampShards(size_t max_entries, size_t shards) {
  shards = std::max<size_t>(shards, 1);
  // Never more shards than entries: each shard must hold at least one
  // entry or a 1-entry cache would round up to `shards` entries.
  return std::min(shards, std::max<size_t>(max_entries, 1));
}

}  // namespace

std::string CacheKeyPrefix(const DbFingerprint& fp) {
  return fp.ToHex() + "|";
}

CacheKey MakeCacheKey(const DbFingerprint& fp, SolverMethod method,
                      const Query& q) {
  CacheKey key;
  key.text =
      CacheKeyPrefix(fp) + ToString(method) + "|" + CanonicalQueryKey(q);
  Hash128 h;
  h.Update(key.text);
  key.hash = h.Finish().lo;
  for (const Literal& l : q.literals()) {
    key.footprint.push_back(SymbolName(l.atom.relation()));
  }
  std::sort(key.footprint.begin(), key.footprint.end());
  key.footprint.erase(
      std::unique(key.footprint.begin(), key.footprint.end()),
      key.footprint.end());
  return key;
}

CacheKey MakeAnswersCacheKey(const DbFingerprint& fp, SolverMethod method,
                             const Query& q,
                             const std::vector<std::string>& free_vars,
                             uint64_t start, uint64_t max_chunk) {
  CacheKey key = MakeCacheKey(fp, method, q);
  key.text += "|answers|";
  for (const std::string& v : free_vars) {
    key.text += v;
    key.text += ',';
  }
  key.text += "|" + std::to_string(start) + "|" + std::to_string(max_chunk);
  Hash128 h;
  h.Update(key.text);
  key.hash = h.Finish().lo;
  return key;
}

bool IsCacheableReport(const SolveReport& report) {
  return report.verdict == Verdict::kCertain ||
         report.verdict == Verdict::kNotCertain;
}

ResultCache::ResultCache(size_t max_entries, size_t shards)
    : shards_(ClampShards(max_entries, shards)),
      max_entries_(std::max<size_t>(max_entries, 1)) {
  // Exact split: base entries per shard, the remainder over the first
  // shards, so the shard capacities sum to precisely max_entries (a
  // floor-only split can under-provision, e.g. 10 entries over 8 shards).
  size_t base = max_entries_ / shards_.size();
  size_t extra = max_entries_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = base + (i < extra ? 1 : 0);
  }
}

std::optional<SolveReport> ResultCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::optional<SolveReport> out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key.text);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out = it->second->report;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (out.has_value()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return out;
}

bool ResultCache::Insert(const CacheKey& key, const SolveReport& report) {
  if (!IsCacheableReport(report)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
    return false;
  }
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  bool grew = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key.text);
    if (it != shard.index.end()) {
      // Refresh: identical by construction (exact verdicts are pure in the
      // key), but keep the newest provenance and LRU position.
      it->second->report = report;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      while (shard.lru.size() >= shard.capacity) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
      shard.lru.push_front(Entry{key.text, report, key.footprint});
      shard.index.emplace(key.text, shard.lru.begin());
      grew = true;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.inserts;
  stats_.evictions += evicted;
  if (grew) stats_.entries += 1;
  stats_.entries -= std::min(stats_.entries, evicted);
  return true;
}

namespace {

/// Both inputs sorted; true iff they share an element.
bool SortedIntersects(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) return true;
    if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

std::pair<uint64_t, uint64_t> ResultCache::OnDatabaseDelta(
    const DbFingerprint& old_fp, const DbFingerprint& new_fp,
    const std::vector<std::string>& touched) {
  const std::string old_prefix = CacheKeyPrefix(old_fp);
  const std::string new_prefix = CacheKeyPrefix(new_fp);
  uint64_t invalidated = 0;
  uint64_t rekeyed = 0;
  uint64_t evicted = 0;

  // Phase 1: under each shard's lock in turn, extract every entry of the
  // old epoch. Survivors are reinserted in phase 2 — possibly into a
  // different shard (the key hash changes), so they cannot be moved while
  // holding the source shard's lock without risking lock-order cycles.
  std::vector<Entry> survivors;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.compare(0, old_prefix.size(), old_prefix) != 0) {
        ++it;
        continue;
      }
      // Unindex before moving the entry out: the move empties `it->key`,
      // and erasing by the moved-from string would leave a dangling
      // iterator in the index.
      shard.index.erase(it->key);
      if (SortedIntersects(it->footprint, touched)) {
        ++invalidated;
      } else {
        survivors.push_back(std::move(*it));
        ++rekeyed;
      }
      it = shard.lru.erase(it);
    }
  }

  // Phase 2: reinsert survivors under the new epoch's prefix. Between the
  // phases a concurrent lookup of a survivor misses — harmless (it would
  // also miss once the fingerprint changes) and rare (the service applies
  // deltas under the shard's delta lock).
  for (Entry& e : survivors) {
    CacheKey key;
    key.text = new_prefix + e.key.substr(old_prefix.size());
    Hash128 h;
    h.Update(key.text);
    key.hash = h.Finish().lo;
    e.key = key.text;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key.text);
    if (it != shard.index.end()) {
      it->second->report = std::move(e.report);
      continue;
    }
    while (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++evicted;
    }
    shard.lru.push_front(std::move(e));
    shard.index.emplace(key.text, shard.lru.begin());
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.invalidated += invalidated;
  stats_.rekeyed += rekeyed;
  stats_.evictions += evicted;
  stats_.entries -= std::min(stats_.entries, invalidated + evicted);
  return {invalidated, rekeyed};
}

void ResultCache::RecordCoalesced() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.coalesced;
}

void ResultCache::RecordBypass() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.bypassed;
}

CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace cqa
