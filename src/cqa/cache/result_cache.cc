#include "cqa/cache/result_cache.h"

#include <algorithm>
#include <utility>

#include "cqa/base/hash.h"

namespace cqa {

namespace {

size_t ClampShards(size_t max_entries, size_t shards) {
  shards = std::max<size_t>(shards, 1);
  // Never more shards than entries: each shard must hold at least one
  // entry or a 1-entry cache would round up to `shards` entries.
  return std::min(shards, std::max<size_t>(max_entries, 1));
}

}  // namespace

CacheKey MakeCacheKey(const DbFingerprint& fp, SolverMethod method,
                      const Query& q) {
  CacheKey key;
  key.text = fp.ToHex() + "|" + ToString(method) + "|" + CanonicalQueryKey(q);
  Hash128 h;
  h.Update(key.text);
  key.hash = h.Finish().lo;
  return key;
}

bool IsCacheableReport(const SolveReport& report) {
  return report.verdict == Verdict::kCertain ||
         report.verdict == Verdict::kNotCertain;
}

ResultCache::ResultCache(size_t max_entries, size_t shards)
    : shards_(ClampShards(max_entries, shards)),
      max_entries_(std::max<size_t>(max_entries, 1)) {
  // Exact split: base entries per shard, the remainder over the first
  // shards, so the shard capacities sum to precisely max_entries (a
  // floor-only split can under-provision, e.g. 10 entries over 8 shards).
  size_t base = max_entries_ / shards_.size();
  size_t extra = max_entries_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = base + (i < extra ? 1 : 0);
  }
}

std::optional<SolveReport> ResultCache::Lookup(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::optional<SolveReport> out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key.text);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      out = it->second->report;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (out.has_value()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return out;
}

bool ResultCache::Insert(const CacheKey& key, const SolveReport& report) {
  if (!IsCacheableReport(report)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
    return false;
  }
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  bool grew = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key.text);
    if (it != shard.index.end()) {
      // Refresh: identical by construction (exact verdicts are pure in the
      // key), but keep the newest provenance and LRU position.
      it->second->report = report;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      while (shard.lru.size() >= shard.capacity) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
      shard.lru.push_front(Entry{key.text, report});
      shard.index.emplace(key.text, shard.lru.begin());
      grew = true;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.inserts;
  stats_.evictions += evicted;
  if (grew) stats_.entries += 1;
  stats_.entries -= std::min(stats_.entries, evicted);
  return true;
}

void ResultCache::RecordCoalesced() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.coalesced;
}

void ResultCache::RecordBypass() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.bypassed;
}

CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace cqa
