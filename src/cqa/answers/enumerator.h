#ifndef CQA_ANSWERS_ENUMERATOR_H_
#define CQA_ANSWERS_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "cqa/answers/answer_chunk.h"
#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/database.h"
#include "cqa/query/query.h"

namespace cqa {

/// Knobs for one incremental enumeration step.
struct EnumerateOptions {
  /// First candidate position to scan (a resume point from a previous
  /// chunk's `next`, or 0 for a fresh stream).
  uint64_t start = 0;
  /// Stop after this many certain answers have been collected (the
  /// chunk may scan arbitrarily many non-answer candidates in between,
  /// bounded only by the budget). Clamped to at least 1.
  uint64_t max_chunk = 64;
  /// Per-candidate decision engine. `kAuto` dispatches the solver;
  /// `kRewriting` evaluates the consistent first-order rewriting of
  /// Lemma 6.1 with the free variables left free (requires the FO
  /// class). Sampling is rejected: an answer *set* must be exact.
  SolverMethod method = SolverMethod::kAuto;
};

/// Computes one chunk of the certain answers of `q` with `free_vars` on
/// `db`, scanning candidate positions from `options.start` in the
/// deterministic canonical order (per-variable candidate lists sorted by
/// value spelling; tuples enumerated in lexicographic order). The chunk
/// ends at `max_chunk` answers, at the end of the candidate space, or —
/// partially — when `budget` trips after at least one candidate was
/// decided (`AnswerChunk::exhausted`); a budget that trips before the
/// first candidate fails typed instead. Fails `kUnsupported` when a free
/// variable has no positive occurrence or the method cannot produce
/// exact verdicts, and `kParse` when `start` lies beyond the candidate
/// space (a cursor for some other epoch or query).
///
/// Determinism contract: for fixed (q, free_vars, db), concatenating the
/// `answers` of chunks over adjacent `[start, next)` spans yields exactly
/// `ComputeCertainAnswers`'s sorted answer list, for any chunking.
Result<AnswerChunk> EnumerateAnswerChunk(const Query& q,
                                         const std::vector<Symbol>& free_vars,
                                         const Database& db,
                                         const EnumerateOptions& options,
                                         Budget* budget = nullptr);

}  // namespace cqa

#endif  // CQA_ANSWERS_ENUMERATOR_H_
