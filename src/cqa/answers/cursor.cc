#include "cqa/answers/cursor.h"

#include "cqa/base/crc32c.h"
#include "cqa/cache/query_key.h"

namespace cqa {

namespace {

constexpr char kMagic[] = "cqa1";
constexpr size_t kMagicLen = 4;
constexpr size_t kPayloadHex = 64;  // 4 x u64 as 16 hex digits each
constexpr size_t kCrcHex = 8;
constexpr size_t kCursorLen = kMagicLen + kPayloadHex + kCrcHex;

void AppendHex64(uint64_t v, std::string* out) {
  static const char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kDigits[(v >> shift) & 0xf]);
  }
}

bool ParseHex64(const std::string& s, size_t offset, uint64_t* out) {
  uint64_t v = 0;
  for (size_t i = 0; i < 16; ++i) {
    char c = s[offset + i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace

uint64_t AnswerQueryHash(const Query& q,
                         const std::vector<std::string>& free_vars) {
  std::string text = CanonicalQueryKey(q);
  for (const std::string& v : free_vars) {
    text.push_back('\x1f');  // unit separator: never in a variable name
    text += v;
  }
  // FNV-1a 64: deterministic across processes, unlike std::hash.
  uint64_t h = 1469598103934665603ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string EncodeAnswerCursor(const AnswerCursor& cursor) {
  std::string out = kMagic;
  out.reserve(kCursorLen);
  AppendHex64(cursor.position, &out);
  AppendHex64(cursor.query_hash, &out);
  AppendHex64(cursor.fingerprint.hi, &out);
  AppendHex64(cursor.fingerprint.lo, &out);
  uint32_t crc = Crc32c(out.data(), out.size());
  static const char kDigits[] = "0123456789abcdef";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(crc >> shift) & 0xf]);
  }
  return out;
}

Result<AnswerCursor> DecodeAnswerCursor(const std::string& text) {
  using Out = Result<AnswerCursor>;
  if (text.size() != kCursorLen) {
    return Out::Error(ErrorCode::kParse,
                      "cursor must be " + std::to_string(kCursorLen) +
                          " characters, got " + std::to_string(text.size()));
  }
  if (text.compare(0, kMagicLen, kMagic) != 0) {
    return Out::Error(ErrorCode::kParse, "cursor has a bad magic prefix");
  }
  uint64_t crc_claimed = 0;
  // The CRC field is 8 hex digits; reuse the 16-digit parser on a
  // zero-padded copy would complicate things, so parse it directly.
  {
    uint64_t v = 0;
    for (size_t i = 0; i < kCrcHex; ++i) {
      char c = text[kMagicLen + kPayloadHex + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint64_t>(c - 'a' + 10);
      } else {
        return Out::Error(ErrorCode::kParse, "cursor checksum is not hex");
      }
    }
    crc_claimed = v;
  }
  uint32_t crc_actual = Crc32c(text.data(), kMagicLen + kPayloadHex);
  if (crc_claimed != crc_actual) {
    return Out::Error(ErrorCode::kParse, "cursor checksum mismatch");
  }
  AnswerCursor cursor;
  if (!ParseHex64(text, kMagicLen, &cursor.position) ||
      !ParseHex64(text, kMagicLen + 16, &cursor.query_hash) ||
      !ParseHex64(text, kMagicLen + 32, &cursor.fingerprint.hi) ||
      !ParseHex64(text, kMagicLen + 48, &cursor.fingerprint.lo)) {
    return Out::Error(ErrorCode::kParse, "cursor payload is not hex");
  }
  return cursor;
}

}  // namespace cqa
