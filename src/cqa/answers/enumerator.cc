#include "cqa/answers/enumerator.h"

#include <algorithm>

#include "cqa/certainty/certain_answers.h"
#include "cqa/fo/eval.h"

namespace cqa {

namespace {

// Hard bound on the flattened candidate space. Positions are u64; keep a
// wide safety margin below overflow so `start + scanned` arithmetic can
// never wrap.
constexpr uint64_t kMaxCandidateSpace = 1ull << 62;

}  // namespace

Result<AnswerChunk> EnumerateAnswerChunk(const Query& q,
                                         const std::vector<Symbol>& free_vars,
                                         const Database& db,
                                         const EnumerateOptions& options,
                                         Budget* budget) {
  using Out = Result<AnswerChunk>;
  if (options.method == SolverMethod::kSampling) {
    return Out::Error(ErrorCode::kUnsupported,
                      "answer enumeration needs exact verdicts; sampling "
                      "cannot soundly include or exclude a candidate");
  }
  Result<std::vector<std::vector<Value>>> lists =
      CertainAnswerCandidates(q, free_vars, db);
  if (!lists.ok()) return Out::Error(lists);

  // Canonical order: each list sorted by value spelling, so the flat
  // mixed-radix position (first variable most significant) enumerates
  // tuples in exactly the lexicographic order `ComputeCertainAnswers`
  // sorts into — and positions are stable across processes and restarts
  // of the same database epoch.
  std::vector<std::vector<Value>> candidates = std::move(lists.value());
  for (std::vector<Value>& list : candidates) {
    std::sort(list.begin(), list.end(), [](Value a, Value b) {
      return a.name() < b.name();
    });
  }
  uint64_t total = 1;
  for (const std::vector<Value>& list : candidates) {
    if (list.empty()) {
      total = 0;
      break;
    }
    if (total > kMaxCandidateSpace / list.size()) {
      return Out::Error(ErrorCode::kUnsupported,
                        "candidate space exceeds 2^62 positions");
    }
    total *= list.size();
  }

  AnswerChunk chunk;
  for (Symbol v : free_vars) chunk.free_vars.push_back(SymbolName(v));
  chunk.total = total;
  chunk.start = options.start;
  chunk.next = options.start;
  if (options.start > total) {
    return Out::Error(ErrorCode::kParse,
                      "cursor position " + std::to_string(options.start) +
                          " beyond the candidate space (" +
                          std::to_string(total) + ")");
  }
  if (options.start == total) {
    chunk.done = true;
    return chunk;
  }

  // Odometer over the sorted lists, seeded by decoding `start` as a
  // mixed-radix numeral (first variable most significant).
  std::vector<size_t> digit(candidates.size(), 0);
  {
    uint64_t rem = options.start;
    for (size_t i = candidates.size(); i-- > 0;) {
      digit[i] = static_cast<size_t>(rem % candidates[i].size());
      rem /= candidates[i].size();
    }
  }

  // The rewriting path builds the Lemma 6.1 formula once per chunk and
  // evaluates it per candidate; every other method grounds the query and
  // dispatches the solver. Both are exact (degradation is off).
  Result<FoPtr> formula = Result<FoPtr>::Error(ErrorCode::kInternal, "");
  std::optional<FoEvaluator> eval;
  SolveOptions solve_options;
  if (options.method == SolverMethod::kRewriting) {
    formula = RewriteCertainWithFree(q, free_vars);
    if (!formula.ok()) return Out::Error(formula);
    eval.emplace(db);
  } else {
    solve_options.method = options.method;
    solve_options.budget = budget;
    solve_options.degrade_to_sampling = false;
  }

  const uint64_t max_answers = std::max<uint64_t>(1, options.max_chunk);
  Tuple tuple(candidates.size());
  while (chunk.next < total) {
    if (budget != nullptr) {
      if (std::optional<ErrorCode> code = budget->CheckEvery(1)) {
        if (chunk.scanned == 0) {
          return Out::Error(*code,
                            "answer chunk aborted before the first "
                            "candidate: " +
                                Budget::Describe(*code));
        }
        chunk.exhausted = true;
        break;
      }
    }
    for (size_t i = 0; i < candidates.size(); ++i) {
      tuple[i] = candidates[i][digit[i]];
    }
    bool certain = false;
    if (eval.has_value()) {
      Valuation env;
      for (size_t i = 0; i < free_vars.size(); ++i) {
        env.emplace(free_vars[i], tuple[i]);
      }
      Result<bool> holds = eval->EvalGoverned(formula.value(), env, budget);
      if (!holds.ok()) {
        if (IsResourceExhaustion(holds.code()) && chunk.scanned > 0) {
          chunk.exhausted = true;
          break;
        }
        return Out::Error(holds);
      }
      certain = holds.value();
    } else {
      Query ground = q;
      for (size_t i = 0; i < free_vars.size(); ++i) {
        ground = ground.Substituted(free_vars[i], tuple[i]);
      }
      Result<SolveReport> report = SolveCertainty(ground, db, solve_options);
      if (!report.ok()) {
        if (IsResourceExhaustion(report.code()) && chunk.scanned > 0) {
          chunk.exhausted = true;
          break;
        }
        return Out::Error(report);
      }
      if (report->verdict != Verdict::kCertain &&
          report->verdict != Verdict::kNotCertain) {
        return Out::Error(ErrorCode::kUnsupported,
                          "candidate verdict was not exact (" +
                              ToString(report->verdict) + ")");
      }
      certain = report->certain;
    }
    ++chunk.scanned;
    ++chunk.next;
    if (certain) chunk.answers.push_back(tuple);
    // Advance the odometer (least-significant digit last).
    for (size_t i = candidates.size(); i-- > 0;) {
      if (++digit[i] < candidates[i].size()) break;
      digit[i] = 0;
    }
    if (chunk.answers.size() >= max_answers) break;
  }
  chunk.done = chunk.next == total;
  return chunk;
}

}  // namespace cqa
