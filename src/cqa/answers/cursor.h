#ifndef CQA_ANSWERS_CURSOR_H_
#define CQA_ANSWERS_CURSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/query/query.h"

namespace cqa {

/// A resumable answer-stream position, opaque to clients but verifiable
/// by the server. The cursor binds three things: *where* the stream is
/// (the mixed-radix candidate position), *what* it is enumerating (a
/// hash of the alpha-canonical query plus the free-variable tuple
/// order), and *which database epoch* the positions are meaningful for
/// (the 128-bit content fingerprint — candidate lists are derived from
/// the database, so positions silently shift across epochs). A CRC32C
/// over the payload rejects corrupted or truncated cursors before any
/// field is interpreted.
///
/// Wire spelling: `cqa1` + 64 lowercase hex digits (position, query
/// hash, fingerprint hi/lo — 16 each) + 8 hex digits of CRC32C over the
/// preceding 68 characters. Fixed width, no separators: 76 bytes total.
struct AnswerCursor {
  uint64_t position = 0;
  uint64_t query_hash = 0;
  DbFingerprint fingerprint;
};

/// Stable 64-bit hash binding a cursor to (canonical query, free-variable
/// order). FNV-1a over a deterministic serialization — identical across
/// processes and runs of the same build, unlike `std::hash`.
uint64_t AnswerQueryHash(const Query& q,
                         const std::vector<std::string>& free_vars);

std::string EncodeAnswerCursor(const AnswerCursor& cursor);

/// Parses and checksum-verifies a cursor. Any malformed spelling — wrong
/// length, bad magic, non-hex digits, CRC mismatch — fails with a typed
/// `kParse`; hostile bytes can never crash or mis-resume. Staleness
/// (fingerprint vs. the serving epoch) is the caller's check: this
/// function only proves the cursor is intact.
Result<AnswerCursor> DecodeAnswerCursor(const std::string& text);

}  // namespace cqa

#endif  // CQA_ANSWERS_CURSOR_H_
