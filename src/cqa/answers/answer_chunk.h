#ifndef CQA_ANSWERS_ANSWER_CHUNK_H_
#define CQA_ANSWERS_ANSWER_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cqa/base/value.h"

namespace cqa {

/// One bounded span of a certain-answer enumeration. The enumeration
/// space is the cartesian product of the per-free-variable candidate
/// lists (each sorted by value spelling), flattened to a single
/// mixed-radix *position* in `[0, total]`. A chunk covers positions
/// `[start, next)` and carries exactly the certain answers found there,
/// in the canonical (lexicographic) order — so concatenating chunks over
/// adjacent spans reproduces the one-shot answer list byte for byte,
/// regardless of where the span boundaries fall.
struct AnswerChunk {
  /// The free variables, in answer-tuple column order.
  std::vector<std::string> free_vars;
  /// Certain answers among candidates `[start, next)`, canonical order.
  std::vector<Tuple> answers;
  /// First candidate position this chunk scanned.
  uint64_t start = 0;
  /// Resume point: the first position *not* scanned. `next == total`
  /// iff the enumeration is complete.
  uint64_t next = 0;
  /// Total candidate positions (product of the candidate list sizes).
  uint64_t total = 0;
  /// Candidates actually decided by this chunk (== next - start).
  uint64_t scanned = 0;
  /// True iff this chunk finished the enumeration (`next == total`).
  bool done = false;
  /// True iff the chunk stopped early because its budget tripped. A
  /// partial chunk is still *correct* for its span, but it reflects one
  /// request's budget rather than a property of (query, database), so
  /// the serving layer must not cache it.
  bool exhausted = false;
};

}  // namespace cqa

#endif  // CQA_ANSWERS_ANSWER_CHUNK_H_
