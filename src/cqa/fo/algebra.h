#ifndef CQA_FO_ALGEBRA_H_
#define CQA_FO_ALGEBRA_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/fo/formula.h"

namespace cqa {

/// A named relation: a set of tuples over an ordered list of variable
/// columns. The set-at-a-time counterpart of a valuation set.
struct NamedRelation {
  std::vector<Symbol> columns;
  std::unordered_set<Tuple, TupleHash> tuples;

  bool Boolean() const { return columns.empty(); }
  /// For 0-column relations: true iff the empty tuple is present.
  bool AsBool() const { return !tuples.empty(); }

  std::string ToString() const;
};

struct AlgebraOptions {
  /// Number of fresh constants added to the evaluation domain. FO with
  /// equality cannot distinguish values outside adom ∪ consts(φ), so adding
  /// one fresh constant per quantified variable of φ makes active-domain
  /// evaluation agree exactly with the paper's infinite-domain semantics.
  /// -1 (default): derive automatically from the formula.
  int extra_fresh_values = -1;
};

/// Set-at-a-time (relational algebra) evaluation of a first-order formula
/// over a fact view: atoms become scans, ∧ a natural join, ∨ a padded
/// union, ¬ a complement against D^k (D the evaluation domain), ∃ a
/// projection. Returns the relation of satisfying assignments over
/// FreeVars(f); for sentences use `EvalFoAlgebraBool`.
///
/// Exponential in the maximum number of free variables of a subformula
/// (inherent to active-domain FO evaluation); used as a second, independent
/// engine to differentially test `FoEvaluator`, and competitive when a
/// subformula is evaluated against many bindings.
Result<NamedRelation> EvalFoAlgebra(const FoPtr& f, const FactView& view,
                                    const AlgebraOptions& options = {});

/// Evaluates a sentence (no free variables).
Result<bool> EvalFoAlgebraBool(const FoPtr& f, const FactView& view,
                               const AlgebraOptions& options = {});

}  // namespace cqa

#endif  // CQA_FO_ALGEBRA_H_
