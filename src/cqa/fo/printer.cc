#include "cqa/fo/formula.h"

namespace cqa {

namespace {

// Precedence for parenthesisation: higher binds tighter.
int Precedence(FoKind k) {
  switch (k) {
    case FoKind::kTrue:
    case FoKind::kFalse:
    case FoKind::kAtom:
    case FoKind::kEquals:
      return 5;
    case FoKind::kNot:
      return 4;
    case FoKind::kAnd:
      return 3;
    case FoKind::kOr:
      return 2;
    case FoKind::kImplies:
      return 1;
    case FoKind::kExists:
    case FoKind::kForall:
      return 0;
  }
  return 0;
}

void Print(const Fo& f, int parent_prec, std::string* out) {
  int prec = Precedence(f.kind());
  bool parens = prec < parent_prec;
  if (parens) *out += "(";
  switch (f.kind()) {
    case FoKind::kTrue:
      *out += "true";
      break;
    case FoKind::kFalse:
      *out += "false";
      break;
    case FoKind::kAtom: {
      *out += f.relation_name() + "(";
      for (size_t i = 0; i < f.terms().size(); ++i) {
        if (i > 0) {
          *out += (static_cast<int>(i) == f.key_len() &&
                   f.key_len() < static_cast<int>(f.terms().size()))
                      ? " | "
                      : ", ";
        }
        *out += f.terms()[i].ToString();
      }
      *out += ")";
      break;
    }
    case FoKind::kEquals:
      *out += f.lhs().ToString() + " = " + f.rhs().ToString();
      break;
    case FoKind::kNot:
      // Special-case negated equality for readability.
      if (f.child()->kind() == FoKind::kEquals) {
        *out += f.child()->lhs().ToString() + " != " +
                f.child()->rhs().ToString();
      } else {
        *out += "!";
        Print(*f.child(), Precedence(FoKind::kNot) + 1, out);
      }
      break;
    case FoKind::kAnd:
    case FoKind::kOr: {
      const char* op = f.kind() == FoKind::kAnd ? " & " : " | ";
      for (size_t i = 0; i < f.children().size(); ++i) {
        if (i > 0) *out += op;
        Print(*f.children()[i], prec + 1, out);
      }
      break;
    }
    case FoKind::kImplies:
      Print(*f.children()[0], prec + 1, out);
      *out += " -> ";
      Print(*f.children()[1], prec, out);
      break;
    case FoKind::kExists:
    case FoKind::kForall: {
      *out += f.kind() == FoKind::kExists ? "exists" : "forall";
      for (Symbol v : f.qvars()) {
        *out += " " + SymbolName(v);
      }
      *out += ". ";
      Print(*f.child(), prec, out);
      break;
    }
  }
  if (parens) *out += ")";
}

}  // namespace

std::string Fo::ToString() const {
  std::string out;
  Print(*this, 0, &out);
  return out;
}

}  // namespace cqa
