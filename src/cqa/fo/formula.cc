#include "cqa/fo/formula.h"

#include <algorithm>
#include <set>

namespace cqa {

FoPtr FoTrue() {
  static const FoPtr instance = [] {
    std::shared_ptr<Fo> f(new Fo());
    f->kind_ = FoKind::kTrue;
    return f;
  }();
  return instance;
}

FoPtr FoFalse() {
  static const FoPtr instance = [] {
    std::shared_ptr<Fo> f(new Fo());
    f->kind_ = FoKind::kFalse;
    return f;
  }();
  return instance;
}

FoPtr FoAtom(Symbol relation, int key_len, std::vector<Term> terms) {
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kAtom;
  f->relation_ = relation;
  f->key_len_ = key_len;
  f->terms_ = std::move(terms);
  return f;
}

FoPtr FoEquals(Term a, Term b) {
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kEquals;
  f->terms_ = {a, b};
  return f;
}

FoPtr FoAnd(std::vector<FoPtr> children) {
  std::vector<FoPtr> flat;
  for (FoPtr& c : children) {
    if (c->kind() == FoKind::kTrue) continue;
    if (c->kind() == FoKind::kFalse) return FoFalse();
    if (c->kind() == FoKind::kAnd) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return FoTrue();
  if (flat.size() == 1) return flat[0];
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kAnd;
  f->children_ = std::move(flat);
  return f;
}

FoPtr FoOr(std::vector<FoPtr> children) {
  std::vector<FoPtr> flat;
  for (FoPtr& c : children) {
    if (c->kind() == FoKind::kFalse) continue;
    if (c->kind() == FoKind::kTrue) return FoTrue();
    if (c->kind() == FoKind::kOr) {
      flat.insert(flat.end(), c->children().begin(), c->children().end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return FoFalse();
  if (flat.size() == 1) return flat[0];
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kOr;
  f->children_ = std::move(flat);
  return f;
}

FoPtr FoNot(FoPtr child) {
  if (child->kind() == FoKind::kTrue) return FoFalse();
  if (child->kind() == FoKind::kFalse) return FoTrue();
  if (child->kind() == FoKind::kNot) return child->child();
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kNot;
  f->children_ = {std::move(child)};
  return f;
}

FoPtr FoImplies(FoPtr a, FoPtr b) {
  if (a->kind() == FoKind::kTrue) return b;
  if (a->kind() == FoKind::kFalse) return FoTrue();
  if (b->kind() == FoKind::kTrue) return FoTrue();
  if (b->kind() == FoKind::kFalse) return FoNot(std::move(a));
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kImplies;
  f->children_ = {std::move(a), std::move(b)};
  return f;
}

namespace {

// Decides the final (vars, body) of a quantifier node, or signals that the
// quantifier collapses to `body`. Uses only the public Fo API.
struct QuantParts {
  bool collapse = false;
  std::vector<Symbol> vars;
  FoPtr body;
};

QuantParts AnalyzeQuantifier(FoKind kind, const std::vector<Symbol>& vars,
                             FoPtr body) {
  QuantParts out;
  // Keep only variables actually free in the body.
  SymbolSet free = body->FreeVars();
  std::vector<Symbol> used;
  for (Symbol v : vars) {
    if (free.contains(v)) used.push_back(v);
  }
  if (used.empty() || body->kind() == FoKind::kTrue ||
      body->kind() == FoKind::kFalse) {
    out.collapse = true;
    out.body = std::move(body);
    return out;
  }
  // Merge adjacent same-kind quantifiers.
  if (body->kind() == kind) {
    for (Symbol v : body->qvars()) {
      if (std::find(used.begin(), used.end(), v) == used.end()) {
        used.push_back(v);
      }
    }
    out.vars = std::move(used);
    out.body = body->child();
    return out;
  }
  out.vars = std::move(used);
  out.body = std::move(body);
  return out;
}

}  // namespace

FoPtr FoExists(std::vector<Symbol> vars, FoPtr body) {
  QuantParts p = AnalyzeQuantifier(FoKind::kExists, vars, std::move(body));
  if (p.collapse) return p.body;
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kExists;
  f->qvars_ = std::move(p.vars);
  f->children_ = {std::move(p.body)};
  return f;
}

FoPtr FoForall(std::vector<Symbol> vars, FoPtr body) {
  QuantParts p = AnalyzeQuantifier(FoKind::kForall, vars, std::move(body));
  if (p.collapse) return p.body;
  std::shared_ptr<Fo> f(new Fo());
  f->kind_ = FoKind::kForall;
  f->qvars_ = std::move(p.vars);
  f->children_ = {std::move(p.body)};
  return f;
}

FoPtr FoNotEquals(Term a, Term b) { return FoNot(FoEquals(a, b)); }

size_t Fo::Size() const {
  size_t n = 1;
  for (const FoPtr& c : children_) n += c->Size();
  return n;
}

int Fo::QuantifierDepth() const {
  int max_child = 0;
  for (const FoPtr& c : children_) {
    max_child = std::max(max_child, c->QuantifierDepth());
  }
  if (kind_ == FoKind::kExists || kind_ == FoKind::kForall) {
    return max_child + 1;
  }
  return max_child;
}

SymbolSet Fo::FreeVars() const {
  SymbolSet out;
  switch (kind_) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      break;
    case FoKind::kAtom:
    case FoKind::kEquals:
      for (const Term& t : terms_) {
        if (t.is_variable()) out.Insert(t.var());
      }
      break;
    case FoKind::kAnd:
    case FoKind::kOr:
    case FoKind::kNot:
    case FoKind::kImplies:
      for (const FoPtr& c : children_) out.UnionWith(c->FreeVars());
      break;
    case FoKind::kExists:
    case FoKind::kForall: {
      out = children_[0]->FreeVars();
      for (Symbol v : qvars_) out.Erase(v);
      break;
    }
  }
  return out;
}

namespace {
void CollectConstants(const Fo& f, std::set<Value>* out) {
  for (const Term& t : f.terms()) {
    if (t.is_constant()) out->insert(t.constant());
  }
  for (const FoPtr& c : f.children()) CollectConstants(*c, out);
}
}  // namespace

std::vector<Value> Fo::Constants() const {
  std::set<Value> seen;
  CollectConstants(*this, &seen);
  return std::vector<Value>(seen.begin(), seen.end());
}

bool Fo::Equal(const FoPtr& a, const FoPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind_ != b->kind_) return false;
  if (a->relation_ != b->relation_ || a->key_len_ != b->key_len_ ||
      a->terms_ != b->terms_ || a->qvars_ != b->qvars_) {
    return false;
  }
  if (a->children_.size() != b->children_.size()) return false;
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equal(a->children_[i], b->children_[i])) return false;
  }
  return true;
}

}  // namespace cqa
