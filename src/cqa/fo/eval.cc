#include "cqa/fo/eval.h"

#include <algorithm>
#include <cassert>

namespace cqa {

namespace {

std::vector<FoPtr> Conjuncts(const FoPtr& f) {
  if (f->kind() == FoKind::kAnd) return f->children();
  return {f};
}

bool IsBound(Symbol v, const Valuation& env) { return env.count(v) > 0; }

}  // namespace

bool FoEvaluator::Eval(const FoPtr& f) {
  Valuation env;
  return Eval(f, env);
}

bool FoEvaluator::Eval(const FoPtr& f, const Valuation& env) {
  steps_ = 0;
  interrupted_.reset();
  if (root_ != f.get()) {
    root_ = f.get();
    base_values_ready_ = false;
    fallback_cache_.clear();
  }
  Valuation scratch = env;
  return EvalNode(*f, &scratch);
}

Result<bool> FoEvaluator::EvalGoverned(const FoPtr& f, Budget* budget) {
  Valuation env;
  return EvalGoverned(f, env, budget);
}

Result<bool> FoEvaluator::EvalGoverned(const FoPtr& f, const Valuation& env,
                                       Budget* budget) {
  Budget* saved = budget_;
  budget_ = budget;
  bool holds = Eval(f, env);
  budget_ = saved;
  if (interrupted_.has_value()) {
    return Result<bool>::Error(
        *interrupted_,
        "FO evaluation aborted: " + Budget::Describe(*interrupted_));
  }
  return holds;
}

bool FoEvaluator::Probe() {
  if (interrupted_.has_value()) return false;
  if (budget_ == nullptr) return true;
  if (std::optional<ErrorCode> code = budget_->CheckEvery()) {
    interrupted_ = code;
    return false;
  }
  return true;
}

const std::vector<Value>& FoEvaluator::FallbackValues(Symbol v) {
  auto it = fallback_cache_.find(v);
  if (it != fallback_cache_.end()) return it->second;
  if (!base_values_ready_) {
    base_values_ = view_.ActiveDomain();
    if (root_ != nullptr) {
      for (Value c : root_->Constants()) {
        if (std::find(base_values_.begin(), base_values_.end(), c) ==
            base_values_.end()) {
          base_values_.push_back(c);
        }
      }
    }
    base_values_ready_ = true;
  }
  std::vector<Value> values = base_values_;
  // One fresh witness per variable: distinct variables can require distinct
  // outside-the-domain values (e.g. ∃x∃y (x ≠ y ∧ ¬P(x) ∧ ¬P(y))).
  values.push_back(Value::Of("@fresh:" + SymbolName(v)));
  return fallback_cache_.emplace(v, std::move(values)).first->second;
}

bool FoEvaluator::EvalNode(const Fo& f, Valuation* env) {
  ++steps_;
  if (!Probe()) return false;  // unwinding; the value is meaningless
  switch (f.kind()) {
    case FoKind::kTrue:
      return true;
    case FoKind::kFalse:
      return false;
    case FoKind::kAtom: {
      Tuple ground;
      ground.reserve(f.terms().size());
      for (const Term& t : f.terms()) {
        Value v = ResolveTerm(t, *env);
        assert(v.valid() && "unbound variable in atom");
        ground.push_back(v);
      }
      return view_.Contains(f.relation(), ground);
    }
    case FoKind::kEquals: {
      Value a = ResolveTerm(f.lhs(), *env);
      Value b = ResolveTerm(f.rhs(), *env);
      assert(a.valid() && b.valid() && "unbound variable in equality");
      return a == b;
    }
    case FoKind::kAnd:
      for (const FoPtr& c : f.children()) {
        if (!EvalNode(*c, env)) return false;
      }
      return true;
    case FoKind::kOr:
      for (const FoPtr& c : f.children()) {
        if (EvalNode(*c, env)) return true;
      }
      return false;
    case FoKind::kNot:
      return !EvalNode(*f.child(), env);
    case FoKind::kImplies:
      return !EvalNode(*f.children()[0], env) ||
             EvalNode(*f.children()[1], env);
    case FoKind::kExists:
    case FoKind::kForall: {
      // Save and clear shadowed bindings.
      std::vector<std::pair<Symbol, Value>> saved;
      for (Symbol v : f.qvars()) {
        auto it = env->find(v);
        if (it != env->end()) {
          saved.emplace_back(v, it->second);
          env->erase(it);
        }
      }
      bool result;
      if (f.kind() == FoKind::kExists) {
        result = ExistsSat(f.qvars(), Conjuncts(f.child()), env);
      } else {
        // ∀x̄ φ ≡ ¬∃x̄ ¬φ; for φ = (p → c), ¬φ ≡ p ∧ ¬c.
        std::vector<FoPtr> conjuncts;
        if (f.child()->kind() == FoKind::kImplies) {
          conjuncts = Conjuncts(f.child()->children()[0]);
          conjuncts.push_back(FoNot(f.child()->children()[1]));
        } else {
          conjuncts = {FoNot(f.child())};
        }
        result = !ExistsSat(f.qvars(), conjuncts, env);
      }
      for (const auto& [v, val] : saved) (*env)[v] = val;
      return result;
    }
  }
  return false;
}

bool FoEvaluator::ExistsSat(const std::vector<Symbol>& vars,
                            const std::vector<FoPtr>& conjuncts,
                            Valuation* env) {
  ++steps_;
  if (!Probe()) return false;  // unwinding; the value is meaningless
  // Unbound quantified variables.
  std::vector<Symbol> unbound;
  for (Symbol v : vars) {
    if (!IsBound(v, *env)) unbound.push_back(v);
  }
  if (unbound.empty()) {
    for (const FoPtr& c : conjuncts) {
      if (!EvalNode(*c, env)) return false;
    }
    return true;
  }

  // 1) A pinning equality: v = t with t resolvable.
  for (const FoPtr& c : conjuncts) {
    if (c->kind() != FoKind::kEquals) continue;
    for (int side = 0; side < 2; ++side) {
      const Term& var_side = side == 0 ? c->lhs() : c->rhs();
      const Term& other = side == 0 ? c->rhs() : c->lhs();
      if (!var_side.is_variable() || IsBound(var_side.var(), *env)) continue;
      if (std::find(unbound.begin(), unbound.end(), var_side.var()) ==
          unbound.end()) {
        continue;
      }
      Value val = ResolveTerm(other, *env);
      if (!val.valid()) continue;
      (*env)[var_side.var()] = val;
      bool ok = ExistsSat(vars, conjuncts, env);
      env->erase(var_side.var());
      return ok;
    }
  }

  // 2) A generator atom: a positive conjunct atom with some unbound
  //    quantified variable and no other unbound variables. Prefer atoms
  //    whose key positions are already ground (block-index lookup), then
  //    fewest unbound variables.
  const Fo* best_atom = nullptr;
  int best_score = INT32_MAX;
  for (const FoPtr& c : conjuncts) {
    if (c->kind() != FoKind::kAtom) continue;
    int n_unbound = 0;
    bool usable = true;
    bool key_ground = true;
    SymbolSet seen;
    for (size_t i = 0; i < c->terms().size(); ++i) {
      const Term& t = c->terms()[i];
      if (!t.is_variable() || IsBound(t.var(), *env)) continue;
      if (static_cast<int>(i) < c->key_len()) key_ground = false;
      if (std::find(unbound.begin(), unbound.end(), t.var()) ==
          unbound.end()) {
        usable = false;  // unbound variable not quantified here
        break;
      }
      if (!seen.contains(t.var())) {
        seen.Insert(t.var());
        ++n_unbound;
      }
    }
    if (!usable || n_unbound == 0) continue;
    int score = n_unbound + (key_ground ? 0 : 1000);
    if (score < best_score) {
      best_score = score;
      best_atom = c.get();
    }
  }
  if (best_atom != nullptr) {
    bool found = false;
    auto try_fact = [&](const Tuple& tuple) {
      ++steps_;
      if (!Probe()) return false;  // stop the scan; unwinding
      std::vector<Symbol> bound_here;
      bool match = true;
      for (size_t i = 0; i < tuple.size(); ++i) {
        const Term& t = best_atom->terms()[i];
        if (t.is_constant()) {
          if (t.constant() != tuple[i]) {
            match = false;
            break;
          }
        } else {
          auto it = env->find(t.var());
          if (it != env->end()) {
            if (it->second != tuple[i]) {
              match = false;
              break;
            }
          } else {
            (*env)[t.var()] = tuple[i];
            bound_here.push_back(t.var());
          }
        }
      }
      if (match && ExistsSat(vars, conjuncts, env)) found = true;
      for (Symbol v : bound_here) env->erase(v);
      return !found;
    };
    // Ground key prefix: restrict to the single matching block.
    Tuple key;
    bool key_ground = true;
    for (int i = 0; i < best_atom->key_len() && key_ground; ++i) {
      Value v = ResolveTerm(best_atom->terms()[static_cast<size_t>(i)], *env);
      if (v.valid()) {
        key.push_back(v);
      } else {
        key_ground = false;
      }
    }
    if (key_ground) {
      view_.ForEachFactWithKey(best_atom->relation(), key, try_fact);
    } else {
      view_.ForEachFact(best_atom->relation(), try_fact);
    }
    return found;
  }

  // 3) Fallback: enumerate candidates for one unguarded variable.
  Symbol v = unbound.front();
  for (Value val : FallbackValues(v)) {
    ++steps_;
    if (!Probe()) return false;  // unwinding
    (*env)[v] = val;
    bool ok = ExistsSat(vars, conjuncts, env);
    env->erase(v);
    if (ok) return true;
  }
  return false;
}

bool EvalFo(const FoPtr& f, const FactView& view) {
  return FoEvaluator(view).Eval(f);
}

Result<bool> EvalFoGoverned(const FoPtr& f, const FactView& view,
                            Budget* budget) {
  return FoEvaluator(view).EvalGoverned(f, budget);
}

}  // namespace cqa
