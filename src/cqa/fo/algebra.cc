#include "cqa/fo/algebra.h"

#include <algorithm>
#include <cassert>

namespace cqa {

namespace {

// Counts quantified variable binders (for the fresh-constant construction).
int CountQuantifiedVars(const Fo& f) {
  int n = static_cast<int>(f.qvars().size());
  for (const FoPtr& c : f.children()) n += CountQuantifiedVars(*c);
  return n;
}

size_t ColumnIndex(const NamedRelation& r, Symbol v) {
  auto it = std::find(r.columns.begin(), r.columns.end(), v);
  assert(it != r.columns.end());
  return static_cast<size_t>(it - r.columns.begin());
}

// Cartesian-extends `r` with one new column over `domain`.
NamedRelation ExtendWithColumn(const NamedRelation& r, Symbol v,
                               const std::vector<Value>& domain) {
  NamedRelation out;
  out.columns = r.columns;
  out.columns.push_back(v);
  for (const Tuple& t : r.tuples) {
    for (Value d : domain) {
      Tuple extended = t;
      extended.push_back(d);
      out.tuples.insert(std::move(extended));
    }
  }
  return out;
}

// Reorders/projects `r` onto `columns` (must be a subset of r's columns,
// duplicates not allowed).
NamedRelation ProjectTo(const NamedRelation& r,
                        const std::vector<Symbol>& columns) {
  NamedRelation out;
  out.columns = columns;
  std::vector<size_t> index;
  index.reserve(columns.size());
  for (Symbol c : columns) index.push_back(ColumnIndex(r, c));
  for (const Tuple& t : r.tuples) {
    Tuple projected;
    projected.reserve(columns.size());
    for (size_t i : index) projected.push_back(t[i]);
    out.tuples.insert(std::move(projected));
  }
  return out;
}

// Natural join on shared columns.
NamedRelation NaturalJoin(const NamedRelation& a, const NamedRelation& b) {
  // Shared and b-only columns.
  std::vector<std::pair<size_t, size_t>> shared;  // (a idx, b idx)
  std::vector<size_t> b_only;
  for (size_t j = 0; j < b.columns.size(); ++j) {
    auto it = std::find(a.columns.begin(), a.columns.end(), b.columns[j]);
    if (it == a.columns.end()) {
      b_only.push_back(j);
    } else {
      shared.emplace_back(static_cast<size_t>(it - a.columns.begin()), j);
    }
  }
  NamedRelation out;
  out.columns = a.columns;
  for (size_t j : b_only) out.columns.push_back(b.columns[j]);

  // Hash b on the shared key.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  for (const Tuple& t : b.tuples) {
    Tuple key;
    key.reserve(shared.size());
    for (const auto& [ai, bi] : shared) key.push_back(t[bi]);
    index[key].push_back(&t);
  }
  for (const Tuple& t : a.tuples) {
    Tuple key;
    key.reserve(shared.size());
    for (const auto& [ai, bi] : shared) key.push_back(t[ai]);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const Tuple* bt : it->second) {
      Tuple joined = t;
      for (size_t j : b_only) joined.push_back((*bt)[j]);
      out.tuples.insert(std::move(joined));
    }
  }
  return out;
}

class AlgebraEvaluator {
 public:
  AlgebraEvaluator(const FactView& view, std::vector<Value> domain)
      : view_(view), domain_(std::move(domain)) {}

  NamedRelation Eval(const Fo& f) {
    switch (f.kind()) {
      case FoKind::kTrue: {
        NamedRelation r;
        r.tuples.insert(Tuple{});
        return r;
      }
      case FoKind::kFalse:
        return NamedRelation{};
      case FoKind::kAtom:
        return EvalAtom(f);
      case FoKind::kEquals:
        return EvalEquals(f);
      case FoKind::kAnd: {
        NamedRelation out = Eval(*f.children()[0]);
        for (size_t i = 1; i < f.children().size(); ++i) {
          out = NaturalJoin(out, Eval(*f.children()[i]));
        }
        return out;
      }
      case FoKind::kOr: {
        // Pad every child to the union of columns, then union the sets.
        std::vector<NamedRelation> parts;
        SymbolSet all_cols;
        for (const FoPtr& c : f.children()) {
          parts.push_back(Eval(*c));
          all_cols.UnionWith(SymbolSet(parts.back().columns));
        }
        NamedRelation out;
        out.columns = all_cols.items();
        for (NamedRelation& p : parts) {
          for (Symbol col : out.columns) {
            if (std::find(p.columns.begin(), p.columns.end(), col) ==
                p.columns.end()) {
              p = ExtendWithColumn(p, col, domain_);
            }
          }
          NamedRelation aligned = ProjectTo(p, out.columns);
          out.tuples.insert(aligned.tuples.begin(), aligned.tuples.end());
        }
        return out;
      }
      case FoKind::kNot:
        return Complement(Eval(*f.child()));
      case FoKind::kImplies: {
        NamedRelation not_lhs = Complement(Eval(*f.children()[0]));
        NamedRelation rhs = Eval(*f.children()[1]);
        // ¬a ∨ b with column padding, via the kOr machinery.
        return EvalOrOfTwo(std::move(not_lhs), std::move(rhs));
      }
      case FoKind::kExists: {
        NamedRelation body = Eval(*f.child());
        std::vector<Symbol> keep;
        for (Symbol c : body.columns) {
          if (std::find(f.qvars().begin(), f.qvars().end(), c) ==
              f.qvars().end()) {
            keep.push_back(c);
          }
        }
        return ProjectTo(body, keep);
      }
      case FoKind::kForall: {
        // ∀x̄ φ ≡ ¬∃x̄ ¬φ.
        NamedRelation not_body = Complement(Eval(*f.child()));
        std::vector<Symbol> keep;
        for (Symbol c : not_body.columns) {
          if (std::find(f.qvars().begin(), f.qvars().end(), c) ==
              f.qvars().end()) {
            keep.push_back(c);
          }
        }
        return Complement(ProjectTo(not_body, keep));
      }
    }
    return NamedRelation{};
  }

 private:
  NamedRelation EvalAtom(const Fo& f) {
    NamedRelation out;
    // Distinct variables of the atom, in order of first occurrence.
    for (const Term& t : f.terms()) {
      if (t.is_variable() &&
          std::find(out.columns.begin(), out.columns.end(), t.var()) ==
              out.columns.end()) {
        out.columns.push_back(t.var());
      }
    }
    view_.ForEachFact(f.relation(), [&](const Tuple& fact) {
      Tuple row(out.columns.size());
      std::vector<bool> bound(out.columns.size(), false);
      bool match = true;
      for (size_t i = 0; i < fact.size() && match; ++i) {
        const Term& t = f.terms()[i];
        if (t.is_constant()) {
          match = (t.constant() == fact[i]);
        } else {
          size_t col = ColumnIndex(out, t.var());
          if (bound[col]) {
            match = (row[col] == fact[i]);
          } else {
            row[col] = fact[i];
            bound[col] = true;
          }
        }
      }
      if (match) out.tuples.insert(std::move(row));
      return true;
    });
    return out;
  }

  NamedRelation EvalEquals(const Fo& f) {
    const Term& a = f.lhs();
    const Term& b = f.rhs();
    NamedRelation out;
    if (a.is_constant() && b.is_constant()) {
      if (a.constant() == b.constant()) out.tuples.insert(Tuple{});
      return out;
    }
    if (a.is_variable() && b.is_variable()) {
      if (a.var() == b.var()) {
        out.columns = {a.var()};
        for (Value d : domain_) out.tuples.insert(Tuple{d});
        return out;
      }
      out.columns = {a.var(), b.var()};
      for (Value d : domain_) out.tuples.insert(Tuple{d, d});
      return out;
    }
    const Term& var = a.is_variable() ? a : b;
    const Term& cst = a.is_variable() ? b : a;
    out.columns = {var.var()};
    out.tuples.insert(Tuple{cst.constant()});
    return out;
  }

  NamedRelation Complement(const NamedRelation& r) {
    NamedRelation out;
    out.columns = r.columns;
    // Enumerate D^k and keep tuples absent from r.
    Tuple current(r.columns.size());
    std::function<void(size_t)> rec = [&](size_t i) {
      if (i == current.size()) {
        if (r.tuples.find(current) == r.tuples.end()) {
          out.tuples.insert(current);
        }
        return;
      }
      for (Value d : domain_) {
        current[i] = d;
        rec(i + 1);
      }
    };
    rec(0);
    return out;
  }

  NamedRelation EvalOrOfTwo(NamedRelation a, NamedRelation b) {
    SymbolSet all_cols = SymbolSet(a.columns).Union(SymbolSet(b.columns));
    NamedRelation out;
    out.columns = all_cols.items();
    for (NamedRelation* p : {&a, &b}) {
      for (Symbol col : out.columns) {
        if (std::find(p->columns.begin(), p->columns.end(), col) ==
            p->columns.end()) {
          *p = ExtendWithColumn(*p, col, domain_);
        }
      }
      NamedRelation aligned = ProjectTo(*p, out.columns);
      out.tuples.insert(aligned.tuples.begin(), aligned.tuples.end());
    }
    return out;
  }

  const FactView& view_;
  std::vector<Value> domain_;
};

}  // namespace

std::string NamedRelation::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += SymbolName(columns[i]);
  }
  out += "): {";
  bool first = true;
  for (const Tuple& t : tuples) {
    if (!first) out += ", ";
    first = false;
    out += TupleToString(t);
  }
  out += "}";
  return out;
}

Result<NamedRelation> EvalFoAlgebra(const FoPtr& f, const FactView& view,
                                    const AlgebraOptions& options) {
  std::vector<Value> domain = view.ActiveDomain();
  for (Value c : f->Constants()) {
    if (std::find(domain.begin(), domain.end(), c) == domain.end()) {
      domain.push_back(c);
    }
  }
  int fresh = options.extra_fresh_values >= 0 ? options.extra_fresh_values
                                              : CountQuantifiedVars(*f);
  for (int i = 0; i < fresh; ++i) {
    domain.push_back(Value::Of("@alg_fresh:" + std::to_string(i)));
  }
  if (domain.empty()) {
    // A nonempty domain keeps quantifier semantics sane even for an empty
    // database and constant-free formula.
    domain.push_back(Value::Of("@alg_fresh:0"));
  }
  AlgebraEvaluator eval(view, std::move(domain));
  return eval.Eval(*f);
}

Result<bool> EvalFoAlgebraBool(const FoPtr& f, const FactView& view,
                               const AlgebraOptions& options) {
  if (!f->FreeVars().empty()) {
    return Result<bool>::Error(
        "EvalFoAlgebraBool requires a sentence; free variables: " +
        f->FreeVars().ToString());
  }
  Result<NamedRelation> r = EvalFoAlgebra(f, view, options);
  if (!r.ok()) return Result<bool>::Error(r.error());
  return r->AsBool();
}

}  // namespace cqa
