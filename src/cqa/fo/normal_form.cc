#include "cqa/fo/normal_form.h"

#include <cassert>

#include "cqa/fo/simplify.h"

namespace cqa {

namespace {

FoPtr Nnf(const FoPtr& f, bool negate) {
  switch (f->kind()) {
    case FoKind::kTrue:
      return negate ? FoFalse() : FoTrue();
    case FoKind::kFalse:
      return negate ? FoTrue() : FoFalse();
    case FoKind::kAtom:
    case FoKind::kEquals:
      return negate ? FoNot(f) : f;
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> children;
      children.reserve(f->children().size());
      for (const FoPtr& c : f->children()) children.push_back(Nnf(c, negate));
      bool is_and = (f->kind() == FoKind::kAnd) != negate;
      return is_and ? FoAnd(std::move(children)) : FoOr(std::move(children));
    }
    case FoKind::kNot:
      return Nnf(f->child(), !negate);
    case FoKind::kImplies:
      // a → b ≡ ¬a ∨ b; negated: a ∧ ¬b.
      if (negate) {
        return FoAnd({Nnf(f->children()[0], false),
                      Nnf(f->children()[1], true)});
      }
      return FoOr({Nnf(f->children()[0], true),
                   Nnf(f->children()[1], false)});
    case FoKind::kExists:
    case FoKind::kForall: {
      FoPtr body = Nnf(f->child(), negate);
      bool is_exists = (f->kind() == FoKind::kExists) != negate;
      return is_exists ? FoExists(f->qvars(), std::move(body))
                       : FoForall(f->qvars(), std::move(body));
    }
  }
  return f;
}

// Pulls quantifiers out of an NNF formula, renaming bound variables apart.
struct PrenexBuilder {
  std::vector<PrenexQuantifier> prefix;

  FoPtr Pull(const FoPtr& f) {
    switch (f->kind()) {
      case FoKind::kTrue:
      case FoKind::kFalse:
      case FoKind::kAtom:
      case FoKind::kEquals:
      case FoKind::kNot:  // NNF: negation only over atoms/equalities
        return f;
      case FoKind::kAnd:
      case FoKind::kOr: {
        std::vector<FoPtr> children;
        children.reserve(f->children().size());
        for (const FoPtr& c : f->children()) children.push_back(Pull(c));
        return f->kind() == FoKind::kAnd ? FoAnd(std::move(children))
                                         : FoOr(std::move(children));
      }
      case FoKind::kImplies:
        assert(false && "implication survived NNF");
        return f;
      case FoKind::kExists:
      case FoKind::kForall: {
        FoPtr body = f->child();
        // Rename each bound variable to a fresh one before descending.
        for (Symbol v : f->qvars()) {
          Symbol fresh = FreshSymbol(SymbolName(v));
          FoPtr renamed = SubstituteVar(body, v, Term::VarOf(fresh));
          // Renaming to a fresh symbol can never capture.
          assert(renamed != nullptr);
          body = renamed;
          prefix.push_back(
              PrenexQuantifier{f->kind() == FoKind::kForall, fresh});
        }
        return Pull(body);
      }
    }
    return f;
  }
};

}  // namespace

FoPtr ToNnf(const FoPtr& f) { return Nnf(f, false); }

FoPtr PrenexForm::ToFormula() const {
  FoPtr out = matrix;
  for (auto it = prefix.rbegin(); it != prefix.rend(); ++it) {
    out = it->universal ? FoForall({it->var}, std::move(out))
                        : FoExists({it->var}, std::move(out));
  }
  return out;
}

int PrenexForm::Alternations() const {
  int alternations = 0;
  for (size_t i = 0; i + 1 < prefix.size(); ++i) {
    if (prefix[i].universal != prefix[i + 1].universal) ++alternations;
  }
  return alternations;
}

PrenexForm ToPrenex(const FoPtr& f) {
  PrenexBuilder builder;
  PrenexForm out;
  out.matrix = builder.Pull(ToNnf(f));
  out.prefix = std::move(builder.prefix);
  return out;
}

}  // namespace cqa
