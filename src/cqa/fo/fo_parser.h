#ifndef CQA_FO_FO_PARSER_H_
#define CQA_FO_FO_PARSER_H_

#include <string_view>

#include "cqa/base/result.h"
#include "cqa/fo/formula.h"

namespace cqa {

/// Parses a first-order formula from text — the inverse of `Fo::ToString`,
/// so formulas round-trip. Grammar (precedence low → high):
///
///   formula  := quantified
///   quantified := ("exists" | "forall") VAR+ "." quantified | implies
///   implies  := or ("->" implies)?                -- right associative
///   or       := and ("|" and)*
///   and      := unary ("&" unary)*
///   unary    := "!" unary | "true" | "false" | "(" formula ")"
///             | atom | term ("=" | "!=") term
///   atom     := NAME "(" term ("," | "|" term)* ")"   -- "|" marks the key
///   term     := IDENT | "'" chars "'" | NUMBER
///
/// Identifiers are variables inside terms; atom key separators follow the
/// query parser's convention (no "|" → all-key).
Result<FoPtr> ParseFo(std::string_view text);

}  // namespace cqa

#endif  // CQA_FO_FO_PARSER_H_
