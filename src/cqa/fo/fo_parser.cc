#include "cqa/fo/fo_parser.h"

#include <cctype>

namespace cqa {

namespace {

class FoLexer {
 public:
  explicit FoLexer(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char PeekAt(size_t offset) {
    SkipSpace();
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // True iff the next token is the whole identifier `word` (not consumed).
  bool PeekWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    return after >= text_.size() ||
           (!std::isalnum(static_cast<unsigned char>(text_[after])) &&
            text_[after] != '_');
  }

  // Consumes `word` only if it appears as a whole identifier.
  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_).substr(0, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  std::string ReadIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '#')) {
      ++pos_;
    }
    if (pos_ > start &&
        std::isdigit(static_cast<unsigned char>(text_[start]))) {
      pos_ = start;
      return "";
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string ReadNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  bool ReadQuoted(std::string* out) {
    if (!Consume('\'')) return false;
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '\'') {
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          s += '\'';
          ++pos_;
          continue;
        }
        *out = s;
        return true;
      }
      s += c;
    }
    return false;
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

class FoParser {
 public:
  explicit FoParser(std::string_view text) : lex_(text) {}

  Result<FoPtr> Parse() {
    Result<FoPtr> f = Quantified();
    if (!f.ok()) return f;
    if (!lex_.AtEnd()) {
      return Err("trailing input");
    }
    return f;
  }

 private:
  Result<FoPtr> Err(const std::string& message) {
    return Result<FoPtr>::Error(message + " at position " +
                                std::to_string(lex_.pos()));
  }

  Result<Term> ParseTerm() {
    char c = lex_.Peek();
    if (c == '\'') {
      std::string s;
      if (!lex_.ReadQuoted(&s)) {
        return Result<Term>::Error("unterminated quoted constant");
      }
      return Term::Const(s);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return Term::Const(lex_.ReadNumber());
    }
    std::string ident = lex_.ReadIdent();
    if (ident.empty()) {
      return Result<Term>::Error("expected a term at position " +
                                 std::to_string(lex_.pos()));
    }
    return Term::Var(ident);
  }

  Result<FoPtr> Quantified() {
    bool exists = false;
    if (lex_.ConsumeWord("exists")) {
      exists = true;
    } else if (!lex_.ConsumeWord("forall")) {
      return Implies();
    }
    std::vector<Symbol> vars;
    while (lex_.Peek() != '.' && !lex_.AtEnd()) {
      std::string v = lex_.ReadIdent();
      if (v.empty()) return Err("expected a quantified variable");
      vars.push_back(InternSymbol(v));
    }
    if (!lex_.Consume('.')) return Err("expected '.' after quantifier");
    if (vars.empty()) return Err("quantifier binds no variables");
    Result<FoPtr> body = Quantified();
    if (!body.ok()) return body;
    return exists ? FoExists(vars, body.value())
                  : FoForall(vars, body.value());
  }

  Result<FoPtr> Implies() {
    Result<FoPtr> lhs = Or();
    if (!lhs.ok()) return lhs;
    if (lex_.Peek() == '-' && lex_.PeekAt(1) == '>') {
      lex_.Consume('-');
      lex_.Consume('>');
      Result<FoPtr> rhs = Implies();  // right associative
      if (!rhs.ok()) return rhs;
      return FoImplies(lhs.value(), rhs.value());
    }
    return lhs;
  }

  Result<FoPtr> Or() {
    Result<FoPtr> first = And();
    if (!first.ok()) return first;
    std::vector<FoPtr> parts{first.value()};
    while (lex_.Peek() == '|') {
      lex_.Consume('|');
      Result<FoPtr> next = And();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return parts.size() == 1 ? parts[0] : FoOr(std::move(parts));
  }

  Result<FoPtr> And() {
    Result<FoPtr> first = Unary();
    if (!first.ok()) return first;
    std::vector<FoPtr> parts{first.value()};
    while (lex_.Peek() == '&') {
      lex_.Consume('&');
      Result<FoPtr> next = Unary();
      if (!next.ok()) return next;
      parts.push_back(next.value());
    }
    return parts.size() == 1 ? parts[0] : FoAnd(std::move(parts));
  }

  Result<FoPtr> Unary() {
    // Quantifiers are allowed wherever a unary formula is expected; their
    // body extends as far right as possible.
    if (lex_.PeekWord("exists") || lex_.PeekWord("forall")) {
      return Quantified();
    }
    if (lex_.Peek() == '!' && lex_.PeekAt(1) != '=') {
      lex_.Consume('!');
      Result<FoPtr> inner = Unary();
      if (!inner.ok()) return inner;
      return FoNot(inner.value());
    }
    if (lex_.Consume('(')) {
      Result<FoPtr> inner = Quantified();
      if (!inner.ok()) return inner;
      if (!lex_.Consume(')')) return Err("expected ')'");
      return inner;
    }
    if (lex_.ConsumeWord("true")) return FoTrue();
    if (lex_.ConsumeWord("false")) return FoFalse();

    // Atom `Name(...)`, or a (dis)equality between two terms.
    char c = lex_.Peek();
    if (c != '\'' && !std::isdigit(static_cast<unsigned char>(c))) {
      std::string ident = lex_.ReadIdent();
      if (ident.empty()) return Err("expected a formula");
      if (lex_.Peek() == '(') return AtomBody(ident);
      return EqualityTail(Term::Var(ident));
    }
    Result<Term> lhs = ParseTerm();
    if (!lhs.ok()) return Result<FoPtr>::Error(lhs.error());
    return EqualityTail(lhs.value());
  }

  Result<FoPtr> EqualityTail(Term lhs) {
    bool negated = false;
    if (lex_.Peek() == '!' && lex_.PeekAt(1) == '=') {
      lex_.Consume('!');
      negated = true;
    }
    if (!lex_.Consume('=')) return Err("expected '=' or '!='");
    Result<Term> rhs = ParseTerm();
    if (!rhs.ok()) return Result<FoPtr>::Error(rhs.error());
    FoPtr eq = FoEquals(lhs, rhs.value());
    return negated ? FoNot(std::move(eq)) : eq;
  }

  Result<FoPtr> AtomBody(const std::string& relation) {
    if (!lex_.Consume('(')) return Err("expected '('");
    std::vector<Term> terms;
    int key_len = -1;
    while (true) {
      Result<Term> t = ParseTerm();
      if (!t.ok()) return Result<FoPtr>::Error(t.error());
      terms.push_back(t.value());
      if (lex_.Consume(',')) continue;
      if (lex_.Peek() == '|' && lex_.PeekAt(1) != '|') {
        lex_.Consume('|');
        if (key_len != -1) return Err("multiple '|' in atom");
        key_len = static_cast<int>(terms.size());
        continue;
      }
      if (lex_.Consume(')')) break;
      return Err("expected ',', '|' or ')' in atom");
    }
    if (key_len == -1) key_len = static_cast<int>(terms.size());
    return FoAtom(InternSymbol(relation), key_len, std::move(terms));
  }

  FoLexer lex_;
};

}  // namespace

Result<FoPtr> ParseFo(std::string_view text) {
  Result<FoPtr> r = FoParser(text).Parse();
  // All failures from the FO parser are malformed input.
  if (!r.ok()) return Result<FoPtr>::Error(ErrorCode::kParse, r.error());
  return r;
}

}  // namespace cqa
