#ifndef CQA_FO_FORMULA_H_
#define CQA_FO_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "cqa/base/symbol_set.h"
#include "cqa/query/term.h"

namespace cqa {

class Fo;
/// Formulas are immutable and shared; rewritings are DAGs.
using FoPtr = std::shared_ptr<const Fo>;

enum class FoKind {
  kTrue,
  kFalse,
  kAtom,     // R(t1,...,tn)
  kEquals,   // t1 = t2
  kAnd,      // conjunction over children
  kOr,       // disjunction over children
  kNot,      // children[0]
  kImplies,  // children[0] -> children[1]
  kExists,   // ∃ qvars . children[0]
  kForall,   // ∀ qvars . children[0]
};

/// A first-order formula over the relational vocabulary with equality and
/// constants (the class FO of the paper: no other built-ins). Constructed
/// via the factory functions below, which perform light normalisation
/// (flattening ∧/∨, constant folding of ⊤/⊥, collapsing empty quantifiers).
class Fo {
 public:
  FoKind kind() const { return kind_; }

  // kAtom accessors.
  Symbol relation() const { return relation_; }
  const std::string& relation_name() const { return SymbolName(relation_); }
  int key_len() const { return key_len_; }
  const std::vector<Term>& terms() const { return terms_; }

  // kEquals accessors.
  const Term& lhs() const { return terms_[0]; }
  const Term& rhs() const { return terms_[1]; }

  const std::vector<FoPtr>& children() const { return children_; }
  const FoPtr& child(size_t i = 0) const { return children_[i]; }

  // Quantifier accessors.
  const std::vector<Symbol>& qvars() const { return qvars_; }

  /// Number of AST nodes (shared subformulas counted once per occurrence).
  size_t Size() const;

  /// Maximum quantifier nesting depth.
  int QuantifierDepth() const;

  /// Free variables.
  SymbolSet FreeVars() const;

  /// All constants occurring in the formula.
  std::vector<Value> Constants() const;

  /// Structural equality.
  static bool Equal(const FoPtr& a, const FoPtr& b);

  std::string ToString() const;

 private:
  friend FoPtr FoTrue();
  friend FoPtr FoFalse();
  friend FoPtr FoAtom(Symbol relation, int key_len, std::vector<Term> terms);
  friend FoPtr FoEquals(Term a, Term b);
  friend FoPtr FoAnd(std::vector<FoPtr> children);
  friend FoPtr FoOr(std::vector<FoPtr> children);
  friend FoPtr FoNot(FoPtr f);
  friend FoPtr FoImplies(FoPtr a, FoPtr b);
  friend FoPtr FoExists(std::vector<Symbol> vars, FoPtr body);
  friend FoPtr FoForall(std::vector<Symbol> vars, FoPtr body);

  Fo() = default;

  FoKind kind_ = FoKind::kTrue;
  Symbol relation_ = kNoSymbol;
  int key_len_ = 0;
  std::vector<Term> terms_;
  std::vector<FoPtr> children_;
  std::vector<Symbol> qvars_;
};

FoPtr FoTrue();
FoPtr FoFalse();
/// An atom; `key_len` is carried for pretty-printing and SQL generation.
FoPtr FoAtom(Symbol relation, int key_len, std::vector<Term> terms);
FoPtr FoEquals(Term a, Term b);
/// n-ary conjunction; flattens nested ∧, drops ⊤, folds ⊥. Empty → ⊤.
FoPtr FoAnd(std::vector<FoPtr> children);
/// n-ary disjunction; flattens nested ∨, drops ⊥, folds ⊤. Empty → ⊥.
FoPtr FoOr(std::vector<FoPtr> children);
FoPtr FoNot(FoPtr f);
FoPtr FoImplies(FoPtr a, FoPtr b);
/// ∃vars.body; empty vars collapse to body.
FoPtr FoExists(std::vector<Symbol> vars, FoPtr body);
FoPtr FoForall(std::vector<Symbol> vars, FoPtr body);

/// t1 ≠ t2, i.e. ¬(t1 = t2).
FoPtr FoNotEquals(Term a, Term b);

}  // namespace cqa

#endif  // CQA_FO_FORMULA_H_
