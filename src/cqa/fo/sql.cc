#include "cqa/fo/sql.h"

#include <cassert>
#include <unordered_map>

namespace cqa {

namespace {

std::string EscapeSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += '\'';  // double embedded quotes
    out += c;
  }
  out += "'";
  return out;
}

class SqlTranslator {
 public:
  std::string Translate(const Fo& f) {
    std::unordered_map<Symbol, std::string> varmap;
    return Tr(f, &varmap);
  }

 private:
  std::string TermSql(const Term& t,
                      const std::unordered_map<Symbol, std::string>& varmap) {
    if (t.is_constant()) return EscapeSqlString(t.constant().name());
    auto it = varmap.find(t.var());
    assert(it != varmap.end() && "free variable in SQL translation");
    return it->second;
  }

  std::string Tr(const Fo& f,
                 std::unordered_map<Symbol, std::string>* varmap) {
    switch (f.kind()) {
      case FoKind::kTrue:
        return "(1 = 1)";
      case FoKind::kFalse:
        return "(1 = 0)";
      case FoKind::kAtom: {
        std::string alias = "t" + std::to_string(next_alias_++);
        std::string where;
        for (size_t i = 0; i < f.terms().size(); ++i) {
          if (!where.empty()) where += " AND ";
          where += alias + ".c" + std::to_string(i + 1) + " = " +
                   TermSql(f.terms()[i], *varmap);
        }
        return "EXISTS (SELECT 1 FROM " + f.relation_name() + " " + alias +
               (where.empty() ? "" : " WHERE " + where) + ")";
      }
      case FoKind::kEquals:
        return "(" + TermSql(f.lhs(), *varmap) + " = " +
               TermSql(f.rhs(), *varmap) + ")";
      case FoKind::kAnd:
      case FoKind::kOr: {
        const char* op = f.kind() == FoKind::kAnd ? " AND " : " OR ";
        std::string out = "(";
        for (size_t i = 0; i < f.children().size(); ++i) {
          if (i > 0) out += op;
          out += Tr(*f.children()[i], varmap);
        }
        return out + ")";
      }
      case FoKind::kNot:
        return "NOT " + Tr(*f.child(), varmap);
      case FoKind::kImplies:
        return "(NOT " + Tr(*f.children()[0], varmap) + " OR " +
               Tr(*f.children()[1], varmap) + ")";
      case FoKind::kExists:
      case FoKind::kForall: {
        std::string from;
        std::vector<std::pair<Symbol, std::string>> saved;
        for (Symbol v : f.qvars()) {
          std::string alias = "a" + std::to_string(next_alias_++);
          if (!from.empty()) from += ", ";
          from += "cqa_adom " + alias;
          auto it = varmap->find(v);
          saved.emplace_back(v, it == varmap->end() ? "" : it->second);
          (*varmap)[v] = alias + ".v";
        }
        std::string body = Tr(*f.child(), varmap);
        for (const auto& [v, old] : saved) {
          if (old.empty()) {
            varmap->erase(v);
          } else {
            (*varmap)[v] = old;
          }
        }
        if (f.kind() == FoKind::kExists) {
          return "EXISTS (SELECT 1 FROM " + from + " WHERE " + body + ")";
        }
        return "NOT EXISTS (SELECT 1 FROM " + from + " WHERE NOT " + body +
               ")";
      }
    }
    return "(1 = 0)";
  }

  int next_alias_ = 0;
};

}  // namespace

std::string SchemaDdl(const Schema& schema) {
  std::string out;
  for (const RelationSchema& r : schema.relations()) {
    out += "CREATE TABLE " + SymbolName(r.name) + " (";
    for (int i = 1; i <= r.arity; ++i) {
      if (i > 1) out += ", ";
      out += "c" + std::to_string(i) + " TEXT NOT NULL";
    }
    // No PRIMARY KEY constraint: the stored instance may violate the key
    // {c1..ck}; that is the whole point of consistent query answering.
    out += ");  -- key: c1..c" + std::to_string(r.key_len) + "\n";
  }
  return out;
}

std::string AdomViewDdl(const Schema& schema) {
  std::string out = "CREATE VIEW cqa_adom(v) AS\n";
  bool first = true;
  for (const RelationSchema& r : schema.relations()) {
    for (int i = 1; i <= r.arity; ++i) {
      if (!first) out += "  UNION\n";
      first = false;
      out += "  SELECT c" + std::to_string(i) + " FROM " + SymbolName(r.name) +
             "\n";
    }
  }
  if (first) out += "  SELECT 'none' WHERE 1 = 0\n";
  out += ";\n";
  return out;
}

std::string ToSqlCondition(const FoPtr& f) {
  return SqlTranslator().Translate(*f);
}

std::string ToSqlQuery(const FoPtr& f) {
  return "SELECT CASE WHEN " + ToSqlCondition(f) +
         " THEN 1 ELSE 0 END AS certain;";
}

}  // namespace cqa
