#ifndef CQA_FO_EVAL_H_
#define CQA_FO_EVAL_H_

#include <optional>
#include <vector>

#include "cqa/base/budget.h"
#include "cqa/base/result.h"
#include "cqa/db/eval.h"
#include "cqa/fo/formula.h"

namespace cqa {

/// Evaluates first-order sentences over a `FactView` (a database or a
/// repair).
///
/// Semantics: FO with equality and constants over an *infinite* domain of
/// constants (the paper's class FO). Quantifiers are evaluated guard-first:
/// inside ∃x̄(...∧...), conjuncts that are atoms or pinning equalities drive
/// the search; only unguarded variables fall back to enumerating the active
/// domain ∪ the formula's constants ∪ one fresh witness per variable, which
/// is sound and complete for this logic.
class FoEvaluator {
 public:
  explicit FoEvaluator(const FactView& view) : view_(view) {}

  /// Attaches an execution governor, probed once per evaluation step; not
  /// owned. When the budget trips, the current `Eval` unwinds promptly and
  /// `interrupted()` reports the code — the boolean it returned is
  /// meaningless.
  void set_budget(Budget* budget) { budget_ = budget; }

  /// Evaluates a sentence (no free variables).
  bool Eval(const FoPtr& f);

  /// Evaluates with free variables bound by `env`.
  bool Eval(const FoPtr& f, const Valuation& env);

  /// Governed evaluation: like `Eval` but returns a typed error instead of
  /// a meaningless boolean when the budget trips mid-evaluation.
  Result<bool> EvalGoverned(const FoPtr& f, Budget* budget);

  /// Governed evaluation with free variables bound by `env`.
  Result<bool> EvalGoverned(const FoPtr& f, const Valuation& env,
                            Budget* budget);

  /// The budget violation of the last `Eval`, if it was interrupted.
  std::optional<ErrorCode> interrupted() const { return interrupted_; }

  /// Number of atom/equality/connective evaluations in the last `Eval`
  /// (a portable work measure for benchmarks).
  size_t steps() const { return steps_; }

 private:
  bool EvalNode(const Fo& f, Valuation* env);

  // Satisfiability search for ∃vars.(∧ conjuncts) under `env`.
  bool ExistsSat(const std::vector<Symbol>& vars,
                 const std::vector<FoPtr>& conjuncts, Valuation* env);

  // Charges the budget; on a trip records the code and tells the caller to
  // unwind.
  bool Probe();

  // Fallback candidate values for an unguarded variable `v`.
  const std::vector<Value>& FallbackValues(Symbol v);

  const FactView& view_;
  Budget* budget_ = nullptr;
  std::optional<ErrorCode> interrupted_;
  size_t steps_ = 0;
  std::vector<Value> base_values_;  // adom ∪ formula constants
  bool base_values_ready_ = false;
  std::unordered_map<Symbol, std::vector<Value>> fallback_cache_;
  const Fo* root_ = nullptr;
};

/// Convenience wrapper.
bool EvalFo(const FoPtr& f, const FactView& view);

/// Governed convenience wrapper: typed error if `budget` trips.
Result<bool> EvalFoGoverned(const FoPtr& f, const FactView& view,
                            Budget* budget);

}  // namespace cqa

#endif  // CQA_FO_EVAL_H_
