#ifndef CQA_FO_SQL_H_
#define CQA_FO_SQL_H_

#include <string>

#include "cqa/fo/formula.h"
#include "cqa/query/schema.h"

namespace cqa {

/// SQL generation: turns a consistent first-order rewriting into a single
/// SQL query, which is the practical payoff of Theorem 4.3 — certain answers
/// computable by any SQL engine, no repair enumeration.
///
/// Quantifiers are relativised to an active-domain view `cqa_adom(v)`. This
/// is equivalent to the paper's infinite-domain semantics for the formulas
/// produced by the rewriter, because every quantified variable is guarded by
/// a positive atom occurrence (see DESIGN.md).

/// `CREATE TABLE` statements for all relations (TEXT columns c1..cn; no
/// PRIMARY KEY constraint, since the instance may violate it).
std::string SchemaDdl(const Schema& schema);

/// `CREATE VIEW cqa_adom(v) AS ...` over all columns of all relations.
std::string AdomViewDdl(const Schema& schema);

/// A boolean SQL expression equivalent to the sentence `f`.
std::string ToSqlCondition(const FoPtr& f);

/// A complete `SELECT` producing a single row with column `certain` ∈ {0,1}.
std::string ToSqlQuery(const FoPtr& f);

}  // namespace cqa

#endif  // CQA_FO_SQL_H_
