#ifndef CQA_FO_NORMAL_FORM_H_
#define CQA_FO_NORMAL_FORM_H_

#include <utility>
#include <vector>

#include "cqa/fo/formula.h"

namespace cqa {

/// Negation normal form: negations pushed to atoms/equalities, implications
/// expanded, quantifiers flipped as needed. Logically equivalent.
FoPtr ToNnf(const FoPtr& f);

/// One quantifier of a prenex prefix.
struct PrenexQuantifier {
  bool universal = false;
  Symbol var = kNoSymbol;
};

/// A formula in prenex normal form: Q1 x1 ... Qn xn . matrix.
struct PrenexForm {
  std::vector<PrenexQuantifier> prefix;
  FoPtr matrix;

  /// Reassembles the (equivalent) formula.
  FoPtr ToFormula() const;

  /// Number of ∃/∀ alternations in the prefix (0 for a purely existential
  /// or purely universal prefix). For consistent rewritings this reflects
  /// the nesting of block quantifications the construction of Lemma 6.1
  /// introduced.
  int Alternations() const;
};

/// Converts to prenex normal form. Bound variables are renamed apart with
/// fresh symbols, so no capture can occur. The input is first brought to
/// NNF.
PrenexForm ToPrenex(const FoPtr& f);

}  // namespace cqa

#endif  // CQA_FO_NORMAL_FORM_H_
