#include "cqa/fo/simplify.h"

#include <algorithm>

namespace cqa {

namespace {

Term SubstTerm(const Term& term, Symbol v, const Term& t) {
  if (term.is_variable() && term.var() == v) return t;
  return term;
}

}  // namespace

FoPtr SubstituteVar(const FoPtr& f, Symbol v, const Term& t) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      return f;
    case FoKind::kAtom: {
      std::vector<Term> terms = f->terms();
      bool changed = false;
      for (Term& term : terms) {
        Term nt = SubstTerm(term, v, t);
        if (nt != term) {
          term = nt;
          changed = true;
        }
      }
      if (!changed) return f;
      return FoAtom(f->relation(), f->key_len(), std::move(terms));
    }
    case FoKind::kEquals: {
      Term a = SubstTerm(f->lhs(), v, t);
      Term b = SubstTerm(f->rhs(), v, t);
      if (a == f->lhs() && b == f->rhs()) return f;
      return FoEquals(a, b);
    }
    case FoKind::kAnd:
    case FoKind::kOr:
    case FoKind::kNot:
    case FoKind::kImplies: {
      std::vector<FoPtr> children;
      children.reserve(f->children().size());
      bool changed = false;
      for (const FoPtr& c : f->children()) {
        FoPtr nc = SubstituteVar(c, v, t);
        if (nc == nullptr) return nullptr;
        if (nc.get() != c.get()) changed = true;
        children.push_back(std::move(nc));
      }
      if (!changed) return f;
      switch (f->kind()) {
        case FoKind::kAnd:
          return FoAnd(std::move(children));
        case FoKind::kOr:
          return FoOr(std::move(children));
        case FoKind::kNot:
          return FoNot(std::move(children[0]));
        default:
          return FoImplies(std::move(children[0]), std::move(children[1]));
      }
    }
    case FoKind::kExists:
    case FoKind::kForall: {
      // If the quantifier binds v, the substitution stops here.
      if (std::find(f->qvars().begin(), f->qvars().end(), v) !=
          f->qvars().end()) {
        return f;
      }
      // Capture check: does the body mention v while the quantifier binds t?
      if (t.is_variable() &&
          std::find(f->qvars().begin(), f->qvars().end(), t.var()) !=
              f->qvars().end() &&
          f->child()->FreeVars().contains(v)) {
        return nullptr;
      }
      FoPtr body = SubstituteVar(f->child(), v, t);
      if (body == nullptr) return nullptr;
      if (body.get() == f->child().get()) return f;
      if (f->kind() == FoKind::kExists) return FoExists(f->qvars(), body);
      return FoForall(f->qvars(), body);
    }
  }
  return f;
}

namespace {

// Fold equalities between identical terms / distinct constants.
FoPtr FoldEquals(const FoPtr& f) {
  if (f->kind() != FoKind::kEquals) return f;
  if (f->lhs() == f->rhs()) return FoTrue();
  if (f->lhs().is_constant() && f->rhs().is_constant()) {
    return f->lhs().constant() == f->rhs().constant() ? FoTrue() : FoFalse();
  }
  return f;
}

// Tries to eliminate one quantified variable pinned by an equality among
// `conjuncts`. On success rewrites `conjuncts`/`vars` in place.
bool EliminatePinnedVar(std::vector<Symbol>* vars,
                        std::vector<FoPtr>* conjuncts) {
  for (size_t i = 0; i < conjuncts->size(); ++i) {
    const FoPtr& c = (*conjuncts)[i];
    if (c->kind() != FoKind::kEquals) continue;
    for (int side = 0; side < 2; ++side) {
      const Term& var_side = side == 0 ? c->lhs() : c->rhs();
      const Term& other = side == 0 ? c->rhs() : c->lhs();
      if (!var_side.is_variable()) continue;
      Symbol v = var_side.var();
      auto vit = std::find(vars->begin(), vars->end(), v);
      if (vit == vars->end()) continue;
      if (other.is_variable() && other.var() == v) continue;
      // Substitute v := other in all remaining conjuncts.
      std::vector<FoPtr> replaced;
      replaced.reserve(conjuncts->size() - 1);
      bool ok = true;
      for (size_t j = 0; j < conjuncts->size(); ++j) {
        if (j == i) continue;
        FoPtr r = SubstituteVar((*conjuncts)[j], v, other);
        if (r == nullptr) {
          ok = false;
          break;
        }
        replaced.push_back(std::move(r));
      }
      if (!ok) continue;
      vars->erase(vit);
      *conjuncts = std::move(replaced);
      return true;
    }
  }
  return false;
}

void DedupStructural(std::vector<FoPtr>* items) {
  std::vector<FoPtr> out;
  for (FoPtr& f : *items) {
    bool dup = false;
    for (const FoPtr& g : out) {
      if (Fo::Equal(f, g)) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(f));
  }
  *items = std::move(out);
}

}  // namespace

FoPtr Simplify(const FoPtr& f) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
    case FoKind::kAtom:
      return f;
    case FoKind::kEquals:
      return FoldEquals(f);
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> children;
      children.reserve(f->children().size());
      for (const FoPtr& c : f->children()) children.push_back(Simplify(c));
      DedupStructural(&children);
      return f->kind() == FoKind::kAnd ? FoAnd(std::move(children))
                                       : FoOr(std::move(children));
    }
    case FoKind::kNot:
      return FoNot(Simplify(f->child()));
    case FoKind::kImplies:
      return FoImplies(Simplify(f->children()[0]), Simplify(f->children()[1]));
    case FoKind::kExists: {
      FoPtr body = Simplify(f->child());
      std::vector<Symbol> vars = f->qvars();
      std::vector<FoPtr> conjuncts =
          body->kind() == FoKind::kAnd ? body->children()
                                       : std::vector<FoPtr>{body};
      while (EliminatePinnedVar(&vars, &conjuncts)) {
        for (FoPtr& c : conjuncts) c = Simplify(c);
      }
      return FoExists(std::move(vars), FoAnd(std::move(conjuncts)));
    }
    case FoKind::kForall: {
      FoPtr body = Simplify(f->child());
      // ∀x (x = t ∧ p → c) ⇒ (p → c)[x := t]; handled via the premise.
      if (body->kind() == FoKind::kImplies) {
        std::vector<Symbol> vars = f->qvars();
        FoPtr premise = body->children()[0];
        FoPtr conclusion = body->children()[1];
        std::vector<FoPtr> pre =
            premise->kind() == FoKind::kAnd ? premise->children()
                                            : std::vector<FoPtr>{premise};
        // Append the conclusion as a pseudo-conjunct so substitutions reach
        // it, then split again.
        pre.push_back(FoNot(conclusion));
        bool changed = false;
        while (EliminatePinnedVar(&vars, &pre)) changed = true;
        if (changed && !pre.empty()) {
          FoPtr new_conclusion = FoNot(pre.back());
          pre.pop_back();
          return FoForall(std::move(vars),
                          FoImplies(FoAnd(std::move(pre)),
                                    Simplify(new_conclusion)));
        }
      }
      return FoForall(f->qvars(), std::move(body));
    }
  }
  return f;
}

}  // namespace cqa
