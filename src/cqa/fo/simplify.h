#ifndef CQA_FO_SIMPLIFY_H_
#define CQA_FO_SIMPLIFY_H_

#include "cqa/fo/formula.h"

namespace cqa {

/// Structurally simplifies a formula while preserving logical equivalence
/// (under the paper's FO semantics: equality, constants, infinite domain):
///  * ⊤/⊥ folding and ∧/∨ flattening (via the factories),
///  * deduplication of identical conjuncts/disjuncts,
///  * elimination of quantified variables pinned by an equality, e.g.
///    ∃y (z = y ∧ φ(y))  ⇒  φ(z),
///  * dropping quantifiers over unused variables.
///
/// The consistent rewritings of Lemma 6.1 become substantially smaller and
/// match the paper's hand-simplified forms (Examples 4.5, 6.11, Figure 2).
FoPtr Simplify(const FoPtr& f);

/// Capture-checked substitution of variable `v` by term `t` (which must be a
/// constant or a variable). Returns nullptr if the substitution would
/// capture `t` under a quantifier.
FoPtr SubstituteVar(const FoPtr& f, Symbol v, const Term& t);

}  // namespace cqa

#endif  // CQA_FO_SIMPLIFY_H_
