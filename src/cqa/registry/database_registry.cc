#include "cqa/registry/database_registry.h"

#include <algorithm>
#include <utility>

namespace cqa {

bool DatabaseRegistry::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::shared_ptr<const Database>> DatabaseRegistry::Attach(
    const std::string& name, std::shared_ptr<const Database> db) {
  using R = Result<std::shared_ptr<const Database>>;
  if (!ValidName(name)) {
    return R::Error(ErrorCode::kUnsupported,
                    "invalid database name '" + name +
                        "' (1-64 chars from [A-Za-z0-9_.-])");
  }
  if (db == nullptr) {
    return R::Error(ErrorCode::kInternal, "attach of a null database");
  }
  // Pay for the block index and the content fingerprint here, once, on the
  // attaching thread — never on a request path. Both are memoized on the
  // instance, so the shards' cache lookups are hash-map hits from now on.
  db->blocks();
  Slot slot;
  slot.db = db;
  slot.fingerprint = FingerprintDatabase(*db);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = slots_.emplace(name, std::move(slot));
    if (!inserted) {
      return R::Error(ErrorCode::kUnsupported,
                      "database '" + name + "' is already attached");
    }
    if (default_name_.empty()) default_name_ = name;
  }
  return db;
}

Result<std::shared_ptr<const Database>> DatabaseRegistry::Attach(
    const std::string& name, Database db) {
  return Attach(name, std::make_shared<const Database>(std::move(db)));
}

Result<std::shared_ptr<const Database>> DatabaseRegistry::Detach(
    const std::string& name) {
  using R = Result<std::shared_ptr<const Database>>;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return R::Error(ErrorCode::kUnsupported,
                    "database '" + name + "' is not attached");
  }
  std::shared_ptr<const Database> db = std::move(it->second.db);
  slots_.erase(it);
  if (default_name_ == name) default_name_.clear();
  return db;
}

Result<std::shared_ptr<const Database>> DatabaseRegistry::Replace(
    const std::string& name, std::shared_ptr<const Database> db,
    const DbFingerprint& fingerprint) {
  using R = Result<std::shared_ptr<const Database>>;
  if (db == nullptr) {
    return R::Error(ErrorCode::kInternal, "replace with a null database");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return R::Error(ErrorCode::kUnsupported,
                    "database '" + name + "' is not attached");
  }
  std::shared_ptr<const Database> previous = std::move(it->second.db);
  it->second.db = std::move(db);
  it->second.fingerprint = fingerprint;
  return previous;
}

DatabaseRegistry::Entry DatabaseRegistry::EntryFor(const std::string& name,
                                                   const Slot& slot) const {
  Entry e;
  e.name = name;
  e.db = slot.db;
  e.fingerprint = slot.fingerprint;
  e.is_default = (name == default_name_);
  e.use_count = slot.db.use_count();
  return e;
}

Result<DatabaseRegistry::Entry> DatabaseRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    if (default_name_.empty()) {
      return Result<Entry>::Error(ErrorCode::kDetached,
                                  "no default database attached");
    }
    auto it = slots_.find(default_name_);
    return EntryFor(default_name_, it->second);
  }
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Result<Entry>::Error(ErrorCode::kDetached,
                                "database '" + name + "' is not attached");
  }
  return EntryFor(name, it->second);
}

std::vector<DatabaseRegistry::Entry> DatabaseRegistry::List() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) out.push_back(EntryFor(name, slot));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

std::string DatabaseRegistry::DefaultName() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_name_;
}

size_t DatabaseRegistry::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace cqa
