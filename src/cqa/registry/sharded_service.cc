#include "cqa/registry/sharded_service.h"

#include <algorithm>
#include <thread>

namespace cqa {

ShardedSolveService::ShardedSolveService(ShardedServiceOptions options)
    : options_(std::move(options)) {}

ShardedSolveService::~ShardedSolveService() {
  Shutdown(std::chrono::milliseconds(0));
}

Result<DatabaseRegistry::Entry> ShardedSolveService::Attach(
    const std::string& name, std::shared_ptr<const Database> db) {
  using R = Result<DatabaseRegistry::Entry>;
  if (!accepting_.load(std::memory_order_acquire)) {
    return R::Error(ErrorCode::kOverloaded,
                    "registry is shutting down; attach refused");
  }

  // Crash recovery runs before the registry attach, so a diverging or
  // unreadable journal/snapshot leaves nothing attached. Recovery is
  // snapshot-first: load `<name>.snapshot` (verifying that its facts hash
  // to the fingerprint it was stamped with), then replay only the journal
  // records newer than its epoch — records at or below it are leftovers of
  // a compaction whose truncate was lost to a crash, skipped by their
  // epoch stamp. Without a snapshot the whole journal replays over the
  // caller's base, as in PR 7. Each replayed record's fingerprint must
  // match the one journaled at append time: a mismatch means the base is
  // not what the journal was written against (or the journal lies), and
  // serving from it would silently resurrect pre-crash state.
  uint64_t recovered_epoch = 0;
  DeltaIdWindow window(options_.delta_id_window);
  std::unique_ptr<DeltaJournal> journal;
  uint64_t recovered_snapshot_bytes = 0;
  uint64_t recovered_snapshot_epoch = 0;
  if (!options_.journal_dir.empty()) {
    if (!DatabaseRegistry::ValidName(name)) {
      return R::Error(ErrorCode::kUnsupported,
                      "invalid database name '" + name +
                          "' (1-64 chars from [A-Za-z0-9_.-])");
    }
    if (db == nullptr) {
      return R::Error(ErrorCode::kInternal, "attach of a null database");
    }
    Result<SnapshotReadResult> snap =
        ReadSnapshotFile(SnapshotFilePath(name));
    if (!snap.ok()) return R::Error(snap);
    if (snap->found) {
      Result<Database> restored = Database::FromText(snap->data.facts);
      if (!restored.ok()) {
        return R::Error(ErrorCode::kInternal,
                        "snapshot of '" + name +
                            "' holds unparseable facts: " + restored.error());
      }
      auto snapshot_db =
          std::make_shared<const Database>(std::move(restored.value()));
      DbFingerprint actual = FingerprintDatabase(*snapshot_db);
      if (actual != snap->data.fingerprint) {
        return R::Error(ErrorCode::kInternal,
                        "snapshot of '" + name +
                            "' does not reproduce its own fingerprint (" +
                            actual.ToHex() + " != stamped " +
                            snap->data.fingerprint.ToHex() +
                            ") — refusing to serve from it");
      }
      db = snapshot_db;  // the snapshot supersedes the caller's base facts
      recovered_epoch = snap->data.epoch;
      recovered_snapshot_epoch = snap->data.epoch;
      recovered_snapshot_bytes = snap->file_bytes;
      for (const auto& [id, ep] : snap->data.delta_ids) {
        window.Insert(id, ep);
      }
    }

    const std::string path = JournalPath(name);
    Result<JournalReplay> replay =
        ReplayJournalFile(path, /*truncate_torn_tail=*/true);
    if (!replay.ok()) return R::Error(replay);
    uint64_t ordinal = 0;
    for (const JournalRecord& rec : replay->records) {
      ++ordinal;
      // Pre-epoch records (epoch 0) replay positionally, exactly as
      // before epochs existed; stamped records can be skipped when the
      // snapshot already covers them.
      uint64_t rec_epoch =
          rec.epoch != 0 ? rec.epoch : recovered_epoch + 1;
      if (rec_epoch <= recovered_epoch) continue;
      if (rec_epoch != recovered_epoch + 1) {
        return R::Error(ErrorCode::kInternal,
                        "journal replay of '" + name +
                            "' has an epoch gap at record " +
                            std::to_string(ordinal) + ": have epoch " +
                            std::to_string(recovered_epoch) +
                            ", record claims " + std::to_string(rec_epoch));
      }
      Result<DeltaApplyOutcome> applied =
          ApplyDeltaToDatabase(*db, rec.delta);
      if (!applied.ok()) {
        return R::Error(ErrorCode::kInternal,
                        "journal replay of '" + name + "' failed at record " +
                            std::to_string(ordinal) + " (delta '" +
                            rec.delta.id + "'): " + applied.error());
      }
      if (applied->fingerprint != rec.fp_after) {
        return R::Error(
            ErrorCode::kInternal,
            "journal replay of '" + name + "' diverged at record " +
                std::to_string(ordinal) + " (delta '" + rec.delta.id +
                "'): replayed fingerprint " + applied->fingerprint.ToHex() +
                " != journaled " + rec.fp_after.ToHex() +
                " — wrong base snapshot for this journal?");
      }
      db = applied->db;
      recovered_epoch = rec_epoch;
      window.Insert(rec.delta.id, rec_epoch);
    }
    Result<std::unique_ptr<DeltaJournal>> opened =
        DeltaJournal::Open(path, options_.journal);
    if (!opened.ok()) return R::Error(opened);
    journal = std::move(opened.value());
  }

  // The registry is the arbiter of names: a duplicate or invalid name
  // fails here before any worker thread is spawned. It also pays for the
  // block index + fingerprint precomputation.
  Result<std::shared_ptr<const Database>> attached = registry_.Attach(name, db);
  if (!attached.ok()) return R::Error(attached);
  auto shard = std::make_shared<Shard>();
  shard->name = name;
  shard->db = *attached;
  shard->fingerprint = FingerprintDatabase(**attached);  // memoized
  shard->epoch = recovered_epoch;
  shard->applied_delta_ids = std::move(window);
  shard->journal = std::move(journal);
  shard->last_snapshot_bytes = recovered_snapshot_bytes;
  shard->last_snapshot_epoch = recovered_snapshot_epoch;
  shard->service = std::make_unique<SolveService>(options_.shard);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The registry rejected duplicates, so this insert cannot collide.
    shards_.emplace(name, shard);
  }
  BootstrapListenersOnAttach(shard);
  return registry_.Get(name);
}

Result<DatabaseRegistry::Entry> ShardedSolveService::Attach(
    const std::string& name, Database db) {
  return Attach(name, std::make_shared<const Database>(std::move(db)));
}

Result<DetachOutcome> ShardedSolveService::Detach(const std::string& name) {
  using R = Result<DetachOutcome>;
  ShardPtr shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it == shards_.end()) {
      return R::Error(ErrorCode::kUnsupported,
                      "database '" + name + "' is not attached");
    }
    shard = it->second;
  }
  if (shard->detaching.exchange(true, std::memory_order_acq_rel)) {
    return R::Error(ErrorCode::kUnsupported,
                    "detach of '" + name + "' is already in progress");
  }
  // From here on new submissions fail-fast with kDetached. Order matters:
  // shed the queued backlog first (typed kDetached, not a silent drop),
  // then let the in-flight solves finish inside the drain window. The
  // shard stays in the map throughout so Cancel keeps working on the
  // survivors; the registry keeps its reference until the drain is over,
  // so no running solve ever observes the database disappearing.
  DetachOutcome out;
  out.shed = shard->service->ShedQueued(
      ErrorCode::kDetached,
      "database '" + name + "' detached while the request was queued");
  out.drained = shard->service->Shutdown(options_.detach_drain);
  {
    std::lock_guard<std::mutex> lock(shard->db_mu);
    if (!shard->repl_listeners.empty()) {
      ReplicationEvent ev;
      ev.kind = ReplicationEvent::Kind::kDetach;
      ev.db = name;
      ev.epoch = shard->epoch;
      ev.fingerprint = shard->fingerprint;
      EmitLocked(shard, ev);
      shard->repl_listeners.clear();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.erase(name);
  }
  registry_.Detach(name);
  return out;
}

Result<ShardedSolveService::ShardPtr> ShardedSolveService::ResolveShard(
    const std::string& db_name) const {
  using R = Result<ShardPtr>;
  std::string name = db_name;
  if (name.empty()) {
    name = registry_.DefaultName();
    if (name.empty()) {
      return R::Error(ErrorCode::kDetached, "no default database attached");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(name);
  if (it == shards_.end()) {
    return R::Error(ErrorCode::kDetached,
                    "database '" + name + "' is not attached");
  }
  if (it->second->detaching.load(std::memory_order_acquire)) {
    return R::Error(ErrorCode::kDetached,
                    "database '" + name + "' is detaching");
  }
  return it->second;
}

Result<DeltaOutcome> ShardedSolveService::ApplyDelta(
    const std::string& db_name, const FactDelta& delta) {
  using R = Result<DeltaOutcome>;
  if (read_only()) {
    return R::Error(ErrorCode::kReadOnly,
                    "this instance is a read-only warm standby; deltas must "
                    "go to the primary (or promote this follower)");
  }
  if (delta.id.empty() || delta.id.size() > kMaxDeltaIdBytes) {
    return R::Error(ErrorCode::kUnsupported,
                    "delta id must be 1-" +
                        std::to_string(kMaxDeltaIdBytes) + " bytes");
  }
  Result<ShardPtr> resolved = ResolveShard(db_name);
  if (!resolved.ok()) return R::Error(resolved);
  return ApplyToShard(*resolved, delta, /*replicated=*/false, 0, nullptr);
}

Result<DeltaOutcome> ShardedSolveService::ApplyReplicatedDelta(
    const std::string& name, const FactDelta& delta, uint64_t epoch,
    const DbFingerprint& fingerprint) {
  using R = Result<DeltaOutcome>;
  if (delta.id.empty() || delta.id.size() > kMaxDeltaIdBytes) {
    return R::Error(ErrorCode::kUnsupported,
                    "delta id must be 1-" +
                        std::to_string(kMaxDeltaIdBytes) + " bytes");
  }
  Result<ShardPtr> resolved = ResolveShard(name);
  if (!resolved.ok()) return R::Error(resolved);
  return ApplyToShard(*resolved, delta, /*replicated=*/true, epoch,
                      &fingerprint);
}

Result<DeltaOutcome> ShardedSolveService::ApplyToShard(
    const ShardPtr& shard, const FactDelta& delta, bool replicated,
    uint64_t repl_epoch, const DbFingerprint* repl_fp) {
  using R = Result<DeltaOutcome>;
  DeltaOutcome out;
  out.name = shard->name;
  out.delta_id = delta.id;
  uint64_t ack_seq = 0;
  {
    // One delta at a time per shard: validation, journal append, cache
    // migration, the epoch swap, and replication fan-out are a single
    // critical section, so a concurrent Submit pins either the epoch
    // before this delta or the one after — never a half-applied state.
    std::lock_guard<std::mutex> lock(shard->db_mu);
    if (replicated) {
      // Stream idempotence is by epoch, not id: a reconnect replays from
      // the bootstrap, and everything at or below the local epoch is
      // already applied.
      if (repl_epoch <= shard->epoch) {
        out.applied = false;
        out.epoch = shard->epoch;
        out.fingerprint = shard->fingerprint;
        return out;
      }
      if (repl_epoch != shard->epoch + 1) {
        return R::Error(ErrorCode::kInternal,
                        "replication gap on '" + shard->name +
                            "': local epoch " + std::to_string(shard->epoch) +
                            ", stream sent " + std::to_string(repl_epoch) +
                            " — bootstrap resync required");
      }
    } else if (shard->applied_delta_ids.Find(delta.id) != nullptr) {
      // Idempotent replay of an acknowledged delta (client retry after a
      // lost ack): acknowledge again with the current state, change
      // nothing.
      out.applied = false;
      out.epoch = shard->epoch;
      out.fingerprint = shard->fingerprint;
      return out;
    }

    Result<DeltaApplyOutcome> applied =
        ApplyDeltaToDatabase(*shard->db, delta);
    if (!applied.ok()) return R::Error(applied);
    if (replicated && applied->fingerprint != *repl_fp) {
      return R::Error(ErrorCode::kInternal,
                      "replicated delta '" + delta.id + "' diverged on '" +
                          shard->name + "': local fingerprint " +
                          applied->fingerprint.ToHex() + " != primary's " +
                          repl_fp->ToHex() + " — bootstrap resync required");
    }
    const uint64_t next_epoch = shard->epoch + 1;

    // Write-ahead: the record must be written before anything observable
    // changes. An append failure (ENOSPC, fault injection, torn write)
    // rejects the delta outright — the database, cache, and epoch counter
    // are untouched, and the client must not treat the delta as applied.
    // Under group fsync the DURABILITY wait happens after the lock is
    // released (see below), which is what lets acks share one fsync.
    if (shard->journal != nullptr) {
      Result<bool> appended =
          shard->journal->Append(delta, applied->fingerprint, next_epoch);
      if (!appended.ok()) return R::Error(appended);
      ack_seq = shard->journal->appends();
    }

    // Cache migration happens before the new epoch is published: after
    // the swap, every lookup uses the new fingerprint, and entries under
    // the old prefix would never be found again (rekeying would be
    // pointless and stale-serving impossible either way — the prefix *is*
    // the epoch).
    std::pair<uint64_t, uint64_t> counts = shard->service->OnDatabaseDelta(
        shard->fingerprint, applied->fingerprint, applied->touched);

    registry_.Replace(shard->name, applied->db, applied->fingerprint);
    shard->db = applied->db;
    shard->fingerprint = applied->fingerprint;
    shard->epoch = next_epoch;
    ++shard->deltas_applied;
    ++shard->deltas_since_snapshot;
    shard->applied_delta_ids.Insert(delta.id, next_epoch);

    out.applied = true;
    out.epoch = next_epoch;
    out.fingerprint = applied->fingerprint;
    out.inserted = applied->inserted;
    out.deleted = applied->deleted;
    out.cache_invalidated = counts.first;
    out.cache_rekeyed = counts.second;

    if (!shard->repl_listeners.empty()) {
      ReplicationEvent ev;
      ev.kind = ReplicationEvent::Kind::kDelta;
      ev.db = shard->name;
      ev.epoch = next_epoch;
      ev.fingerprint = applied->fingerprint;
      ev.delta = delta;
      EmitLocked(shard, ev);
    }
    MaybeSnapshotLocked(shard);
  }

  // Group-fsync ack gate, outside the delta lock: the epoch is published,
  // but the caller's ack is owed only after a covering fsync. A failed
  // batch fsync means this delta was applied in memory yet is NOT durable
  // and NOT acknowledged — the journal is poisoned (no further appends),
  // and a restart recovers to the durable prefix.
  if (ack_seq != 0 && shard->journal != nullptr) {
    Result<bool> durable = shard->journal->WaitDurable(ack_seq);
    if (!durable.ok()) {
      return R::Error(ErrorCode::kInternal,
                      "delta '" + delta.id +
                          "' was applied in memory but its group fsync "
                          "failed; it is NOT acknowledged and will not "
                          "survive a restart");
    }
  }
  return out;
}

Result<SnapshotOutcome> ShardedSolveService::Snapshot(
    const std::string& db_name) {
  using R = Result<SnapshotOutcome>;
  Result<ShardPtr> resolved = ResolveShard(db_name);
  if (!resolved.ok()) return R::Error(resolved);
  std::lock_guard<std::mutex> lock((*resolved)->db_mu);
  return TakeSnapshotLocked(*resolved);
}

Result<SnapshotOutcome> ShardedSolveService::TakeSnapshotLocked(
    const ShardPtr& shard) {
  using R = Result<SnapshotOutcome>;
  if (shard->journal == nullptr) {
    return R::Error(ErrorCode::kUnsupported,
                    "snapshotting requires a journal_dir (database '" +
                        shard->name + "' is not journaled)");
  }
  SnapshotOutcome out;
  out.name = shard->name;
  out.epoch = shard->epoch;
  out.fingerprint = shard->fingerprint;
  out.journal_bytes_before = shard->journal->bytes_written();

  // Ack barrier: every record the truncate will discard must have cleared
  // its group fsync first — compaction must never outrun an ack in flight.
  Result<bool> flushed = shard->journal->FlushDurable();
  if (!flushed.ok()) {
    ++shard->snapshots_failed;
    return R::Error(flushed);
  }

  SnapshotData data;
  data.epoch = shard->epoch;
  data.fingerprint = shard->fingerprint;
  data.facts = shard->db->ToText();
  data.delta_ids = shard->applied_delta_ids.Items();
  Result<uint64_t> written = WriteSnapshotFile(
      SnapshotFilePath(shard->name), data, options_.snapshot);
  if (!written.ok()) {
    // Non-fatal to serving: the previous snapshot (or full replay) still
    // recovers everything; the journal keeps growing until a write lands.
    ++shard->snapshots_failed;
    return R::Error(written);
  }
  out.snapshot_bytes = *written;
  shard->last_snapshot_bytes = *written;
  shard->last_snapshot_epoch = shard->epoch;

  if (options_.snapshot.fail_before_truncate) {
    // Crash drill: the snapshot committed but the process dies before the
    // compacting truncate. Recovery must skip the journal records the
    // snapshot covers (their epoch stamps are ≤ the snapshot's).
    ++shard->snapshots_failed;
    return R::Error(ErrorCode::kInternal,
                    "snapshot fault injection: died before journal truncate");
  }

  Result<bool> reset = shard->journal->Reset();
  if (!reset.ok()) {
    // The snapshot itself is committed; recovery stays correct (epoch
    // stamps skip the stale records) — only the compaction was lost.
    ++shard->snapshots_failed;
    return R::Error(reset);
  }
  ++shard->snapshots_taken;
  shard->deltas_since_snapshot = 0;
  out.journal_bytes_after = shard->journal->bytes_written();
  return out;
}

void ShardedSolveService::MaybeSnapshotLocked(const ShardPtr& shard) {
  if (shard->journal == nullptr) return;
  const SnapshotPolicy& policy = options_.snapshot;
  bool due = (policy.every_deltas != 0 &&
              shard->deltas_since_snapshot >= policy.every_deltas) ||
             (policy.every_journal_bytes != 0 &&
              shard->journal->bytes_written() >= policy.every_journal_bytes);
  if (!due) return;
  // A failed automatic snapshot is counted and retried on a later delta;
  // the delta that triggered it is already journaled and unaffected.
  (void)TakeSnapshotLocked(shard);
}

Result<bool> ShardedSolveService::ApplyReplicaSnapshot(
    const std::string& name, const std::string& facts, uint64_t epoch,
    const DbFingerprint& fingerprint,
    const std::vector<std::pair<std::string, uint64_t>>& delta_ids) {
  using R = Result<bool>;
  Result<Database> parsed = Database::FromText(facts);
  if (!parsed.ok()) {
    return R::Error(ErrorCode::kInternal,
                    "replica snapshot for '" + name +
                        "' holds unparseable facts: " + parsed.error());
  }
  auto db = std::make_shared<const Database>(std::move(parsed.value()));
  DbFingerprint actual = FingerprintDatabase(*db);
  if (actual != fingerprint) {
    return R::Error(ErrorCode::kInternal,
                    "replica snapshot for '" + name +
                        "' does not reproduce the primary's fingerprint (" +
                        actual.ToHex() + " != " + fingerprint.ToHex() + ")");
  }

  ShardPtr shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it != shards_.end()) shard = it->second;
  }
  if (shard == nullptr) {
    // New database on the stream: attach it directly from the bootstrap —
    // the stream, not any local journal, is the source of truth here.
    if (!accepting_.load(std::memory_order_acquire)) {
      return R::Error(ErrorCode::kOverloaded,
                      "registry is shutting down; attach refused");
    }
    if (!DatabaseRegistry::ValidName(name)) {
      return R::Error(ErrorCode::kUnsupported,
                      "invalid replicated database name '" + name + "'");
    }
    std::unique_ptr<DeltaJournal> journal;
    if (!options_.journal_dir.empty()) {
      Result<std::unique_ptr<DeltaJournal>> opened =
          DeltaJournal::Open(JournalPath(name), options_.journal);
      if (!opened.ok()) return R::Error(opened);
      journal = std::move(opened.value());
    }
    Result<std::shared_ptr<const Database>> attached =
        registry_.Attach(name, db);
    if (!attached.ok()) return R::Error(attached);
    shard = std::make_shared<Shard>();
    shard->name = name;
    shard->db = *attached;
    shard->fingerprint = fingerprint;
    shard->epoch = epoch;
    shard->journal = std::move(journal);
    DeltaIdWindow window(options_.delta_id_window);
    for (const auto& [id, ep] : delta_ids) window.Insert(id, ep);
    shard->applied_delta_ids = std::move(window);
    shard->service = std::make_unique<SolveService>(options_.shard);
    {
      std::lock_guard<std::mutex> lock(mu_);
      shards_.emplace(name, shard);
    }
    if (shard->journal != nullptr) {
      // Persist the bootstrap locally (snapshot + empty journal) so this
      // follower's own crash recovery — and its post-promote durability —
      // start from the replicated state, not from stale pre-follow files.
      std::lock_guard<std::mutex> lock(shard->db_mu);
      (void)TakeSnapshotLocked(shard);
    }
    BootstrapListenersOnAttach(shard);  // chained replication
    return true;
  }

  // Existing shard: the stream restarted (reconnect) — wholesale-replace
  // unless we are already at or past the bootstrap epoch.
  std::lock_guard<std::mutex> lock(shard->db_mu);
  if (epoch <= shard->epoch) return true;  // idempotent
  registry_.Replace(name, db, fingerprint);
  shard->db = db;
  shard->fingerprint = fingerprint;
  shard->epoch = epoch;
  DeltaIdWindow window(options_.delta_id_window);
  for (const auto& [id, ep] : delta_ids) window.Insert(id, ep);
  shard->applied_delta_ids = std::move(window);
  // Result-cache entries keyed under older fingerprints simply become
  // unreachable (keys embed the fingerprint) and age out by LRU.
  if (shard->journal != nullptr) (void)TakeSnapshotLocked(shard);
  if (!shard->repl_listeners.empty()) {
    EmitLocked(shard, BootstrapEventLocked(shard));
  }
  return true;
}

uint64_t ShardedSolveService::AddReplicationListener(
    ReplicationListener listener) {
  uint64_t token;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    token = repl_next_token_++;
    repl_listeners_.emplace(token, listener);
  }
  // Bootstrap onto every existing shard. Per shard, the bootstrap emit and
  // the activation happen under one db_mu hold, so the listener can never
  // see a delta before its bootstrap — and every delta after activation
  // has an epoch the bootstrap's state already counts from.
  std::vector<ShardPtr> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [name, shard] : shards_) shards.push_back(shard);
  }
  for (ShardPtr& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->db_mu);
    {
      // A concurrent Remove may have raced us: never resurrect a token.
      std::lock_guard<std::mutex> rlock(repl_mu_);
      if (repl_listeners_.count(token) == 0) return token;
    }
    if (shard->repl_listeners.count(token) != 0) continue;
    listener(BootstrapEventLocked(shard));
    shard->repl_listeners.emplace(token, listener);
  }
  return token;
}

void ShardedSolveService::RemoveReplicationListener(uint64_t token) {
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_listeners_.erase(token);
  }
  std::vector<ShardPtr> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [name, shard] : shards_) shards.push_back(shard);
  }
  for (ShardPtr& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->db_mu);
    shard->repl_listeners.erase(token);
  }
}

void ShardedSolveService::BootstrapListenersOnAttach(const ShardPtr& shard) {
  std::lock_guard<std::mutex> lock(shard->db_mu);
  std::vector<std::pair<uint64_t, ReplicationListener>> listeners;
  {
    std::lock_guard<std::mutex> rlock(repl_mu_);
    listeners.reserve(repl_listeners_.size());
    for (const auto& kv : repl_listeners_) listeners.push_back(kv);
  }
  for (auto& [token, fn] : listeners) {
    if (shard->repl_listeners.count(token) != 0) continue;
    fn(BootstrapEventLocked(shard));
    shard->repl_listeners.emplace(token, fn);
  }
}

ReplicationEvent ShardedSolveService::BootstrapEventLocked(
    const ShardPtr& shard) const {
  ReplicationEvent ev;
  ev.kind = ReplicationEvent::Kind::kAttach;
  ev.db = shard->name;
  ev.epoch = shard->epoch;
  ev.fingerprint = shard->fingerprint;
  ev.facts = shard->db->ToText();
  ev.delta_ids = shard->applied_delta_ids.Items();
  return ev;
}

void ShardedSolveService::EmitLocked(const ShardPtr& shard,
                                     const ReplicationEvent& event) {
  for (auto& [token, fn] : shard->repl_listeners) fn(event);
}

Result<uint64_t> ShardedSolveService::Submit(const std::string& db_name,
                                             ServeJob job, Callback callback,
                                             std::string* resolved_name) {
  Result<ShardPtr> shard = ResolveShard(db_name);
  if (!shard.ok()) return Result<uint64_t>::Error(shard);
  {
    // Epoch pin: the copy taken here keeps this request (and any sandbox
    // child forked from it) on a consistent snapshot even if a delta swaps
    // the shard's instance while the request is queued or running.
    std::lock_guard<std::mutex> lock((*shard)->db_mu);
    job.db = (*shard)->db;
  }
  if (resolved_name != nullptr) *resolved_name = (*shard)->name;
  Result<uint64_t> id =
      (*shard)->service->Submit(std::move(job), std::move(callback));
  if (!id.ok() && id.code() == ErrorCode::kOverloaded &&
      (*shard)->detaching.load(std::memory_order_acquire)) {
    // Raced with Detach: the shard refused admission because its service
    // began shutting down. Surface the cause, not the mechanism.
    return Result<uint64_t>::Error(
        ErrorCode::kDetached,
        "database '" + (*shard)->name + "' is detaching");
  }
  return id;
}

bool ShardedSolveService::Cancel(const std::string& db_name, uint64_t id) {
  ShardPtr shard;
  {
    std::string name = db_name;
    if (name.empty()) name = registry_.DefaultName();
    if (name.empty()) return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it == shards_.end()) return false;
    // Deliberately no detaching check: cancelling a survivor of a
    // detaching shard shortens the drain.
    shard = it->second;
  }
  return shard->service->Cancel(id);
}

void ShardedSolveService::CancelAll() {
  std::vector<ShardPtr> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [name, shard] : shards_) shards.push_back(shard);
  }
  for (ShardPtr& shard : shards) shard->service->CancelAll();
}

bool ShardedSolveService::Shutdown(std::chrono::milliseconds drain_deadline) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return drained_result_;
  accepting_.store(false, std::memory_order_release);
  std::vector<ShardPtr> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [name, shard] : shards_) shards.push_back(shard);
  }
  // Drain shards concurrently: the slowest shard bounds the wall clock.
  // Shards stay in the map (their services answer Stats after shutdown);
  // a concurrent Detach simply finds an already-shut service and drains
  // nothing.
  std::atomic<bool> all_drained{true};
  std::vector<std::thread> drains;
  drains.reserve(shards.size());
  for (ShardPtr& shard : shards) {
    drains.emplace_back([&all_drained, shard, drain_deadline] {
      if (!shard->service->Shutdown(drain_deadline)) {
        all_drained.store(false, std::memory_order_release);
      }
    });
  }
  for (std::thread& t : drains) t.join();
  shutdown_done_ = true;
  drained_result_ = all_drained.load(std::memory_order_acquire);
  return drained_result_;
}

ServiceStats ShardedSolveService::Stats() const {
  ServiceStats total;
  for (const auto& [name, stats] : StatsPerDb()) {
    total.submitted += stats.submitted;
    total.accepted += stats.accepted;
    total.shed += stats.shed;
    total.completed += stats.completed;
    total.failed += stats.failed;
    total.cancelled += stats.cancelled;
    total.retries += stats.retries;
    total.degraded += stats.degraded;
    total.inflight += stats.inflight;
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.cache_coalesced += stats.cache_coalesced;
    total.cache_bypass += stats.cache_bypass;
    total.cache_entries += stats.cache_entries;
    total.cache_evictions += stats.cache_evictions;
    total.cache_invalidated += stats.cache_invalidated;
    total.cache_rekeyed += stats.cache_rekeyed;
    total.epoch += stats.epoch;
    total.deltas_applied += stats.deltas_applied;
    total.journal_bytes += stats.journal_bytes;
    total.journal_fsyncs += stats.journal_fsyncs;
    total.snapshots_taken += stats.snapshots_taken;
    total.snapshots_failed += stats.snapshots_failed;
    total.snapshot_bytes += stats.snapshot_bytes;
    total.snapshot_epoch =
        std::max(total.snapshot_epoch, stats.snapshot_epoch);
    total.sandbox_forks += stats.sandbox_forks;
    total.sandbox_kills += stats.sandbox_kills;
    total.sandbox_crashes += stats.sandbox_crashes;
    total.sandbox_rss_breaches += stats.sandbox_rss_breaches;
    // High-water gauge, not a count: the fleet peak is the worst shard.
    total.sandbox_peak_rss_kb =
        std::max(total.sandbox_peak_rss_kb, stats.sandbox_peak_rss_kb);
    total.parallel_solves += stats.parallel_solves;
    total.components_found += stats.components_found;
    total.parallel_steals += stats.parallel_steals;
    total.latency_count += stats.latency_count;
    // Percentiles of a union of samples cannot be reconstructed from the
    // shards' percentiles; report the elementwise worst shard — exact with
    // one shard, a conservative (pessimistic) bound otherwise.
    total.latency_p50_us = std::max(total.latency_p50_us, stats.latency_p50_us);
    total.latency_p90_us = std::max(total.latency_p90_us, stats.latency_p90_us);
    total.latency_p99_us = std::max(total.latency_p99_us, stats.latency_p99_us);
    total.latency_max_us = std::max(total.latency_max_us, stats.latency_max_us);
  }
  return total;
}

ServiceStats ShardedSolveService::ShardStats(const ShardPtr& shard) const {
  ServiceStats s = shard->service->Stats();
  std::lock_guard<std::mutex> lock(shard->db_mu);
  s.epoch = shard->epoch;
  s.deltas_applied = shard->deltas_applied;
  s.snapshots_taken = shard->snapshots_taken;
  s.snapshots_failed = shard->snapshots_failed;
  s.snapshot_bytes = shard->last_snapshot_bytes;
  s.snapshot_epoch = shard->last_snapshot_epoch;
  if (shard->journal != nullptr) {
    s.journal_bytes = shard->journal->bytes_written();
    s.journal_fsyncs = shard->journal->fsyncs();
  }
  return s;
}

std::vector<std::pair<std::string, ServiceStats>>
ShardedSolveService::StatsPerDb() const {
  std::vector<std::pair<std::string, ShardPtr>> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (const auto& [name, shard] : shards_) shards.emplace_back(name, shard);
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, ServiceStats>> out;
  out.reserve(shards.size());
  for (auto& [name, shard] : shards) {
    out.emplace_back(name, ShardStats(shard));
  }
  return out;
}

Result<ServiceStats> ShardedSolveService::StatsFor(
    const std::string& db_name) const {
  std::string name = db_name;
  if (name.empty()) {
    name = registry_.DefaultName();
    if (name.empty()) {
      return Result<ServiceStats>::Error(ErrorCode::kDetached,
                                         "no default database attached");
    }
  }
  ShardPtr shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it == shards_.end()) {
      return Result<ServiceStats>::Error(
          ErrorCode::kDetached, "database '" + name + "' is not attached");
    }
    shard = it->second;
  }
  return ShardStats(shard);
}

}  // namespace cqa
