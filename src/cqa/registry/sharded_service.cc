#include "cqa/registry/sharded_service.h"

#include <algorithm>
#include <thread>

namespace cqa {

ShardedSolveService::ShardedSolveService(ShardedServiceOptions options)
    : options_(std::move(options)) {}

ShardedSolveService::~ShardedSolveService() {
  Shutdown(std::chrono::milliseconds(0));
}

Result<DatabaseRegistry::Entry> ShardedSolveService::Attach(
    const std::string& name, std::shared_ptr<const Database> db) {
  using R = Result<DatabaseRegistry::Entry>;
  if (!accepting_.load(std::memory_order_acquire)) {
    return R::Error(ErrorCode::kOverloaded,
                    "registry is shutting down; attach refused");
  }

  // Journal recovery runs before the registry attach, so a diverging or
  // unreadable journal leaves nothing attached. Each replayed record's
  // fingerprint must match the one journaled at append time: a mismatch
  // means the base snapshot is not the one the journal was written
  // against (or the journal lies), and serving from it would silently
  // resurrect pre-crash state.
  uint64_t replayed = 0;
  std::unordered_map<std::string, uint64_t> replayed_ids;
  std::unique_ptr<DeltaJournal> journal;
  if (!options_.journal_dir.empty()) {
    if (!DatabaseRegistry::ValidName(name)) {
      return R::Error(ErrorCode::kUnsupported,
                      "invalid database name '" + name +
                          "' (1-64 chars from [A-Za-z0-9_.-])");
    }
    if (db == nullptr) {
      return R::Error(ErrorCode::kInternal, "attach of a null database");
    }
    const std::string path = options_.journal_dir + "/" + name + ".journal";
    Result<JournalReplay> replay =
        ReplayJournalFile(path, /*truncate_torn_tail=*/true);
    if (!replay.ok()) return R::Error(replay);
    for (const JournalRecord& rec : replay->records) {
      Result<DeltaApplyOutcome> applied =
          ApplyDeltaToDatabase(*db, rec.delta);
      if (!applied.ok()) {
        return R::Error(ErrorCode::kInternal,
                        "journal replay of '" + name + "' failed at record " +
                            std::to_string(replayed + 1) + " (delta '" +
                            rec.delta.id + "'): " + applied.error());
      }
      if (applied->fingerprint.hi != rec.fp_after.hi ||
          applied->fingerprint.lo != rec.fp_after.lo) {
        return R::Error(
            ErrorCode::kInternal,
            "journal replay of '" + name + "' diverged at record " +
                std::to_string(replayed + 1) + " (delta '" + rec.delta.id +
                "'): replayed fingerprint " + applied->fingerprint.ToHex() +
                " != journaled " + rec.fp_after.ToHex() +
                " — wrong base snapshot for this journal?");
      }
      db = applied->db;
      ++replayed;
      replayed_ids.emplace(rec.delta.id, replayed);
    }
    Result<std::unique_ptr<DeltaJournal>> opened =
        DeltaJournal::Open(path, options_.journal);
    if (!opened.ok()) return R::Error(opened);
    journal = std::move(opened.value());
  }

  // The registry is the arbiter of names: a duplicate or invalid name
  // fails here before any worker thread is spawned. It also pays for the
  // block index + fingerprint precomputation.
  Result<std::shared_ptr<const Database>> attached = registry_.Attach(name, db);
  if (!attached.ok()) return R::Error(attached);
  auto shard = std::make_shared<Shard>();
  shard->name = name;
  shard->db = *attached;
  shard->fingerprint = FingerprintDatabase(**attached);  // memoized
  shard->epoch = replayed;
  shard->applied_delta_ids = std::move(replayed_ids);
  shard->journal = std::move(journal);
  shard->service = std::make_unique<SolveService>(options_.shard);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The registry rejected duplicates, so this insert cannot collide.
    shards_.emplace(name, std::move(shard));
  }
  return registry_.Get(name);
}

Result<DatabaseRegistry::Entry> ShardedSolveService::Attach(
    const std::string& name, Database db) {
  return Attach(name, std::make_shared<const Database>(std::move(db)));
}

Result<DetachOutcome> ShardedSolveService::Detach(const std::string& name) {
  using R = Result<DetachOutcome>;
  ShardPtr shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it == shards_.end()) {
      return R::Error(ErrorCode::kUnsupported,
                      "database '" + name + "' is not attached");
    }
    shard = it->second;
  }
  if (shard->detaching.exchange(true, std::memory_order_acq_rel)) {
    return R::Error(ErrorCode::kUnsupported,
                    "detach of '" + name + "' is already in progress");
  }
  // From here on new submissions fail-fast with kDetached. Order matters:
  // shed the queued backlog first (typed kDetached, not a silent drop),
  // then let the in-flight solves finish inside the drain window. The
  // shard stays in the map throughout so Cancel keeps working on the
  // survivors; the registry keeps its reference until the drain is over,
  // so no running solve ever observes the database disappearing.
  DetachOutcome out;
  out.shed = shard->service->ShedQueued(
      ErrorCode::kDetached,
      "database '" + name + "' detached while the request was queued");
  out.drained = shard->service->Shutdown(options_.detach_drain);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.erase(name);
  }
  registry_.Detach(name);
  return out;
}

Result<ShardedSolveService::ShardPtr> ShardedSolveService::ResolveShard(
    const std::string& db_name) const {
  using R = Result<ShardPtr>;
  std::string name = db_name;
  if (name.empty()) {
    name = registry_.DefaultName();
    if (name.empty()) {
      return R::Error(ErrorCode::kDetached, "no default database attached");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(name);
  if (it == shards_.end()) {
    return R::Error(ErrorCode::kDetached,
                    "database '" + name + "' is not attached");
  }
  if (it->second->detaching.load(std::memory_order_acquire)) {
    return R::Error(ErrorCode::kDetached,
                    "database '" + name + "' is detaching");
  }
  return it->second;
}

Result<DeltaOutcome> ShardedSolveService::ApplyDelta(
    const std::string& db_name, const FactDelta& delta) {
  using R = Result<DeltaOutcome>;
  if (delta.id.empty() || delta.id.size() > kMaxDeltaIdBytes) {
    return R::Error(ErrorCode::kUnsupported,
                    "delta id must be 1-" +
                        std::to_string(kMaxDeltaIdBytes) + " bytes");
  }
  Result<ShardPtr> resolved = ResolveShard(db_name);
  if (!resolved.ok()) return R::Error(resolved);
  ShardPtr shard = *resolved;

  // One delta at a time per shard: validation, journal append, cache
  // migration, and the epoch swap are a single critical section, so a
  // concurrent Submit pins either the epoch before this delta or the one
  // after — never a half-applied state.
  std::lock_guard<std::mutex> lock(shard->db_mu);
  DeltaOutcome out;
  out.name = shard->name;
  out.delta_id = delta.id;
  if (shard->applied_delta_ids.count(delta.id) > 0) {
    // Idempotent replay of an acknowledged delta (client retry after a
    // lost ack): acknowledge again with the current state, change nothing.
    out.applied = false;
    out.epoch = shard->epoch;
    out.fingerprint = shard->fingerprint;
    return out;
  }

  Result<DeltaApplyOutcome> applied = ApplyDeltaToDatabase(*shard->db, delta);
  if (!applied.ok()) return R::Error(applied);

  // Write-ahead: the record must be durable before anything observable
  // changes. An append failure (ENOSPC, fault injection, torn write)
  // rejects the delta outright — the database, cache, and epoch counter
  // are untouched, and the client must not treat the delta as applied.
  if (shard->journal != nullptr) {
    Result<bool> appended =
        shard->journal->Append(delta, applied->fingerprint);
    if (!appended.ok()) return R::Error(appended);
  }

  // Cache migration happens before the new epoch is published: after the
  // swap, every lookup uses the new fingerprint, and entries under the old
  // prefix would never be found again (rekeying would be pointless and
  // stale-serving impossible either way — the prefix *is* the epoch).
  std::pair<uint64_t, uint64_t> counts = shard->service->OnDatabaseDelta(
      shard->fingerprint, applied->fingerprint, applied->touched);

  registry_.Replace(shard->name, applied->db, applied->fingerprint);
  shard->db = applied->db;
  shard->fingerprint = applied->fingerprint;
  ++shard->epoch;
  ++shard->deltas_applied;
  shard->applied_delta_ids.emplace(delta.id, shard->epoch);

  out.applied = true;
  out.epoch = shard->epoch;
  out.fingerprint = applied->fingerprint;
  out.inserted = applied->inserted;
  out.deleted = applied->deleted;
  out.cache_invalidated = counts.first;
  out.cache_rekeyed = counts.second;
  return out;
}

Result<uint64_t> ShardedSolveService::Submit(const std::string& db_name,
                                             ServeJob job, Callback callback,
                                             std::string* resolved_name) {
  Result<ShardPtr> shard = ResolveShard(db_name);
  if (!shard.ok()) return Result<uint64_t>::Error(shard);
  {
    // Epoch pin: the copy taken here keeps this request (and any sandbox
    // child forked from it) on a consistent snapshot even if a delta swaps
    // the shard's instance while the request is queued or running.
    std::lock_guard<std::mutex> lock((*shard)->db_mu);
    job.db = (*shard)->db;
  }
  if (resolved_name != nullptr) *resolved_name = (*shard)->name;
  Result<uint64_t> id =
      (*shard)->service->Submit(std::move(job), std::move(callback));
  if (!id.ok() && id.code() == ErrorCode::kOverloaded &&
      (*shard)->detaching.load(std::memory_order_acquire)) {
    // Raced with Detach: the shard refused admission because its service
    // began shutting down. Surface the cause, not the mechanism.
    return Result<uint64_t>::Error(
        ErrorCode::kDetached,
        "database '" + (*shard)->name + "' is detaching");
  }
  return id;
}

bool ShardedSolveService::Cancel(const std::string& db_name, uint64_t id) {
  ShardPtr shard;
  {
    std::string name = db_name;
    if (name.empty()) name = registry_.DefaultName();
    if (name.empty()) return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it == shards_.end()) return false;
    // Deliberately no detaching check: cancelling a survivor of a
    // detaching shard shortens the drain.
    shard = it->second;
  }
  return shard->service->Cancel(id);
}

void ShardedSolveService::CancelAll() {
  std::vector<ShardPtr> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [name, shard] : shards_) shards.push_back(shard);
  }
  for (ShardPtr& shard : shards) shard->service->CancelAll();
}

bool ShardedSolveService::Shutdown(std::chrono::milliseconds drain_deadline) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (shutdown_done_) return drained_result_;
  accepting_.store(false, std::memory_order_release);
  std::vector<ShardPtr> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (auto& [name, shard] : shards_) shards.push_back(shard);
  }
  // Drain shards concurrently: the slowest shard bounds the wall clock.
  // Shards stay in the map (their services answer Stats after shutdown);
  // a concurrent Detach simply finds an already-shut service and drains
  // nothing.
  std::atomic<bool> all_drained{true};
  std::vector<std::thread> drains;
  drains.reserve(shards.size());
  for (ShardPtr& shard : shards) {
    drains.emplace_back([&all_drained, shard, drain_deadline] {
      if (!shard->service->Shutdown(drain_deadline)) {
        all_drained.store(false, std::memory_order_release);
      }
    });
  }
  for (std::thread& t : drains) t.join();
  shutdown_done_ = true;
  drained_result_ = all_drained.load(std::memory_order_acquire);
  return drained_result_;
}

ServiceStats ShardedSolveService::Stats() const {
  ServiceStats total;
  for (const auto& [name, stats] : StatsPerDb()) {
    total.submitted += stats.submitted;
    total.accepted += stats.accepted;
    total.shed += stats.shed;
    total.completed += stats.completed;
    total.failed += stats.failed;
    total.cancelled += stats.cancelled;
    total.retries += stats.retries;
    total.degraded += stats.degraded;
    total.inflight += stats.inflight;
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.cache_coalesced += stats.cache_coalesced;
    total.cache_bypass += stats.cache_bypass;
    total.cache_entries += stats.cache_entries;
    total.cache_evictions += stats.cache_evictions;
    total.cache_invalidated += stats.cache_invalidated;
    total.cache_rekeyed += stats.cache_rekeyed;
    total.epoch += stats.epoch;
    total.deltas_applied += stats.deltas_applied;
    total.journal_bytes += stats.journal_bytes;
    total.journal_fsyncs += stats.journal_fsyncs;
    total.sandbox_forks += stats.sandbox_forks;
    total.sandbox_kills += stats.sandbox_kills;
    total.sandbox_crashes += stats.sandbox_crashes;
    total.sandbox_rss_breaches += stats.sandbox_rss_breaches;
    // High-water gauge, not a count: the fleet peak is the worst shard.
    total.sandbox_peak_rss_kb =
        std::max(total.sandbox_peak_rss_kb, stats.sandbox_peak_rss_kb);
    total.latency_count += stats.latency_count;
    // Percentiles of a union of samples cannot be reconstructed from the
    // shards' percentiles; report the elementwise worst shard — exact with
    // one shard, a conservative (pessimistic) bound otherwise.
    total.latency_p50_us = std::max(total.latency_p50_us, stats.latency_p50_us);
    total.latency_p90_us = std::max(total.latency_p90_us, stats.latency_p90_us);
    total.latency_p99_us = std::max(total.latency_p99_us, stats.latency_p99_us);
    total.latency_max_us = std::max(total.latency_max_us, stats.latency_max_us);
  }
  return total;
}

ServiceStats ShardedSolveService::ShardStats(const ShardPtr& shard) const {
  ServiceStats s = shard->service->Stats();
  std::lock_guard<std::mutex> lock(shard->db_mu);
  s.epoch = shard->epoch;
  s.deltas_applied = shard->deltas_applied;
  if (shard->journal != nullptr) {
    s.journal_bytes = shard->journal->bytes_written();
    s.journal_fsyncs = shard->journal->fsyncs();
  }
  return s;
}

std::vector<std::pair<std::string, ServiceStats>>
ShardedSolveService::StatsPerDb() const {
  std::vector<std::pair<std::string, ShardPtr>> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (const auto& [name, shard] : shards_) shards.emplace_back(name, shard);
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, ServiceStats>> out;
  out.reserve(shards.size());
  for (auto& [name, shard] : shards) {
    out.emplace_back(name, ShardStats(shard));
  }
  return out;
}

Result<ServiceStats> ShardedSolveService::StatsFor(
    const std::string& db_name) const {
  std::string name = db_name;
  if (name.empty()) {
    name = registry_.DefaultName();
    if (name.empty()) {
      return Result<ServiceStats>::Error(ErrorCode::kDetached,
                                         "no default database attached");
    }
  }
  ShardPtr shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shards_.find(name);
    if (it == shards_.end()) {
      return Result<ServiceStats>::Error(
          ErrorCode::kDetached, "database '" + name + "' is not attached");
    }
    shard = it->second;
  }
  return ShardStats(shard);
}

}  // namespace cqa
