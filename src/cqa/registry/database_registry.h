#ifndef CQA_REGISTRY_DATABASE_REGISTRY_H_
#define CQA_REGISTRY_DATABASE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/db/database.h"

namespace cqa {

/// A named, refcounted catalogue of immutable database instances. One
/// registry backs one serving process: `attach` takes ownership of a
/// database (freezing it — the registry only ever hands out
/// `shared_ptr<const Database>`), precomputes its block index and content
/// fingerprint so no request pays for either, and `detach` releases the
/// registry's reference — the instance itself lives until the last
/// in-flight solve drops its own reference, so detach never invalidates
/// running work.
///
/// The first attached instance becomes the *default*: lookups with an
/// empty name resolve to it, which is how solve frames without a `"db"`
/// field keep their pre-registry semantics. Detaching the default leaves
/// the registry default-less (empty-name lookups fail) until the next
/// attach, which claims the vacancy.
///
/// Thread-safe; all methods may be called concurrently. The registry does
/// not know about worker shards — `ShardedSolveService` layers those on
/// top and keeps the two in lockstep.
class DatabaseRegistry {
 public:
  /// One catalogue row, as a value snapshot (safe to hold across detach).
  struct Entry {
    std::string name;
    std::shared_ptr<const Database> db;
    DbFingerprint fingerprint;
    bool is_default = false;
    /// `shared_ptr::use_count()` at snapshot time: 1 means only the
    /// registry holds it; more means solves (or a snapshot holder) do.
    /// Observability only — inherently racy, never used for decisions.
    long use_count = 0;
  };

  /// Instance names are operator-facing identifiers, not free text:
  /// 1–64 characters from [A-Za-z0-9_.-]. (Empty is reserved for "the
  /// default" in lookups and therefore not attachable.)
  static bool ValidName(const std::string& name);

  /// Attaches `db` under `name`, precomputing its block index and content
  /// fingerprint. Fails with `kUnsupported` on an invalid or duplicate
  /// name. The first successful attach (or the first after the default was
  /// detached) becomes the default instance.
  Result<std::shared_ptr<const Database>> Attach(
      const std::string& name, std::shared_ptr<const Database> db);
  Result<std::shared_ptr<const Database>> Attach(const std::string& name,
                                                 Database db);

  /// Releases the registry's reference to `name`. Fails with
  /// `kUnsupported` when the name is unknown. Returns the detached
  /// instance so the caller can keep it alive through its own drain.
  Result<std::shared_ptr<const Database>> Detach(const std::string& name);

  /// Swaps `name`'s instance for a new epoch (a delta-derived database),
  /// returning the previous instance. The slot keeps its default status;
  /// `fingerprint` must be the new instance's (the caller already computed
  /// it during delta application — no rehash here). Fails with
  /// `kUnsupported` for unknown names. Readers holding the old epoch are
  /// unaffected: the registry only swaps its own reference.
  Result<std::shared_ptr<const Database>> Replace(
      const std::string& name, std::shared_ptr<const Database> db,
      const DbFingerprint& fingerprint);

  /// Looks up an instance; the empty name resolves to the default. Fails
  /// with `kDetached` for unknown names (the instance is not attached —
  /// whether it never was or was detached is indistinguishable here) and
  /// for an empty name when no default exists.
  Result<Entry> Get(const std::string& name) const;

  /// All attached instances, sorted by name.
  std::vector<Entry> List() const;

  /// The current default instance's name; empty when none.
  std::string DefaultName() const;

  size_t Size() const;

 private:
  struct Slot {
    std::shared_ptr<const Database> db;
    DbFingerprint fingerprint;
  };

  Entry EntryFor(const std::string& name, const Slot& slot) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> slots_;
  std::string default_name_;
};

}  // namespace cqa

#endif  // CQA_REGISTRY_DATABASE_REGISTRY_H_
