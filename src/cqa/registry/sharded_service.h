#ifndef CQA_REGISTRY_SHARDED_SERVICE_H_
#define CQA_REGISTRY_SHARDED_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/delta/delta.h"
#include "cqa/delta/journal.h"
#include "cqa/registry/database_registry.h"
#include "cqa/serve/service.h"
#include "cqa/serve/stats.h"

namespace cqa {

struct ShardedServiceOptions {
  /// Options applied to every shard's `SolveService` — in particular
  /// `shard.workers` is the per-database worker count (`--shard-workers`)
  /// and `shard.cache_entries` sizes each shard's own result cache.
  /// Queue, EDF discipline, retries, backoff, and coalescing are all
  /// per-shard: a saturated shard sheds and backlogs alone.
  ServiceOptions shard;
  /// How long `Detach` lets the shard's in-flight solves finish before
  /// force-cancelling them (queued requests are always shed immediately
  /// with `kDetached`, never drained).
  std::chrono::milliseconds detach_drain{5000};
  /// When non-empty, every attached database gets a write-ahead delta
  /// journal at `<journal_dir>/<name>.journal`: accepted deltas are
  /// appended (and fsynced per `journal.fsync`) before they are
  /// acknowledged, and `Attach` replays any existing journal over the
  /// base snapshot — truncating a torn tail — so a restarted daemon
  /// resumes at exactly the acknowledged prefix. Empty (the default)
  /// disables durability: deltas still apply, but die with the process.
  std::string journal_dir;
  JournalOptions journal;
};

/// What `Detach` did: how many queued requests were shed with `kDetached`,
/// and whether every in-flight solve finished inside the drain window
/// (false means the stragglers were force-cancelled).
struct DetachOutcome {
  size_t shed = 0;
  bool drained = true;
};

/// What `ApplyDelta` did. `applied == false` means the delta id was seen
/// before (idempotent replay — the ack repeats the current epoch state,
/// nothing changed). The counters describe this application only.
struct DeltaOutcome {
  std::string name;      // resolved registry name
  std::string delta_id;
  bool applied = true;
  uint64_t epoch = 0;    // after this delta
  DbFingerprint fingerprint;  // after this delta
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  uint64_t cache_invalidated = 0;
  uint64_t cache_rekeyed = 0;
};

/// A `DatabaseRegistry` with one `SolveService` worker shard per attached
/// database: the registry names the instances, the shards isolate them.
/// Each attach spins up a dedicated bounded queue + worker set, so a
/// pathological (NL-hard) workload against one database saturates only its
/// own shard — admission control, EDF ordering, retry/backoff,
/// cancellation, and single-flight coalescing are all per-shard, and FO
/// traffic on a sibling shard keeps its latency.
///
/// Request ids are **per shard** (each `SolveService` numbers its own);
/// callers address work as (database name, id). An empty database name
/// resolves to the registry default, preserving the single-database
/// protocol.
///
/// Lifecycle: `Detach` fail-fasts new submissions with `kDetached`, sheds
/// the shard's queued backlog with the same code, drains in-flight solves
/// for up to `detach_drain` (then force-cancels), and only then releases
/// the registry's reference — in-flight work never observes the database
/// disappearing. `Shutdown` drains every shard concurrently, so the slow
/// shard bounds the wall clock instead of summing.
class ShardedSolveService {
 public:
  using Callback = SolveService::Callback;

  explicit ShardedSolveService(ShardedServiceOptions options);
  ~ShardedSolveService();  // shuts down with a zero drain deadline

  ShardedSolveService(const ShardedSolveService&) = delete;
  ShardedSolveService& operator=(const ShardedSolveService&) = delete;

  /// Attaches a database under `name` (see `DatabaseRegistry::Attach` for
  /// name rules) and starts its worker shard. Fails with `kUnsupported` on
  /// invalid/duplicate names, `kOverloaded` after shutdown began.
  Result<DatabaseRegistry::Entry> Attach(const std::string& name,
                                         std::shared_ptr<const Database> db);
  Result<DatabaseRegistry::Entry> Attach(const std::string& name, Database db);

  /// Detaches `name`: shed queued, drain in-flight, release the instance.
  /// Fails with `kUnsupported` when the name is unknown or a detach of it
  /// is already in progress. Blocks for up to `detach_drain`.
  Result<DetachOutcome> Detach(const std::string& name);

  /// Applies `delta` to the shard of `db_name` (empty ⇒ default),
  /// producing and publishing a new database epoch. Write-ahead contract
  /// when a journal is configured: the record is on disk (fsynced per
  /// policy) *before* the swap — a journal append failure rejects the
  /// delta with the database unchanged. In-flight solves keep the epoch
  /// they pinned at submit; new submissions see the new one. Cache entries
  /// whose query footprint intersects the delta are dropped, the rest are
  /// rekeyed and keep serving hits. Duplicate delta ids (per shard,
  /// journal-replayed ids included) are acknowledged idempotently with
  /// `applied == false`. Fails with `kDetached` (unknown/detaching),
  /// `kUnsupported` (validation), `kInternal` (journal I/O).
  Result<DeltaOutcome> ApplyDelta(const std::string& db_name,
                                  const FactDelta& delta);

  /// Routes `job` to the shard of `db_name` (empty ⇒ default instance) and
  /// submits it there; `job.db` is overwritten with the attached instance.
  /// On success `*resolved_name` (when non-null) receives the shard's
  /// registry name — callers must cancel against that name, not the alias
  /// they submitted with. Fails with `kDetached` for unknown/detaching
  /// names, `kOverloaded` when the shard's queue sheds.
  Result<uint64_t> Submit(const std::string& db_name, ServeJob job,
                          Callback callback,
                          std::string* resolved_name = nullptr);

  /// Cancels request `id` on the shard of `db_name` (empty ⇒ default).
  /// False when the shard or the id is unknown or already terminal.
  bool Cancel(const std::string& db_name, uint64_t id);

  /// Cancels every request on every shard.
  void CancelAll();

  /// Stops admissions on every shard, then drains them all concurrently
  /// within `drain_deadline`. True when every shard drained cleanly.
  /// Idempotent.
  bool Shutdown(std::chrono::milliseconds drain_deadline);

  /// Aggregate accounting across shards: counters are summed; latency
  /// percentiles are the elementwise worst (max) across shards — exact
  /// when one shard exists, a conservative upper bound otherwise.
  ServiceStats Stats() const;

  /// Per-database accounting, keyed by registry name, sorted by name.
  /// This is where operators see which instance is cold: each shard owns
  /// its cache, so hits/misses/coalesced are inherently per-database.
  std::vector<std::pair<std::string, ServiceStats>> StatsPerDb() const;

  /// One shard's accounting; fails with `kDetached` for unknown names.
  Result<ServiceStats> StatsFor(const std::string& db_name) const;

  const DatabaseRegistry& registry() const { return registry_; }
  const ShardedServiceOptions& options() const { return options_; }

 private:
  struct Shard {
    std::string name;
    /// Current epoch's instance; guarded by `db_mu`. `Submit` copies it
    /// into the job under the lock — that copy is the request's epoch pin.
    std::shared_ptr<const Database> db;
    std::unique_ptr<SolveService> service;
    /// Set at the start of `Detach`; submissions fail-fast from then on.
    std::atomic<bool> detaching{false};

    /// Guards `db` and all delta state below; also serialises delta
    /// application (journal append + epoch swap are atomic under it).
    std::mutex db_mu;
    uint64_t epoch = 0;           // deltas ever applied, replay included
    uint64_t deltas_applied = 0;  // applied by this process (not replay)
    DbFingerprint fingerprint;    // of the current epoch
    std::unordered_map<std::string, uint64_t> applied_delta_ids;  // id→epoch
    std::unique_ptr<DeltaJournal> journal;  // null without journal_dir
  };
  using ShardPtr = std::shared_ptr<Shard>;

  /// Resolves a request's database name to its shard (empty ⇒ default).
  Result<ShardPtr> ResolveShard(const std::string& db_name) const;

  /// One shard's service stats with the delta/journal counters overlaid.
  ServiceStats ShardStats(const ShardPtr& shard) const;

  ShardedServiceOptions options_;
  DatabaseRegistry registry_;

  std::atomic<bool> accepting_{true};

  mutable std::mutex mu_;  // guards shards_
  std::unordered_map<std::string, ShardPtr> shards_;

  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  bool drained_result_ = true;
};

}  // namespace cqa

#endif  // CQA_REGISTRY_SHARDED_SERVICE_H_
