#ifndef CQA_REGISTRY_SHARDED_SERVICE_H_
#define CQA_REGISTRY_SHARDED_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cqa/base/result.h"
#include "cqa/db/database.h"
#include "cqa/delta/delta.h"
#include "cqa/delta/journal.h"
#include "cqa/delta/snapshot.h"
#include "cqa/registry/database_registry.h"
#include "cqa/serve/service.h"
#include "cqa/serve/stats.h"

namespace cqa {

struct ShardedServiceOptions {
  /// Options applied to every shard's `SolveService` — in particular
  /// `shard.workers` is the per-database worker count (`--shard-workers`)
  /// and `shard.cache_entries` sizes each shard's own result cache.
  /// Queue, EDF discipline, retries, backoff, and coalescing are all
  /// per-shard: a saturated shard sheds and backlogs alone.
  ServiceOptions shard;
  /// How long `Detach` lets the shard's in-flight solves finish before
  /// force-cancelling them (queued requests are always shed immediately
  /// with `kDetached`, never drained).
  std::chrono::milliseconds detach_drain{5000};
  /// When non-empty, every attached database gets a write-ahead delta
  /// journal at `<journal_dir>/<name>.journal`: accepted deltas are
  /// appended (and fsynced per `journal.fsync`) before they are
  /// acknowledged, and `Attach` recovers from `<journal_dir>/
  /// <name>.snapshot` + the journal tail (or a full replay over the base
  /// snapshot when no snapshot file exists), truncating a torn tail — so a
  /// restarted daemon resumes at exactly the acknowledged prefix in time
  /// bounded by snapshot size + tail length. Empty (the default) disables
  /// durability: deltas still apply, but die with the process.
  std::string journal_dir;
  JournalOptions journal;
  /// Automatic snapshot/compaction policy plus the snapshotter's
  /// crash-drill fault knobs. Disabled by default; `Snapshot()` (the
  /// `admin snapshot` frame) works regardless.
  SnapshotPolicy snapshot;
  /// Capacity of the per-shard sliding idempotency window over applied
  /// delta ids (persisted across snapshots). Duplicate detection is exact
  /// within the last `delta_id_window` applications — PR 7 kept every id
  /// forever, which is unbounded in a long-running daemon.
  uint64_t delta_id_window = DeltaIdWindow::kDefaultCapacity;
};

/// What `Detach` did: how many queued requests were shed with `kDetached`,
/// and whether every in-flight solve finished inside the drain window
/// (false means the stragglers were force-cancelled).
struct DetachOutcome {
  size_t shed = 0;
  bool drained = true;
};

/// What `ApplyDelta` did. `applied == false` means the delta id was seen
/// before (idempotent replay — the ack repeats the current epoch state,
/// nothing changed). The counters describe this application only.
struct DeltaOutcome {
  std::string name;      // resolved registry name
  std::string delta_id;
  bool applied = true;
  uint64_t epoch = 0;    // after this delta
  DbFingerprint fingerprint;  // after this delta
  uint64_t inserted = 0;
  uint64_t deleted = 0;
  uint64_t cache_invalidated = 0;
  uint64_t cache_rekeyed = 0;
};

/// What `Snapshot` did: the epoch it captured and how much journal the
/// compaction reclaimed.
struct SnapshotOutcome {
  std::string name;
  uint64_t epoch = 0;
  DbFingerprint fingerprint;
  uint64_t snapshot_bytes = 0;
  uint64_t journal_bytes_before = 0;
  uint64_t journal_bytes_after = 0;
};

/// One event on the replication stream. Listeners receive, per database, a
/// `kAttach` bootstrap (the full current state: facts, epoch, fingerprint,
/// idempotency window) followed by every `kDelta` in epoch order, and
/// `kDetach` when the database goes away. Events for one database are
/// totally ordered (emitted under its delta lock); a listener may see a
/// delta whose epoch its bootstrap already covered — appliers must treat
/// `epoch <= local` as an idempotent skip.
struct ReplicationEvent {
  enum class Kind { kAttach, kDelta, kDetach };
  Kind kind = Kind::kDelta;
  std::string db;
  uint64_t epoch = 0;          // after this event applies
  DbFingerprint fingerprint;   // after this event applies
  // kAttach only:
  std::string facts;           // Database::ToText()
  std::vector<std::pair<std::string, uint64_t>> delta_ids;
  // kDelta only:
  FactDelta delta;
};

/// MUST NOT block: called under the emitting shard's delta lock, on the
/// applier's thread. Wire fan-out enqueues to a non-blocking outbound
/// queue and drops the stream (never the daemon) when the peer stalls.
using ReplicationListener = std::function<void(const ReplicationEvent&)>;

/// A `DatabaseRegistry` with one `SolveService` worker shard per attached
/// database: the registry names the instances, the shards isolate them.
/// Each attach spins up a dedicated bounded queue + worker set, so a
/// pathological (NL-hard) workload against one database saturates only its
/// own shard — admission control, EDF ordering, retry/backoff,
/// cancellation, and single-flight coalescing are all per-shard, and FO
/// traffic on a sibling shard keeps its latency.
///
/// Request ids are **per shard** (each `SolveService` numbers its own);
/// callers address work as (database name, id). An empty database name
/// resolves to the registry default, preserving the single-database
/// protocol.
///
/// Lifecycle: `Detach` fail-fasts new submissions with `kDetached`, sheds
/// the shard's queued backlog with the same code, drains in-flight solves
/// for up to `detach_drain` (then force-cancels), and only then releases
/// the registry's reference — in-flight work never observes the database
/// disappearing. `Shutdown` drains every shard concurrently, so the slow
/// shard bounds the wall clock instead of summing.
class ShardedSolveService {
 public:
  using Callback = SolveService::Callback;

  explicit ShardedSolveService(ShardedServiceOptions options);
  ~ShardedSolveService();  // shuts down with a zero drain deadline

  ShardedSolveService(const ShardedSolveService&) = delete;
  ShardedSolveService& operator=(const ShardedSolveService&) = delete;

  /// Attaches a database under `name` (see `DatabaseRegistry::Attach` for
  /// name rules) and starts its worker shard. Fails with `kUnsupported` on
  /// invalid/duplicate names, `kOverloaded` after shutdown began.
  Result<DatabaseRegistry::Entry> Attach(const std::string& name,
                                         std::shared_ptr<const Database> db);
  Result<DatabaseRegistry::Entry> Attach(const std::string& name, Database db);

  /// Detaches `name`: shed queued, drain in-flight, release the instance.
  /// Fails with `kUnsupported` when the name is unknown or a detach of it
  /// is already in progress. Blocks for up to `detach_drain`.
  Result<DetachOutcome> Detach(const std::string& name);

  /// Applies `delta` to the shard of `db_name` (empty ⇒ default),
  /// producing and publishing a new database epoch. Write-ahead contract
  /// when a journal is configured: the record is on disk *before* the swap
  /// — a journal append failure rejects the delta with the database
  /// unchanged — and the ack returns only after the record is covered by
  /// an fsync per policy (`kGroup` batches the wait across concurrent
  /// appliers: the epoch publishes immediately, the ack rides the next
  /// shared fsync). In-flight solves keep the epoch they pinned at submit;
  /// new submissions see the new one. Cache entries whose query footprint
  /// intersects the delta are dropped, the rest are rekeyed and keep
  /// serving hits. Duplicate delta ids within the idempotency window
  /// (journal/snapshot-recovered ids included) are acknowledged
  /// idempotently with `applied == false`. May take an automatic snapshot
  /// afterwards per `options().snapshot`. Fails with `kDetached`
  /// (unknown/detaching), `kUnsupported` (validation), `kReadOnly`
  /// (follower), `kInternal` (journal I/O — including a failed group
  /// fsync, in which case the delta MUST be treated as not acknowledged).
  Result<DeltaOutcome> ApplyDelta(const std::string& db_name,
                                  const FactDelta& delta);

  /// Takes an epoch snapshot of `db_name` now and truncates its journal
  /// (bounded-time recovery for the next attach). Requires a configured
  /// `journal_dir` (`kUnsupported` otherwise). A failed snapshot write
  /// leaves the previous snapshot and the journal intact.
  Result<SnapshotOutcome> Snapshot(const std::string& db_name);

  /// Read-only mode (warm-standby follower): `ApplyDelta` refuses with
  /// `kReadOnly`; solves, stats, and the replication-apply entry points
  /// below are unaffected. Flipped off by failover promotion.
  void SetReadOnly(bool read_only) {
    read_only_.store(read_only, std::memory_order_release);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Follower entry point: installs a replicated bootstrap snapshot for
  /// `name` — attaching the database if it is new, wholesale-replacing its
  /// state if the stream restarted. Verifies `facts` reproduce
  /// `fingerprint` (refusing divergence loudly), seeds the idempotency
  /// window from `delta_ids`, and (when journaling) persists a local
  /// snapshot so the follower's own crash recovery starts from here.
  /// Bypasses read-only mode. `epoch <= ` the local epoch is an idempotent
  /// no-op.
  Result<bool> ApplyReplicaSnapshot(
      const std::string& name, const std::string& facts, uint64_t epoch,
      const DbFingerprint& fingerprint,
      const std::vector<std::pair<std::string, uint64_t>>& delta_ids);

  /// Follower entry point: applies one replicated delta that must produce
  /// exactly `epoch` with `fingerprint`. `epoch <=` local is an idempotent
  /// skip (`applied == false`); an epoch gap or a fingerprint mismatch is
  /// `kInternal` — the stream is torn or diverged and the caller must
  /// resync from a bootstrap. Bypasses read-only mode; journals locally
  /// like a primary apply.
  Result<DeltaOutcome> ApplyReplicatedDelta(const std::string& name,
                                            const FactDelta& delta,
                                            uint64_t epoch,
                                            const DbFingerprint& fingerprint);

  /// Subscribes `listener` to the replication stream: it is synchronously
  /// fed a `kAttach` bootstrap for every currently attached database, then
  /// every subsequent delta/attach/detach, until removed. Returns the
  /// token for `RemoveReplicationListener`.
  uint64_t AddReplicationListener(ReplicationListener listener);
  void RemoveReplicationListener(uint64_t token);

  /// Routes `job` to the shard of `db_name` (empty ⇒ default instance) and
  /// submits it there; `job.db` is overwritten with the attached instance.
  /// On success `*resolved_name` (when non-null) receives the shard's
  /// registry name — callers must cancel against that name, not the alias
  /// they submitted with. Fails with `kDetached` for unknown/detaching
  /// names, `kOverloaded` when the shard's queue sheds.
  Result<uint64_t> Submit(const std::string& db_name, ServeJob job,
                          Callback callback,
                          std::string* resolved_name = nullptr);

  /// Cancels request `id` on the shard of `db_name` (empty ⇒ default).
  /// False when the shard or the id is unknown or already terminal.
  bool Cancel(const std::string& db_name, uint64_t id);

  /// Cancels every request on every shard.
  void CancelAll();

  /// Stops admissions on every shard, then drains them all concurrently
  /// within `drain_deadline`. True when every shard drained cleanly.
  /// Idempotent.
  bool Shutdown(std::chrono::milliseconds drain_deadline);

  /// Aggregate accounting across shards: counters are summed; latency
  /// percentiles are the elementwise worst (max) across shards — exact
  /// when one shard exists, a conservative upper bound otherwise.
  ServiceStats Stats() const;

  /// Per-database accounting, keyed by registry name, sorted by name.
  /// This is where operators see which instance is cold: each shard owns
  /// its cache, so hits/misses/coalesced are inherently per-database.
  std::vector<std::pair<std::string, ServiceStats>> StatsPerDb() const;

  /// One shard's accounting; fails with `kDetached` for unknown names.
  Result<ServiceStats> StatsFor(const std::string& db_name) const;

  const DatabaseRegistry& registry() const { return registry_; }
  const ShardedServiceOptions& options() const { return options_; }

 private:
  struct Shard {
    std::string name;
    /// Current epoch's instance; guarded by `db_mu`. `Submit` copies it
    /// into the job under the lock — that copy is the request's epoch pin.
    std::shared_ptr<const Database> db;
    std::unique_ptr<SolveService> service;
    /// Set at the start of `Detach`; submissions fail-fast from then on.
    std::atomic<bool> detaching{false};

    /// Guards `db` and all delta state below; also serialises delta
    /// application (journal append + epoch swap are atomic under it).
    std::mutex db_mu;
    uint64_t epoch = 0;           // deltas ever applied, replay included
    uint64_t deltas_applied = 0;  // applied by this process (not replay)
    DbFingerprint fingerprint;    // of the current epoch
    DeltaIdWindow applied_delta_ids{DeltaIdWindow::kDefaultCapacity};
    std::unique_ptr<DeltaJournal> journal;  // null without journal_dir

    // Snapshot accounting (guarded by db_mu, overlaid into ShardStats).
    uint64_t deltas_since_snapshot = 0;
    uint64_t snapshots_taken = 0;
    uint64_t snapshots_failed = 0;
    uint64_t last_snapshot_bytes = 0;
    uint64_t last_snapshot_epoch = 0;

    /// Replication fan-out for THIS shard, guarded by db_mu. A listener
    /// appears here only after its bootstrap `kAttach` was emitted under
    /// the same lock hold — so per shard it can never see a delta before
    /// its bootstrap.
    std::unordered_map<uint64_t, ReplicationListener> repl_listeners;
  };
  using ShardPtr = std::shared_ptr<Shard>;

  /// Resolves a request's database name to its shard (empty ⇒ default).
  Result<ShardPtr> ResolveShard(const std::string& db_name) const;

  /// The shared apply path behind `ApplyDelta` and `ApplyReplicatedDelta`:
  /// the whole locked critical section (idempotency check, apply, journal
  /// append, cache migration, epoch swap, replication emit, auto-snapshot)
  /// plus the post-lock group-fsync ack gate. When `replicated`, the
  /// delta must land exactly on `repl_epoch` and reproduce `*repl_fp`.
  Result<DeltaOutcome> ApplyToShard(const ShardPtr& shard,
                                    const FactDelta& delta, bool replicated,
                                    uint64_t repl_epoch,
                                    const DbFingerprint* repl_fp);

  /// One shard's service stats with the delta/journal counters overlaid.
  ServiceStats ShardStats(const ShardPtr& shard) const;

  std::string JournalPath(const std::string& name) const {
    return options_.journal_dir + "/" + name + ".journal";
  }
  std::string SnapshotFilePath(const std::string& name) const {
    return options_.journal_dir + "/" + name + ".snapshot";
  }

  /// The snapshot pipeline (requires `shard->db_mu` held): flush pending
  /// group acks, write the snapshot file atomically, then truncate the
  /// journal. Updates the shard's snapshot accounting either way.
  Result<SnapshotOutcome> TakeSnapshotLocked(const ShardPtr& shard);
  /// Policy check after an applied delta (requires `shard->db_mu` held).
  void MaybeSnapshotLocked(const ShardPtr& shard);

  /// Emits `event` to the shard's listeners (requires `shard->db_mu`).
  void EmitLocked(const ShardPtr& shard, const ReplicationEvent& event);
  /// Builds the bootstrap event from current state (requires db_mu).
  ReplicationEvent BootstrapEventLocked(const ShardPtr& shard) const;
  /// Bootstraps every globally registered listener onto a shard that is
  /// not yet receiving deltas (a fresh attach).
  void BootstrapListenersOnAttach(const ShardPtr& shard);

  ShardedServiceOptions options_;
  DatabaseRegistry registry_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> read_only_{false};

  mutable std::mutex mu_;  // guards shards_
  std::unordered_map<std::string, ShardPtr> shards_;

  /// Global listener registry (for shards attached after subscription).
  /// Lock order: a shard's db_mu may be held when taking repl_mu_, never
  /// the reverse.
  mutable std::mutex repl_mu_;
  std::unordered_map<uint64_t, ReplicationListener> repl_listeners_;
  uint64_t repl_next_token_ = 1;

  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  bool drained_result_ = true;
};

}  // namespace cqa

#endif  // CQA_REGISTRY_SHARDED_SERVICE_H_
