#include <gtest/gtest.h>

#include "cqa/certainty/naive.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/lemma66.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(Lemma66Test, ShapeOfTheReduction) {
  Query q = Q("R(x | y)").WithDiseq(
      Diseq{{Term::Var("x"), Term::Var("y")},
            {Term::Const("a"), Term::Const("b")}});
  Result<Database> db = Database::FromText("R(a | b)");
  ASSERT_TRUE(db.ok());
  Result<Lemma66Reduction> red = ApplyLemma66(q, db.value());
  ASSERT_TRUE(red.ok()) << red.error();
  // The disequality is gone; a fresh negated all-key atom appeared.
  EXPECT_TRUE(red->query.diseqs().empty());
  EXPECT_EQ(red->query.NumLiterals(), 2u);
  const Literal& e = red->query.literal(1);
  EXPECT_TRUE(e.negated);
  EXPECT_TRUE(e.atom.IsAllKey());
  EXPECT_EQ(e.atom.arity(), 2);
  // The database gained exactly the fact E(a, b).
  EXPECT_EQ(red->database.NumFacts(), 2u);
  EXPECT_TRUE(red->database.Contains(red->e_relation,
                                     {Value::Of("a"), Value::Of("b")}));
}

TEST(Lemma66Test, PreservesCertaintyOnRandomInstances) {
  Rng rng(1301);
  RandomDbOptions opts;
  opts.blocks_per_relation = 3;
  opts.domain_size = 3;  // small domain so the disequality actually bites
  for (int trial = 0; trial < 150; ++trial) {
    Query base = Q("P(x | y), not N(x | y)");
    Query q = base.WithDiseq(Diseq{{Term::Var("x"), Term::Var("y")},
                                   {Term::Const("v0"), Term::Const("v1")}});
    Database db = GenerateRandomDatabaseFor(base, opts, &rng);
    Result<Lemma66Reduction> red = ApplyLemma66(q, db);
    ASSERT_TRUE(red.ok()) << red.error();
    Result<bool> lhs = IsCertainNaive(q, db);
    Result<bool> rhs = IsCertainNaive(red->query, red->database);
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    ASSERT_EQ(lhs.value(), rhs.value()) << db.ToString();
  }
}

TEST(Lemma66Test, RequiresAGroundDiseq) {
  Query q = Q("P(x | y), not N(x | y)");
  Schema s;
  s.AddRelationOrDie("P", 2, 1);
  Database db(s);
  EXPECT_FALSE(ApplyLemma66(q, db).ok());
  // Variable rhs (as produced mid-rewriting) is not the Lemma 6.6 shape.
  Query q2 = q.WithDiseq(Diseq{{Term::Var("x")}, {Term::Var("y")}});
  EXPECT_FALSE(ApplyLemma66(q2, db).ok());
}

TEST(Lemma66Test, FreshRelationsNeverCollide) {
  Query q = Q("P(x | y)").WithDiseq(
      Diseq{{Term::Var("x")}, {Term::Const("a")}});
  Result<Database> db = Database::FromText("P(a | b)");
  ASSERT_TRUE(db.ok());
  Result<Lemma66Reduction> r1 = ApplyLemma66(q, db.value());
  Result<Lemma66Reduction> r2 = ApplyLemma66(q, db.value());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(r1->e_relation, r2->e_relation);
}

}  // namespace
}  // namespace cqa
