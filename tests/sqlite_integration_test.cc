// End-to-end validation of the paper's practical claim: CERTAINTY(q) for
// FO-classified queries is answered by ONE SQL query on a stock SQL engine.
// We generate the DDL, the active-domain view, the data, and the rewriting
// as SQL, execute everything on an in-memory SQLite database, and compare
// against the repair-enumeration oracle.

#include <gtest/gtest.h>
#include <sqlite3.h>

#include "cqa/certainty/naive.h"
#include "cqa/fo/sql.h"
#include "cqa/gen/poll.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::string SqlLiteral(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += "'";
  return out;
}

// Runs the full pipeline on SQLite; returns the `certain` column.
Result<bool> RunOnSqlite(const Schema& schema, const Database& db,
                         const FoPtr& rewriting) {
  sqlite3* conn = nullptr;
  if (sqlite3_open(":memory:", &conn) != SQLITE_OK) {
    return Result<bool>::Error("sqlite open failed");
  }
  auto exec = [&](const std::string& sql) -> bool {
    char* err = nullptr;
    if (sqlite3_exec(conn, sql.c_str(), nullptr, nullptr, &err) !=
        SQLITE_OK) {
      std::string message = err ? err : "unknown sqlite error";
      sqlite3_free(err);
      ADD_FAILURE() << "sqlite error: " << message << "\nSQL: " << sql;
      return false;
    }
    return true;
  };

  bool ok = exec(SchemaDdl(schema)) && exec(AdomViewDdl(schema));
  if (ok) {
    for (const RelationSchema& rs : schema.relations()) {
      for (const Tuple& t : db.FactsOf(rs.name)) {
        std::string insert =
            "INSERT INTO " + SymbolName(rs.name) + " VALUES (";
        for (size_t i = 0; i < t.size(); ++i) {
          if (i > 0) insert += ", ";
          insert += SqlLiteral(t[i].name());
        }
        insert += ");";
        if (!exec(insert)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
  }
  if (!ok) {
    sqlite3_close(conn);
    return Result<bool>::Error("sqlite setup failed");
  }

  std::string query = ToSqlQuery(rewriting);
  sqlite3_stmt* stmt = nullptr;
  if (sqlite3_prepare_v2(conn, query.c_str(), -1, &stmt, nullptr) !=
      SQLITE_OK) {
    std::string message = sqlite3_errmsg(conn);
    sqlite3_close(conn);
    return Result<bool>::Error("sqlite prepare failed: " + message +
                               "\nSQL: " + query);
  }
  int rc = sqlite3_step(stmt);
  if (rc != SQLITE_ROW) {
    sqlite3_finalize(stmt);
    sqlite3_close(conn);
    return Result<bool>::Error("sqlite step failed");
  }
  bool certain = sqlite3_column_int(stmt, 0) == 1;
  sqlite3_finalize(stmt);
  sqlite3_close(conn);
  return certain;
}

void CrossValidateOnSqlite(const Query& q, int trials, uint64_t seed,
                           RandomDbOptions opts = {}) {
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok()) << rw.error();
  Schema schema;
  ASSERT_TRUE(q.RegisterInto(&schema).ok());
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<bool> sqlite = RunOnSqlite(schema, db, rw->formula);
    ASSERT_TRUE(sqlite.ok()) << sqlite.error();
    Result<bool> oracle = IsCertainNaive(q, db);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(sqlite.value(), oracle.value())
        << q.ToString() << "\n" << rw->formula->ToString() << "\n"
        << db.ToString();
  }
}

TEST(SqliteIntegrationTest, Example45Q3) {
  CrossValidateOnSqlite(Q("P(x | y), not N('c' | y)"), 40, 1801);
}

TEST(SqliteIntegrationTest, GuardedPair) {
  CrossValidateOnSqlite(Q("P(x | y), not N(x | y)"), 40, 1811);
}

TEST(SqliteIntegrationTest, PositiveChain) {
  CrossValidateOnSqlite(Q("R(x | y), S(y | z)"), 40, 1823);
}

TEST(SqliteIntegrationTest, PollQa) {
  RandomDbOptions small;
  small.blocks_per_relation = 3;
  small.max_block_size = 2;
  CrossValidateOnSqlite(PollQa(), 30, 1831);
}

TEST(SqliteIntegrationTest, HallEll2) {
  Result<Query> q = ParseQuery("S(x), not N1('c' | x), not N2('c' | x)");
  ASSERT_TRUE(q.ok());
  RandomDbOptions small;
  small.blocks_per_relation = 2;
  small.domain_size = 3;
  CrossValidateOnSqlite(q.value(), 30, 1847, small);
}

TEST(SqliteIntegrationTest, QuotedValuesSurviveEscaping) {
  Query q = Q("P(x | y), not N(x | y)");
  Result<Rewriting> rw = RewriteCertain(q);
  ASSERT_TRUE(rw.ok());
  Schema schema;
  ASSERT_TRUE(q.RegisterInto(&schema).ok());
  Database db(schema);
  db.AddFactOrDie("P", {Value::Of("o'brien"), Value::Of("a\"b")});
  db.AddFactOrDie("N", {Value::Of("o'brien"), Value::Of("a\"b")});
  Result<bool> sqlite = RunOnSqlite(schema, db, rw->formula);
  ASSERT_TRUE(sqlite.ok()) << sqlite.error();
  EXPECT_EQ(sqlite.value(), IsCertainNaive(q, db).value());
}

}  // namespace
}  // namespace cqa
