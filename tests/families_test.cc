#include <gtest/gtest.h>

#include "cqa/attack/attack_graph.h"
#include "cqa/attack/classification.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/gen/families.h"
#include "cqa/gen/random_db.h"
#include "cqa/rewriting/rewriter.h"

namespace cqa {
namespace {

TEST(FamiliesTest, ChainsAreInFO) {
  for (int k = 1; k <= 6; ++k) {
    Classification c = Classify(ChainQuery(k));
    EXPECT_EQ(c.cls, CertaintyClass::kFO) << "k=" << k;
    EXPECT_EQ(Classify(ChainQuery(k, false)).cls, CertaintyClass::kFO);
  }
}

TEST(FamiliesTest, CyclesAreLHardWithTwoCycle) {
  // [19]'s structure theory: a cyclic attack graph of a negation-free
  // query always contains a 2-cycle; our classifier must find one.
  for (int k = 2; k <= 6; ++k) {
    Query q = CycleQuery(k);
    AttackGraph g(q);
    EXPECT_FALSE(g.IsAcyclic()) << "k=" << k;
    EXPECT_TRUE(g.FindTwoCycle().has_value()) << "k=" << k;
    Classification c = Classify(q);
    EXPECT_EQ(c.cls, CertaintyClass::kLHard) << "k=" << k;
    EXPECT_EQ(c.negated_in_cycle, 0) << "k=" << k;
  }
}

TEST(FamiliesTest, StarsAreInFOAndGrowExponentially) {
  size_t prev = 0;
  for (int b = 1; b <= 5; ++b) {
    Query q = StarQuery(b);
    EXPECT_TRUE(q.IsGuarded());
    Classification c = Classify(q);
    ASSERT_EQ(c.cls, CertaintyClass::kFO) << "b=" << b;
    Result<Rewriting> rw = RewriteCertain(q, {.simplify = false});
    ASSERT_TRUE(rw.ok());
    if (b > 1) {
      EXPECT_GT(rw->raw_size, prev) << "b=" << b;
    }
    prev = rw->raw_size;
  }
}

TEST(FamiliesTest, ChainRewritingCrossValidates) {
  for (int k : {2, 3}) {
    Query q = ChainQuery(k);
    Result<RewritingSolver> solver = RewritingSolver::Create(q);
    ASSERT_TRUE(solver.ok()) << solver.error();
    Rng rng(1900 + static_cast<uint64_t>(k));
    RandomDbOptions opts;
    opts.blocks_per_relation = 2;
    opts.domain_size = 3;
    for (int i = 0; i < 60; ++i) {
      Database db = GenerateRandomDatabaseFor(q, opts, &rng);
      Result<bool> oracle = IsCertainNaive(q, db);
      ASSERT_TRUE(oracle.ok());
      ASSERT_EQ(solver->IsCertain(db), oracle.value())
          << q.ToString() << "\n" << db.ToString();
    }
  }
}

TEST(FamiliesTest, StarRewritingCrossValidates) {
  Query q = StarQuery(2);
  Result<RewritingSolver> solver = RewritingSolver::Create(q);
  ASSERT_TRUE(solver.ok()) << solver.error();
  Rng rng(1913);
  RandomDbOptions opts;
  opts.blocks_per_relation = 2;
  opts.domain_size = 3;
  for (int i = 0; i < 60; ++i) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<bool> oracle = IsCertainNaive(q, db);
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(solver->IsCertain(db), oracle.value()) << db.ToString();
  }
}

TEST(FamiliesTest, CycleBacktrackingMatchesOracle) {
  Query q = CycleQuery(3);
  Rng rng(1931);
  RandomDbOptions opts;
  opts.blocks_per_relation = 2;
  opts.domain_size = 3;
  for (int i = 0; i < 60; ++i) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    Result<bool> oracle = IsCertainNaive(q, db);
    Result<bool> bt = IsCertainBacktracking(q, db);
    ASSERT_TRUE(oracle.ok() && bt.ok());
    ASSERT_EQ(bt.value(), oracle.value()) << db.ToString();
  }
}

}  // namespace
}  // namespace cqa
