// Streaming certain-answer enumeration through the serve layer: chunked
// `kAnswers` jobs at the SolveService level (cursor mint/validate, warm
// chunk caching, budget-partial chunks staying out of the cache), full
// wire streams over TCP (answer_chunk* + answer_done framing, resume
// across connections, epoch-flip staleness, mid-stream cancellation),
// and the chaos property the chunk-per-job design exists for: a slow or
// long stream never pins a worker between chunks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cqa/answers/cursor.h"
#include "cqa/base/interner.h"
#include "cqa/cache/fingerprint.h"
#include "cqa/certainty/certain_answers.h"
#include "cqa/delta/delta.h"
#include "cqa/query/parser.h"
#include "cqa/serve/net/client.h"
#include "cqa/serve/net/daemon.h"
#include "cqa/serve/net/json.h"
#include "cqa/serve/net/protocol.h"
#include "cqa/serve/service.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kIo{10'000};

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

std::shared_ptr<const Database> Db(const std::string& text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return std::make_shared<const Database>(std::move(db.value()));
}

// `keys` single-fact R blocks k00..kNN plus an S witness on every
// `blocked_every`-th key. Under kStreamQuery the certain answers are
// exactly the unblocked keys, in spelling order — a stream whose length
// and chunking the tests control precisely.
constexpr const char* kStreamQuery = "R(x | y), not S(x | y)";

std::string StreamFacts(int keys, int blocked_every) {
  std::string text;
  for (int i = 0; i < keys; ++i) {
    char key[8];
    std::snprintf(key, sizeof key, "k%02d", i);
    text += std::string("R(") + key + " | " + key + ")\n";
    if (blocked_every > 0 && i % blocked_every == 0) {
      text += std::string("S(") + key + " | " + key + ")\n";
    }
  }
  return text;
}

// Ground truth: the one-shot sorted answer list, as wire-shaped rows.
std::vector<std::vector<std::string>> OneShotRows(
    const Query& q, const std::vector<std::string>& frees,
    const Database& db) {
  std::vector<Symbol> syms;
  for (const std::string& name : frees) syms.push_back(InternSymbol(name));
  Result<CertainAnswers> all = ComputeCertainAnswers(q, syms, db);
  EXPECT_TRUE(all.ok()) << (all.ok() ? "" : all.error());
  std::vector<std::vector<std::string>> rows;
  if (!all.ok()) return rows;
  for (const Tuple& tuple : all->answers) {
    std::vector<std::string> row;
    for (const Value& value : tuple) row.push_back(std::string(value.name()));
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Service-level: kAnswers jobs through SolveService

ServeJob AnswersJob(const Query& q, std::shared_ptr<const Database> db,
                    uint64_t max_chunk, const std::string& cursor = "") {
  ServeJob job(q, std::move(db));
  job.kind = JobKind::kAnswers;
  job.free_vars = {"x"};
  job.answer_max_chunk = max_chunk;
  job.cursor = cursor;
  return job;
}

ServeResponse SubmitAndWait(SolveService& service, ServeJob job) {
  auto state = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> done = state->get_future();
  Result<uint64_t> id = service.Submit(
      std::move(job),
      [state](const ServeResponse& response) { state->set_value(response); });
  EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error());
  return done.get();
}

TEST(AnswersServiceTest, ChunkJobsTileTheStreamAndMintResumeCursors) {
  ServiceOptions options;
  options.workers = 2;
  SolveService service(options);
  const Query q = Q(kStreamQuery);
  auto db = Db(StreamFacts(11, 3));
  const auto expected = OneShotRows(q, {"x"}, *db);
  ASSERT_FALSE(expected.empty());

  std::vector<std::vector<std::string>> streamed;
  std::string cursor;
  uint64_t next_start = 0;
  int chunks = 0;
  for (;; ++chunks) {
    ASSERT_LT(chunks, 100) << "stream did not terminate";
    ServeResponse response =
        SubmitAndWait(service, AnswersJob(q, db, 3, cursor));
    ASSERT_EQ(response.state, RequestState::kCompleted);
    ASSERT_TRUE(response.result.ok()) << response.result.error();
    ASSERT_NE(response.result->answer_chunk, nullptr);
    const AnswerChunk& chunk = *response.result->answer_chunk;
    EXPECT_EQ(chunk.start, next_start) << "chunks must tile with no gaps";
    EXPECT_FALSE(chunk.exhausted);
    EXPECT_LE(chunk.answers.size(), 3u);
    next_start = chunk.next;
    for (const Tuple& tuple : chunk.answers) {
      std::vector<std::string> row;
      for (const Value& value : tuple) {
        row.push_back(std::string(value.name()));
      }
      streamed.push_back(std::move(row));
    }
    if (chunk.done) {
      EXPECT_TRUE(response.answer_cursor.empty())
          << "a finished stream must not mint a resume cursor";
      break;
    }
    ASSERT_FALSE(response.answer_cursor.empty())
        << "an unfinished chunk must carry a resume cursor";
    cursor = response.answer_cursor;
    // The cursor is verifiable: it decodes, and it names this stream.
    Result<AnswerCursor> decoded = DecodeAnswerCursor(cursor);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded->position, chunk.next);
    EXPECT_EQ(decoded->query_hash, AnswerQueryHash(q, {"x"}));
    EXPECT_TRUE(decoded->fingerprint == FingerprintDatabase(*db));
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_GE(chunks, 2) << "fixture must span multiple chunks";
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.answer_chunks, static_cast<uint64_t>(chunks) + 1);
  EXPECT_EQ(stats.answer_tuples, expected.size());
  service.Shutdown(milliseconds(2'000));
}

TEST(AnswersServiceTest, WarmChunkIsServedFromTheCacheWithAFreshCursor) {
  ServiceOptions options;
  options.workers = 2;
  options.cache_entries = 64;
  SolveService service(options);
  const Query q = Q(kStreamQuery);
  auto db = Db(StreamFacts(9, 4));

  ServeResponse cold = SubmitAndWait(service, AnswersJob(q, db, 2));
  ASSERT_TRUE(cold.result.ok()) << cold.result.error();
  ASSERT_NE(cold.result->answer_chunk, nullptr);
  ASSERT_FALSE(cold.answer_cursor.empty());

  ServeResponse warm = SubmitAndWait(service, AnswersJob(q, db, 2));
  ASSERT_TRUE(warm.result.ok()) << warm.result.error();
  ASSERT_NE(warm.result->answer_chunk, nullptr);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  EXPECT_EQ(warm.result->answer_chunk->answers.size(),
            cold.result->answer_chunk->answers.size());
  EXPECT_EQ(warm.result->answer_chunk->next, cold.result->answer_chunk->next);
  // The hit's cursor is minted at delivery against the current epoch —
  // identical here, but stamped fresh rather than replayed from storage.
  EXPECT_EQ(warm.answer_cursor, cold.answer_cursor);

  // A different chunk geometry is a different cache key, not a false hit.
  ServeResponse other = SubmitAndWait(service, AnswersJob(q, db, 3));
  ASSERT_TRUE(other.result.ok()) << other.result.error();
  EXPECT_EQ(service.Stats().cache_hits, 1u);
  service.Shutdown(milliseconds(2'000));
}

TEST(AnswersServiceTest, BudgetPartialChunkIsNeverCached) {
  const Query q = Q(kStreamQuery);
  auto db = Db(StreamFacts(10, 0));
  bool saw_partial = false;
  for (uint64_t trip = 1; trip < 48 && !saw_partial; ++trip) {
    ServiceOptions options;
    options.workers = 1;
    options.cache_entries = 16;
    SolveService service(options);
    ServeJob faulty = AnswersJob(q, db, 64);
    faulty.fail_after_probes = trip;
    ServeResponse first = SubmitAndWait(service, std::move(faulty));
    if (!first.result.ok() || !first.result->answer_chunk->exhausted) {
      service.Shutdown(milliseconds(1'000));
      continue;  // tripped before the first candidate, or never tripped
    }
    saw_partial = true;
    EXPECT_EQ(first.result->verdict, Verdict::kExhausted);
    EXPECT_FALSE(first.result->answer_chunk->done);
    ASSERT_FALSE(first.answer_cursor.empty())
        << "a partial chunk must still be resumable";

    // The identical request re-runs: the partial result was not cached.
    ServeResponse second = SubmitAndWait(service, AnswersJob(q, db, 64));
    ASSERT_TRUE(second.result.ok()) << second.result.error();
    EXPECT_EQ(service.Stats().cache_hits, 0u)
        << "an exhausted chunk must not satisfy a later identical request";
    EXPECT_EQ(second.result->verdict, Verdict::kCertain);
    EXPECT_TRUE(second.result->answer_chunk->done);

    // The clean re-run, by contrast, is cacheable.
    SubmitAndWait(service, AnswersJob(q, db, 64));
    EXPECT_EQ(service.Stats().cache_hits, 1u);
    service.Shutdown(milliseconds(1'000));
  }
  EXPECT_TRUE(saw_partial)
      << "no fail_after_probes value produced a partial chunk";
}

TEST(AnswersServiceTest, CursorFromAnotherEpochFailsTypedAtAdmission) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  const Query q = Q(kStreamQuery);
  auto db = Db(StreamFacts(6, 2));

  AnswerCursor stale;
  stale.position = 2;
  stale.query_hash = AnswerQueryHash(q, {"x"});
  stale.fingerprint = DbFingerprint{0xdeadbeefull, 0xfeedfaceull};
  Result<uint64_t> id = service.Submit(
      AnswersJob(q, db, 4, EncodeAnswerCursor(stale)),
      [](const ServeResponse&) { ADD_FAILURE() << "must fail at Submit"; });
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.code(), ErrorCode::kStaleCursor);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.answers_stale_cursors, 1u);
  EXPECT_EQ(stats.shed, 1u);
  service.Shutdown(milliseconds(1'000));
}

TEST(AnswersServiceTest, CursorForAnotherQueryOrGarbageFailsParse) {
  ServiceOptions options;
  options.workers = 1;
  SolveService service(options);
  const Query q = Q(kStreamQuery);
  auto db = Db(StreamFacts(6, 2));

  // Intact cursor, right epoch, wrong query binding.
  AnswerCursor foreign;
  foreign.position = 1;
  foreign.query_hash = AnswerQueryHash(Q("R(x | y)"), {"x"});
  foreign.fingerprint = FingerprintDatabase(*db);
  Result<uint64_t> wrong_query = service.Submit(
      AnswersJob(q, db, 4, EncodeAnswerCursor(foreign)),
      [](const ServeResponse&) { ADD_FAILURE() << "must fail at Submit"; });
  ASSERT_FALSE(wrong_query.ok());
  EXPECT_EQ(wrong_query.code(), ErrorCode::kParse);

  // Hostile bytes.
  Result<uint64_t> garbage = service.Submit(
      AnswersJob(q, db, 4, "cqa1not-a-cursor"),
      [](const ServeResponse&) { ADD_FAILURE() << "must fail at Submit"; });
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.code(), ErrorCode::kParse);
  EXPECT_EQ(service.Stats().answers_stale_cursors, 0u)
      << "parse failures are not staleness";
  service.Shutdown(milliseconds(1'000));
}

// ---------------------------------------------------------------------------
// Wire-level: streams over TCP

struct DaemonFixture {
  std::unique_ptr<SolveDaemon> daemon;
  NetClient client;

  explicit DaemonFixture(DaemonOptions options, const std::string& facts) {
    options.host = "127.0.0.1";
    options.port = 0;
    daemon = std::make_unique<SolveDaemon>(Db(facts), options);
    Result<bool> started = daemon->Start();
    EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error());
    Result<bool> connected = client.Connect("127.0.0.1", daemon->port(), kIo);
    EXPECT_TRUE(connected.ok()) << (connected.ok() ? "" : connected.error());
  }

  Result<bool> Send(const std::string& payload) {
    return client.SendFrame(payload, kIo);
  }
};

std::string AnswersFrame(uint64_t id, const std::string& query,
                         const std::vector<std::string>& free_vars,
                         uint64_t max_chunk = 0,
                         const std::string& cursor = "",
                         uint64_t chaos_sleep_ms = 0) {
  JsonObjectBuilder b;
  b.Set("type", "answers").Set("id", id).Set("query", query);
  Json::Array vars;
  for (const std::string& v : free_vars) vars.push_back(Json::MakeString(v));
  b.Set("free", Json::MakeArray(std::move(vars)));
  if (max_chunk > 0) b.Set("max_chunk", max_chunk);
  if (!cursor.empty()) b.Set("cursor", cursor);
  if (chaos_sleep_ms > 0) b.Set("chaos_sleep_ms", chaos_sleep_ms);
  return b.Build().Serialize();
}

// Reads client frames for `id` until its terminal, appending tuples and
// remembering the last mid-stream cursor seen. Returns the terminal.
WireResponse DrainStream(NetClient& client, uint64_t id,
                         std::vector<std::vector<std::string>>* rows,
                         std::string* last_cursor = nullptr,
                         int* chunk_frames = nullptr) {
  for (int guard = 0; guard < 10'000; ++guard) {
    Result<WireResponse> r = client.ReadResponse(kIo);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
    if (!r.ok()) break;
    if (r->id != id) continue;
    if (r->type == "answer_chunk") {
      if (chunk_frames != nullptr) ++*chunk_frames;
      for (auto& row : r->tuples) rows->push_back(std::move(row));
      if (last_cursor != nullptr && !r->cursor.empty()) {
        *last_cursor = r->cursor;
      }
      continue;
    }
    return *r;
  }
  WireResponse dead;
  dead.type = "error";
  dead.message = "stream never terminated";
  return dead;
}

TEST(AnswersDaemonTest, StreamRoundTripOverTcp) {
  const std::string facts = StreamFacts(12, 3);
  DaemonFixture f(DaemonOptions{}, facts);
  const Query q = Q(kStreamQuery);
  const auto expected = OneShotRows(q, {"x"}, *Db(facts));
  ASSERT_FALSE(expected.empty());

  ASSERT_TRUE(f.Send(AnswersFrame(1, kStreamQuery, {"x"}, 3)).ok());
  std::vector<std::vector<std::string>> rows;
  int chunk_frames = 0;
  WireResponse done = DrainStream(f.client, 1, &rows, nullptr, &chunk_frames);
  ASSERT_EQ(done.type, "answer_done") << done.message;
  EXPECT_EQ(rows, expected);
  EXPECT_EQ(done.answers, expected.size());
  ASSERT_NE(done.raw.Find("candidates"), nullptr);
  EXPECT_EQ(done.raw.Find("candidates")->AsInt(), 12);
  EXPECT_EQ(done.chunks, static_cast<uint64_t>(chunk_frames));
  EXPECT_GE(chunk_frames, 2);

  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(5'000)));
  DaemonStats stats = f.daemon->daemon_stats();
  EXPECT_EQ(stats.answers_streams, 1u);
  EXPECT_EQ(stats.answers_resumed, 0u);
  EXPECT_EQ(stats.answer_chunks_sent, static_cast<uint64_t>(chunk_frames));
  EXPECT_EQ(stats.answer_tuples_sent, expected.size());
}

TEST(AnswersDaemonTest, ResumeOnAFreshConnectionCompletesTheStream) {
  const std::string facts = StreamFacts(13, 4);
  DaemonFixture f(DaemonOptions{}, facts);
  const auto expected = OneShotRows(Q(kStreamQuery), {"x"}, *Db(facts));

  // Take the whole stream once to harvest a mid-stream cursor.
  ASSERT_TRUE(f.Send(AnswersFrame(1, kStreamQuery, {"x"}, 2)).ok());
  std::vector<std::vector<std::string>> head;
  Result<WireResponse> first = f.client.ReadResponse(kIo);
  ASSERT_TRUE(first.ok()) << first.error();
  ASSERT_EQ(first->type, "answer_chunk");
  for (auto& row : first->tuples) head.push_back(std::move(row));
  ASSERT_FALSE(first->cursor.empty());
  const std::string cursor = first->cursor;

  // Hang up mid-stream: the daemon drops the rest of stream 1 with the
  // connection. The cursor survives client-side.
  f.client.Close();

  NetClient resumed;
  ASSERT_TRUE(resumed.Connect("127.0.0.1", f.daemon->port(), kIo).ok());
  ASSERT_TRUE(resumed
                  .SendFrame(AnswersFrame(2, kStreamQuery, {"x"}, 2, cursor),
                             kIo)
                  .ok());
  std::vector<std::vector<std::string>> tail;
  WireResponse done = DrainStream(resumed, 2, &tail);
  ASSERT_EQ(done.type, "answer_done") << done.message;

  // Concatenated head + tail is the one-shot list: same multiset, same
  // order, no duplicates and no holes across the disconnect.
  std::vector<std::vector<std::string>> joined = head;
  joined.insert(joined.end(), tail.begin(), tail.end());
  EXPECT_EQ(joined, expected);

  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(5'000)));
  DaemonStats stats = f.daemon->daemon_stats();
  EXPECT_EQ(stats.answers_streams, 2u);
  EXPECT_EQ(stats.answers_resumed, 1u);
}

std::string DeltaFrame(uint64_t id, const std::string& delta_id,
                       const std::vector<DeltaOp>& ops) {
  JsonObjectBuilder b;
  b.Set("type", "apply_delta").Set("id", id).Set("delta_id", delta_id);
  b.Set("ops", EncodeDeltaOps(ops));
  return b.Build().Serialize();
}

TEST(AnswersDaemonTest, EpochFlipMakesOldCursorsStaleWithATypedError) {
  const std::string facts = StreamFacts(10, 3);
  DaemonFixture f(DaemonOptions{}, facts);

  ASSERT_TRUE(f.Send(AnswersFrame(1, kStreamQuery, {"x"}, 2)).ok());
  std::vector<std::vector<std::string>> rows;
  std::string cursor;
  WireResponse done = DrainStream(f.client, 1, &rows, &cursor);
  ASSERT_EQ(done.type, "answer_done") << done.message;
  ASSERT_FALSE(cursor.empty()) << "fixture must produce a mid-stream cursor";

  // Flip the epoch: any applied delta re-fingerprints the database.
  DeltaOp insert;
  insert.insert = true;
  insert.relation = "R";
  insert.values = {"zz", "zz"};
  ASSERT_TRUE(f.Send(DeltaFrame(2, "answers-d1", {insert})).ok());
  Result<WireResponse> ack = f.client.ReadResponse(kIo);
  ASSERT_TRUE(ack.ok()) << ack.error();
  ASSERT_EQ(ack->type, "delta_ack") << ack->raw.Serialize();

  // The pre-delta cursor names the dead epoch: typed refusal, no stream.
  ASSERT_TRUE(f.Send(AnswersFrame(3, kStreamQuery, {"x"}, 2, cursor)).ok());
  Result<WireResponse> stale = f.client.ReadResponse(kIo);
  ASSERT_TRUE(stale.ok()) << stale.error();
  EXPECT_EQ(stale->type, "error");
  EXPECT_EQ(stale->code, "stale-cursor");
  EXPECT_FALSE(stale->fatal);

  // Restarting from zero works and reflects the delta (one more R key).
  ASSERT_TRUE(f.Send(AnswersFrame(4, kStreamQuery, {"x"}, 4)).ok());
  std::vector<std::vector<std::string>> fresh;
  WireResponse fresh_done = DrainStream(f.client, 4, &fresh);
  ASSERT_EQ(fresh_done.type, "answer_done") << fresh_done.message;
  ASSERT_NE(fresh_done.raw.Find("candidates"), nullptr);
  EXPECT_EQ(fresh_done.raw.Find("candidates")->AsInt(), 11);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh.back(), std::vector<std::string>{"zz"});

  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(5'000)));
  EXPECT_EQ(f.daemon->daemon_stats().answers_stale_cursors, 1u);
}

TEST(AnswersDaemonTest, CancelMidStreamEmitsExactlyOneTerminal) {
  DaemonOptions options;
  options.service.workers = 1;
  DaemonFixture f(options, StreamFacts(40, 0));

  // One answer per chunk with a per-chunk chaos sleep: a 40-chunk stream
  // that takes seconds end to end, leaving a wide cancellation window.
  ASSERT_TRUE(
      f.Send(AnswersFrame(1, kStreamQuery, {"x"}, 1, "", /*chaos=*/100))
          .ok());
  Result<WireResponse> first = f.client.ReadResponse(kIo);
  ASSERT_TRUE(first.ok()) << first.error();
  ASSERT_EQ(first->type, "answer_chunk");
  ASSERT_TRUE(f.Send(R"({"type":"cancel","id":2,"target":1})").ok());

  bool saw_ack = false;
  int terminals = 0;
  std::string terminal_type;
  for (int guard = 0; guard < 100 && (!saw_ack || terminals == 0); ++guard) {
    Result<WireResponse> r = f.client.ReadResponse(kIo);
    ASSERT_TRUE(r.ok()) << r.error();
    if (r->type == "cancel_ack") {
      saw_ack = true;
      EXPECT_TRUE(r->found);
      continue;
    }
    if (r->id != 1) continue;
    if (r->type == "answer_chunk") continue;  // frames already in flight
    ++terminals;
    terminal_type = r->type;
  }
  EXPECT_EQ(terminals, 1);
  EXPECT_EQ(terminal_type, "cancelled");

  // Exactly once: after the terminal, the stream is gone. A health probe
  // must be the very next frame — no stray chunk or second terminal.
  ASSERT_TRUE(f.Send(R"({"type":"health","id":3})").ok());
  Result<WireResponse> probe = f.client.ReadResponse(kIo);
  ASSERT_TRUE(probe.ok()) << probe.error();
  EXPECT_EQ(probe->type, "health");
  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(5'000)));
}

// The chaos property the chunk-per-job design buys: between chunks the
// stream holds no worker, so with a single worker a deliberately slow
// 30-chunk stream (100 ms per chunk ≈ 3 s total) cannot starve a solve
// submitted mid-stream. If the stream pinned the worker, the solve's
// terminal would wait out the whole stream and trip the bound below.
TEST(AnswersChaosTest, SlowStreamNeverPinsTheOnlyWorker) {
  DaemonOptions options;
  options.service.workers = 1;
  DaemonFixture f(options, StreamFacts(30, 0));

  ASSERT_TRUE(
      f.Send(AnswersFrame(1, kStreamQuery, {"x"}, 1, "", /*chaos=*/100))
          .ok());
  Result<WireResponse> first = f.client.ReadResponse(kIo);
  ASSERT_TRUE(first.ok()) << first.error();
  ASSERT_EQ(first->type, "answer_chunk");

  // A second client's solve lands while the stream has ~29 slow chunks
  // left. It must complete well before the stream does.
  NetClient prober;
  ASSERT_TRUE(prober.Connect("127.0.0.1", f.daemon->port(), kIo).ok());
  const auto solve_start = std::chrono::steady_clock::now();
  JsonObjectBuilder solve;
  solve.Set("type", "solve").Set("id", uint64_t{7}).Set("query", "R(k01 | y)");
  ASSERT_TRUE(prober.SendFrame(solve.Build().Serialize(), kIo).ok());
  Result<WireResponse> verdict = prober.WaitTerminal(7, kIo);
  ASSERT_TRUE(verdict.ok()) << verdict.error();
  EXPECT_EQ(verdict->type, "result");
  EXPECT_EQ(verdict->verdict, "certain");
  const auto solve_latency = std::chrono::steady_clock::now() - solve_start;
  EXPECT_LT(solve_latency, milliseconds(1'500))
      << "the solve waited on the slow stream: a stream is pinning workers";

  // The slow consumer still gets its complete stream afterwards (the
  // first chunk was already read above to anchor the race).
  std::vector<std::vector<std::string>> rows = first->tuples;
  WireResponse done = DrainStream(f.client, 1, &rows);
  ASSERT_EQ(done.type, "answer_done") << done.message;
  EXPECT_EQ(rows.size(), 30u);
  EXPECT_TRUE(f.daemon->Shutdown(milliseconds(5'000)));
}

}  // namespace
}  // namespace cqa
