// Tests for the execution governor: Budget semantics, deadline expiry
// mid-search on an adversarial instance, deterministic fault injection at
// every probe site, cross-thread cancellation, and the degradation cascade
// of SolveCertainty against the naive oracle.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cqa/attack/classification.h"
#include "cqa/base/budget.h"
#include "cqa/certainty/backtracking.h"
#include "cqa/certainty/certain_answers.h"
#include "cqa/certainty/matching_q1.h"
#include "cqa/certainty/naive.h"
#include "cqa/certainty/rewriting_solver.h"
#include "cqa/certainty/sampling.h"
#include "cqa/certainty/solver.h"
#include "cqa/db/repairs.h"
#include "cqa/fo/eval.h"
#include "cqa/fo/fo_parser.h"
#include "cqa/gen/families.h"
#include "cqa/gen/random_db.h"
#include "cqa/query/parser.h"
#include "cqa/rewriting/algorithm1.h"

namespace cqa {
namespace {

using std::chrono::milliseconds;
using Clock = Budget::Clock;

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// ---------------------------------------------------------------------------
// Budget semantics

TEST(BudgetTest, StepLimitTripsAndIsSticky) {
  Budget b = Budget::WithMaxSteps(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(b.CheckEvery(1).has_value()) << "probe " << i;
  }
  std::optional<ErrorCode> trip = b.CheckEvery(1);
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(*trip, ErrorCode::kBudgetExhausted);
  // Sticky: later probes keep returning the original violation.
  EXPECT_EQ(b.CheckEvery(1), ErrorCode::kBudgetExhausted);
  EXPECT_EQ(b.tripped(), ErrorCode::kBudgetExhausted);
}

TEST(BudgetTest, ExpiredDeadlineTripsOnFirstProbe) {
  Budget b;
  b.deadline = Clock::now() - milliseconds(1);
  // The first probe always consults the clock, even with a large stride.
  EXPECT_EQ(b.CheckEvery(1u << 20), ErrorCode::kDeadlineExceeded);
}

TEST(BudgetTest, StrideZeroAndOneProbeEveryCall) {
  // Strides 0 and 1 are both "no amortization": the cancellation token is
  // consulted on every single call, so a cancel lands on the very next probe.
  for (uint64_t stride : {0ull, 1ull}) {
    std::atomic<bool> flag{false};
    Budget b;
    b.cancel = &flag;
    EXPECT_FALSE(b.CheckEvery(stride).has_value()) << "stride " << stride;
    flag.store(true);
    EXPECT_EQ(b.CheckEvery(stride), ErrorCode::kCancelled)
        << "stride " << stride;
  }
}

TEST(BudgetTest, LargeStrideAmortizesTheTokenAway) {
  // With a huge stride, the token is only consulted on the first probe; a
  // cancel raised afterwards goes unnoticed by amortized probes (that is the
  // amortization contract) but an explicit CheckNow still sees it.
  std::atomic<bool> flag{false};
  Budget b;
  b.cancel = &flag;
  EXPECT_FALSE(b.CheckEvery(1u << 20).has_value());  // probe #1 checks token
  flag.store(true);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(b.CheckEvery(1u << 20).has_value()) << "probe " << i;
  }
  EXPECT_EQ(b.CheckNow(), ErrorCode::kCancelled);
}

TEST(BudgetTest, CancellationIsStickyEvenAfterTheTokenClears) {
  // Once tripped, the violation outlives the token: clearing the flag must
  // not resurrect the run (deep recursions unwind against a stable cause).
  std::atomic<bool> flag{true};
  Budget b;
  b.cancel = &flag;
  EXPECT_EQ(b.CheckEvery(1), ErrorCode::kCancelled);
  flag.store(false);
  EXPECT_EQ(b.CheckEvery(1), ErrorCode::kCancelled);
  EXPECT_EQ(b.CheckNow(), ErrorCode::kCancelled);
  EXPECT_EQ(b.tripped(), ErrorCode::kCancelled);
}

TEST(BudgetTest, FaultInjectionFiresRegardlessOfStride) {
  // fail_after_probes counts probes, not strides: with stride 7 the fault
  // still fires on exactly the Nth call, and steps() freezes there because
  // later (sticky) probes no longer charge steps.
  constexpr uint64_t kN = 10;
  Budget b;
  b.fail_after_probes = kN;
  for (uint64_t i = 1; i < kN; ++i) {
    EXPECT_FALSE(b.CheckEvery(7).has_value()) << "probe " << i;
  }
  EXPECT_EQ(b.CheckEvery(7), ErrorCode::kBudgetExhausted);
  EXPECT_EQ(b.steps(), kN);
  for (int i = 0; i < 5; ++i) (void)b.CheckEvery(7);
  EXPECT_EQ(b.steps(), kN) << "sticky probes must not keep charging steps";
}

TEST(BudgetTest, FaultInjectionFiresAtTheExactProbe) {
  for (uint64_t n = 1; n <= 5; ++n) {
    Budget b;
    b.fail_after_probes = n;
    for (uint64_t i = 1; i < n; ++i) {
      EXPECT_FALSE(b.CheckEvery().has_value());
    }
    EXPECT_EQ(b.CheckEvery(), ErrorCode::kBudgetExhausted);
  }
}

TEST(BudgetTest, CancellationToken) {
  std::atomic<bool> flag{false};
  Budget b;
  b.cancel = &flag;
  EXPECT_FALSE(b.CheckEvery(1).has_value());
  flag.store(true);
  EXPECT_EQ(b.CheckEvery(1), ErrorCode::kCancelled);
}

TEST(BudgetTest, RemainingAccessors) {
  Budget unlimited;
  EXPECT_FALSE(unlimited.has_deadline());
  EXPECT_FALSE(unlimited.TimeRemaining().has_value());
  EXPECT_FALSE(unlimited.StepsRemaining().has_value());

  Budget b = Budget::WithTimeout(milliseconds(10'000));
  EXPECT_TRUE(b.has_deadline());
  ASSERT_TRUE(b.TimeRemaining().has_value());
  EXPECT_GT(*b.TimeRemaining(), Clock::duration::zero());

  Budget s = Budget::WithMaxSteps(5);
  (void)s.CheckEvery(1);
  (void)s.CheckEvery(1);
  ASSERT_TRUE(s.StepsRemaining().has_value());
  EXPECT_EQ(*s.StepsRemaining(), 3u);
}

// ---------------------------------------------------------------------------
// The adversarial pigeonhole instance

TEST(PigeonholeTest, InstanceIsCertainAndHard) {
  // Small enough for the oracle: certainty holds by pigeonhole.
  Database small = PigeonholeDatabase(4);
  NaiveOptions oracle_opts;
  Result<bool> oracle = IsCertainNaive(PigeonholeQuery(), small, oracle_opts);
  ASSERT_TRUE(oracle.ok()) << oracle.error();
  EXPECT_TRUE(oracle.value());
  Result<bool> oracle_cyclic =
      IsCertainNaive(PigeonholeCyclicQuery(), small, oracle_opts);
  ASSERT_TRUE(oracle_cyclic.ok());
  EXPECT_TRUE(oracle_cyclic.value());

  // The matching solver decides the q1-shaped variant in polynomial time...
  std::optional<bool> matched =
      IsCertainQ1ByMatching(PigeonholeQuery(), PigeonholeDatabase(12));
  ASSERT_TRUE(matched.has_value());
  EXPECT_TRUE(*matched);
  // ...but the third atom of the cyclic variant defeats shape detection and
  // keeps the attack graph cyclic, forcing kAuto onto backtracking.
  EXPECT_FALSE(DetectQ1Shape(PigeonholeCyclicQuery()).has_value());
  EXPECT_NE(Classify(PigeonholeCyclicQuery()).cls, CertaintyClass::kFO);
}

// Acceptance: every exponential solver obeys a 50 ms deadline within 2x.
TEST(GovernorTest, BacktrackingMeetsDeadline) {
  Database db = PigeonholeDatabase(12);
  Budget budget = Budget::WithTimeout(milliseconds(50));
  auto start = Clock::now();
  BacktrackingOptions opts;
  opts.budget = &budget;
  Result<BacktrackingReport> r =
      SolveCertainBacktracking(PigeonholeQuery(), db, opts);
  auto elapsed = Clock::now() - start;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LE(elapsed, milliseconds(100)) << "deadline overshot 2x";
}

TEST(GovernorTest, NaiveMeetsDeadline) {
  // ~3.5e18 repairs: below the uint64 refusal cap, far beyond any clock.
  Database db = PigeonholeDatabase(10);
  Budget budget = Budget::WithTimeout(milliseconds(50));
  NaiveOptions opts;
  opts.max_repairs = UINT64_MAX;  // let the deadline, not the cap, stop it
  opts.budget = &budget;
  auto start = Clock::now();
  Result<bool> r = IsCertainNaive(PigeonholeQuery(), db, opts);
  auto elapsed = Clock::now() - start;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LE(elapsed, milliseconds(100)) << "deadline overshot 2x";
}

TEST(GovernorTest, FoSolversHonorExpiredDeadline) {
  // Algorithm 1 and the rewriting evaluator require acyclic queries, so the
  // pigeonhole instance is out; an already-expired deadline shows they
  // probe before doing any work.
  Query q = Q("P(x | y), not N('c' | y)");
  Result<Database> db = Database::FromText("P(a | b)\nN(c | b)\nN(c | d)");
  ASSERT_TRUE(db.ok());
  Budget expired;
  expired.deadline = Clock::now() - milliseconds(1);

  Algorithm1Options a1opts;
  a1opts.budget = &expired;
  Result<bool> a1 = Algorithm1(db.value(), a1opts).IsCertain(q);
  ASSERT_FALSE(a1.ok());
  EXPECT_EQ(a1.code(), ErrorCode::kDeadlineExceeded);

  Budget expired2;
  expired2.deadline = Clock::now() - milliseconds(1);
  Result<bool> rw = IsCertainByRewriting(q, db.value(), &expired2);
  ASSERT_FALSE(rw.ok());
  EXPECT_EQ(rw.code(), ErrorCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Fault injection: every probe site unwinds cleanly with kBudgetExhausted.

TEST(GovernorTest, FaultInjectionBacktracking) {
  Database db = PigeonholeDatabase(5);
  for (uint64_t n : {1, 2, 7, 50}) {
    Budget b;
    b.fail_after_probes = n;
    BacktrackingOptions opts;
    opts.budget = &b;
    Result<BacktrackingReport> r =
        SolveCertainBacktracking(PigeonholeQuery(), db, opts);
    ASSERT_FALSE(r.ok()) << "fail_after_probes=" << n;
    EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);
  }
}

TEST(GovernorTest, FaultInjectionNaiveAndCounting) {
  Database db = PigeonholeDatabase(4);
  Budget b1;
  b1.fail_after_probes = 1;
  NaiveOptions opts;
  opts.budget = &b1;
  Result<bool> r = IsCertainNaive(PigeonholeQuery(), db, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);

  Budget b2;
  b2.fail_after_probes = 3;
  NaiveOptions copts;
  copts.budget = &b2;
  Result<RepairCount> c = CountSatisfyingRepairs(PigeonholeQuery(), db, copts);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.code(), ErrorCode::kBudgetExhausted);
}

TEST(GovernorTest, FaultInjectionRepairEnumeration) {
  Database db = PigeonholeDatabase(4);
  Budget b;
  b.fail_after_probes = 2;
  uint64_t seen = 0;
  Result<bool> r = ForEachRepair(db, &b, [&](const Repair&) {
    ++seen;
    return true;
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);
  EXPECT_EQ(seen, 1u);  // probes precede delivery: exactly one repair seen
}

TEST(GovernorTest, FaultInjectionSamplingDegradesGracefully) {
  Database db = PigeonholeDatabase(5);
  Budget b;
  b.fail_after_probes = 4;
  Rng rng(7);
  SampleEstimate est =
      EstimateCertainty(PigeonholeQuery(), db, 1000, &rng, &b);
  EXPECT_EQ(est.stopped, ErrorCode::kBudgetExhausted);
  EXPECT_EQ(est.samples, 3u);  // partial evidence survives
  EXPECT_FALSE(est.refuted);   // the instance is certain
}

TEST(GovernorTest, FaultInjectionAlgorithm1AndEval) {
  Query q = Q("P(x | y), not N('c' | y)");
  Result<Database> db = Database::FromText("P(a | b)\nN(c | b)\nN(c | d)");
  ASSERT_TRUE(db.ok());
  for (uint64_t n : {1, 2, 5}) {
    Budget b;
    b.fail_after_probes = n;
    Algorithm1Options opts;
    opts.budget = &b;
    Result<bool> r = Algorithm1(db.value(), opts).IsCertain(q);
    ASSERT_FALSE(r.ok()) << "fail_after_probes=" << n;
    EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);
  }
  Result<FoPtr> f = ParseFo("exists x y. P(x | y) & !N('c' | y)");
  ASSERT_TRUE(f.ok()) << f.error();
  for (uint64_t n : {1, 2, 5}) {
    Budget b;
    b.fail_after_probes = n;
    Result<bool> r = EvalFoGoverned(f.value(), db.value(), &b);
    ASSERT_FALSE(r.ok()) << "fail_after_probes=" << n;
    EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);
  }
}

TEST(GovernorTest, FaultInjectionCertainAnswers) {
  Query q = Q("R(x | y), not S(y | x)");
  Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
  ASSERT_TRUE(db.ok());
  Budget b;
  b.fail_after_probes = 1;
  Result<CertainAnswers> r =
      ComputeCertainAnswers(q, {InternSymbol("x")}, db.value(), &b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);

  Budget b2;
  b2.fail_after_probes = 2;
  Result<CertainAnswers> rw = CertainAnswersByRewriting(
      Q("P(x | y), not N('c' | y)"), {InternSymbol("x")},
      Database::FromText("P(a | b)\nN(c | d)").value(), &b2);
  ASSERT_FALSE(rw.ok());
  EXPECT_EQ(rw.code(), ErrorCode::kBudgetExhausted);
}

TEST(GovernorTest, FaultInjectionSolveCascadeEndsExhausted) {
  // Injection hits the exact stage, then the sampling fallback: the solve
  // still returns (kAuto degrades) but the verdict carries no information.
  Database db = PigeonholeDatabase(6);
  Budget b;
  b.fail_after_probes = 1;
  SolveOptions options;
  options.budget = &b;
  Result<SolveReport> r = SolveCertainty(PigeonholeCyclicQuery(), db, options);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->verdict, Verdict::kExhausted);
  EXPECT_EQ(r->samples, 0u);
  EXPECT_EQ(r->confidence, 0.0);
  ASSERT_EQ(r->stages.size(), 2u);
  EXPECT_FALSE(r->stages[0].ok);
  EXPECT_EQ(r->stages[0].error, ErrorCode::kBudgetExhausted);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation from another thread

TEST(GovernorTest, CancellationFromAnotherThread) {
  Database db = PigeonholeDatabase(13);  // hours of search, ungoverned
  std::atomic<bool> cancel{false};
  Budget budget;
  budget.cancel = &cancel;
  std::thread canceller([&] {
    std::this_thread::sleep_for(milliseconds(20));
    cancel.store(true);
  });
  BacktrackingOptions opts;
  opts.budget = &budget;
  auto start = Clock::now();
  Result<BacktrackingReport> r =
      SolveCertainBacktracking(PigeonholeQuery(), db, opts);
  auto elapsed = Clock::now() - start;
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kCancelled);
  EXPECT_LE(elapsed, milliseconds(2000));
}

TEST(GovernorTest, CancellationDoesNotDegradeToSampling) {
  Database db = PigeonholeDatabase(12);
  std::atomic<bool> cancel{true};  // pre-cancelled
  Budget budget;
  budget.cancel = &cancel;
  SolveOptions options;
  options.budget = &budget;
  Result<SolveReport> r = SolveCertainty(PigeonholeCyclicQuery(), db, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Degradation cascade and verdict correctness

TEST(GovernorTest, AutoCascadeYieldsQualifiedSamplingVerdict) {
  // Acceptance: on the adversarial cyclic instance under a 50 ms deadline,
  // SolveCertainty(kAuto) returns probably-certain instead of an error.
  Database db = PigeonholeDatabase(12);
  Budget budget = Budget::WithTimeout(milliseconds(50));
  SolveOptions options;
  options.budget = &budget;
  auto start = Clock::now();
  Result<SolveReport> r = SolveCertainty(PigeonholeCyclicQuery(), db, options);
  auto elapsed = Clock::now() - start;
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_LE(elapsed, milliseconds(100)) << "cascade overshot the deadline 2x";
  EXPECT_EQ(r->verdict, Verdict::kProbablyCertain);
  EXPECT_EQ(r->used, SolverMethod::kSampling);
  EXPECT_GT(r->samples, 0u);
  EXPECT_GT(r->confidence, 0.5);
  EXPECT_LT(r->confidence, 1.0);
  EXPECT_FALSE(r->certain) << "a sampled verdict must not claim exactness";
  // Both stages are accounted for: the tripped exact stage and sampling.
  ASSERT_EQ(r->stages.size(), 2u);
  EXPECT_EQ(r->stages[0].method, SolverMethod::kBacktracking);
  EXPECT_FALSE(r->stages[0].ok);
  EXPECT_EQ(r->stages[0].error, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(r->stages[1].method, SolverMethod::kSampling);
  EXPECT_TRUE(r->stages[1].ok);
}

TEST(GovernorTest, DegradationOffMakesExhaustionAnError) {
  Database db = PigeonholeDatabase(12);
  Budget budget = Budget::WithTimeout(milliseconds(50));
  SolveOptions options;
  options.budget = &budget;
  options.degrade_to_sampling = false;
  Result<SolveReport> r = SolveCertainty(PigeonholeCyclicQuery(), db, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kDeadlineExceeded);
}

TEST(GovernorTest, ExplicitMethodNeverDegrades) {
  Database db = PigeonholeDatabase(12);
  Budget budget = Budget::WithMaxSteps(100);
  SolveOptions options;
  options.method = SolverMethod::kBacktracking;
  options.budget = &budget;
  Result<SolveReport> r = SolveCertainty(PigeonholeQuery(), db, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kBudgetExhausted);
}

TEST(GovernorTest, VerdictsMatchNaiveOracleOnSmallInstances) {
  // With a generous budget nothing degrades: exact verdicts, confidence 1.
  Rng rng(42);
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 3;
  dopts.max_block_size = 2;
  dopts.domain_size = 4;
  Query q = PigeonholeCyclicQuery();
  for (int i = 0; i < 50; ++i) {
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
    Result<bool> oracle = IsCertainNaive(q, db);
    ASSERT_TRUE(oracle.ok());
    Budget budget = Budget::WithTimeout(milliseconds(10'000));
    SolveOptions options;
    options.budget = &budget;
    Result<SolveReport> r = SolveCertainty(q, db, options);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->certain, oracle.value()) << db.ToString();
    EXPECT_EQ(r->verdict,
              oracle.value() ? Verdict::kCertain : Verdict::kNotCertain);
    EXPECT_EQ(r->confidence, 1.0);
  }
}

TEST(GovernorTest, SamplingRefutationIsExact) {
  // A not-certain instance: sampling must eventually find the falsifying
  // repair and report kNotCertain with confidence 1.
  Result<Database> db = Database::FromText("R(a | b), R(a | c)\nS(b | a)");
  ASSERT_TRUE(db.ok());
  SolveOptions options;
  options.method = SolverMethod::kSampling;
  options.max_samples = 1000;
  Result<SolveReport> r =
      SolveCertainty(Q("R(x | y), not S(y | x)"), db.value(), options);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->verdict, Verdict::kNotCertain);
  EXPECT_EQ(r->confidence, 1.0);
  EXPECT_EQ(r->used, SolverMethod::kSampling);
}

}  // namespace
}  // namespace cqa
