#include <gtest/gtest.h>

#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(EvalTest, PositiveJoin) {
  Database db = Db("R(a | b)\nS(b | c)");
  EXPECT_TRUE(Satisfies(Q("R(x | y), S(y | z)"), db));
  EXPECT_FALSE(Satisfies(Q("R(x | y), S(x | z)"), db));
}

TEST(EvalTest, NegationSemantics) {
  Database db = Db("R(a | b)\nS(b | a)");
  // q1 = R(x|y), ¬S(y|x): the S-fact blocks the only witness.
  EXPECT_FALSE(Satisfies(Q("R(x | y), not S(y | x)"), db));
  Database db2 = Db("R(a | b)\nS(b | zzz)");
  EXPECT_TRUE(Satisfies(Q("R(x | y), not S(y | x)"), db2));
}

TEST(EvalTest, ConstantsInAtoms) {
  Database db = Db("N(c | a)\nP(k | a)");
  EXPECT_TRUE(Satisfies(Q("P(x | y), N('c' | y)"), db));
  EXPECT_FALSE(Satisfies(Q("P(x | y), N('d' | y)"), db));
}

TEST(EvalTest, RepeatedVariables) {
  Database db = Db("R(a | a)\nR(b | c)");
  EXPECT_TRUE(Satisfies(Q("R(x | x)"), db));
  Database db2 = Db("R(b | c)");
  EXPECT_FALSE(Satisfies(Q("R(x | x)"), db2));
}

TEST(EvalTest, DiseqConstraints) {
  Database db = Db("R(a | b)");
  Query q = Q("R(x | y)");
  Query q_ne = q.WithDiseq(Diseq{{Term::Var("y")}, {Term::Const("b")}});
  EXPECT_FALSE(Satisfies(q_ne, db));
  Query q_ne2 = q.WithDiseq(Diseq{{Term::Var("y")}, {Term::Const("zzz")}});
  EXPECT_TRUE(Satisfies(q_ne2, db));
  // Vector diseq: some component must differ.
  Query q_vec = q.WithDiseq(
      Diseq{{Term::Var("x"), Term::Var("y")},
            {Term::Const("a"), Term::Const("zzz")}});
  EXPECT_TRUE(Satisfies(q_vec, db));
}

TEST(EvalTest, ForEachWitnessEnumeratesAll) {
  Database db = Db("R(a | b)\nR(c | d)\nS(b | x)\nS(d | x)");
  int count = 0;
  ForEachWitness(Q("R(x | y), S(y | z)"), db, {}, [&](const Valuation& v) {
    EXPECT_EQ(v.size(), 3u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
}

TEST(EvalTest, InitialBindingsRestrictSearch) {
  Database db = Db("R(a | b)\nR(c | d)");
  Query q = Q("R(x | y)");
  Valuation init{{InternSymbol("x"), Value::Of("a")}};
  std::optional<Valuation> w = FindWitness(q, db, init);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->at(InternSymbol("y")), Value::Of("b"));
  Valuation bad{{InternSymbol("x"), Value::Of("zzz")}};
  EXPECT_FALSE(FindWitness(q, db, bad).has_value());
}

TEST(EvalTest, Example33KeyRelevantFacts) {
  // q1 = {R(x|y), ¬S(y|x)}, r = {R(b,1), S(1,a), S(2,a)}.
  Query q1 = Q("R(x | y), not S(y | x)");
  Database r = Db("R(b | 1)\nS(1 | a)\nS(2 | a)");
  // The only witness is {x→b, y→1}; S(1,a) is key-relevant, S(2,a) is not.
  std::vector<Fact> relevant = KeyRelevantFacts(q1, 1, r);
  ASSERT_EQ(relevant.size(), 1u);
  EXPECT_EQ(relevant[0].values, (Tuple{Value::Of("1"), Value::Of("a")}));
}

TEST(EvalTest, EvaluationOnRepairs) {
  Database db = Db("R(a | b), R(a | c)\nS(b | a)");
  Query q1 = Q("R(x | y), not S(y | x)");
  int satisfied = 0;
  ForEachRepair(db, [&](const Repair& r) {
    if (Satisfies(q1, r)) ++satisfied;
    return true;
  });
  // Repair {R(a,b), S(b,a)} falsifies; repair {R(a,c), S(b,a)} satisfies.
  EXPECT_EQ(satisfied, 1);
}

TEST(EvalTest, GroundQueryOnEmptyRelation) {
  Database db = Db("R(a | b)");
  // A negated atom over a relation with no facts is vacuously true.
  EXPECT_TRUE(Satisfies(Q("R(x | y), not T(x | y)"), db));
}

}  // namespace
}  // namespace cqa
