// Integration test for the cqa_cli binary: spawns the real executable (path
// injected by CMake) and checks output and exit codes end to end.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#ifndef CQA_CLI_PATH
#define CQA_CLI_PATH "cqa_cli"
#endif

namespace cqa {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult RunCommand(const std::string& command) {
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  RunResult out;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    out.stdout_text.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

RunResult RunCli(const std::string& args) {
  return RunCommand(std::string(CQA_CLI_PATH) + " " + args + " 2>/dev/null");
}

// Like RunCli but with stderr merged into the captured output (for tests
// asserting on diagnostics) and optional text piped to the CLI's stdin.
RunResult RunCliMerged(const std::string& args, const std::string& stdin_text) {
  std::string command;
  if (!stdin_text.empty()) {
    command = "printf '%b' \"" + stdin_text + "\" | ";  // %b expands \n
  }
  command += std::string(CQA_CLI_PATH) + " " + args + " 2>&1";
  return RunCommand(command);
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One db file per test case: ctest runs the cases of this binary as
    // parallel processes, and a shared path would race SetUp's rewrite
    // against a sibling's in-flight CLI read.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    db_path_ = ::testing::TempDir() + "/cli_test_db_" +
               std::string(info->name()) + ".facts";
    std::ofstream out(db_path_);
    out << "R(a | b), R(a | c)\nS(b | a)\n";
  }
  std::string db_path_;
};

TEST_F(CliTest, Classify) {
  RunResult r = RunCli("classify \"R(x | y), not S(y | x)\"");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.stdout_text.find("NL-hard"), std::string::npos);
  EXPECT_NE(r.stdout_text.find("weakly guarded:  yes"), std::string::npos);
}

TEST_F(CliTest, RewriteAndSql) {
  RunResult r = RunCli("rewrite \"P(x | y), not N('c' | y)\"");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.stdout_text.find("exists"), std::string::npos);
  RunResult sql = RunCli("sql \"P(x | y), not N('c' | y)\"");
  EXPECT_EQ(sql.exit_code, 0);
  EXPECT_NE(sql.stdout_text.find("CREATE TABLE P"), std::string::npos);
  EXPECT_NE(sql.stdout_text.find("SELECT CASE WHEN"), std::string::npos);
  // Rewriting a hard query fails cleanly.
  EXPECT_NE(RunCli("rewrite \"R(x | y), not S(y | x)\"").exit_code, 0);
}

TEST_F(CliTest, SolveExitCodes) {
  // Not certain: S(b,a) blocks the R(a,b) witness in one repair... exit 5.
  RunResult r = RunCli("solve \"R(x | y), not S(y | x)\" " + db_path_);
  EXPECT_EQ(r.exit_code, 5);
  EXPECT_NE(r.stdout_text.find("not certain"), std::string::npos);
  // Certain: plain positive query.
  RunResult c = RunCli("solve \"R(x | y)\" " + db_path_);
  EXPECT_EQ(c.exit_code, 0);
  EXPECT_NE(c.stdout_text.find("certain"), std::string::npos);
  // Forced method.
  RunResult m = RunCli("solve \"R(x | y)\" " + db_path_ + " --method=naive");
  EXPECT_EQ(m.exit_code, 0);
  RunResult smp =
      RunCli("solve \"R(x | y), not S(y | x)\" " + db_path_ +
             " --method=sampling");
  EXPECT_EQ(smp.exit_code, 5);  // a falsifying sample refutes exactly
  EXPECT_NE(RunCli("solve \"R(x | y)\" " + db_path_ + " --method=bogus")
                .exit_code,
            0);
}

TEST_F(CliTest, GovernorFlags) {
  // A generous budget leaves the answer unchanged.
  RunResult ok = RunCli("solve \"R(x | y)\" " + db_path_ +
                        " --timeout-ms=10000 --max-nodes=100000");
  EXPECT_EQ(ok.exit_code, 0);
  // An immediately exhausted step budget on a non-degradable method is a
  // typed failure: exit 3.
  RunResult tight = RunCli("solve \"R(x | y), not S(y | x)\" " + db_path_ +
                           " --method=backtracking --max-nodes=0");
  EXPECT_EQ(tight.exit_code, 3);
  // Malformed values are rejected cleanly.
  EXPECT_EQ(RunCli("solve \"R(x | y)\" " + db_path_ + " --timeout-ms=abc")
                .exit_code,
            1);
  // evalfo under a tight budget also exits 3.
  RunResult fo = RunCli("evalfo \"exists x y. R(x | y)\" " + db_path_ +
                        " --max-nodes=1");
  EXPECT_EQ(fo.exit_code, 3);
}

TEST_F(CliTest, AnswersStatsRepairsAspDot) {
  RunResult answers =
      RunCli("answers \"R(x | y), not S(y | x)\" " + db_path_ + " --free=x");
  EXPECT_EQ(answers.exit_code, 0);

  RunResult stats = RunCli("stats " + db_path_);
  EXPECT_EQ(stats.exit_code, 0);
  EXPECT_NE(stats.stdout_text.find("total:"), std::string::npos);

  RunResult repairs = RunCli("repairs " + db_path_ + " --limit=1");
  EXPECT_EQ(repairs.exit_code, 0);
  EXPECT_NE(repairs.stdout_text.find("repairs: 2"), std::string::npos);

  RunResult asp = RunCli("asp \"R(x | y), not S(y | x)\" " + db_path_);
  EXPECT_EQ(asp.exit_code, 0);
  EXPECT_NE(asp.stdout_text.find(":- sat."), std::string::npos);

  RunResult dot = RunCli("dot \"R(x | y), not S(y | x)\"");
  EXPECT_EQ(dot.exit_code, 0);
  EXPECT_NE(dot.stdout_text.find("digraph"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreClean) {
  EXPECT_EQ(RunCli("").exit_code, 2);
  EXPECT_NE(RunCli("frobnicate x").exit_code, 0);
  EXPECT_EQ(RunCli("frobnicate \"R(x | y)\"").exit_code, 2);
  EXPECT_NE(RunCli("classify \"R(x\"").exit_code, 0);
  EXPECT_NE(RunCli("solve \"R(x | y)\" /nonexistent.facts").exit_code, 0);
}

TEST_F(CliTest, DatabaseLoadErrorsAreTypedAndLocated) {
  // Missing file: an I/O diagnostic naming the path, not a parse error.
  RunResult missing = RunCliMerged("stats /nonexistent.facts", "");
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.stdout_text.find("cannot open"), std::string::npos);
  EXPECT_NE(missing.stdout_text.find("/nonexistent.facts"), std::string::npos);

  // Malformed facts: the diagnostic carries the path and the 1-based line
  // of the offending fact.
  std::string bad_path = ::testing::TempDir() + "/cli_test_bad.facts";
  {
    std::ofstream out(bad_path);
    out << "R(a | b)\nR(a,\n";
  }
  RunResult parse = RunCliMerged("stats " + bad_path, "");
  EXPECT_EQ(parse.exit_code, 1);
  EXPECT_NE(parse.stdout_text.find(bad_path), std::string::npos);
  EXPECT_NE(parse.stdout_text.find("line 2"), std::string::npos);
}

TEST_F(CliTest, DatabaseFromStdin) {
  RunResult stats = RunCliMerged("stats -", "R(a | b), R(a | c)\\nS(b | a)\\n");
  EXPECT_EQ(stats.exit_code, 0);
  EXPECT_NE(stats.stdout_text.find("total:"), std::string::npos);
  // A stdin parse error is attributed to <stdin>.
  RunResult bad = RunCliMerged("stats -", "R(a | b)\\nR(a,\\n");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.stdout_text.find("<stdin>"), std::string::npos);
}

TEST_F(CliTest, ServeBatch) {
  // Two well-formed jobs: per-request verdicts in submission order tags,
  // aggregate stats on stderr, exit 0.
  RunResult ok = RunCliMerged(
      "serve " + db_path_ + " --workers=2",
      "R(x | y)\\nR(x | y), not S(y | x)\\n");
  EXPECT_EQ(ok.exit_code, 0);
  EXPECT_NE(ok.stdout_text.find("[1] certain"), std::string::npos);
  EXPECT_NE(ok.stdout_text.find("[2] not certain"), std::string::npos);
  EXPECT_NE(ok.stdout_text.find("-- serve:"), std::string::npos);
  EXPECT_NE(ok.stdout_text.find("accepted 2"), std::string::npos);

  // A malformed job line is reported per-request and poisons the exit code,
  // but the well-formed job still completes.
  RunResult bad = RunCliMerged("serve " + db_path_,
                               "R(x | y)\\nR(x |\\n");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.stdout_text.find("[1] certain"), std::string::npos);
  EXPECT_NE(bad.stdout_text.find("[2] error:"), std::string::npos);

  // Blank lines and comments are skipped; result tags are input line
  // numbers, so the query on line 3 reports as [3].
  RunResult sparse = RunCliMerged(
      "serve " + db_path_, "\\n-- a comment\\nR(x | y)\\n\\n");
  EXPECT_EQ(sparse.exit_code, 0);
  EXPECT_NE(sparse.stdout_text.find("[3] certain"), std::string::npos);

  // Reading both the database and jobs from stdin is impossible: the db may
  // only be '-' when jobs come from a file.
  RunResult clash = RunCliMerged("serve - ", "R(x | y)\\n");
  EXPECT_EQ(clash.exit_code, 1);

  // serve with a jobs file and the db on stdin works.
  std::string jobs_path = ::testing::TempDir() + "/cli_test_jobs.txt";
  {
    std::ofstream out(jobs_path);
    out << "R(x | y)\n";
  }
  RunResult from_file = RunCliMerged(
      "serve - --jobs=" + jobs_path, "R(a | b), R(a | c)\\nS(b | a)\\n");
  EXPECT_EQ(from_file.exit_code, 0);
  EXPECT_NE(from_file.stdout_text.find("[1] certain"), std::string::npos);

  // Governor flags flow through to every request: with degradation off and
  // a zero node budget the request fails typed, exit 3.
  RunResult tight = RunCliMerged(
      "serve " + db_path_ + " --max-nodes=0 --method=backtracking",
      "R(x | y), not S(y | x)\\n");
  EXPECT_EQ(tight.exit_code, 3);
  EXPECT_NE(tight.stdout_text.find("budget-exhausted"), std::string::npos);
}

}  // namespace
}  // namespace cqa
