// Integration test for the cqa_cli binary: spawns the real executable (path
// injected by CMake) and checks output and exit codes end to end.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#ifndef CQA_CLI_PATH
#define CQA_CLI_PATH "cqa_cli"
#endif

namespace cqa {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult RunCli(const std::string& args) {
  std::string command = std::string(CQA_CLI_PATH) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  RunResult out;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    out.stdout_text.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_path_ = ::testing::TempDir() + "/cli_test_db.facts";
    std::ofstream out(db_path_);
    out << "R(a | b), R(a | c)\nS(b | a)\n";
  }
  std::string db_path_;
};

TEST_F(CliTest, Classify) {
  RunResult r = RunCli("classify \"R(x | y), not S(y | x)\"");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.stdout_text.find("NL-hard"), std::string::npos);
  EXPECT_NE(r.stdout_text.find("weakly guarded:  yes"), std::string::npos);
}

TEST_F(CliTest, RewriteAndSql) {
  RunResult r = RunCli("rewrite \"P(x | y), not N('c' | y)\"");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.stdout_text.find("exists"), std::string::npos);
  RunResult sql = RunCli("sql \"P(x | y), not N('c' | y)\"");
  EXPECT_EQ(sql.exit_code, 0);
  EXPECT_NE(sql.stdout_text.find("CREATE TABLE P"), std::string::npos);
  EXPECT_NE(sql.stdout_text.find("SELECT CASE WHEN"), std::string::npos);
  // Rewriting a hard query fails cleanly.
  EXPECT_NE(RunCli("rewrite \"R(x | y), not S(y | x)\"").exit_code, 0);
}

TEST_F(CliTest, SolveExitCodes) {
  // Not certain: S(b,a) blocks the R(a,b) witness in one repair... exit 5.
  RunResult r = RunCli("solve \"R(x | y), not S(y | x)\" " + db_path_);
  EXPECT_EQ(r.exit_code, 5);
  EXPECT_NE(r.stdout_text.find("not certain"), std::string::npos);
  // Certain: plain positive query.
  RunResult c = RunCli("solve \"R(x | y)\" " + db_path_);
  EXPECT_EQ(c.exit_code, 0);
  EXPECT_NE(c.stdout_text.find("certain"), std::string::npos);
  // Forced method.
  RunResult m = RunCli("solve \"R(x | y)\" " + db_path_ + " --method=naive");
  EXPECT_EQ(m.exit_code, 0);
  RunResult smp =
      RunCli("solve \"R(x | y), not S(y | x)\" " + db_path_ +
             " --method=sampling");
  EXPECT_EQ(smp.exit_code, 5);  // a falsifying sample refutes exactly
  EXPECT_NE(RunCli("solve \"R(x | y)\" " + db_path_ + " --method=bogus")
                .exit_code,
            0);
}

TEST_F(CliTest, GovernorFlags) {
  // A generous budget leaves the answer unchanged.
  RunResult ok = RunCli("solve \"R(x | y)\" " + db_path_ +
                        " --timeout-ms=10000 --max-nodes=100000");
  EXPECT_EQ(ok.exit_code, 0);
  // An immediately exhausted step budget on a non-degradable method is a
  // typed failure: exit 3.
  RunResult tight = RunCli("solve \"R(x | y), not S(y | x)\" " + db_path_ +
                           " --method=backtracking --max-nodes=0");
  EXPECT_EQ(tight.exit_code, 3);
  // Malformed values are rejected cleanly.
  EXPECT_EQ(RunCli("solve \"R(x | y)\" " + db_path_ + " --timeout-ms=abc")
                .exit_code,
            1);
  // evalfo under a tight budget also exits 3.
  RunResult fo = RunCli("evalfo \"exists x y. R(x | y)\" " + db_path_ +
                        " --max-nodes=1");
  EXPECT_EQ(fo.exit_code, 3);
}

TEST_F(CliTest, AnswersStatsRepairsAspDot) {
  RunResult answers =
      RunCli("answers \"R(x | y), not S(y | x)\" " + db_path_ + " --free=x");
  EXPECT_EQ(answers.exit_code, 0);

  RunResult stats = RunCli("stats " + db_path_);
  EXPECT_EQ(stats.exit_code, 0);
  EXPECT_NE(stats.stdout_text.find("total:"), std::string::npos);

  RunResult repairs = RunCli("repairs " + db_path_ + " --limit=1");
  EXPECT_EQ(repairs.exit_code, 0);
  EXPECT_NE(repairs.stdout_text.find("repairs: 2"), std::string::npos);

  RunResult asp = RunCli("asp \"R(x | y), not S(y | x)\" " + db_path_);
  EXPECT_EQ(asp.exit_code, 0);
  EXPECT_NE(asp.stdout_text.find(":- sat."), std::string::npos);

  RunResult dot = RunCli("dot \"R(x | y), not S(y | x)\"");
  EXPECT_EQ(dot.exit_code, 0);
  EXPECT_NE(dot.stdout_text.find("digraph"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreClean) {
  EXPECT_EQ(RunCli("").exit_code, 2);
  EXPECT_NE(RunCli("frobnicate x").exit_code, 0);
  EXPECT_EQ(RunCli("frobnicate \"R(x | y)\"").exit_code, 2);
  EXPECT_NE(RunCli("classify \"R(x\"").exit_code, 0);
  EXPECT_NE(RunCli("solve \"R(x | y)\" /nonexistent.facts").exit_code, 0);
}

}  // namespace
}  // namespace cqa
