#include <gtest/gtest.h>

#include "cqa/fo/formula.h"

namespace cqa {
namespace {

Term V(const char* n) { return Term::Var(n); }
Term C(const char* n) { return Term::Const(n); }
Symbol S(const char* n) { return InternSymbol(n); }

FoPtr AtomRxy() { return FoAtom(S("R"), 1, {V("x"), V("y")}); }

TEST(FormulaTest, ConstantsFold) {
  EXPECT_EQ(FoAnd({FoTrue(), FoTrue()})->kind(), FoKind::kTrue);
  EXPECT_EQ(FoAnd({FoTrue(), FoFalse()})->kind(), FoKind::kFalse);
  EXPECT_EQ(FoOr({FoFalse()})->kind(), FoKind::kFalse);
  EXPECT_EQ(FoOr({FoFalse(), FoTrue()})->kind(), FoKind::kTrue);
  EXPECT_EQ(FoNot(FoTrue())->kind(), FoKind::kFalse);
  EXPECT_EQ(FoNot(FoNot(AtomRxy()))->kind(), FoKind::kAtom);
  EXPECT_EQ(FoImplies(FoFalse(), AtomRxy())->kind(), FoKind::kTrue);
  EXPECT_EQ(FoImplies(FoTrue(), AtomRxy())->kind(), FoKind::kAtom);
  EXPECT_EQ(FoImplies(AtomRxy(), FoFalse())->kind(), FoKind::kNot);
}

TEST(FormulaTest, AndOrFlatten) {
  FoPtr f = FoAnd({AtomRxy(), FoAnd({AtomRxy(), AtomRxy()})});
  EXPECT_EQ(f->kind(), FoKind::kAnd);
  EXPECT_EQ(f->children().size(), 3u);
  FoPtr g = FoOr({AtomRxy(), FoOr({AtomRxy()})});
  // Inner single-element Or collapses to the atom; outer Or has 2 children.
  EXPECT_EQ(g->children().size(), 2u);
}

TEST(FormulaTest, QuantifierNormalisation) {
  // Unused variables are dropped.
  FoPtr f = FoExists({S("x"), S("unused_q")}, AtomRxy());
  ASSERT_EQ(f->kind(), FoKind::kExists);
  EXPECT_EQ(f->qvars().size(), 1u);
  // Quantifier over no used variables collapses.
  EXPECT_EQ(FoExists({S("unused_q")}, AtomRxy())->kind(), FoKind::kAtom);
  // Adjacent same-kind quantifiers merge.
  FoPtr g = FoExists({S("x")}, FoExists({S("y")}, AtomRxy()));
  ASSERT_EQ(g->kind(), FoKind::kExists);
  EXPECT_EQ(g->qvars().size(), 2u);
  EXPECT_EQ(g->child()->kind(), FoKind::kAtom);
  // Quantified True/False collapse (infinite-domain semantics).
  EXPECT_EQ(FoForall({S("x")}, FoFalse())->kind(), FoKind::kFalse);
}

TEST(FormulaTest, FreeVars) {
  FoPtr f = FoExists({S("x")}, FoAnd({AtomRxy(), FoEquals(V("y"), C("a"))}));
  EXPECT_EQ(f->FreeVars(), SymbolSet{S("y")});
  FoPtr closed = FoExists({S("x"), S("y")}, AtomRxy());
  EXPECT_TRUE(closed->FreeVars().empty());
}

TEST(FormulaTest, SizeAndDepth) {
  FoPtr atom = AtomRxy();
  EXPECT_EQ(atom->Size(), 1u);
  EXPECT_EQ(atom->QuantifierDepth(), 0);
  FoPtr f = FoForall({S("z")},
                     FoImplies(FoAtom(S("R"), 1, {V("z"), V("z")}),
                               FoExists({S("w")},
                                        FoAtom(S("T"), 1, {V("w")}))));
  EXPECT_EQ(f->QuantifierDepth(), 2);
  EXPECT_GE(f->Size(), 4u);
}

TEST(FormulaTest, ConstantsCollected) {
  FoPtr f = FoAnd(
      {FoAtom(S("R"), 1, {C("a"), V("x")}), FoEquals(V("x"), C("b"))});
  std::vector<Value> consts = f->Constants();
  EXPECT_EQ(consts.size(), 2u);
}

TEST(FormulaTest, StructuralEquality) {
  EXPECT_TRUE(Fo::Equal(AtomRxy(), AtomRxy()));
  EXPECT_FALSE(Fo::Equal(AtomRxy(), FoAtom(S("R"), 1, {V("y"), V("x")})));
  EXPECT_TRUE(Fo::Equal(FoAnd({AtomRxy(), FoTrue()}), AtomRxy()));
}

TEST(FormulaTest, PrinterShapes) {
  FoPtr f = FoExists(
      {S("x"), S("y")},
      FoAnd({AtomRxy(), FoNot(FoAtom(S("N1"), 1, {C("c"), V("x")}))}));
  std::string s = f->ToString();
  EXPECT_NE(s.find("exists x y. "), std::string::npos);
  EXPECT_NE(s.find("R(x | y)"), std::string::npos);
  EXPECT_NE(s.find("!N1('c' | x)"), std::string::npos);
  // Negated equality prints as !=.
  EXPECT_EQ(FoNotEquals(V("x"), C("a"))->ToString(), "x != 'a'");
  // Implication and quantifier rendering.
  FoPtr g = FoForall({S("z")}, FoImplies(FoAtom(S("R"), 1, {V("z"), V("z")}),
                                         FoAtom(S("T"), 1, {V("z")})));
  EXPECT_NE(g->ToString().find("forall z. "), std::string::npos);
  EXPECT_NE(g->ToString().find(" -> "), std::string::npos);
}

}  // namespace
}  // namespace cqa
