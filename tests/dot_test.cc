#include <gtest/gtest.h>

#include "cqa/attack/dot.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

TEST(DotTest, RendersNodesAndEdges) {
  Result<Query> q = ParseQuery("R(x | y), not S(y | x)");
  ASSERT_TRUE(q.ok());
  AttackGraph g(q.value());
  std::string dot = AttackGraphToDot(g);
  EXPECT_NE(dot.find("digraph attack_graph"), std::string::npos);
  EXPECT_NE(dot.find("R(x | y)"), std::string::npos);
  EXPECT_NE(dot.find("not S(y | x)"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);  // negated atom
  // q1 has the 2-cycle R ⇄ S: both edges highlighted.
  EXPECT_NE(dot.find("n0 -> n1 [color=red"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n0 [color=red"), std::string::npos);
}

TEST(DotTest, AcyclicGraphHasNoRedEdges) {
  Result<Query> q = ParseQuery("P(x | y), not N('c' | y)");
  ASSERT_TRUE(q.ok());
  std::string dot = AttackGraphToDot(AttackGraph(q.value()));
  EXPECT_EQ(dot.find("color=red"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n0"), std::string::npos);  // N attacks P
}

}  // namespace
}  // namespace cqa
