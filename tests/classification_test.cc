#include <gtest/gtest.h>

#include "cqa/attack/classification.h"
#include "cqa/gen/poll.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/bpm.h"
#include "cqa/reductions/hall_covering.h"
#include "cqa/reductions/q4.h"
#include "cqa/reductions/ufa.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

TEST(ClassificationTest, CanonicalQ0IsLHard) {
  // q0 = {R(x|y), S(y|x)} — the classic negation-free 2-cycle.
  Classification c = Classify(Q("R(x | y), S(y | x)"));
  EXPECT_EQ(c.cls, CertaintyClass::kLHard);
  EXPECT_EQ(c.negated_in_cycle, 0);
  EXPECT_FALSE(c.attack_graph_acyclic);
}

TEST(ClassificationTest, CanonicalQ1IsNLHard) {
  Classification c = Classify(MakeQ1());
  EXPECT_EQ(c.cls, CertaintyClass::kNLHard);
  EXPECT_EQ(c.negated_in_cycle, 1);
  EXPECT_TRUE(c.weakly_guarded);
}

TEST(ClassificationTest, CanonicalQ2IsLHard) {
  // q2 = {R(x,y) all-key, ¬S(x|y), ¬T(y|x)}: the only 2-cycle is S ⇄ T
  // between negated atoms; weakly guarded, so Lemma 5.7 gives L-hardness,
  // matching Lemma 5.3's direct UFA reduction.
  Classification c = Classify(MakeQ2());
  EXPECT_EQ(c.cls, CertaintyClass::kLHard);
  EXPECT_EQ(c.negated_in_cycle, 2);
  EXPECT_TRUE(c.weakly_guarded);
}

TEST(ClassificationTest, PurelyNegatedTwoCycleIsLHard) {
  // Example 4.1's q2 = {P(x,y), ¬R(x|y), ¬S(y|x)}: the only 2-cycle is
  // R ⇄ S between negated atoms; weakly guarded, so Lemma 5.7 applies.
  Result<Query> q = ParseQuery("P(x, y), not R(x | y), not S(y | x)");
  ASSERT_TRUE(q.ok());
  Classification c = Classify(q.value());
  EXPECT_EQ(c.cls, CertaintyClass::kLHard);
  EXPECT_EQ(c.negated_in_cycle, 2);
}

TEST(ClassificationTest, Q3IsFO) {
  Classification c = Classify(Q("P(x | y), not N('c' | y)"));
  EXPECT_EQ(c.cls, CertaintyClass::kFO);
  EXPECT_TRUE(c.attack_graph_acyclic);
}

TEST(ClassificationTest, HallQueriesAreFO) {
  for (int ell = 0; ell <= 5; ++ell) {
    Classification c = Classify(MakeHallQuery(ell));
    EXPECT_EQ(c.cls, CertaintyClass::kFO) << "ell=" << ell;
  }
}

TEST(ClassificationTest, PollQueries) {
  // Example 4.6: q1, q2 cyclic (not in FO); qa, qb acyclic (in FO).
  EXPECT_EQ(Classify(PollQ1()).cls, CertaintyClass::kNLHard);
  EXPECT_EQ(Classify(PollQ2()).cls, CertaintyClass::kLHard);
  EXPECT_EQ(Classify(PollQa()).cls, CertaintyClass::kFO);
  EXPECT_EQ(Classify(PollQb()).cls, CertaintyClass::kFO);
}

TEST(ClassificationTest, Q4IsOutsideTheorem43) {
  // Example 7.1: cyclic 2-cycle of negated atoms, but not weakly guarded —
  // Lemma 5.7 does not apply, and indeed CERTAINTY(q4) is in FO.
  Classification c = Classify(MakeQ4());
  EXPECT_EQ(c.cls, CertaintyClass::kUnknown);
  EXPECT_FALSE(c.weakly_guarded);
  EXPECT_FALSE(c.attack_graph_acyclic);
  EXPECT_EQ(c.negated_in_cycle, 2);
}

TEST(ClassificationTest, MixedCycleHardEvenWithoutWeakGuard) {
  // A 2-cycle with one negated atom is NL-hard regardless of guardedness
  // (Lemma 5.6 makes no weak-guardedness hypothesis).
  // q = {R(x|y), X(x), Y(y), ¬S(y|x)} — R ⇝ S ⇝ R; also not weakly guarded
  // variant: use q1 plus an unguarded negated atom pair.
  Query q = Q("R(x | y), not S(y | x), U(z), not W(x | z)");
  EXPECT_FALSE(q.IsWeaklyGuarded());
  Classification c = Classify(q);
  EXPECT_EQ(c.cls, CertaintyClass::kNLHard);
}

TEST(ClassificationTest, SingleAtomQueriesAreFO) {
  EXPECT_EQ(Classify(Q("R(x | y)")).cls, CertaintyClass::kFO);
  EXPECT_EQ(Classify(Q("R(x, y)")).cls, CertaintyClass::kFO);
}

TEST(ClassificationTest, ExplanationsAreNonEmpty) {
  for (const Query& q :
       {MakeQ1(), MakeQ2(), MakeQ4(), Q("R(x | y)"), PollQa()}) {
    EXPECT_FALSE(Classify(q).explanation.empty());
  }
}

TEST(ClassificationTest, ToStringCovers) {
  EXPECT_EQ(ToString(CertaintyClass::kFO), "in FO");
  EXPECT_NE(ToString(CertaintyClass::kLHard).find("L-hard"),
            std::string::npos);
  EXPECT_NE(ToString(CertaintyClass::kNLHard).find("NL-hard"),
            std::string::npos);
  EXPECT_NE(ToString(CertaintyClass::kUnknown).find("unknown"),
            std::string::npos);
}

}  // namespace
}  // namespace cqa
