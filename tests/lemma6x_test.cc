// Direct tests for the Section 6 machinery: Lemma 6.2 (fully ground negated
// atoms), Lemma 6.5 (variable-free keys via disequalities), Lemma 6.8 /
// Corollary 6.9 (reifiability of unattacked variables), and the counting
// connection (#satisfying == #repairs iff certain).

#include <gtest/gtest.h>

#include "cqa/attack/attack_graph.h"
#include "cqa/certainty/naive.h"
#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"
#include "cqa/gen/random_db.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// Lemma 6.2: for ¬N ground, q certain iff N ∉ db and q \ {¬N} certain.
TEST(Lemma62Test, GroundNegatedAtomElimination) {
  Rng rng(1501);
  Query q = Q("P(x | y), not N('k' | 'v')");
  Query q_rest = Q("P(x | y)");
  RandomDbOptions opts;
  opts.domain_size = 3;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    if (rng.Chance(0.5)) {
      db.AddFactOrDie("N", {Value::Of("k"), Value::Of("v")});
    }
    bool n_in_db =
        db.Contains(InternSymbol("N"), {Value::Of("k"), Value::Of("v")});
    bool lhs = IsCertainNaive(q, db).value();
    bool rhs = !n_in_db && IsCertainNaive(q_rest, db).value();
    ASSERT_EQ(lhs, rhs) << db.ToString();
  }
}

// Lemma 6.5: for ¬N with ground key, q certain iff q\{¬N} certain and, for
// every matching N-fact with values b̄, (q \ {¬N}) ∪ {ȳ ≠ b̄} certain.
TEST(Lemma65Test, VariableFreeKeyElimination) {
  Rng rng(1511);
  Query q = Q("P(x | y), not N('k' | y)");
  Query q_rest = Q("P(x | y)");
  RandomDbOptions opts;
  opts.domain_size = 3;
  for (int trial = 0; trial < 150; ++trial) {
    Database db = GenerateRandomDatabaseFor(q, opts, &rng);
    bool lhs = IsCertainNaive(q, db).value();

    bool rhs = IsCertainNaive(q_rest, db).value();
    if (rhs) {
      db.ForEachFact(InternSymbol("N"), [&](const Tuple& t) {
        if (t[0] != Value::Of("k")) return true;
        Query q_ne = q_rest.WithDiseq(
            Diseq{{Term::Var("y")}, {Term::Const(t[1].name())}});
        if (!IsCertainNaive(q_ne, db).value()) {
          rhs = false;
          return false;
        }
        return true;
      });
    }
    ASSERT_EQ(lhs, rhs) << db.ToString();
  }
}

// Lemma 6.8 (special case exercised directly): swapping a key-relevant fact
// of an atom G that does not attack X preserves the X-restricted witnesses.
TEST(Lemma68Test, KeyRelevantSwapPreservesRestrictedWitnesses) {
  Rng rng(1523);
  RandomQueryOptions qopts;
  qopts.constant_prob = 0.0;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 3;
  dopts.domain_size = 3;
  int exercised = 0;
  for (int trial = 0; trial < 400 && exercised < 60; ++trial) {
    Query q = GenerateRandomQuery(qopts, &rng);
    AttackGraph graph(q);
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);

    // Pick a repair r and an atom G; X := variables G does not attack.
    Repair r = RandomRepair(db, &rng);
    for (size_t g = 0; g < q.NumLiterals(); ++g) {
      SymbolSet x_set = q.Vars().Minus(graph.reachable_vars(g));
      if (x_set.empty()) continue;
      // A key-relevant G-fact A in r and a key-equal alternative B.
      std::vector<Fact> relevant = KeyRelevantFacts(q, g, r);
      if (relevant.empty()) continue;
      const Fact& a = relevant[0];
      std::optional<int> block = db.BlockOf(a.relation, a.values);
      ASSERT_TRUE(block.has_value());
      const Database::Block& blk = db.blocks()[static_cast<size_t>(*block)];
      if (blk.size() < 2) continue;
      ++exercised;
      for (int fact_idx : blk.fact_indices) {
        const Tuple& b = db.FactsOf(a.relation)[static_cast<size_t>(fact_idx)];
        if (b == a.values) continue;
        // r_B := (r \ {A}) ∪ {B} via choice flipping.
        std::vector<int> choices = r.choices();
        for (size_t c = 0; c < blk.fact_indices.size(); ++c) {
          if (blk.fact_indices[c] == fact_idx) {
            choices[static_cast<size_t>(*block)] = static_cast<int>(c);
          }
        }
        Repair rb(&db, choices);
        // Lemma 6.8: every X-restriction of a witness of r_B is also an
        // X-restriction of a witness of r.
        ForEachWitness(q, rb, {}, [&](const Valuation& zeta_full) {
          Valuation zeta;
          for (Symbol xv : x_set) {
            auto it = zeta_full.find(xv);
            if (it != zeta_full.end()) zeta.emplace(xv, it->second);
          }
          EXPECT_TRUE(Satisfies(q, r, zeta))
              << q.ToString() << "\natom " << g << "\n" << db.ToString();
          return true;
        });
      }
      break;
    }
  }
  EXPECT_GE(exercised, 30);
}

// Corollary 6.9 (reification): for weakly-guarded q with certain db, the
// unattacked key variables admit a single constant assignment that keeps
// the substituted query certain in every repair.
TEST(Corollary69Test, UnattackedVariablesAreReifiable) {
  Rng rng(1531);
  RandomQueryOptions qopts;
  qopts.constant_prob = 0.0;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  dopts.max_block_size = 2;
  dopts.domain_size = 3;
  int certain_seen = 0;
  for (int trial = 0; trial < 600 && certain_seen < 40; ++trial) {
    Query q = GenerateRandomQuery(qopts, &rng);
    AttackGraph graph(q);
    SymbolSet unattacked = q.Vars().Minus(graph.AttackedVars());
    if (unattacked.empty()) continue;
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
    if (!IsCertainNaive(q, db).value()) continue;
    ++certain_seen;
    // Try all constants of the active domain for the first unattacked var.
    Symbol x = unattacked.items()[0];
    bool reified = false;
    for (Value c : db.ActiveDomain()) {
      if (IsCertainNaive(q.Substituted(x, c), db).value()) {
        reified = true;
        break;
      }
    }
    EXPECT_TRUE(reified) << q.ToString() << "\nvariable "
                         << SymbolName(x) << "\n" << db.ToString();
  }
  EXPECT_GE(certain_seen, 20);
}

// Counting connection: q certain iff every repair satisfies it.
TEST(CountingTest, CertainIffAllRepairsSatisfy) {
  Rng rng(1543);
  RandomQueryOptions qopts;
  RandomDbOptions dopts;
  dopts.blocks_per_relation = 2;
  for (int trial = 0; trial < 100; ++trial) {
    Query q = GenerateRandomQuery(qopts, &rng);
    Database db = GenerateRandomDatabaseFor(q, dopts, &rng);
    Result<RepairCount> rc = CountSatisfyingRepairs(q, db);
    ASSERT_TRUE(rc.ok());
    bool certain = IsCertainNaive(q, db).value();
    EXPECT_EQ(certain, rc->satisfying == rc->total);
    EXPECT_EQ(rc->total, db.CountRepairs());
  }
}

}  // namespace
}  // namespace cqa
