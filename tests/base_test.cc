#include <gtest/gtest.h>

#include <set>

#include "cqa/base/interner.h"
#include "cqa/base/result.h"
#include "cqa/base/rng.h"
#include "cqa/base/symbol_set.h"
#include "cqa/base/union_find.h"
#include "cqa/base/value.h"

namespace cqa {
namespace {

TEST(InternerTest, InternIsIdempotent) {
  Symbol a1 = InternSymbol("alpha");
  Symbol a2 = InternSymbol("alpha");
  Symbol b = InternSymbol("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(SymbolName(a1), "alpha");
  EXPECT_EQ(SymbolName(b), "beta");
}

TEST(InternerTest, FreshNeverCollides) {
  std::set<Symbol> seen;
  for (int i = 0; i < 100; ++i) {
    Symbol s = FreshSymbol("z");
    EXPECT_TRUE(seen.insert(s).second);
    EXPECT_EQ(SymbolName(s).rfind("z#", 0), 0u);
  }
}

TEST(InternerTest, FreshAvoidsExistingNames) {
  // Pre-intern a name that the fresh counter would produce next.
  Symbol pre = InternSymbol("taken#0");
  Symbol fresh = FreshSymbol("taken");
  EXPECT_NE(pre, fresh);
  EXPECT_NE(SymbolName(fresh), "taken#0");
}

TEST(ValueTest, EqualityAndPairs) {
  Value a = Value::Of("a");
  Value a2 = Value::Of("a");
  Value b = Value::Of("b");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(Value().valid());
  EXPECT_TRUE(a.valid());
  Value p = Value::Pair(a, b);
  EXPECT_EQ(p.name(), "<a,b>");
  EXPECT_EQ(p, Value::Pair(Value::Of("a"), Value::Of("b")));
  EXPECT_NE(p, Value::Pair(b, a));
  EXPECT_EQ(Value::OfInt(42).name(), "42");
}

TEST(ValueTest, TupleToString) {
  EXPECT_EQ(TupleToString({Value::Of("x"), Value::Of("y")}), "(x, y)");
  EXPECT_EQ(TupleToString({}), "()");
}

TEST(SymbolSetTest, BasicSetOperations) {
  Symbol x = InternSymbol("ss_x");
  Symbol y = InternSymbol("ss_y");
  Symbol z = InternSymbol("ss_z");
  SymbolSet s{x, y, x};
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(x));
  EXPECT_FALSE(s.contains(z));

  SymbolSet t{y, z};
  EXPECT_TRUE(s.Intersects(t));
  EXPECT_EQ(s.Union(t).size(), 3u);
  EXPECT_EQ(s.Minus(t), SymbolSet{x});
  EXPECT_EQ(s.Intersect(t), SymbolSet{y});
  EXPECT_TRUE(SymbolSet{y}.IsSubsetOf(s));
  EXPECT_FALSE(s.IsSubsetOf(t));

  s.Erase(x);
  EXPECT_FALSE(s.contains(x));
  s.Insert(z);
  EXPECT_TRUE(s.contains(z));
  EXPECT_FALSE(SymbolSet{}.Intersects(t));
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err = Result<int>::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "boom");
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(42).Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = a.Below(10);
    EXPECT_LT(v, 10u);
    int64_t r = a.Range(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
    double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_FALSE(a.Chance(0.0));
  EXPECT_TRUE(a.Chance(1.0));
}

TEST(UnionFindTest, ComponentsMerge) {
  UnionFind uf(6);
  EXPECT_EQ(uf.num_components(), 6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.num_components(), 4);
}

}  // namespace
}  // namespace cqa
