#include <gtest/gtest.h>

#include "cqa/fo/eval.h"
#include "cqa/fo/formula.h"

namespace cqa {
namespace {

Term V(const char* n) { return Term::Var(n); }
Term C(const char* n) { return Term::Const(n); }
Symbol S(const char* n) { return InternSymbol(n); }

Database Db(const char* text) {
  Result<Database> db = Database::FromText(text);
  EXPECT_TRUE(db.ok()) << (db.ok() ? "" : db.error());
  return db.value();
}

TEST(FoEvalTest, GroundAtoms) {
  Database db = Db("R(a | b)");
  EXPECT_TRUE(EvalFo(FoAtom(S("R"), 1, {C("a"), C("b")}), db));
  EXPECT_FALSE(EvalFo(FoAtom(S("R"), 1, {C("a"), C("zz")}), db));
  EXPECT_FALSE(EvalFo(FoAtom(S("Missing"), 1, {C("a")}), db));
}

TEST(FoEvalTest, GuardedExists) {
  Database db = Db("R(a | b)\nR(c | d)\nT(b)");
  FoPtr f = FoExists({S("x"), S("y")},
                     FoAnd({FoAtom(S("R"), 1, {V("x"), V("y")}),
                            FoAtom(S("T"), 1, {V("y")})}));
  EXPECT_TRUE(EvalFo(f, db));
  FoPtr g = FoExists({S("x"), S("y")},
                     FoAnd({FoAtom(S("R"), 1, {V("x"), V("y")}),
                            FoAtom(S("T"), 1, {V("x")})}));
  EXPECT_FALSE(EvalFo(g, db));
}

TEST(FoEvalTest, ForallWithImplicationPremise) {
  Database db = Db("R(a | b)\nR(a | c)\nT(b)\nT(c)");
  FoPtr f = FoForall({S("z")},
                     FoImplies(FoAtom(S("R"), 1, {C("a"), V("z")}),
                               FoAtom(S("T"), 1, {V("z")})));
  EXPECT_TRUE(EvalFo(f, db));
  Database db2 = Db("R(a | b)\nR(a | c)\nT(b)");
  EXPECT_FALSE(EvalFo(f, db2));
}

TEST(FoEvalTest, InfiniteDomainSemantics) {
  // ∃x ¬P(x) is TRUE over the infinite constant domain even if P holds for
  // every active-domain value (fresh witness).
  Database db = Db("P(a)\nP(b)");
  FoPtr f = FoExists({S("x")}, FoNot(FoAtom(S("P"), 1, {V("x")})));
  EXPECT_TRUE(EvalFo(f, db));
  // ∀x P(x) is FALSE for the same reason.
  FoPtr g = FoForall({S("x")}, FoAtom(S("P"), 1, {V("x")}));
  EXPECT_FALSE(EvalFo(g, db));
}

TEST(FoEvalTest, DistinctFreshWitnessesPerVariable) {
  // ∃x∃y (x ≠ y ∧ ¬P(x) ∧ ¬P(y)) needs two distinct outside-domain values.
  Database db = Db("P(a)");
  FoPtr f = FoExists(
      {S("x"), S("y")},
      FoAnd({FoNotEquals(V("x"), V("y")),
             FoNot(FoAtom(S("P"), 1, {V("x")})),
             FoNot(FoAtom(S("P"), 1, {V("y")}))}));
  EXPECT_TRUE(EvalFo(f, db));
}

TEST(FoEvalTest, PinningEqualities) {
  Database db = Db("R(a | b)");
  // ∃x (x = 'a' ∧ ∃y R(x, y)) — x pinned by equality, y by the atom.
  FoPtr f = FoExists(
      {S("x")},
      FoAnd({FoEquals(V("x"), C("a")),
             FoExists({S("y")}, FoAtom(S("R"), 1, {V("x"), V("y")}))}));
  EXPECT_TRUE(EvalFo(f, db));
  FoPtr g = FoExists(
      {S("x")},
      FoAnd({FoEquals(V("x"), C("zz")),
             FoExists({S("y")}, FoAtom(S("R"), 1, {V("x"), V("y")}))}));
  EXPECT_FALSE(EvalFo(g, db));
}

TEST(FoEvalTest, Example45RewritingShape) {
  // The hand-written rewriting of Example 4.5 for q3 = {P(x|y), ¬N(c|y)}:
  // ∃x∃y P(x,y) ∧ ∀z (N(c,z) → ∃x (∃y P(x,y) ∧ ∀w (P(x,w) → w ≠ z))).
  FoPtr inner = FoExists(
      {S("x")},
      FoAnd({FoExists({S("y")}, FoAtom(S("P"), 1, {V("x"), V("y")})),
             FoForall({S("w")},
                      FoImplies(FoAtom(S("P"), 1, {V("x"), V("w")}),
                                FoNotEquals(V("w"), V("z"))))}));
  FoPtr phi = FoAnd(
      {FoExists({S("x"), S("y")}, FoAtom(S("P"), 1, {V("x"), V("y")})),
       FoForall({S("z")},
                FoImplies(FoAtom(S("N"), 1, {C("c"), V("z")}), inner))});

  // P has a block where value 'b' does not occur => certain.
  Database yes = Db("P(k1 | a)\nP(k2 | b)\nN(c | b)");
  EXPECT_TRUE(EvalFo(phi, yes));
  // Every P-block contains b => some repair picks b everywhere => false.
  Database no = Db("P(k1 | b)\nP(k1 | a)\nN(c | b)");
  EXPECT_FALSE(EvalFo(phi, no));
  Database no2 = Db("N(c | b)");
  EXPECT_FALSE(EvalFo(phi, no2));  // no P-fact at all
}

TEST(FoEvalTest, ShadowedQuantifier) {
  Database db = Db("P(a)\nQ(b)");
  // ∃x (P(x) ∧ ∃x Q(x)) — inner x shadows outer.
  FoPtr f = FoExists(
      {S("x")},
      FoAnd({FoAtom(S("P"), 1, {V("x")}),
             FoExists({S("x")}, FoAtom(S("Q"), 1, {V("x")}))}));
  EXPECT_TRUE(EvalFo(f, db));
}

TEST(FoEvalTest, StepsCounterMoves) {
  Database db = Db("R(a | b)");
  FoEvaluator ev(db);
  EXPECT_TRUE(ev.Eval(FoExists(
      {S("x"), S("y")}, FoAtom(S("R"), 1, {V("x"), V("y")}))));
  EXPECT_GT(ev.steps(), 0u);
}

}  // namespace
}  // namespace cqa
