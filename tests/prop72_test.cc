#include <gtest/gtest.h>

#include "cqa/attack/attack_graph.h"
#include "cqa/db/eval.h"
#include "cqa/db/repairs.h"
#include "cqa/gen/random_query.h"
#include "cqa/query/parser.h"
#include "cqa/reductions/prop72.h"

namespace cqa {
namespace {

Query Q(const char* text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error());
  return q.value();
}

// Validates the gadget's advertised properties for query `q` and attacked
// variable `x`: exactly two repairs, both satisfy q, and neither constant
// works for both repairs.
void CheckGadget(const Query& q, Symbol x) {
  Result<NonReifiabilityGadget> gadget = BuildProp72Gadget(q, x);
  ASSERT_TRUE(gadget.ok()) << gadget.error();
  const Database& db = gadget->db;

  std::vector<Database> repairs;
  ForEachRepair(db, [&](const Repair& r) {
    repairs.push_back(r.ToDatabase());
    return true;
  });
  ASSERT_EQ(repairs.size(), 2u) << db.ToString();

  for (const Database& r : repairs) {
    EXPECT_TRUE(Satisfies(q, r)) << q.ToString() << "\n" << db.ToString();
  }
  // {x} is not reifiable: for each c ∈ {a, b}, q[x→c] fails in some repair.
  for (Value c : {gadget->a, gadget->b}) {
    Query qc = q.Substituted(x, c);
    bool fails_somewhere = false;
    for (const Database& r : repairs) {
      if (!Satisfies(qc, r)) fails_somewhere = true;
    }
    EXPECT_TRUE(fails_somewhere)
        << q.ToString() << " with " << SymbolName(x) << " -> " << c.name();
  }
}

TEST(Prop72Test, Q1AttackedVariables) {
  Query q1 = Q("R(x | y), not S(y | x)");
  // In q1, R attacks y and S attacks x; both are attacked, neither
  // reifiable.
  CheckGadget(q1, InternSymbol("x"));
  CheckGadget(q1, InternSymbol("y"));
}

TEST(Prop72Test, PositiveChainAttackedVariable) {
  // In R(x|y), S(y|z): R attacks y and z.
  Query q = Q("R(x | y), S(y | z)");
  CheckGadget(q, InternSymbol("y"));
  CheckGadget(q, InternSymbol("z"));
}

TEST(Prop72Test, UnattackedVariableRejected) {
  Query q = Q("R(x | y), S(y | z)");
  // x is unattacked (R's own key, no other attacker).
  EXPECT_FALSE(BuildProp72Gadget(q, InternSymbol("x")).ok());
}

TEST(Prop72Test, RandomAttackedQueries) {
  Rng rng(701);
  RandomQueryOptions opts;
  opts.constant_prob = 0.0;  // keep gadgets purely variable-driven
  int checked = 0;
  for (int trial = 0; trial < 400 && checked < 40; ++trial) {
    Query q = GenerateRandomQuery(opts, &rng);
    AttackGraph g(q);
    SymbolSet attacked = g.AttackedVars();
    if (attacked.empty()) continue;
    CheckGadget(q, attacked.items()[0]);
    ++checked;
  }
  EXPECT_GE(checked, 40);
}

}  // namespace
}  // namespace cqa
